// Regenerates Table II: LLaMA-7B accuracy across configurations — subsample
// length, operand data format, and skip range. Paper Nsub values map to
// surrogate prefixes at the same *relative position on the estimator-noise
// curve* (see EXPERIMENTS.md): paper {128, 256, 512} of E=4096 -> surrogate
// {E/8, E/2, E} of the surrogate width.
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/calibration.hpp"
#include "core/haan_norm.hpp"
#include "eval/evaluator.hpp"

// GCC 12 false-positive -Wrestrict on inlined std::string concatenation
// (GCC bug 105651).
#pragma GCC diagnostic ignored "-Wrestrict"

using namespace haan;

namespace {

struct Row {
  std::string method;
  std::string config_label;
  core::HaanConfig config;
  const double* paper;  // 5 accuracies or nullptr
};

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("Table II: LLaMA-7B accuracy across HAAN configurations");
  cli.add_flag("examples", "250", "examples per task");
  cli.add_flag("width", "128", "surrogate embedding width");
  cli.add_flag("threads", "0", "worker threads (0 = all cores)");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;
  const auto n = static_cast<std::size_t>(cli.get_int("examples"));
  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  auto model_config = model::llama7b_surrogate(width);
  model::Transformer model(model_config);
  core::CalibrationOptions cal;
  cal.n_samples = 8;
  cal.seq_len = 16;
  cal.position_stride = 4;
  const auto calibration = core::calibrate_skip_plan(model, cal);

  // The reference configuration mirrors Table I's LLaMA row.
  core::HaanConfig reference = core::llama7b_algorithm_config(width);
  reference.plan = calibration.plan;

  // Paper rows (Table II).
  static const double p_sub128[5] = {0.5722, 0.6654, 0.4067, 0.4520, 0.2432};
  static const double p_sub256[5] = {0.7016, 0.7818, 0.5696, 0.7567, 0.4163};
  static const double p_sub512[5] = {0.7015, 0.7828, 0.5691, 0.7513, 0.4168};
  static const double p_int8[5] = {0.7016, 0.7818, 0.5696, 0.7567, 0.4163};
  static const double p_fp16[5] = {0.7016, 0.7826, 0.5691, 0.7545, 0.3963};
  static const double p_fp32[5] = {0.7017, 0.7862, 0.5691, 0.7511, 0.4198};
  static const double p_skip_10_20[5] = {0.5018, 0.5818, 0.3496, 0.5032, 0.2512};
  static const double p_skip_30_40[5] = {0.6218, 0.7018, 0.4896, 0.6767, 0.2675};
  static const double p_skip_50_60[5] = {0.7016, 0.7818, 0.5696, 0.7567, 0.4163};

  std::vector<Row> rows;
  const auto with_nsub = [&](std::size_t nsub) {
    auto c = reference;
    c.nsub = nsub;
    return c;
  };
  rows.push_back({"Subsample length", "128 -> " + std::to_string(width / 8),
                  with_nsub(width / 8), p_sub128});
  rows.push_back({"Subsample length", "256 -> " + std::to_string(width / 2),
                  with_nsub(width / 2), p_sub256});
  rows.push_back({"Subsample length", "512 -> " + std::to_string(width),
                  with_nsub(width), p_sub512});

  const auto with_format = [&](numerics::NumericFormat format) {
    auto c = reference;
    c.format = format;
    return c;
  };
  rows.push_back({"Data format", "INT8", with_format(numerics::NumericFormat::kINT8),
                  p_int8});
  rows.push_back({"Data format", "FP16", with_format(numerics::NumericFormat::kFP16),
                  p_fp16});
  rows.push_back({"Data format", "FP32", with_format(numerics::NumericFormat::kFP32),
                  p_fp32});

  const auto with_range = [&](std::size_t lo, std::size_t hi) {
    auto c = reference;
    c.plan = core::fixed_range_plan(calibration.trace, lo, hi);
    return c;
  };
  rows.push_back({"Skip range", "(10, 20)", with_range(10, 20), p_skip_10_20});
  rows.push_back({"Skip range", "(30, 40)", with_range(30, 40), p_skip_30_40});
  rows.push_back({"Skip range", "(50, 60)", with_range(50, 60), p_skip_50_60});

  // Generate the datasets once; all configurations share them.
  const auto suite = eval::task_suite_for(model_config.name);
  std::vector<eval::TaskDataset> datasets;
  for (auto task : suite) {
    task.context_len = 10;
    datasets.push_back(eval::TaskDataset::generate(model, task, n, threads));
  }

  common::Table table({"method", "config", "WG", "PQ", "HS", "A-e", "A-c"});
  {
    std::vector<std::string> base{"(reference baseline)", "exact FP32"};
    for (const auto& dataset : datasets) {
      base.push_back(common::format_double(dataset.baseline_accuracy(), 4));
    }
    table.add_row(std::move(base));
    table.add_separator();
  }
  std::string last_method;
  for (const auto& row : rows) {
    if (!last_method.empty() && row.method != last_method) table.add_separator();
    last_method = row.method;
    std::vector<std::string> cells{row.method, row.config_label};
    for (const auto& dataset : datasets) {
      const auto result = eval::evaluate_accuracy_parallel(
          model,
          [&] { return std::make_unique<core::HaanNormProvider>(row.config); },
          dataset, threads);
      cells.push_back(common::format_double(result.accuracy, 4));
    }
    table.add_row(std::move(cells));
    std::vector<std::string> paper{"  (paper)", row.config_label};
    for (int t = 0; t < 5; ++t) {
      paper.push_back(common::format_double(row.paper[t], 4));
    }
    table.add_row(std::move(paper));
  }

  std::printf(
      "=== Table II — LLaMA-7B accuracy across configurations "
      "(width %zu, %zu examples/task) ===\nreference: %s\n%s",
      width, n, reference.to_string().c_str(), table.render().c_str());
  return 0;
}
