// Regenerates Fig 1(b): GPU runtime breakdown of GPT-2 and OPT at sequence
// length 2048, before and after FlashAttention + FP8 optimization, plus the
// §III-A claim that the ISD computation dominates normalization runtime.
#include <cstdio>

#include "baselines/gpu_runtime.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace haan;

namespace {

void print_model(const char* title, const model::RealDims& dims,
                 const baselines::GpuRuntimeParams& params, std::size_t seq,
                 const double paper_original[4], const double paper_optimized[4]) {
  common::Table table({"setting", "Matmul", "Softmax", "Normalization", "Others",
                       "total (ms)"});
  const auto add = [&](const char* label, const baselines::RuntimeBreakdown& run,
                       const double paper[4]) {
    table.add_row({label, common::format_percent(run.matmul_fraction()),
                   common::format_percent(run.softmax_fraction()),
                   common::format_percent(run.norm_fraction()),
                   common::format_percent(run.others_fraction()),
                   common::format_double(run.total_us() / 1000.0, 2)});
    table.add_row({"  (paper)", common::format_percent(paper[0]),
                   common::format_percent(paper[1]),
                   common::format_percent(paper[2]),
                   common::format_percent(paper[3]), "-"});
  };
  const auto original = gpu_runtime_breakdown(dims, seq, false, params);
  const auto optimized = gpu_runtime_breakdown(dims, seq, true, params);
  add("Original", original, paper_original);
  table.add_separator();
  add("After optimization", optimized, paper_optimized);

  std::printf("\n=== Fig 1(b) — %s, seq_len %zu ===\n%s", title, seq,
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("Fig 1(b): GPU runtime breakdown, original vs optimized");
  cli.add_flag("seq", "2048", "sequence length");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;
  const auto seq = static_cast<std::size_t>(cli.get_int("seq"));

  const double gpt2_orig[4] = {0.572, 0.149, 0.145, 0.134};
  const double gpt2_opt[4] = {0.393, 0.051, 0.339, 0.217};
  print_model("GPT2-117M", model::real_dims_gpt2_117m(),
              baselines::gpt2_runtime_params(), seq, gpt2_orig, gpt2_opt);

  const double opt_orig[4] = {0.522, 0.178, 0.139, 0.161};
  const double opt_opt[4] = {0.375, 0.063, 0.361, 0.201};
  print_model("OPT-2.7B", model::real_dims_opt2p7b(),
              baselines::opt_runtime_params(), seq, opt_orig, opt_opt);

  std::printf(
      "\nSec III-A claim: ISD computation share of normalization runtime\n"
      "  LLaMA-7B dims (E=4096), seq 128 : %s (paper: >90%%)\n"
      "  GPT2-1.5B dims (E=1600), seq 512: %s\n",
      common::format_percent(baselines::isd_share_of_norm_runtime(
                                 4096, 128, baselines::gpt2_runtime_params()))
          .c_str(),
      common::format_percent(baselines::isd_share_of_norm_runtime(
                                 1600, 512, baselines::gpt2_runtime_params()))
          .c_str());
  return 0;
}
