// Regenerates Fig 8(a): normalized power of HAAN-v1/v2 vs SOLE / DFX / MHAA
// while processing GPT2-1.5B normalization layers. The paper reports 61%/64%
// average power reductions vs DFX and "slightly less power than SOLE and
// MHAA".
#include <cstdio>
#include <vector>

#include "baselines/dfx_engine.hpp"
#include "baselines/haan_engine.hpp"
#include "baselines/mhaa_engine.hpp"
#include "baselines/sole_engine.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("Fig 8(a): normalized power on GPT2-1.5B norm layers");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const baselines::HaanEngine v1(accel::haan_v1());
  const baselines::HaanEngine v2(accel::haan_v2());
  const baselines::SoleEngine sole;
  const baselines::DfxEngine dfx;
  const baselines::MhaaEngine mhaa;
  const std::vector<const baselines::NormEngineModel*> engines{&v1, &v2, &sole,
                                                               &dfx, &mhaa};

  common::Table table(
      {"engine", "power (W)", "normalized to HAAN-v1", "reduction vs DFX"});
  const auto work = baselines::make_workload(model::real_dims_gpt2_1p5b(), 256,
                                             /*skipped=*/10, /*nsub=*/800,
                                             model::NormKind::kLayerNorm);
  const double base = v1.average_power_w(work);
  const double dfx_power = dfx.average_power_w(work);
  for (const auto* engine : engines) {
    const double power = engine->average_power_w(work);
    table.add_row({engine->name(), common::format_double(power, 3),
                   common::format_ratio(power / base),
                   common::format_percent(1.0 - power / dfx_power)});
  }
  std::printf(
      "=== Fig 8(a) — power comparison, GPT2-1.5B norm workload (seq 256) "
      "===\n%s\npaper: HAAN-v1/v2 reduce power by ~61%%/64%% vs DFX and sit "
      "slightly below SOLE and MHAA.\n",
      table.render().c_str());

  // Energy view (power x latency) — the quantity an accelerator deployment
  // actually pays.
  common::Table energy({"engine", "latency (ms)", "energy (mJ)",
                        "energy vs HAAN-v1"});
  const double base_energy = v1.total_energy_uj(work);
  for (const auto* engine :
       std::vector<const baselines::NormEngineModel*>{&v1, &v2, &sole, &dfx,
                                                      &mhaa}) {
    energy.add_row({engine->name(),
                    common::format_double(engine->total_latency_us(work) / 1e3, 3),
                    common::format_double(engine->total_energy_uj(work) / 1e3, 3),
                    common::format_ratio(engine->total_energy_uj(work) / base_energy)});
  }
  std::printf("\n%s", energy.render().c_str());
  return 0;
}
