// Regenerates Table I: Original vs HAAN accuracy on the five synthetic task
// suites for the LLaMA-7B / OPT-2.7B / GPT2-1.5B surrogates, each under its
// paper configuration (subsample + format + calibrated skip plan).
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/calibration.hpp"
#include "core/provider_factory.hpp"
#include "eval/evaluator.hpp"

using namespace haan;

namespace {

struct ModelUnderTest {
  model::ModelConfig config;
  const double* paper_original;  // 5 task accuracies
  const double* paper_haan;
  const char* paper_config;
};

void run_model(const ModelUnderTest& spec, std::size_t n_examples,
               std::size_t threads) {
  model::Transformer model(spec.config);

  core::CalibrationOptions cal;
  cal.n_samples = 8;
  cal.seq_len = 16;
  cal.position_stride = 4;
  const auto calibration = core::calibrate_skip_plan(model, cal);
  // The factory resolves "haan" to the paper's per-model configuration
  // (Nsub fraction + operand format) from the model name.
  core::ProviderOptions provider_options;
  provider_options.width = spec.config.d_model;
  provider_options.model_name = spec.config.name;
  provider_options.plan = calibration.plan;
  const core::HaanConfig haan_config =
      core::resolve_haan_config("haan", provider_options);

  const auto suite = eval::task_suite_for(spec.config.name);
  common::Table table({"method", "WG", "PQ", "HS", "A-e", "A-c"});
  std::vector<std::string> original{"Original"}, haan{"HAAN"};
  std::vector<std::string> paper_orig{"  (paper Original)"}, paper_haan{"  (paper HAAN)"};

  for (std::size_t t = 0; t < suite.size(); ++t) {
    auto task = suite[t];
    task.context_len = 10;
    const auto dataset = eval::TaskDataset::generate(model, task, n_examples, threads);
    original.push_back(common::format_double(dataset.baseline_accuracy(), 4));
    const auto result = eval::evaluate_accuracy_parallel(
        model,
        [&] { return core::make_norm_provider("haan", provider_options); },
        dataset, threads);
    haan.push_back(common::format_double(result.accuracy, 4));
    paper_orig.push_back(common::format_double(spec.paper_original[t], 4));
    paper_haan.push_back(common::format_double(spec.paper_haan[t], 4));
  }
  table.add_row(std::move(original));
  table.add_row(std::move(haan));
  table.add_separator();
  table.add_row(std::move(paper_orig));
  table.add_row(std::move(paper_haan));

  std::printf("\n=== Table I — %s (surrogate width %zu, %zu examples/task) ===\n",
              spec.config.name.c_str(), spec.config.d_model, n_examples);
  std::printf("paper config: %s\n", spec.paper_config);
  std::printf("ours        : nsub=%zu, %s, plan %s\n%s",
              haan_config.nsub, numerics::to_string(haan_config.format).c_str(),
              calibration.plan.to_string().c_str(), table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("Table I: accuracy of HAAN vs original across LLMs/tasks");
  cli.add_flag("examples", "300", "examples per task");
  cli.add_flag("width", "128", "surrogate embedding width");
  cli.add_flag("threads", "0", "worker threads (0 = all cores)");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;
  const auto n = static_cast<std::size_t>(cli.get_int("examples"));
  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));

  static const double llama_orig[5] = {0.7017, 0.7867, 0.5694, 0.7517, 0.4198};
  static const double llama_haan[5] = {0.7016, 0.7818, 0.5696, 0.7567, 0.4163};
  static const double opt_orig[5] = {0.6093, 0.7367, 0.4581, 0.6073, 0.2696};
  static const double opt_haan[5] = {0.6085, 0.7318, 0.4582, 0.5997, 0.2713};
  static const double gpt2_orig[5] = {0.5833, 0.7084, 0.4004, 0.5829, 0.2500};
  static const double gpt2_haan[5] = {0.5801, 0.7065, 0.3997, 0.5779, 0.2554};

  run_model({model::llama7b_surrogate(width), llama_orig, llama_haan,
             "Nsub=256, skip (50,60), INT8"},
            n, threads);
  run_model({model::opt2p7b_surrogate(width), opt_orig, opt_haan,
             "Nsub=1280, skip (55,62), FP16"},
            n, threads);
  run_model({model::gpt2_1p5b_surrogate(width), gpt2_orig, gpt2_haan,
             "Nsub=800, skip (85,92), FP16"},
            n, threads);
  return 0;
}
