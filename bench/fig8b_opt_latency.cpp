// Regenerates Fig 8(b): normalized latency of HAAN vs GPU / SOLE / MHAA on
// the OPT-2.7B normalization workload (7 of 65 ISD computations skipped,
// input truncated to Nsub = 1280), sequence lengths 128-1024. HAAN-v2 is
// excluded as in the paper (its configuration is incompatible with this
// model); HAAN-v3 is the (64, 128) configuration introduced for OPT.
#include <cstdio>
#include <vector>

#include "baselines/gpu_engine.hpp"
#include "baselines/haan_engine.hpp"
#include "baselines/mhaa_engine.hpp"
#include "baselines/sole_engine.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("Fig 8(b): normalized normalization latency on OPT-2.7B");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const baselines::HaanEngine v1(accel::haan_v1());
  const baselines::HaanEngine v3(accel::haan_v3());
  const baselines::SoleEngine sole;
  const baselines::MhaaEngine mhaa;
  const baselines::GpuNormEngine gpu;
  const std::vector<const baselines::NormEngineModel*> engines{&v1, &v3, &sole,
                                                               &mhaa, &gpu};
  const char* paper[] = {"1.00x", "0.96-1.03x", "1.56-1.57x", "1.61-1.62x",
                         "9.96-10.88x"};

  common::Table table({"engine", "seq 128", "seq 256", "seq 512", "seq 1024",
                       "paper"});
  const std::size_t seqs[] = {128, 256, 512, 1024};
  for (std::size_t e = 0; e < engines.size(); ++e) {
    std::vector<std::string> row{engines[e]->name()};
    for (const std::size_t seq : seqs) {
      const auto work = baselines::make_workload(model::real_dims_opt2p7b(), seq,
                                                 /*skipped=*/7, /*nsub=*/1280,
                                                 model::NormKind::kLayerNorm);
      const double base = v1.total_latency_us(work);
      row.push_back(common::format_ratio(engines[e]->total_latency_us(work) / base));
    }
    row.push_back(paper[e]);
    table.add_row(std::move(row));
  }
  std::printf(
      "=== Fig 8(b) — normalized latency, OPT-2.7B norm layers "
      "(7/65 skipped, Nsub = 1280) ===\n%s",
      table.render().c_str());
  return 0;
}
