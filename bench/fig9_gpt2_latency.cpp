// Regenerates Fig 9: normalized latency of HAAN vs DFX / GPU / SOLE / MHAA on
// the GPT2-1.5B normalization workload (10 of 97 layers skipped, statistics
// subsampled to half the embedding width), sequence lengths 128-1024.
#include <cstdio>
#include <vector>

#include "baselines/dfx_engine.hpp"
#include "baselines/gpu_engine.hpp"
#include "baselines/haan_engine.hpp"
#include "baselines/mhaa_engine.hpp"
#include "baselines/sole_engine.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("Fig 9: normalized normalization latency on GPT2-1.5B");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const baselines::HaanEngine v1(accel::haan_v1());
  const baselines::HaanEngine v2(accel::haan_v2());
  const baselines::SoleEngine sole;
  const baselines::DfxEngine dfx;
  const baselines::MhaaEngine mhaa;
  const baselines::GpuNormEngine gpu;
  const std::vector<const baselines::NormEngineModel*> engines{&v1, &v2, &sole,
                                                               &mhaa, &dfx, &gpu};
  // Paper Fig 9 series (approximate, HAAN-v1 = 1.00x).
  const char* paper[] = {"1.00x", "1.03-1.05x", "1.21-1.35x", "2.41-2.43x",
                         "11.68-11.77x", "10.06-10.93x"};

  common::Table table({"engine", "seq 128", "seq 256", "seq 512", "seq 1024",
                       "paper"});
  const std::size_t seqs[] = {128, 256, 512, 1024};
  for (std::size_t e = 0; e < engines.size(); ++e) {
    std::vector<std::string> row{engines[e]->name()};
    for (const std::size_t seq : seqs) {
      const auto work = baselines::make_workload(model::real_dims_gpt2_1p5b(), seq,
                                                 /*skipped=*/10, /*nsub=*/800,
                                                 model::NormKind::kLayerNorm);
      const double base = v1.total_latency_us(work);
      row.push_back(common::format_ratio(engines[e]->total_latency_us(work) / base));
    }
    row.push_back(paper[e]);
    table.add_row(std::move(row));
  }
  std::printf(
      "=== Fig 9 — normalized latency, GPT2-1.5B norm layers "
      "(10/97 skipped, Nsub = E/2) ===\n%s",
      table.render().c_str());

  const auto work128 = baselines::make_workload(model::real_dims_gpt2_1p5b(), 128,
                                                10, 800, model::NormKind::kLayerNorm);
  std::printf("\nHAAN-v1 absolute latency at seq 128: %.2f ms (100 MHz pipeline)\n",
              v1.total_latency_us(work128) / 1000.0);
  return 0;
}
