// Ablations over the design choices DESIGN.md calls out:
//   (a) square-root-inverter Newton iterations: accuracy vs SRI latency;
//   (b) the 0x5F3759DF magic constant vs perturbed seeds;
//   (c) the subsample-length noise curve (the estimator physics behind
//       Table II's Nsub cliff);
//   (d) memory-port width: why HAAN-v1/v2/v3 tie in steady state;
//   (e) pipeline-stage balance across (pd, pn) at fixed lane budget.
#include <cstdio>

#include "accel/pipeline.hpp"
#include "baselines/haan_engine.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/config.hpp"
#include "numerics/fast_math.hpp"

// GCC 12 false-positive -Wrestrict on inlined std::string concatenation
// (GCC bug 105651).
#pragma GCC diagnostic ignored "-Wrestrict"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("design-choice ablations");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  // (a) Newton iterations.
  {
    common::Table table({"iterations", "worst rel error", "SRI cycles"});
    for (int iters = 0; iters <= 3; ++iters) {
      accel::AcceleratorConfig config = accel::haan_v1();
      config.newton_iterations = iters;
      accel::NormLayerWork work;
      work.n = 1600;
      work.vectors = 1;
      const auto cycles = accel::stage_cycles(work, config);
      table.add_row({std::to_string(iters),
                     common::format_percent(
                         numerics::worst_inv_sqrt_error(1e-6, 1e6, 20000, iters), 3),
                     std::to_string(cycles.sri)});
    }
    std::printf("=== (a) Newton refinement: error vs SRI latency ===\n%s",
                table.render().c_str());
    std::printf("paper: 'a single iteration is adequate' — 0.175%% worst error.\n\n");
  }

  // (b) Magic constant sweep.
  {
    common::Table table({"magic", "worst rel error (1 Newton iter)"});
    const std::uint32_t magics[] = {0x5F3759DFu, 0x5F3759DFu + 0x10000u,
                                    0x5F3759DFu - 0x10000u, 0x5F3759DFu + 0x80000u,
                                    0x5F375A86u /* Lomont's refined constant */};
    for (const auto magic : magics) {
      char name[16];
      std::snprintf(name, sizeof(name), "0x%08X", magic);
      table.add_row({name, common::format_percent(numerics::worst_inv_sqrt_error(
                               1e-6, 1e6, 20000, 1, magic), 4)});
    }
    std::printf("=== (b) Inverse-sqrt magic constant ===\n%s\n", table.render().c_str());
  }

  // (c) Subsample noise curve.
  {
    common::Table table({"Nsub / E", "rel ISD noise (E=4096)", "rel ISD noise (E=128)"});
    for (const double fraction : {1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2,
                                  3.0 / 4, 1.0}) {
      table.add_row(
          {common::format_double(fraction, 4),
           common::format_percent(core::subsample_noise(
               static_cast<std::size_t>(4096 * fraction), 4096)),
           common::format_percent(core::subsample_noise(
               static_cast<std::size_t>(128 * fraction), 128))});
    }
    std::printf("=== (c) Prefix-subsampling estimator noise ===\n%s",
                table.render().c_str());
    std::printf("paper operating points: LLaMA Nsub=256/4096 -> 4.3%%; the Nsub=128\n"
                "row of Table II sits at 6.1%% — past the accuracy cliff.\n\n");
  }

  // (d) Memory-port width.
  {
    common::Table table({"port (bytes/cycle)", "HAAN-v1 (ms)", "HAAN-v2 (ms)",
                         "v2 / v1"});
    const auto work = baselines::make_workload(model::real_dims_gpt2_1p5b(), 256,
                                               10, 800, model::NormKind::kLayerNorm);
    for (const std::size_t port : {128u, 256u, 512u}) {
      auto v1 = accel::haan_v1();
      auto v2 = accel::haan_v2();
      v1.memory_port_bytes = port;
      v2.memory_port_bytes = port;
      const double t1 = baselines::HaanEngine(v1).total_latency_us(work) / 1e3;
      const double t2 = baselines::HaanEngine(v2).total_latency_us(work) / 1e3;
      table.add_row({std::to_string(port), common::format_double(t1, 3),
                     common::format_double(t2, 3), common::format_ratio(t2 / t1)});
    }
    std::printf("=== (d) Memory port width: the shared stream bounds both ===\n%s\n",
                table.render().c_str());
  }

  // (e) Stage balance at a fixed lane budget (pd + pn = 256).
  {
    common::Table table({"(pd, pn)", "mem II", "isc II", "nu II", "layer cycles"});
    const accel::NormLayerWork work{1600, 128, 800, false,
                                    model::NormKind::kLayerNorm};
    for (const std::size_t pd : {32u, 64u, 96u, 128u, 160u, 192u}) {
      accel::AcceleratorConfig config = accel::haan_v1();
      config.pd = pd;
      config.pn = 256 - pd;
      const auto stage = accel::stage_cycles(work, config);
      const auto stats = accel::simulate_norm_layer(work, config);
      table.add_row({"(" + std::to_string(pd) + ", " + std::to_string(256 - pd) + ")",
                     std::to_string(stage.mem), std::to_string(stage.isc),
                     std::to_string(stage.nu), std::to_string(stats.cycles)});
    }
    std::printf("=== (e) Stage balance at pd + pn = 256, GPT2 layer ===\n%s",
                table.render().c_str());
    std::printf("paper: '(pd, pn) are set so the time of the different pipeline\n"
                "stages is evenly distributed' — the balanced middle rows win.\n");
  }
  return 0;
}
