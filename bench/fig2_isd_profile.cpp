// Regenerates Fig 2: the log-scale ISD profile across the 64 normalization
// layers of the LLaMA-7B surrogate for a handful of random tokens, plus the
// Algorithm 1 window the profile induces (the paper observes linearity over
// layers 41-61).
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/calibration.hpp"

// GCC 12 false-positive -Wrestrict on inlined std::string concatenation
// (GCC bug 105651).
#pragma GCC diagnostic ignored "-Wrestrict"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("Fig 2: ISD values across LLaMA-7B normalization layers");
  cli.add_flag("width", "128", "surrogate embedding width");
  cli.add_flag("tokens", "5", "number of random token observations to plot");
  cli.add_flag("seq", "16", "context length per observation");
  cli.add_flag("seed", "7", "corpus seed");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  const auto n_tokens = static_cast<std::size_t>(cli.get_int("tokens"));

  auto config = model::llama7b_surrogate(width);
  model::Transformer model(config);

  // One observation per sample (position stride = seq) => `tokens` lines.
  const auto corpus = core::random_token_corpus(
      config.vocab_size, n_tokens, static_cast<std::size_t>(cli.get_int("seq")),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  core::TraceCollectorOptions options;
  options.position_stride = static_cast<std::size_t>(cli.get_int("seq"));
  core::IsdTrace trace = core::collect_isd_trace(model, corpus, options);

  std::vector<std::string> header{"layer"};
  for (std::size_t t = 0; t < trace.observation_count(); ++t) {
    header.push_back("tok" + std::to_string(t) + " log10(ISD)");
  }
  header.push_back("mean");
  common::Table table(std::move(header));
  const auto mean = trace.mean_log_isd();
  for (std::size_t layer = 0; layer < trace.layer_count(); ++layer) {
    std::vector<std::string> row{std::to_string(layer)};
    for (std::size_t t = 0; t < trace.observation_count(); ++t) {
      row.push_back(
          common::format_double(trace.log_isd(t, layer) / std::log(10.0), 3));
    }
    row.push_back(common::format_double(mean[layer] / std::log(10.0), 3));
    table.add_row(std::move(row));
  }
  std::printf("=== Fig 2 — ISD across %zu norm layers, %s (width %zu) ===\n%s",
              trace.layer_count(), config.name.c_str(), width,
              table.render().c_str());

  // Algorithm 1 on a denser calibration trace.
  core::CalibrationOptions cal;
  cal.n_samples = 8;
  cal.seq_len = 16;
  cal.position_stride = 4;
  const auto result = core::calibrate_skip_plan(model, cal);
  const std::size_t n = trace.layer_count();
  const std::span<const double> deep(mean.data() + 2 * n / 3, n - 2 * n / 3);
  std::printf(
      "\nAlgorithm 1 plan        : %s\n"
      "paper's observed window : layers 41-61 (Fig 2)\n"
      "deep-third Pearson      : %.4f (paper: 'pronounced negative linear')\n",
      result.plan.to_string().c_str(), common::pearson_vs_index(deep));
  return 0;
}
