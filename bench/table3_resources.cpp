// Regenerates Table III: FPGA resource and power cost of the HAAN accelerator
// across input formats and (pd, pn) configurations, next to the paper's
// synthesis numbers (the calibration anchors of the resource model).
#include <cstdio>

#include "accel/resource_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

// GCC 12 false-positive -Wrestrict on inlined std::string concatenation
// (GCC bug 105651).
#pragma GCC diagnostic ignored "-Wrestrict"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("Table III: HAAN accelerator FPGA cost model");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  struct RowSpec {
    const char* format;
    std::size_t pd, pn;
    double paper_lut, paper_ff, paper_dsp, paper_power;
  };
  const RowSpec rows[] = {
      {"FP32", 128, 128, 84000, 17000, 1536, 6.362},
      {"FP32", 32, 128, 99000, 21000, 1036, 6.136},
      {"FP16", 128, 128, 55000, 11000, 1536, 4.868},
      {"FP16", 32, 128, 76000, 15000, 1036, 4.790},
      {"INT8", 256, 256, 58000, 21000, 1536, 3.458},
      {"INT8", 32, 512, 86000, 25000, 1025, 6.382},
  };

  common::Table table({"Input Format", "(pd, pn)", "LUT", "FF", "DSP", "Power (W)"});
  std::string last_format;
  for (const auto& row : rows) {
    if (!last_format.empty() && last_format != row.format) table.add_separator();
    last_format = row.format;
    accel::AcceleratorConfig config;
    config.pd = row.pd;
    config.pn = row.pn;
    config.io_format = numerics::format_from_string(row.format);
    const auto estimate = accel::estimate_resources(config);
    const auto entry = [](double value, double fraction) {
      return common::format_count(static_cast<long long>(value + 0.5)) + "/" +
             common::format_percent(fraction);
    };
    table.add_row({row.format,
                   "(" + std::to_string(row.pd) + ", " + std::to_string(row.pn) + ")",
                   entry(estimate.lut, estimate.lut_fraction()),
                   entry(estimate.ff, estimate.ff_fraction()),
                   entry(estimate.dsp, estimate.dsp_fraction()),
                   common::format_double(estimate.power_w, 3)});
    table.add_row({"  (paper)", "",
                   common::format_count(static_cast<long long>(row.paper_lut)),
                   common::format_count(static_cast<long long>(row.paper_ff)),
                   common::format_count(static_cast<long long>(row.paper_dsp)),
                   common::format_double(row.paper_power, 3)});
  }
  std::printf("=== Table III — HAAN accelerator hardware cost ===\n%s",
              table.render().c_str());

  // Derived observations the paper calls out.
  accel::AcceleratorConfig fp32;
  fp32.io_format = numerics::NumericFormat::kFP32;
  accel::AcceleratorConfig fp16;
  fp16.io_format = numerics::NumericFormat::kFP16;
  const double ratio = accel::estimate_resources(fp32).power_w /
                       accel::estimate_resources(fp16).power_w;
  std::printf(
      "\nFP32 / FP16 power at (128, 128): %s (paper: ~1.29x)\n"
      "INT8 at matched port throughput is the cheapest configuration.\n",
      common::format_ratio(ratio).c_str());
  return 0;
}
