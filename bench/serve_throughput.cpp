// Serving throughput/latency bench: drives the haan::serve runtime with a
// synthetic workload and reports p50/p95/p99 latency, throughput, batch and
// queue statistics, phase latencies (TTFT / inter-token under decode), and
// aggregated norm counters. With --verify=true (the default) the multi-worker
// run is checked bit-for-bit against a single-threaded reference execution of
// the same workload (the re-forward oracle when decode traffic is present).
//
// Execution model: --mode picks auto | mega-batch | per-request | chunked;
// --prefill-chunk bounds prompt rows per chunked step; --decode /
// --decode-tokens add per-request decode budgets to the workload (which
// force chunked execution under auto).
//
// With --compare=true it additionally sweeps mega-batch (packed cross-request
// forwards + row-partitioned norms) against the per-request execution model
// over batch size × prompt length × workers, closed-loop, and can gate on the
// batch >= 8 speedup (--min-mega-speedup). With --decode-sweep=true it sweeps
// decode mixes (decode budget × prefill chunk) closed-loop, reporting TTFT
// p50/p99, inter-token p99 and the prefill:decode row split, verifying every
// cell bit-for-bit against the reference oracle (the CI decode gate).
//
// Scheduling: --policy picks the batch-formation order (auto | fifo | binned
// | edf) with --bin-width / --max-rows / --aging-us; --deadline-us /
// --priority-levels / --tenants / --tenant-rate put an SLA mix on the
// workload; --overload=shed|degrade|both arms admission control with
// --shed-slack-us / --degrade-slack-us thresholds (--degrade-norm picks the
// cheap lane's provider). --max-p99-us gates the run's total p99 latency.
// With --policy-sweep=true the bench calibrates closed-loop FIFO capacity on
// a ragged bimodal mix, then replays the same offered load (--load-factor x
// capacity) paced under FIFO, binned and EDF — equal arrivals, only the
// formation order differs — gating the binned/EDF pack-occupancy gain
// (--min-occupancy-gain) and p99 ratio (--max-p99-ratio) against FIFO, plus
// a saturating-overload cell (EDF + shedding at the calibrated capacity)
// that must shed low-priority traffic while keeping the high-priority class
// served (--overload-max-p99-us bounds its p99). Every sweep cell is
// verified bit-for-bit against the reference oracle.
//
// Placement: --numa picks off | auto | interleave (empty defers to
// HAAN_NUMA); with --numa-sweep=true the same workload replays closed-loop
// under every placement mode in one process (off, auto, plus interleave on
// multi-node hosts), asserting bit-identical results and deterministic
// rows-per-call across modes, gating the arena reuse ratio under auto
// (--min-arena-reuse) and node-local vs interleaved throughput on multi-node
// hosts (--min-local-vs-interleave).
//
// Observability: --trace-out exports the run as Chrome Trace Event JSON
// (Perfetto-loadable) and cross-checks it against the report (per-thread
// begin/end balance, one flow start+finish per request, sum of forward spans
// within 5% of the compute total); --stats-interval / --stats-json stream
// live snapshots during the run; --max-trace-overhead gates the cost of
// enabled tracing against an untraced run (best-of-2 closed-loop walls).
//
//   ./build/bench/serve_throughput --norm=haan --workers=4 --scenario=steady
//       --seed=1 --compare=true --json=bench/serve_baseline.json
//   ./build/bench/serve_throughput --decode=geometric --decode-tokens=8
//       --decode-sweep=true --trace-out=/tmp/decode_trace.json
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/json_lite.hpp"
#include "core/provider_factory.hpp"
#include "kernels/autotune.hpp"
#include "kernels/kernels.hpp"
#include "mem/topology.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

using namespace haan;

namespace {

/// One cell of the mega-batch vs per-request sweep.
struct CompareCell {
  std::size_t max_batch = 0;
  std::size_t prompt_len = 0;
  std::size_t workers = 0;
  double mega_rps = 0.0;
  double per_request_rps = 0.0;
  double speedup = 0.0;  ///< wall-clock; needs spare cores to exceed 1
  /// Mean rows per batched norm-provider call in each mode — the dispatch
  /// amortization the mega-batch seam exists for. Deterministic (a pure
  /// function of packing), unlike the wall-clock speedup.
  double mega_rows_per_call = 0.0;
  double per_request_rows_per_call = 0.0;
  double amortization = 0.0;  ///< mega_rows_per_call / per_request_rows_per_call
};

/// Closed-loop metrics of one server configuration over `workload`.
serve::ServeMetrics closed_loop_metrics(serve::ServerConfig config,
                                        const std::vector<serve::Request>& workload) {
  config.paced = false;
  config.keep_hidden = false;
  serve::Server server(config);
  return server.run(workload).metrics;
}

/// One cell of the scheduling-policy sweep (equal offered load, paced).
struct PolicyCell {
  std::string policy;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double occupancy = 0.0;  ///< packed sequences / (packs x max_batch)
  std::size_t shed = 0;
  std::size_t degraded = 0;
  bool verified = false;  ///< served results bit-identical to the oracle

  /// Full metrics of the cell's run (per-priority slices for overload cells).
  serve::ServeMetrics metrics;

  /// p99 of the HIGHEST priority class (total p99 when single-class). Total
  /// p99 is nearly reorder-invariant in a backlogged work-conserving system
  /// (reordering only changes which request gets which completion slot), so
  /// the class EDF exists to protect is where its latency cut shows.
  double high_priority_p99_us() const {
    return metrics.per_priority.empty()
               ? p99_us
               : metrics.per_priority.rbegin()->second.total.p99_us;
  }

  common::Json to_json() const {
    common::Json::Object entry;
    entry["policy"] = policy;
    entry["rps"] = rps;
    entry["p50_us"] = p50_us;
    entry["p99_us"] = p99_us;
    entry["high_priority_p99_us"] = high_priority_p99_us();
    entry["pack_occupancy"] = occupancy;
    entry["shed"] = shed;
    entry["degraded"] = degraded;
    entry["verified"] = verified;
    return common::Json(entry);
  }
};

/// Runs one paced policy cell and verifies every SERVED (non-shed,
/// non-degraded) result bit-for-bit against `oracle` (indexed by request id).
PolicyCell run_policy_cell(serve::ServerConfig config,
                           const std::vector<serve::Request>& workload,
                           const serve::ServeReport& oracle) {
  config.paced = true;
  config.keep_hidden = false;
  config.stats_interval_ms = 0;
  serve::Server server(config);
  const serve::ServeReport report = server.run(workload);

  PolicyCell cell;
  cell.policy = serve::to_string(server.config().scheduler.policy.policy);
  cell.rps = report.metrics.throughput_rps;
  cell.p50_us = report.metrics.total.p50_us;
  cell.p99_us = report.metrics.total.p99_us;
  cell.occupancy = report.metrics.pack_occupancy();
  cell.shed = report.metrics.shed_requests;
  cell.degraded = report.metrics.degraded_requests;
  cell.metrics = report.metrics;
  cell.verified = report.results.size() == oracle.results.size();
  for (std::size_t i = 0; cell.verified && i < report.results.size(); ++i) {
    const serve::RequestResult& result = report.results[i];
    if (result.shed || result.degraded) continue;  // no primary-lane oracle
    cell.verified = result.hidden_checksum == oracle.results[i].hidden_checksum;
  }
  return cell;
}

/// One cell of the decode-mix sweep: a decode budget (0 = prefill-only) per
/// request, served chunked with the given prefill chunk.
struct DecodeCell {
  std::size_t decode_tokens = 0;
  std::size_t prefill_chunk = 0;
  double rps = 0.0;
  double ttft_p50_us = 0.0;
  double ttft_p99_us = 0.0;
  double intertoken_p99_us = 0.0;
  std::size_t prefill_rows = 0;
  std::size_t decode_rows = 0;
  bool verified = false;  ///< checksums + token streams match the oracle
};

/// Runs one decode cell closed-loop and verifies it against the re-forward
/// reference oracle (checksums over fed rows AND greedy token streams).
DecodeCell run_decode_cell(serve::ServerConfig config,
                           serve::WorkloadConfig workload_config,
                           std::size_t decode_tokens, std::size_t prefill_chunk) {
  DecodeCell cell;
  cell.decode_tokens = decode_tokens;
  cell.prefill_chunk = prefill_chunk;

  workload_config.decode_model = decode_tokens == 0
                                     ? serve::DecodeModel::kNone
                                     : serve::DecodeModel::kFixed;
  workload_config.decode_tokens = decode_tokens;
  workload_config.max_decode = decode_tokens == 0 ? 1 : decode_tokens;
  const auto workload = serve::generate_workload(workload_config);

  config.mode = serve::ExecMode::kChunked;
  config.prefill_chunk = prefill_chunk;
  config.paced = false;
  config.keep_hidden = false;
  serve::Server server(config);
  const serve::ServeReport report = server.run(workload);
  const serve::ServeReport reference = server.run_reference(workload);

  cell.rps = report.metrics.throughput_rps;
  cell.ttft_p50_us = report.metrics.ttft.p50_us;
  cell.ttft_p99_us = report.metrics.ttft.p99_us;
  cell.intertoken_p99_us = report.metrics.intertoken.p99_us;
  cell.prefill_rows = report.metrics.prefill_rows;
  cell.decode_rows = report.metrics.decode_rows;
  cell.verified = report.results.size() == reference.results.size();
  for (std::size_t i = 0; cell.verified && i < report.results.size(); ++i) {
    cell.verified =
        report.results[i].hidden_checksum ==
            reference.results[i].hidden_checksum &&
        report.results[i].generated == reference.results[i].generated;
  }
  return cell;
}

/// Self-check of the exported Chrome trace against the run's own metrics.
struct TraceCheck {
  bool parsed = false;
  bool balanced = false;   ///< every "E" had a "B"; no span left open per tid
  bool flows_ok = false;   ///< one flow start + one finish per served request
  bool compute_match = false;  ///< Σ forward spans vs Σ packed compute <= 5%
  std::uint64_t dropped = 0;
  std::size_t events = 0;
  double forward_span_us = 0.0;
  double compute_total_us = 0.0;
  double norm_span_us = 0.0;
  bool ok() const { return parsed && balanced && flows_ok && compute_match; }
};

/// Parses `json` (the Chrome trace of `report`'s run) and cross-checks it:
/// per-thread begin/end balance, exactly one flow start/finish per request,
/// and — the wall-clock invariant — the summed duration of "forward" spans
/// matching the metrics' packed compute total within 5% (both time the same
/// forward_hidden_batch calls with the same monotonic clock; packed requests
/// share their batch's compute_us, so dedupe by batch sequence). Ring
/// wrap-around (dropped > 0) voids the duration sums, so the 5% gate only
/// applies to loss-free traces. In chunked mode sessions accumulate every
/// pack they rode across the run (a shared pack's duration lands in several
/// sessions), so no per-result dedup can reconstruct the forward total and
/// the 5% gate is skipped — balance and flow checks still apply.
TraceCheck check_trace(const std::string& json, const serve::ServeReport& report,
                       serve::ExecMode mode, std::uint64_t dropped) {
  TraceCheck check;
  check.dropped = dropped;
  const auto parsed = common::Json::parse(json);
  if (!parsed.has_value()) return check;
  const common::Json* events = parsed->find("traceEvents");
  if (events == nullptr || !events->is_array()) return check;
  check.parsed = true;
  check.events = events->as_array().size();

  std::map<int, std::vector<std::pair<std::string, double>>> open;  // per tid
  std::size_t flow_starts = 0, flow_finishes = 0;
  bool balanced = true;
  for (const common::Json& event : events->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "M") continue;
    const int tid = static_cast<int>(event.find("tid")->as_number());
    const double ts = event.find("ts")->as_number();
    if (ph == "B") {
      open[tid].emplace_back(event.find("name")->as_string(), ts);
    } else if (ph == "E") {
      auto& stack = open[tid];
      if (stack.empty()) {
        balanced = false;
        continue;
      }
      const auto [name, begin_ts] = stack.back();
      stack.pop_back();
      const double duration = ts - begin_ts;
      if (name == "forward") check.forward_span_us += duration;
      if (name.rfind("norm/", 0) == 0) check.norm_span_us += duration;
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_finishes;
    }
  }
  for (const auto& [tid, stack] : open) balanced = balanced && stack.empty();
  check.balanced = balanced;
  check.flows_ok = flow_starts == report.results.size() &&
                   flow_finishes == report.results.size();

  if (mode == serve::ExecMode::kChunked) {
    check.compute_match = true;
    return check;
  }
  if (mode == serve::ExecMode::kMegaBatch) {
    // Every request in a pack carries the pack's compute_us: count each batch
    // sequence once.
    std::map<std::uint64_t, double> by_batch;
    for (const serve::RequestResult& result : report.results) {
      by_batch.emplace(result.batch, result.compute_us);
    }
    for (const auto& [batch, us] : by_batch) check.compute_total_us += us;
  } else {
    for (const serve::RequestResult& result : report.results) {
      check.compute_total_us += result.compute_us;
    }
  }
  const double rel =
      check.compute_total_us > 0.0
          ? std::abs(check.forward_span_us - check.compute_total_us) /
                check.compute_total_us
          : 1.0;
  check.compute_match = dropped > 0 || rel <= 0.05;
  return check;
}

/// One cell of the NUMA placement sweep: the same workload served closed-loop
/// under one placement mode. Placement moves memory and threads, never
/// values, so every cell must reproduce the kOff baseline bit-for-bit.
struct NumaCell {
  std::string mode;
  double rps = 0.0;
  double rows_per_call = 0.0;  ///< deterministic: pure function of packing
  double arena_reuse = 0.0;
  std::size_t arena_bytes = 0;
  std::uint64_t cross_node_rows = 0;
  bool verified = false;  ///< bit-identical to the kOff baseline cell

  common::Json to_json() const {
    common::Json::Object entry;
    entry["mode"] = mode;
    entry["rps"] = rps;
    entry["rows_per_call"] = rows_per_call;
    entry["arena_reuse_ratio"] = arena_reuse;
    entry["arena_bytes"] = arena_bytes;
    entry["cross_node_rows"] = static_cast<std::size_t>(cross_node_rows);
    entry["verified"] = verified;
    return common::Json(entry);
  }
};

/// Minimum closed-loop wall time over `runs` repetitions (noise floor for the
/// tracing-overhead gate). Reuses `plan` so calibration isn't re-run.
double min_closed_loop_wall_us(serve::ServerConfig config,
                               const std::vector<serve::Request>& workload,
                               const core::SkipPlan& plan, int runs) {
  config.paced = false;
  config.keep_hidden = false;
  config.calibrate = false;
  config.preset_plan = plan;
  config.stats_interval_ms = 0;
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    serve::Server server(config);
    const double wall = server.run(workload).metrics.wall_us;
    best = r == 0 ? wall : std::min(best, wall);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("serving throughput/latency under synthetic traffic");
  cli.add_flag("model", "tiny", model::surrogate_names_help());
  cli.add_flag("width", "0", "surrogate embedding width (0 = model default)");
  cli.add_flag("norm", "haan", core::norm_provider_help());
  cli.add_flag("workers", "4", "worker threads");
  cli.add_flag("requests", "1000", "requests to serve");
  cli.add_flag("scenario", "steady",
               "steady | bursty | ramp | diurnal | overload");
  cli.add_flag("rate", "2000", "mean Poisson arrival rate, req/s");
  cli.add_flag("burst-factor", "4", "bursty peak/trough factor");
  cli.add_flag("overload-factor", "4",
               "overload scenario: spike rate multiplier over the middle of "
               "the stream");
  cli.add_flag("length", "uniform", "fixed | uniform | bimodal prompt lengths");
  cli.add_flag("min-prompt", "8", "min prompt tokens");
  cli.add_flag("max-prompt", "32", "max prompt tokens");
  cli.add_flag("max-batch", "8", "scheduler max batch size");
  cli.add_flag("max-wait-us", "1000", "scheduler max batching wait (us)");
  cli.add_flag("queue-cap", "128", "request queue capacity");
  cli.add_flag("policy", "auto",
               "batch formation order: auto | fifo | binned | edf (auto "
               "resolves HAAN_SCHED_POLICY, default fifo)");
  cli.add_flag("bin-width", "16", "prompt-length bin width (binned/edf)");
  cli.add_flag("max-rows", "0",
               "row budget per batch (sum of prompt rows; 0 = unlimited)");
  cli.add_flag("aging-us", "0",
               "EDF anti-starvation: +1 effective priority per this many "
               "microseconds waited (0 = off)");
  cli.add_flag("overload", "none",
               "admission control under overload: none | shed | degrade | "
               "both (only deadline-bearing requests are ever shed/degraded)");
  cli.add_flag("shed-slack-us", "0",
               "shed when remaining deadline slack drops below this (us)");
  cli.add_flag("degrade-slack-us", "0",
               "degrade to --degrade-norm when slack drops below this (us)");
  cli.add_flag("degrade-norm", "haan-full",
               "provider for degraded requests (the cheap lane)");
  cli.add_flag("deadline-us", "0",
               "flat per-request latency budget (0 = no deadlines)");
  cli.add_flag("priority-levels", "1", "scheduling classes in the workload");
  cli.add_flag("tenants", "1", "workload tenants (uniform mix)");
  cli.add_flag("tenant-rate", "0",
               "per-tenant arrival-rate cap, req/s (0 = uncapped)");
  cli.add_flag("max-p99-us", "0",
               "fail unless the run's total p99 latency is <= this (us; 0 "
               "disables)");
  cli.add_flag("policy-sweep", "false",
               "sweep fifo | binned | edf paced at equal offered load on a "
               "ragged bimodal mix (+ an EDF overload-shedding cell), every "
               "cell verified bit-for-bit against the reference oracle");
  cli.add_flag("load-factor", "0.8",
               "policy sweep offered load as a fraction of the calibrated "
               "closed-loop FIFO capacity");
  cli.add_flag("min-occupancy-gain", "0",
               "fail unless the best binned/edf pack occupancy reaches this "
               "multiple of FIFO's at equal offered load (0 disables; "
               "implies --policy-sweep)");
  cli.add_flag("max-p99-ratio", "0",
               "fail unless the best binned/edf HIGH-PRIORITY-class p99 stays "
               "within this multiple of FIFO's at equal offered load (0 "
               "disables; implies --policy-sweep)");
  cli.add_flag("overload-max-p99-us", "0",
               "fail unless the overload cell's HIGH-priority p99 is <= this "
               "(us; 0 disables)");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_flag("paced", "true", "honor Poisson arrival times (open-loop)");
  cli.add_flag("calibrate", "true", "calibrate a skip plan at startup");
  cli.add_flag("mega-batch", "true",
               "pack whole scheduler batches into one cross-request forward");
  cli.add_flag("mode", "auto",
               "execution model: auto | mega-batch | per-request | chunked "
               "(auto resolves by decode demand, HAAN_PREFILL_CHUNK and "
               "--mega-batch)");
  cli.add_flag("prefill-chunk", "0",
               "prompt rows per chunked prefill step (0 = whole remainder)");
  cli.add_flag("decode", "none",
               "per-request decode budget: none | fixed | geometric "
               "(forces chunked execution under --mode=auto)");
  cli.add_flag("decode-tokens", "8", "fixed decode length / geometric mean");
  cli.add_flag("max-decode", "64", "cap on sampled decode lengths");
  cli.add_flag("decode-sweep", "false",
               "sweep decode budget x prefill chunk closed-loop: TTFT p50/p99, "
               "inter-token p99, prefill:decode rows; every cell verified "
               "bit-for-bit against the reference oracle (gates the exit "
               "code)");
  cli.add_flag("norm-threads", "0",
               "row-partition threads per worker (0 = auto, 1 = serial)");
  cli.add_flag("numa", "",
               "memory/thread placement: off | auto | interleave (empty = "
               "defer to HAAN_NUMA, default auto)");
  cli.add_flag("numa-sweep", "false",
               "replay the workload closed-loop under every placement mode in "
               "one process (off, auto, + interleave on multi-node hosts): "
               "bit-identity and deterministic rows-per-call across modes "
               "gate the exit code");
  cli.add_flag("min-arena-reuse", "0.95",
               "with --numa-sweep, fail unless the arena reuse ratio under "
               "auto placement reaches this after warmup (0 disables)");
  cli.add_flag("min-local-vs-interleave", "0.95",
               "with --numa-sweep on multi-node hosts, fail unless node-local "
               "(auto) throughput reaches this fraction of interleaved "
               "throughput (0 disables)");
  cli.add_flag("verify", "true",
               "compare against a single-threaded reference, bit-for-bit");
  cli.add_flag("compare", "false",
               "sweep mega-batch vs per-request over batch x length x workers");
  cli.add_flag("compare-requests", "240", "requests per comparison cell");
  cli.add_flag("min-mega-speedup", "0",
               "fail unless the geomean batch>=8 wall-clock mega-batch speedup "
               "reaches this (e.g. 1.05; 0 disables; needs spare cores for the "
               "row/span pools; implies --compare)");
  cli.add_flag("min-pack-amortization", "0",
               "fail unless the geomean batch>=8 rows-per-batched-norm-call "
               "ratio (mega / per-request) reaches this (e.g. 4; 0 disables; "
               "deterministic on any machine; implies --compare)");
  cli.add_flag("trace-out", "",
               "trace the serve run and export Chrome/Perfetto JSON to this "
               "path, self-checking span balance, per-request flow links and "
               "forward-span wall time vs packed compute (5%)");
  cli.add_flag("stats-interval", "0",
               "emit a live metrics snapshot (log line, component \"stats\") "
               "every N ms while the run is in flight (0 disables)");
  cli.add_flag("stats-json", "",
               "append one JSON object per snapshot to this path");
  cli.add_flag("max-trace-overhead", "0",
               "fail if the closed-loop wall-clock of a tracing-enabled run "
               "exceeds a tracing-disabled run by more than this ratio "
               "(e.g. 1.10 = 10%; 0 disables)");
  cli.add_flag("autotune-cache", "",
               "kernel autotune decision cache path (overrides "
               "HAAN_AUTOTUNE_CACHE)");
  cli.add_flag("json", "", "write the report as JSON to this path");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  if (!cli.get("autotune-cache").empty()) {
    kernels::set_autotune_cache_path(cli.get("autotune-cache"));
  }

  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  serve::ServerConfig config;
  const auto model_config = model::surrogate_by_name(cli.get("model"), width);
  if (!model_config) {
    std::fprintf(stderr, "unknown --model '%s' (expected %s)\n",
                 cli.get("model").c_str(), model::surrogate_names_help().c_str());
    return 1;
  }
  config.model = *model_config;
  config.norm = cli.get("norm");
  if (!core::is_norm_provider_name(config.norm)) {
    std::fprintf(stderr, "unknown --norm '%s' (expected %s)\n",
                 config.norm.c_str(), core::norm_provider_help().c_str());
    return 1;
  }
  config.workers = static_cast<std::size_t>(cli.get_int("workers"));
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-cap"));
  config.scheduler.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  config.scheduler.max_wait =
      std::chrono::microseconds(cli.get_int("max-wait-us"));
  const auto sched_policy = serve::try_policy_from_string(cli.get("policy"));
  if (!sched_policy) {
    std::fprintf(stderr,
                 "unknown --policy '%s' (expected auto | fifo | binned | "
                 "edf)\n",
                 cli.get("policy").c_str());
    return 1;
  }
  config.scheduler.policy.policy = *sched_policy;
  config.scheduler.policy.bin_width =
      static_cast<std::size_t>(cli.get_int("bin-width"));
  config.scheduler.max_rows = static_cast<std::size_t>(cli.get_int("max-rows"));
  config.scheduler.policy.aging_us = cli.get_double("aging-us");
  const std::string overload_name = cli.get("overload");
  if (overload_name != "none" && overload_name != "shed" &&
      overload_name != "degrade" && overload_name != "both") {
    std::fprintf(stderr,
                 "unknown --overload '%s' (expected none | shed | degrade | "
                 "both)\n",
                 overload_name.c_str());
    return 1;
  }
  config.scheduler.policy.allow_shed =
      overload_name == "shed" || overload_name == "both";
  config.scheduler.policy.allow_degrade =
      overload_name == "degrade" || overload_name == "both";
  config.scheduler.policy.shed_slack_us = cli.get_double("shed-slack-us");
  config.scheduler.policy.degrade_slack_us = cli.get_double("degrade-slack-us");
  config.degrade_norm = cli.get("degrade-norm");
  if (!core::is_norm_provider_name(config.degrade_norm)) {
    std::fprintf(stderr, "unknown --degrade-norm '%s' (expected %s)\n",
                 config.degrade_norm.c_str(),
                 core::norm_provider_help().c_str());
    return 1;
  }
  config.paced = cli.get_bool("paced");
  config.calibrate = cli.get_bool("calibrate");
  config.mega_batch = cli.get_bool("mega-batch");
  const std::string mode_name = cli.get("mode");
  if (mode_name == "auto") {
    config.mode = serve::ExecMode::kAuto;
  } else if (mode_name == "mega-batch") {
    config.mode = serve::ExecMode::kMegaBatch;
  } else if (mode_name == "per-request") {
    config.mode = serve::ExecMode::kPerRequest;
  } else if (mode_name == "chunked") {
    config.mode = serve::ExecMode::kChunked;
  } else {
    std::fprintf(stderr,
                 "unknown --mode '%s' (expected auto | mega-batch | "
                 "per-request | chunked)\n",
                 mode_name.c_str());
    return 1;
  }
  config.prefill_chunk =
      static_cast<std::size_t>(cli.get_int("prefill-chunk"));
  config.norm_threads = static_cast<std::size_t>(cli.get_int("norm-threads"));
  config.numa = cli.get("numa");
  if (!config.numa.empty() && !mem::parse_numa_mode(config.numa)) {
    std::fprintf(stderr,
                 "unknown --numa '%s' (expected off | auto | interleave)\n",
                 config.numa.c_str());
    return 1;
  }
  config.stats_interval_ms =
      static_cast<std::size_t>(cli.get_int("stats-interval"));
  config.stats_json_path = cli.get("stats-json");
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap =
      config.model.norm_layer_count() > 16 ? 8 : 4;

  const auto scenario = serve::try_scenario_from_string(cli.get("scenario"));
  if (!scenario) {
    std::fprintf(stderr,
                 "unknown --scenario '%s' (expected steady | bursty | ramp | "
                 "diurnal | overload)\n",
                 cli.get("scenario").c_str());
    return 1;
  }
  const auto length_model = serve::try_length_model_from_string(cli.get("length"));
  if (!length_model) {
    std::fprintf(stderr, "unknown --length '%s' (expected fixed | uniform | bimodal)\n",
                 cli.get("length").c_str());
    return 1;
  }
  const auto decode_model = serve::try_decode_model_from_string(cli.get("decode"));
  if (!decode_model) {
    std::fprintf(stderr,
                 "unknown --decode '%s' (expected none | fixed | geometric)\n",
                 cli.get("decode").c_str());
    return 1;
  }

  serve::WorkloadConfig workload_config;
  workload_config.n_requests = static_cast<std::size_t>(cli.get_int("requests"));
  workload_config.rate_rps = cli.get_double("rate");
  workload_config.scenario = *scenario;
  workload_config.burst_factor = cli.get_double("burst-factor");
  workload_config.overload_factor = cli.get_double("overload-factor");
  workload_config.length_model = *length_model;
  workload_config.min_prompt = static_cast<std::size_t>(cli.get_int("min-prompt"));
  workload_config.max_prompt = static_cast<std::size_t>(cli.get_int("max-prompt"));
  workload_config.vocab_size = config.model.vocab_size;
  workload_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  workload_config.decode_model = *decode_model;
  workload_config.decode_tokens =
      static_cast<std::size_t>(cli.get_int("decode-tokens"));
  workload_config.max_decode =
      static_cast<std::size_t>(cli.get_int("max-decode"));
  workload_config.priority_levels =
      static_cast<std::size_t>(cli.get_int("priority-levels"));
  workload_config.tenants = static_cast<std::size_t>(cli.get_int("tenants"));
  workload_config.tenant_rate_rps = cli.get_double("tenant-rate");
  workload_config.deadline_us = cli.get_double("deadline-us");

  std::printf(
      "=== serve_throughput — %s, norm=%s, %zu workers, %s traffic, "
      "decode=%s, %s kernels ===\n",
      config.model.name.c_str(), config.norm.c_str(), config.workers,
      serve::to_string(workload_config.scenario).c_str(),
      serve::to_string(workload_config.decode_model).c_str(),
      kernels::active_name());

  serve::Server server(config);
  if (config.norm != "exact") {
    std::printf("skip plan : %s\n", server.plan().to_string().c_str());
  }
  std::printf("topology  : %s, numa=%s%s\n", mem::topology().describe().c_str(),
              mem::to_string(mem::numa_mode()),
              mem::topology().discovered() ? "" : " (sysfs fallback)");

  const auto workload = serve::generate_workload(workload_config);

  // Trace only the serve run itself — calibration (already done) and the
  // verification pass below stay out of the exported trace.
  const std::string trace_out = cli.get("trace-out");
  if (!trace_out.empty()) {
    obs::tracer().set_ring_capacity(1 << 18);
    obs::tracer().reset();
    obs::tracer().set_enabled(true);
  }
  const auto report = server.run(workload);
  obs::tracer().set_enabled(false);
  std::printf("%s", report.metrics.to_string().c_str());

  bool trace_ok = true;
  TraceCheck trace_check;
  if (!trace_out.empty()) {
    const std::string trace_json = obs::tracer().export_chrome_json();
    const obs::Tracer::Stats stats = obs::tracer().stats();
    if (!common::write_file(trace_out, trace_json)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    trace_check =
        check_trace(trace_json, report, server.resolve_mode(workload),
                    stats.dropped);
    trace_ok = trace_check.ok();
    std::printf(
        "trace            : %s -> %zu events on %zu threads (%llu dropped)\n",
        trace_out.c_str(), trace_check.events, stats.threads,
        static_cast<unsigned long long>(stats.dropped));
    std::printf(
        "trace check      : %s (balanced %s, flows %s; forward spans %.1f ms "
        "vs packed compute %.1f ms; norm spans %.1f ms = %.1f%% of forward)\n",
        trace_ok ? "PASS" : "FAIL", trace_check.balanced ? "yes" : "NO",
        trace_check.flows_ok ? "yes" : "NO", trace_check.forward_span_us / 1e3,
        trace_check.compute_total_us / 1e3, trace_check.norm_span_us / 1e3,
        trace_check.forward_span_us > 0.0
            ? 100.0 * trace_check.norm_span_us / trace_check.forward_span_us
            : 0.0);
    obs::tracer().reset();
  }

  bool verified = true;
  const bool verify = cli.get_bool("verify");
  const bool has_decode =
      workload_config.decode_model != serve::DecodeModel::kNone;
  if (verify) {
    const auto reference = server.run_reference(workload);
    // Shed requests never ran a forward (checksum 0, no oracle); degraded
    // ones ran on the degrade provider, so they get their own reference,
    // built lazily on first use (same model, same preset skip plan).
    std::optional<serve::ServeReport> degrade_reference;
    std::size_t mismatches = 0, shed_skipped = 0, degraded_checked = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const serve::RequestResult& result = report.results[i];
      if (result.shed) {
        ++shed_skipped;
        continue;
      }
      const serve::ServeReport* oracle = &reference;
      if (result.degraded) {
        if (!degrade_reference) {
          serve::ServerConfig degrade_config = config;
          degrade_config.norm = config.degrade_norm;
          degrade_config.calibrate = false;
          degrade_config.preset_plan = server.plan();
          degrade_config.stats_interval_ms = 0;
          serve::Server degrade_server(degrade_config);
          degrade_reference = degrade_server.run_reference(workload);
        }
        oracle = &*degrade_reference;
        ++degraded_checked;
      }
      if (result.hidden_checksum != oracle->results[i].hidden_checksum ||
          result.generated != oracle->results[i].generated) {
        ++mismatches;
      }
    }
    // Per-row counter parity only holds for prefill-only workloads where
    // every request ran on the primary provider: the re-forward oracle feeds
    // each prompt row once per generated token (incremental execution feeds
    // every row exactly once), and shed/degraded traffic never reaches the
    // reference's provider at all.
    const bool sla_outcomes = shed_skipped > 0 || degraded_checked > 0;
    const bool counters_match =
        has_decode || sla_outcomes ||
        (report.metrics.norm.norm_calls == reference.metrics.norm.norm_calls &&
         report.metrics.norm.isd_computed ==
             reference.metrics.norm.isd_computed &&
         report.metrics.norm.isd_predicted ==
             reference.metrics.norm.isd_predicted &&
         report.metrics.norm.elements_read ==
             reference.metrics.norm.elements_read &&
         report.metrics.norm.fused_residual_norms ==
             reference.metrics.norm.fused_residual_norms);
    verified = mismatches == 0 && counters_match;
    std::printf(
        "verify           : %s (%zu/%zu hidden-state checksums + token "
        "streams match, %zu shed skipped, %zu degraded vs %s reference, "
        "counters %s)\n",
        verified ? "bit-identical to single-threaded reference" : "MISMATCH",
        report.results.size() - shed_skipped - mismatches,
        report.results.size() - shed_skipped, shed_skipped, degraded_checked,
        config.degrade_norm.c_str(),
        has_decode || sla_outcomes
            ? "n/a"
            : (counters_match ? "identical" : "DIFFER"));
  }

  // --- p99 latency gate ---------------------------------------------------
  const double max_p99_us = cli.get_double("max-p99-us");
  bool p99_ok = true;
  if (max_p99_us > 0.0) {
    p99_ok = report.metrics.total.p99_us <= max_p99_us;
    std::printf(
        "p99 gate         : %s (total p99 %.1f us, <= %.1f us required)\n",
        p99_ok ? "PASS" : "FAIL", report.metrics.total.p99_us, max_p99_us);
  }

  // --- Mega-batch vs per-request sweep -----------------------------------
  const double min_mega_speedup = cli.get_double("min-mega-speedup");
  const double min_pack_amortization = cli.get_double("min-pack-amortization");
  const bool compare = cli.get_bool("compare") || min_mega_speedup > 0.0 ||
                       min_pack_amortization > 0.0;
  std::vector<CompareCell> cells;
  bool mega_gate_ok = true;
  double speedup_geomean = 0.0;
  double amortization_geomean = 0.0;
  if (compare) {
    const std::size_t cell_requests =
        static_cast<std::size_t>(cli.get_int("compare-requests"));
    const std::size_t batch_sizes[] = {2, 8, 16};
    const std::size_t prompt_lens[] = {16, 48};
    const std::size_t worker_counts[] = {1, 4};
    std::printf(
        "\n=== mega-batch vs per-request (closed loop, %zu requests/cell) "
        "===\n", cell_requests);
    std::printf("%9s %5s %7s %12s %12s %8s %10s %10s %7s\n", "max_batch", "len",
                "workers", "mega req/s", "per-req r/s", "speedup", "rows/call",
                "(per-req)", "amort");
    double speedup_log_sum = 0.0, amortization_log_sum = 0.0;
    std::size_t gated_cells = 0;
    for (const std::size_t max_batch : batch_sizes) {
      for (const std::size_t len : prompt_lens) {
        for (const std::size_t workers : worker_counts) {
          serve::WorkloadConfig cell_workload = workload_config;
          cell_workload.n_requests = cell_requests;
          cell_workload.length_model = serve::LengthModel::kFixed;
          cell_workload.min_prompt = len;
          cell_workload.max_prompt = len;
          const auto requests = serve::generate_workload(cell_workload);

          serve::ServerConfig cell_config = config;
          cell_config.workers = workers;
          cell_config.scheduler.max_batch = max_batch;
          // Reuse the main server's calibration: the plan depends only on
          // the model and calibration knobs, which are identical across
          // every cell — no need to re-run Algorithm 1 24 times.
          cell_config.calibrate = false;
          cell_config.preset_plan = server.plan();

          CompareCell cell;
          cell.max_batch = max_batch;
          cell.prompt_len = len;
          cell.workers = workers;
          cell_config.mega_batch = true;
          const serve::ServeMetrics mega = closed_loop_metrics(cell_config, requests);
          cell_config.mega_batch = false;
          const serve::ServeMetrics per = closed_loop_metrics(cell_config, requests);
          cell.mega_rps = mega.throughput_rps;
          cell.per_request_rps = per.throughput_rps;
          cell.speedup =
              cell.per_request_rps > 0.0 ? cell.mega_rps / cell.per_request_rps : 0.0;
          cell.mega_rows_per_call = mega.rows_per_batched_call();
          cell.per_request_rows_per_call = per.rows_per_batched_call();
          cell.amortization = cell.per_request_rows_per_call > 0.0
                                  ? cell.mega_rows_per_call /
                                        cell.per_request_rows_per_call
                                  : 0.0;
          cells.push_back(cell);
          std::printf("%9zu %5zu %7zu %12.1f %12.1f %7.2fx %10.1f %10.1f %6.2fx\n",
                      max_batch, len, workers, cell.mega_rps, cell.per_request_rps,
                      cell.speedup, cell.mega_rows_per_call,
                      cell.per_request_rows_per_call, cell.amortization);
          if (max_batch >= 8 && cell.speedup > 0.0 && cell.amortization > 0.0) {
            speedup_log_sum += std::log(cell.speedup);
            amortization_log_sum += std::log(cell.amortization);
            ++gated_cells;
          }
        }
      }
    }
    if (gated_cells > 0) {
      speedup_geomean = std::exp(speedup_log_sum / gated_cells);
      amortization_geomean = std::exp(amortization_log_sum / gated_cells);
    }
    std::printf(
        "geomean at batch >= 8: speedup %.2fx, norm-call amortization %.2fx "
        "(%zu row/span threads per worker)\n",
        speedup_geomean, amortization_geomean,
        config.norm_threads == 0 ? model::RowPartitionPool::default_threads()
                                 : config.norm_threads);
    if (min_mega_speedup > 0.0) {
      const bool ok = speedup_geomean >= min_mega_speedup;
      mega_gate_ok = mega_gate_ok && ok;
      std::printf("mega speedup gate: %s (%.2fx, >= %.2fx required)\n",
                  ok ? "PASS" : "FAIL", speedup_geomean, min_mega_speedup);
    }
    if (min_pack_amortization > 0.0) {
      const bool ok = amortization_geomean >= min_pack_amortization;
      mega_gate_ok = mega_gate_ok && ok;
      std::printf("amortization gate: %s (%.2fx, >= %.2fx required)\n",
                  ok ? "PASS" : "FAIL", amortization_geomean,
                  min_pack_amortization);
    }
  }

  // --- Decode-mix sweep ---------------------------------------------------
  const bool decode_sweep = cli.get_bool("decode-sweep");
  std::vector<DecodeCell> decode_cells;
  bool decode_gate_ok = true;
  if (decode_sweep) {
    const std::size_t sweep_requests = std::min<std::size_t>(
        static_cast<std::size_t>(cli.get_int("compare-requests")), 240);
    const std::size_t decode_budgets[] = {0, 4, 16};
    const std::size_t prefill_chunks[] = {0, 4};
    serve::WorkloadConfig sweep_workload = workload_config;
    sweep_workload.n_requests = sweep_requests;

    serve::ServerConfig sweep_config = config;
    // Reuse the main server's calibration (plan depends only on model +
    // calibration knobs) and keep hidden states off — the cell verifies via
    // checksums and token streams.
    sweep_config.calibrate = false;
    sweep_config.preset_plan = server.plan();

    std::printf(
        "\n=== decode mix sweep (chunked, closed loop, %zu requests/cell) "
        "===\n", sweep_requests);
    std::printf("%7s %6s %9s %10s %10s %12s %14s %9s\n", "decode", "chunk",
                "req/s", "ttft p50", "ttft p99", "intertok p99",
                "prefill:decode", "verified");
    for (const std::size_t budget : decode_budgets) {
      for (const std::size_t chunk : prefill_chunks) {
        const DecodeCell cell =
            run_decode_cell(sweep_config, sweep_workload, budget, chunk);
        decode_cells.push_back(cell);
        decode_gate_ok = decode_gate_ok && cell.verified;
        std::printf("%7zu %6zu %9.1f %8.1fus %8.1fus %10.1fus %7zu:%-6zu %9s\n",
                    cell.decode_tokens, cell.prefill_chunk, cell.rps,
                    cell.ttft_p50_us, cell.ttft_p99_us, cell.intertoken_p99_us,
                    cell.prefill_rows, cell.decode_rows,
                    cell.verified ? "yes" : "MISMATCH");
      }
    }
    std::printf("decode gate      : %s (every cell bit-identical to the "
                "reference oracle)\n",
                decode_gate_ok ? "PASS" : "FAIL");
  }

  // --- Scheduling-policy sweep -------------------------------------------
  const double load_factor = cli.get_double("load-factor");
  const double min_occupancy_gain = cli.get_double("min-occupancy-gain");
  const double max_p99_ratio = cli.get_double("max-p99-ratio");
  const double overload_max_p99_us = cli.get_double("overload-max-p99-us");
  const bool policy_sweep = cli.get_bool("policy-sweep") ||
                            min_occupancy_gain > 0.0 || max_p99_ratio > 0.0 ||
                            overload_max_p99_us > 0.0;
  std::vector<PolicyCell> policy_cells;
  PolicyCell overload_cell;
  PolicyCell fifo_overload_cell;
  bool policy_gate_ok = true;
  double capacity_rps = 0.0, offered_rps = 0.0;
  double occupancy_gain = 0.0, p99_ratio = 0.0;
  if (policy_sweep) {
    const std::size_t sweep_requests =
        static_cast<std::size_t>(cli.get_int("compare-requests"));
    // Ragged bimodal mix under a row budget: the shape where formation order
    // matters. FIFO closes a batch at the first arrival that overflows the
    // remaining row budget (ragged-tail waste); binned/EDF anchor on the
    // oldest pending request and fill whole batches from its length bin.
    // Short and long prompts land in different bins (bin_width between them),
    // and the budget divides both lengths exactly so bin-pure batches carry
    // zero tail waste.
    serve::WorkloadConfig sweep_workload;
    sweep_workload.n_requests = sweep_requests;
    sweep_workload.length_model = serve::LengthModel::kBimodal;
    sweep_workload.min_prompt = 4;
    sweep_workload.max_prompt = 16;
    sweep_workload.long_fraction = 0.5;
    sweep_workload.priority_levels = 2;
    sweep_workload.vocab_size = config.model.vocab_size;
    sweep_workload.seed = workload_config.seed;

    serve::ServerConfig sweep_config = config;
    // One calibration for every cell (the plan depends only on the model),
    // packed whole-request execution, and a row budget both prompt lengths
    // divide exactly.
    sweep_config.calibrate = false;
    sweep_config.preset_plan = server.plan();
    sweep_config.mode = serve::ExecMode::kMegaBatch;
    sweep_config.prefill_chunk = 0;
    sweep_config.stats_interval_ms = 0;
    sweep_config.scheduler.max_batch = 16;
    sweep_config.scheduler.max_rows = 32;
    sweep_config.scheduler.policy = serve::PolicyConfig{};
    sweep_config.scheduler.policy.policy = serve::SchedPolicy::kFifo;
    sweep_config.scheduler.policy.bin_width = 16;

    // Calibrate the offered load off closed-loop FIFO capacity, then replay
    // the SAME arrivals paced at load_factor x capacity under each policy —
    // equal offered load, only the formation order differs.
    capacity_rps =
        closed_loop_metrics(sweep_config, serve::generate_workload(sweep_workload))
            .throughput_rps;
    offered_rps = load_factor * capacity_rps;
    sweep_workload.rate_rps = offered_rps > 0.0 ? offered_rps : 1.0;
    const auto sweep_requests_paced = serve::generate_workload(sweep_workload);

    // One oracle serves every cell: checksums depend only on token contents,
    // which the forked workload streams keep identical across rates and
    // scenarios of a seed.
    serve::Server sweep_server(sweep_config);
    const serve::ServeReport sweep_oracle =
        sweep_server.run_reference(sweep_requests_paced);

    std::printf(
        "\n=== scheduling-policy sweep (paced, %zu requests, offered %.1f "
        "req/s = %.2f x %.1f req/s FIFO capacity) ===\n",
        sweep_requests, offered_rps, load_factor, capacity_rps);
    std::printf("%8s %9s %10s %10s %12s %10s %6s %9s\n", "policy", "req/s",
                "p50", "p99", "high-pri p99", "occupancy", "shed", "verified");
    const serve::SchedPolicy policies[] = {serve::SchedPolicy::kFifo,
                                           serve::SchedPolicy::kBinned,
                                           serve::SchedPolicy::kEdf};
    for (const serve::SchedPolicy policy : policies) {
      serve::ServerConfig cell_config = sweep_config;
      cell_config.scheduler.policy.policy = policy;
      const PolicyCell cell =
          run_policy_cell(cell_config, sweep_requests_paced, sweep_oracle);
      policy_cells.push_back(cell);
      policy_gate_ok = policy_gate_ok && cell.verified;
      std::printf("%8s %9.1f %8.1fus %8.1fus %10.1fus %10.3f %6zu %9s\n",
                  cell.policy.c_str(), cell.rps, cell.p50_us, cell.p99_us,
                  cell.high_priority_p99_us(), cell.occupancy, cell.shed,
                  cell.verified ? "yes" : "MISMATCH");
    }
    const PolicyCell& fifo = policy_cells[0];
    const PolicyCell& binned = policy_cells[1];
    const PolicyCell& edf = policy_cells[2];
    occupancy_gain =
        fifo.occupancy > 0.0
            ? std::max(binned.occupancy, edf.occupancy) / fifo.occupancy
            : 0.0;
    std::printf("binned/edf vs fifo: occupancy gain %.3fx\n", occupancy_gain);
    if (min_occupancy_gain > 0.0) {
      const bool ok = occupancy_gain >= min_occupancy_gain;
      policy_gate_ok = policy_gate_ok && ok;
      std::printf("occupancy gate   : %s (%.3fx, >= %.3fx required)\n",
                  ok ? "PASS" : "FAIL", occupancy_gain, min_occupancy_gain);
    }

    // Saturating-overload pair: the spike arrives at overload_factor x the
    // calibrated capacity and every request carries a deadline. FIFO (no
    // admission control) rides the full backlog; EDF + shedding must keep
    // the high-priority class served (low-priority traffic absorbs the
    // shedding). Both see IDENTICAL arrivals, so the high-priority p99 ratio
    // is the SLA scheduler's latency cut at equal offered load — and unlike
    // the trickle-load cells above it is structural (the spike backlog is
    // deep by construction), so it is stable enough to gate on.
    serve::WorkloadConfig overload_workload = sweep_workload;
    overload_workload.scenario = serve::Scenario::kOverload;
    overload_workload.overload_factor = cli.get_double("overload-factor");
    overload_workload.rate_rps = capacity_rps > 0.0 ? capacity_rps : 1.0;
    const double sweep_deadline_us = cli.get_double("deadline-us") > 0.0
                                         ? cli.get_double("deadline-us")
                                         : 20000.0;
    overload_workload.deadline_us = sweep_deadline_us;
    const auto overload_requests = serve::generate_workload(overload_workload);

    serve::ServerConfig fifo_overload_config = sweep_config;
    fifo_overload_config.scheduler.policy.policy = serve::SchedPolicy::kFifo;
    fifo_overload_cell =
        run_policy_cell(fifo_overload_config, overload_requests, sweep_oracle);
    const PolicyCell& fifo_overload = fifo_overload_cell;
    policy_gate_ok = policy_gate_ok && fifo_overload.verified;

    serve::ServerConfig overload_config = sweep_config;
    overload_config.scheduler.policy.policy = serve::SchedPolicy::kEdf;
    overload_config.scheduler.policy.allow_shed = true;
    overload_config.scheduler.policy.shed_slack_us = 0.0;
    overload_cell =
        run_policy_cell(overload_config, overload_requests, sweep_oracle);

    const auto high = overload_cell.metrics.per_priority.find(1);
    const auto low = overload_cell.metrics.per_priority.find(0);
    const std::size_t shed_high =
        high != overload_cell.metrics.per_priority.end() ? high->second.shed : 0;
    const std::size_t shed_low =
        low != overload_cell.metrics.per_priority.end() ? low->second.shed : 0;
    const double high_p99_us = overload_cell.high_priority_p99_us();
    p99_ratio = fifo_overload.high_priority_p99_us() > 0.0
                    ? high_p99_us / fifo_overload.high_priority_p99_us()
                    : 0.0;
    // Structural gates: the spike must actually force shedding, EDF must not
    // shed MORE high-priority than low-priority traffic, and every served
    // result must still match the oracle bit-for-bit.
    const bool overload_ok =
        overload_cell.verified && overload_cell.shed > 0 && shed_high <= shed_low;
    policy_gate_ok = policy_gate_ok && overload_ok;
    std::printf(
        "overload pair    : %s (spike %.1fx over %.1f req/s, deadline %.0fus; "
        "fifo high-pri p99 %.1fus -> edf+shed %.1fus, ratio %.3fx; %zu shed "
        "[high %zu / low %zu], %zu served, %s)\n",
        overload_ok ? "PASS" : "FAIL", overload_workload.overload_factor,
        overload_workload.rate_rps, sweep_deadline_us,
        fifo_overload.high_priority_p99_us(), high_p99_us, p99_ratio,
        overload_cell.shed, shed_high, shed_low,
        overload_cell.metrics.completed,
        overload_cell.verified && fifo_overload.verified ? "verified"
                                                         : "MISMATCH");
    if (max_p99_ratio > 0.0) {
      const bool ok = p99_ratio > 0.0 && p99_ratio <= max_p99_ratio;
      policy_gate_ok = policy_gate_ok && ok;
      std::printf(
          "p99-ratio gate   : %s (edf+shed / fifo high-priority p99 %.3fx, "
          "<= %.3fx required)\n",
          ok ? "PASS" : "FAIL", p99_ratio, max_p99_ratio);
    }
    if (overload_max_p99_us > 0.0) {
      const bool ok = high_p99_us > 0.0 && high_p99_us <= overload_max_p99_us;
      policy_gate_ok = policy_gate_ok && ok;
      std::printf(
          "overload p99 gate: %s (high-priority p99 %.1f us, <= %.1f us "
          "required)\n",
          ok ? "PASS" : "FAIL", high_p99_us, overload_max_p99_us);
    }
  }

  // --- NUMA placement sweep -----------------------------------------------
  const bool numa_sweep = cli.get_bool("numa-sweep");
  const double min_arena_reuse = cli.get_double("min-arena-reuse");
  const double min_local_vs_interleave = cli.get_double("min-local-vs-interleave");
  std::vector<NumaCell> numa_cells;
  bool numa_gate_ok = true;
  if (numa_sweep) {
    const mem::Topology& topo = mem::topology();
    std::vector<mem::NumaMode> modes = {mem::NumaMode::kOff,
                                        mem::NumaMode::kAuto};
    if (topo.nodes() > 1) modes.push_back(mem::NumaMode::kInterleave);

    serve::ServerConfig sweep_config = config;
    sweep_config.numa.clear();  // the per-cell override below picks the mode
    sweep_config.calibrate = false;
    sweep_config.preset_plan = server.plan();
    sweep_config.stats_interval_ms = 0;
    sweep_config.paced = false;
    sweep_config.keep_hidden = false;

    std::printf(
        "\n=== NUMA placement sweep (closed loop, %zu requests, %s) ===\n",
        workload.size(), topo.describe().c_str());
    std::printf("%10s %9s %10s %7s %12s %11s %9s\n", "mode", "req/s",
                "rows/call", "reuse", "arena bytes", "xnode rows", "verified");
    std::vector<serve::ServeReport> numa_reports;
    for (const mem::NumaMode mode : modes) {
      mem::set_numa_mode_override(mode);
      serve::Server sweep_server(sweep_config);
      numa_reports.push_back(sweep_server.run(workload));
      const serve::ServeReport& rep = numa_reports.back();

      NumaCell cell;
      cell.mode = mem::to_string(mode);
      cell.rps = rep.metrics.throughput_rps;
      cell.rows_per_call = rep.metrics.rows_per_batched_call();
      cell.arena_reuse = rep.metrics.mem.arena_reuse_ratio();
      cell.arena_bytes = rep.metrics.mem.arena_bytes;
      cell.cross_node_rows = rep.metrics.mem.cross_node_rows;
      // Placement moves memory and threads, never values: every mode must
      // reproduce the kOff baseline bit-for-bit. Shed/degraded requests are
      // timing-dependent lanes with no stable checksum, so skip indices where
      // either run took one.
      const serve::ServeReport& base = numa_reports.front();
      cell.verified = rep.results.size() == base.results.size();
      for (std::size_t i = 0; cell.verified && i < rep.results.size(); ++i) {
        const serve::RequestResult& got = rep.results[i];
        const serve::RequestResult& want = base.results[i];
        if (got.shed || got.degraded || want.shed || want.degraded) continue;
        cell.verified = got.hidden_checksum == want.hidden_checksum &&
                        got.generated == want.generated;
      }
      numa_gate_ok = numa_gate_ok && cell.verified;
      numa_cells.push_back(cell);
      std::printf("%10s %9.1f %10.1f %7.3f %12zu %11zu %9s\n",
                  cell.mode.c_str(), cell.rps, cell.rows_per_call,
                  cell.arena_reuse, cell.arena_bytes,
                  static_cast<std::size_t>(cell.cross_node_rows),
                  cell.verified ? "yes" : "MISMATCH");
    }
    // Restore the mode the rest of the bench was launched under.
    if (!config.numa.empty()) {
      mem::set_numa_mode_override(*mem::parse_numa_mode(config.numa));
    } else {
      mem::clear_numa_mode_override();
    }

    // Packing is a pure function of the workload, so the mean rows per
    // batched norm call must not move when placement changes.
    const double base_rows = numa_cells.front().rows_per_call;
    bool rows_ok = true;
    for (const NumaCell& cell : numa_cells) {
      rows_ok = rows_ok && cell.rows_per_call == base_rows;
    }
    numa_gate_ok = numa_gate_ok && rows_ok;
    std::printf("rows/call gate   : %s (deterministic packing across modes)\n",
                rows_ok ? "PASS" : "FAIL");
    if (min_arena_reuse > 0.0) {
      const NumaCell& auto_cell = numa_cells[1];
      const bool ok = auto_cell.arena_reuse >= min_arena_reuse;
      numa_gate_ok = numa_gate_ok && ok;
      std::printf(
          "arena reuse gate : %s (auto reuse %.3f, >= %.3f required)\n",
          ok ? "PASS" : "FAIL", auto_cell.arena_reuse, min_arena_reuse);
    }
    if (topo.nodes() > 1 && min_local_vs_interleave > 0.0) {
      const NumaCell& auto_cell = numa_cells[1];
      const NumaCell& interleave_cell = numa_cells[2];
      const bool ok = interleave_cell.rps <= 0.0 ||
                      auto_cell.rps >=
                          interleave_cell.rps * min_local_vs_interleave;
      numa_gate_ok = numa_gate_ok && ok;
      std::printf(
          "node-local gate  : %s (auto %.1f req/s vs interleave %.1f req/s, "
          ">= %.2fx required)\n",
          ok ? "PASS" : "FAIL", auto_cell.rps, interleave_cell.rps,
          min_local_vs_interleave);
    }
  }

  // --- Tracing overhead gate ---------------------------------------------
  const double max_trace_overhead = cli.get_double("max-trace-overhead");
  bool overhead_ok = true;
  double overhead_ratio = 0.0;
  double wall_disabled_us = 0.0, wall_enabled_us = 0.0;
  if (max_trace_overhead > 0.0) {
    // Closed-loop wall clock, best of 2 each, disabled first as warm-up so
    // both sides run on warm caches. Enabled runs record into real rings.
    obs::tracer().set_ring_capacity(1 << 18);
    obs::tracer().reset();
    obs::tracer().set_enabled(false);
    wall_disabled_us = min_closed_loop_wall_us(config, workload, server.plan(), 2);
    obs::tracer().set_enabled(true);
    wall_enabled_us = min_closed_loop_wall_us(config, workload, server.plan(), 2);
    obs::tracer().set_enabled(false);
    obs::tracer().reset();
    overhead_ratio =
        wall_disabled_us > 0.0 ? wall_enabled_us / wall_disabled_us : 0.0;
    overhead_ok = overhead_ratio <= max_trace_overhead;
    std::printf(
        "trace overhead   : %s (enabled %.1f ms / disabled %.1f ms = %.3fx, "
        "<= %.2fx required)\n",
        overhead_ok ? "PASS" : "FAIL", wall_enabled_us / 1e3,
        wall_disabled_us / 1e3, overhead_ratio, max_trace_overhead);
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    common::Json::Object doc;
    doc["bench"] = "serve_throughput";
    common::Json::Object cfg;
    cfg["model"] = config.model.name;
    cfg["d_model"] = config.model.d_model;
    cfg["norm"] = config.norm;
    cfg["workers"] = config.workers;
    cfg["requests"] = workload_config.n_requests;
    cfg["scenario"] = serve::to_string(workload_config.scenario);
    cfg["rate_rps"] = workload_config.rate_rps;
    cfg["length_model"] = serve::to_string(workload_config.length_model);
    cfg["min_prompt"] = workload_config.min_prompt;
    cfg["max_prompt"] = workload_config.max_prompt;
    cfg["max_batch"] = config.scheduler.max_batch;
    cfg["max_wait_us"] =
        static_cast<std::size_t>(config.scheduler.max_wait.count());
    cfg["max_rows"] = config.scheduler.max_rows;
    cfg["policy"] = serve::to_string(
        serve::resolve_policy(config.scheduler.policy.policy));
    cfg["bin_width"] = config.scheduler.policy.bin_width;
    cfg["aging_us"] = config.scheduler.policy.aging_us;
    cfg["overload"] = overload_name;
    cfg["shed_slack_us"] = config.scheduler.policy.shed_slack_us;
    cfg["degrade_slack_us"] = config.scheduler.policy.degrade_slack_us;
    cfg["degrade_norm"] = config.degrade_norm;
    cfg["deadline_us"] = workload_config.deadline_us;
    cfg["priority_levels"] = workload_config.priority_levels;
    cfg["tenants"] = workload_config.tenants;
    cfg["tenant_rate_rps"] = workload_config.tenant_rate_rps;
    cfg["queue_capacity"] = config.queue_capacity;
    cfg["paced"] = config.paced;
    cfg["mega_batch"] = config.mega_batch;
    cfg["mode"] = mode_name;
    cfg["resolved_mode"] = serve::to_string(server.resolve_mode(workload));
    cfg["prefill_chunk"] = config.prefill_chunk;
    cfg["decode_model"] = serve::to_string(workload_config.decode_model);
    cfg["decode_tokens"] = workload_config.decode_tokens;
    cfg["max_decode"] = workload_config.max_decode;
    cfg["norm_threads"] = config.norm_threads;
    cfg["numa"] = config.numa;
    cfg["numa_mode"] = mem::to_string(mem::numa_mode());
    cfg["numa_nodes"] = mem::topology().nodes();
    cfg["topology"] = mem::topology().describe();
    cfg["seed"] = static_cast<std::size_t>(workload_config.seed);
    cfg["skip_plan"] = server.plan().to_string();
    cfg["kernel"] = kernels::active_name();
    doc["config"] = cfg;
    doc["metrics"] = report.metrics.to_json();
    common::Json::Object ver;
    ver["checked"] = verify;
    ver["bit_identical"] = verified;
    doc["verify"] = ver;
    if (max_p99_us > 0.0) {
      common::Json::Object gate;
      gate["p99_us"] = report.metrics.total.p99_us;
      gate["max_p99_us"] = max_p99_us;
      gate["ok"] = p99_ok;
      doc["p99_gate"] = gate;
    }
    if (policy_sweep) {
      common::Json::Array sweep;
      for (const PolicyCell& cell : policy_cells) sweep.push_back(cell.to_json());
      common::Json::Object pol;
      pol["cells"] = sweep;
      pol["capacity_rps"] = capacity_rps;
      pol["offered_rps"] = offered_rps;
      pol["load_factor"] = load_factor;
      pol["occupancy_gain"] = occupancy_gain;
      pol["p99_ratio"] = p99_ratio;
      pol["min_occupancy_gain"] = min_occupancy_gain;
      pol["max_p99_ratio"] = max_p99_ratio;
      common::Json::Object over = overload_cell.to_json().as_object();
      over["completed"] = overload_cell.metrics.completed;
      common::Json::Object classes;
      for (const auto& [priority, slice] : overload_cell.metrics.per_priority) {
        classes[std::to_string(priority)] = slice.to_json();
      }
      over["per_priority"] = classes;
      over["fifo_baseline"] = fifo_overload_cell.to_json();
      over["max_high_priority_p99_us"] = overload_max_p99_us;
      pol["overload"] = over;
      pol["gate_ok"] = policy_gate_ok;
      doc["policy_sweep"] = pol;
    }
    if (compare) {
      common::Json::Array sweep;
      for (const CompareCell& cell : cells) {
        common::Json::Object entry;
        entry["max_batch"] = cell.max_batch;
        entry["prompt_len"] = cell.prompt_len;
        entry["workers"] = cell.workers;
        entry["mega_rps"] = cell.mega_rps;
        entry["per_request_rps"] = cell.per_request_rps;
        entry["speedup"] = cell.speedup;
        entry["mega_rows_per_call"] = cell.mega_rows_per_call;
        entry["per_request_rows_per_call"] = cell.per_request_rows_per_call;
        entry["amortization"] = cell.amortization;
        sweep.push_back(entry);
      }
      common::Json::Object cmp;
      cmp["cells"] = sweep;
      cmp["geomean_speedup_batch_ge_8"] = speedup_geomean;
      cmp["geomean_amortization_batch_ge_8"] = amortization_geomean;
      cmp["min_mega_speedup"] = min_mega_speedup;
      cmp["min_pack_amortization"] = min_pack_amortization;
      cmp["gate_ok"] = mega_gate_ok;
      doc["mega_batch_compare"] = cmp;
    }
    if (decode_sweep) {
      common::Json::Array sweep;
      for (const DecodeCell& cell : decode_cells) {
        common::Json::Object entry;
        entry["decode_tokens"] = cell.decode_tokens;
        entry["prefill_chunk"] = cell.prefill_chunk;
        entry["rps"] = cell.rps;
        entry["ttft_p50_us"] = cell.ttft_p50_us;
        entry["ttft_p99_us"] = cell.ttft_p99_us;
        entry["intertoken_p99_us"] = cell.intertoken_p99_us;
        entry["prefill_rows"] = cell.prefill_rows;
        entry["decode_rows"] = cell.decode_rows;
        entry["verified"] = cell.verified;
        sweep.push_back(entry);
      }
      common::Json::Object mix;
      mix["cells"] = sweep;
      mix["gate_ok"] = decode_gate_ok;
      doc["decode_sweep"] = mix;
    }
    if (numa_sweep) {
      common::Json::Array sweep;
      for (const NumaCell& cell : numa_cells) sweep.push_back(cell.to_json());
      common::Json::Object numa;
      numa["cells"] = sweep;
      numa["topology"] = mem::topology().describe();
      numa["nodes"] = mem::topology().nodes();
      numa["min_arena_reuse"] = min_arena_reuse;
      numa["min_local_vs_interleave"] = min_local_vs_interleave;
      numa["gate_ok"] = numa_gate_ok;
      doc["numa_sweep"] = numa;
    }
    if (!trace_out.empty()) {
      common::Json::Object trace;
      trace["path"] = trace_out;
      trace["events"] = trace_check.events;
      trace["dropped"] = static_cast<std::size_t>(trace_check.dropped);
      trace["balanced"] = trace_check.balanced;
      trace["flows_ok"] = trace_check.flows_ok;
      trace["forward_span_us"] = trace_check.forward_span_us;
      trace["compute_total_us"] = trace_check.compute_total_us;
      trace["norm_span_us"] = trace_check.norm_span_us;
      trace["ok"] = trace_ok;
      doc["trace"] = trace;
    }
    if (max_trace_overhead > 0.0) {
      common::Json::Object overhead;
      overhead["wall_disabled_us"] = wall_disabled_us;
      overhead["wall_enabled_us"] = wall_enabled_us;
      overhead["ratio"] = overhead_ratio;
      overhead["max_ratio"] = max_trace_overhead;
      overhead["ok"] = overhead_ok;
      doc["trace_overhead"] = overhead;
    }
    if (!common::write_file(json_path, common::Json(doc).dump_pretty() + "\n")) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json report      : %s\n", json_path.c_str());
  }
  return verified && mega_gate_ok && decode_gate_ok && policy_gate_ok &&
                 numa_gate_ok && p99_ok && trace_ok && overhead_ok
             ? 0
             : 1;
}
