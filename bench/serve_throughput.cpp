// Serving throughput/latency bench: drives the haan::serve runtime with a
// synthetic workload and reports p50/p95/p99 latency, throughput, batch and
// queue statistics, and aggregated norm counters. With --verify=true (the
// default) the multi-worker run is checked bit-for-bit against a
// single-threaded reference execution of the same workload.
//
// With --compare=true it additionally sweeps mega-batch (packed cross-request
// forwards + row-partitioned norms) against the per-request execution model
// over batch size × prompt length × workers, closed-loop, and can gate on the
// batch >= 8 speedup (--min-mega-speedup).
//
//   ./build/bench/serve_throughput --norm=haan --workers=4 --scenario=steady
//       --seed=1 --compare=true --json=bench/serve_baseline.json
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json_lite.hpp"
#include "core/provider_factory.hpp"
#include "kernels/kernels.hpp"
#include "serve/server.hpp"

using namespace haan;

namespace {

/// One cell of the mega-batch vs per-request sweep.
struct CompareCell {
  std::size_t max_batch = 0;
  std::size_t prompt_len = 0;
  std::size_t workers = 0;
  double mega_rps = 0.0;
  double per_request_rps = 0.0;
  double speedup = 0.0;  ///< wall-clock; needs spare cores to exceed 1
  /// Mean rows per batched norm-provider call in each mode — the dispatch
  /// amortization the mega-batch seam exists for. Deterministic (a pure
  /// function of packing), unlike the wall-clock speedup.
  double mega_rows_per_call = 0.0;
  double per_request_rows_per_call = 0.0;
  double amortization = 0.0;  ///< mega_rows_per_call / per_request_rows_per_call
};

/// Closed-loop metrics of one server configuration over `workload`.
serve::ServeMetrics closed_loop_metrics(serve::ServerConfig config,
                                        const std::vector<serve::Request>& workload) {
  config.paced = false;
  config.keep_hidden = false;
  serve::Server server(config);
  return server.run(workload).metrics;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("serving throughput/latency under synthetic traffic");
  cli.add_flag("model", "tiny", model::surrogate_names_help());
  cli.add_flag("width", "0", "surrogate embedding width (0 = model default)");
  cli.add_flag("norm", "haan", core::norm_provider_help());
  cli.add_flag("workers", "4", "worker threads");
  cli.add_flag("requests", "1000", "requests to serve");
  cli.add_flag("scenario", "steady", "steady | bursty | ramp");
  cli.add_flag("rate", "2000", "mean Poisson arrival rate, req/s");
  cli.add_flag("burst-factor", "4", "bursty peak/trough factor");
  cli.add_flag("length", "uniform", "fixed | uniform | bimodal prompt lengths");
  cli.add_flag("min-prompt", "8", "min prompt tokens");
  cli.add_flag("max-prompt", "32", "max prompt tokens");
  cli.add_flag("max-batch", "8", "scheduler max batch size");
  cli.add_flag("max-wait-us", "1000", "scheduler max batching wait (us)");
  cli.add_flag("queue-cap", "128", "request queue capacity");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_flag("paced", "true", "honor Poisson arrival times (open-loop)");
  cli.add_flag("calibrate", "true", "calibrate a skip plan at startup");
  cli.add_flag("mega-batch", "true",
               "pack whole scheduler batches into one cross-request forward");
  cli.add_flag("norm-threads", "0",
               "row-partition threads per worker (0 = auto, 1 = serial)");
  cli.add_flag("verify", "true",
               "compare against a single-threaded reference, bit-for-bit");
  cli.add_flag("compare", "false",
               "sweep mega-batch vs per-request over batch x length x workers");
  cli.add_flag("compare-requests", "240", "requests per comparison cell");
  cli.add_flag("min-mega-speedup", "0",
               "fail unless the geomean batch>=8 wall-clock mega-batch speedup "
               "reaches this (e.g. 1.05; 0 disables; needs spare cores for the "
               "row/span pools; implies --compare)");
  cli.add_flag("min-pack-amortization", "0",
               "fail unless the geomean batch>=8 rows-per-batched-norm-call "
               "ratio (mega / per-request) reaches this (e.g. 4; 0 disables; "
               "deterministic on any machine; implies --compare)");
  cli.add_flag("json", "", "write the report as JSON to this path");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  serve::ServerConfig config;
  const auto model_config = model::surrogate_by_name(cli.get("model"), width);
  if (!model_config) {
    std::fprintf(stderr, "unknown --model '%s' (expected %s)\n",
                 cli.get("model").c_str(), model::surrogate_names_help().c_str());
    return 1;
  }
  config.model = *model_config;
  config.norm = cli.get("norm");
  if (!core::is_norm_provider_name(config.norm)) {
    std::fprintf(stderr, "unknown --norm '%s' (expected %s)\n",
                 config.norm.c_str(), core::norm_provider_help().c_str());
    return 1;
  }
  config.workers = static_cast<std::size_t>(cli.get_int("workers"));
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-cap"));
  config.scheduler.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  config.scheduler.max_wait =
      std::chrono::microseconds(cli.get_int("max-wait-us"));
  config.paced = cli.get_bool("paced");
  config.calibrate = cli.get_bool("calibrate");
  config.mega_batch = cli.get_bool("mega-batch");
  config.norm_threads = static_cast<std::size_t>(cli.get_int("norm-threads"));
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap =
      config.model.norm_layer_count() > 16 ? 8 : 4;

  const auto scenario = serve::try_scenario_from_string(cli.get("scenario"));
  if (!scenario) {
    std::fprintf(stderr, "unknown --scenario '%s' (expected steady | bursty | ramp)\n",
                 cli.get("scenario").c_str());
    return 1;
  }
  const auto length_model = serve::try_length_model_from_string(cli.get("length"));
  if (!length_model) {
    std::fprintf(stderr, "unknown --length '%s' (expected fixed | uniform | bimodal)\n",
                 cli.get("length").c_str());
    return 1;
  }

  serve::WorkloadConfig workload_config;
  workload_config.n_requests = static_cast<std::size_t>(cli.get_int("requests"));
  workload_config.rate_rps = cli.get_double("rate");
  workload_config.scenario = *scenario;
  workload_config.burst_factor = cli.get_double("burst-factor");
  workload_config.length_model = *length_model;
  workload_config.min_prompt = static_cast<std::size_t>(cli.get_int("min-prompt"));
  workload_config.max_prompt = static_cast<std::size_t>(cli.get_int("max-prompt"));
  workload_config.vocab_size = config.model.vocab_size;
  workload_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf(
      "=== serve_throughput — %s, norm=%s, %zu workers, %s traffic, "
      "%s kernels ===\n",
      config.model.name.c_str(), config.norm.c_str(), config.workers,
      serve::to_string(workload_config.scenario).c_str(),
      kernels::active_name());

  serve::Server server(config);
  if (config.norm != "exact") {
    std::printf("skip plan : %s\n", server.plan().to_string().c_str());
  }

  const auto workload = serve::generate_workload(workload_config);
  const auto report = server.run(workload);
  std::printf("%s", report.metrics.to_string().c_str());

  bool verified = true;
  const bool verify = cli.get_bool("verify");
  if (verify) {
    const auto reference = server.run_reference(workload);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      if (report.results[i].hidden_checksum !=
          reference.results[i].hidden_checksum) {
        ++mismatches;
      }
    }
    const bool counters_match =
        report.metrics.norm.norm_calls == reference.metrics.norm.norm_calls &&
        report.metrics.norm.isd_computed == reference.metrics.norm.isd_computed &&
        report.metrics.norm.isd_predicted ==
            reference.metrics.norm.isd_predicted &&
        report.metrics.norm.elements_read ==
            reference.metrics.norm.elements_read &&
        report.metrics.norm.fused_residual_norms ==
            reference.metrics.norm.fused_residual_norms;
    verified = mismatches == 0 && counters_match;
    std::printf(
        "verify           : %s (%zu/%zu hidden-state checksums match, "
        "counters %s)\n",
        verified ? "bit-identical to single-threaded reference" : "MISMATCH",
        report.results.size() - mismatches, report.results.size(),
        counters_match ? "identical" : "DIFFER");
  }

  // --- Mega-batch vs per-request sweep -----------------------------------
  const double min_mega_speedup = cli.get_double("min-mega-speedup");
  const double min_pack_amortization = cli.get_double("min-pack-amortization");
  const bool compare = cli.get_bool("compare") || min_mega_speedup > 0.0 ||
                       min_pack_amortization > 0.0;
  std::vector<CompareCell> cells;
  bool mega_gate_ok = true;
  double speedup_geomean = 0.0;
  double amortization_geomean = 0.0;
  if (compare) {
    const std::size_t cell_requests =
        static_cast<std::size_t>(cli.get_int("compare-requests"));
    const std::size_t batch_sizes[] = {2, 8, 16};
    const std::size_t prompt_lens[] = {16, 48};
    const std::size_t worker_counts[] = {1, 4};
    std::printf(
        "\n=== mega-batch vs per-request (closed loop, %zu requests/cell) "
        "===\n", cell_requests);
    std::printf("%9s %5s %7s %12s %12s %8s %10s %10s %7s\n", "max_batch", "len",
                "workers", "mega req/s", "per-req r/s", "speedup", "rows/call",
                "(per-req)", "amort");
    double speedup_log_sum = 0.0, amortization_log_sum = 0.0;
    std::size_t gated_cells = 0;
    for (const std::size_t max_batch : batch_sizes) {
      for (const std::size_t len : prompt_lens) {
        for (const std::size_t workers : worker_counts) {
          serve::WorkloadConfig cell_workload = workload_config;
          cell_workload.n_requests = cell_requests;
          cell_workload.length_model = serve::LengthModel::kFixed;
          cell_workload.min_prompt = len;
          cell_workload.max_prompt = len;
          const auto requests = serve::generate_workload(cell_workload);

          serve::ServerConfig cell_config = config;
          cell_config.workers = workers;
          cell_config.scheduler.max_batch = max_batch;
          // Reuse the main server's calibration: the plan depends only on
          // the model and calibration knobs, which are identical across
          // every cell — no need to re-run Algorithm 1 24 times.
          cell_config.calibrate = false;
          cell_config.preset_plan = server.plan();

          CompareCell cell;
          cell.max_batch = max_batch;
          cell.prompt_len = len;
          cell.workers = workers;
          cell_config.mega_batch = true;
          const serve::ServeMetrics mega = closed_loop_metrics(cell_config, requests);
          cell_config.mega_batch = false;
          const serve::ServeMetrics per = closed_loop_metrics(cell_config, requests);
          cell.mega_rps = mega.throughput_rps;
          cell.per_request_rps = per.throughput_rps;
          cell.speedup =
              cell.per_request_rps > 0.0 ? cell.mega_rps / cell.per_request_rps : 0.0;
          cell.mega_rows_per_call = mega.rows_per_batched_call();
          cell.per_request_rows_per_call = per.rows_per_batched_call();
          cell.amortization = cell.per_request_rows_per_call > 0.0
                                  ? cell.mega_rows_per_call /
                                        cell.per_request_rows_per_call
                                  : 0.0;
          cells.push_back(cell);
          std::printf("%9zu %5zu %7zu %12.1f %12.1f %7.2fx %10.1f %10.1f %6.2fx\n",
                      max_batch, len, workers, cell.mega_rps, cell.per_request_rps,
                      cell.speedup, cell.mega_rows_per_call,
                      cell.per_request_rows_per_call, cell.amortization);
          if (max_batch >= 8 && cell.speedup > 0.0 && cell.amortization > 0.0) {
            speedup_log_sum += std::log(cell.speedup);
            amortization_log_sum += std::log(cell.amortization);
            ++gated_cells;
          }
        }
      }
    }
    if (gated_cells > 0) {
      speedup_geomean = std::exp(speedup_log_sum / gated_cells);
      amortization_geomean = std::exp(amortization_log_sum / gated_cells);
    }
    std::printf(
        "geomean at batch >= 8: speedup %.2fx, norm-call amortization %.2fx "
        "(%zu row/span threads per worker)\n",
        speedup_geomean, amortization_geomean,
        config.norm_threads == 0 ? model::RowPartitionPool::default_threads()
                                 : config.norm_threads);
    if (min_mega_speedup > 0.0) {
      const bool ok = speedup_geomean >= min_mega_speedup;
      mega_gate_ok = mega_gate_ok && ok;
      std::printf("mega speedup gate: %s (%.2fx, >= %.2fx required)\n",
                  ok ? "PASS" : "FAIL", speedup_geomean, min_mega_speedup);
    }
    if (min_pack_amortization > 0.0) {
      const bool ok = amortization_geomean >= min_pack_amortization;
      mega_gate_ok = mega_gate_ok && ok;
      std::printf("amortization gate: %s (%.2fx, >= %.2fx required)\n",
                  ok ? "PASS" : "FAIL", amortization_geomean,
                  min_pack_amortization);
    }
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    common::Json::Object doc;
    doc["bench"] = "serve_throughput";
    common::Json::Object cfg;
    cfg["model"] = config.model.name;
    cfg["d_model"] = config.model.d_model;
    cfg["norm"] = config.norm;
    cfg["workers"] = config.workers;
    cfg["requests"] = workload_config.n_requests;
    cfg["scenario"] = serve::to_string(workload_config.scenario);
    cfg["rate_rps"] = workload_config.rate_rps;
    cfg["length_model"] = serve::to_string(workload_config.length_model);
    cfg["min_prompt"] = workload_config.min_prompt;
    cfg["max_prompt"] = workload_config.max_prompt;
    cfg["max_batch"] = config.scheduler.max_batch;
    cfg["max_wait_us"] =
        static_cast<std::size_t>(config.scheduler.max_wait.count());
    cfg["queue_capacity"] = config.queue_capacity;
    cfg["paced"] = config.paced;
    cfg["mega_batch"] = config.mega_batch;
    cfg["norm_threads"] = config.norm_threads;
    cfg["seed"] = static_cast<std::size_t>(workload_config.seed);
    cfg["skip_plan"] = server.plan().to_string();
    cfg["kernel"] = kernels::active_name();
    doc["config"] = cfg;
    doc["metrics"] = report.metrics.to_json();
    common::Json::Object ver;
    ver["checked"] = verify;
    ver["bit_identical"] = verified;
    doc["verify"] = ver;
    if (compare) {
      common::Json::Array sweep;
      for (const CompareCell& cell : cells) {
        common::Json::Object entry;
        entry["max_batch"] = cell.max_batch;
        entry["prompt_len"] = cell.prompt_len;
        entry["workers"] = cell.workers;
        entry["mega_rps"] = cell.mega_rps;
        entry["per_request_rps"] = cell.per_request_rps;
        entry["speedup"] = cell.speedup;
        entry["mega_rows_per_call"] = cell.mega_rows_per_call;
        entry["per_request_rows_per_call"] = cell.per_request_rows_per_call;
        entry["amortization"] = cell.amortization;
        sweep.push_back(entry);
      }
      common::Json::Object cmp;
      cmp["cells"] = sweep;
      cmp["geomean_speedup_batch_ge_8"] = speedup_geomean;
      cmp["geomean_amortization_batch_ge_8"] = amortization_geomean;
      cmp["min_mega_speedup"] = min_mega_speedup;
      cmp["min_pack_amortization"] = min_pack_amortization;
      cmp["gate_ok"] = mega_gate_ok;
      doc["mega_batch_compare"] = cmp;
    }
    if (!common::write_file(json_path, common::Json(doc).dump_pretty() + "\n")) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json report      : %s\n", json_path.c_str());
  }
  return verified && mega_gate_ok ? 0 : 1;
}
