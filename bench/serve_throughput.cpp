// Serving throughput/latency bench: drives the haan::serve runtime with a
// synthetic workload and reports p50/p95/p99 latency, throughput, batch and
// queue statistics, and aggregated norm counters. With --verify=true (the
// default) the multi-worker run is checked bit-for-bit against a
// single-threaded reference execution of the same workload.
//
//   ./build/bench/serve_throughput --norm=haan --workers=4 --scenario=steady
//       --seed=1 --json=bench/serve_baseline.json
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/json_lite.hpp"
#include "core/provider_factory.hpp"
#include "kernels/kernels.hpp"
#include "serve/server.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("serving throughput/latency under synthetic traffic");
  cli.add_flag("model", "tiny", model::surrogate_names_help());
  cli.add_flag("width", "0", "surrogate embedding width (0 = model default)");
  cli.add_flag("norm", "haan", core::norm_provider_help());
  cli.add_flag("workers", "4", "worker threads");
  cli.add_flag("requests", "1000", "requests to serve");
  cli.add_flag("scenario", "steady", "steady | bursty | ramp");
  cli.add_flag("rate", "2000", "mean Poisson arrival rate, req/s");
  cli.add_flag("burst-factor", "4", "bursty peak/trough factor");
  cli.add_flag("length", "uniform", "fixed | uniform | bimodal prompt lengths");
  cli.add_flag("min-prompt", "8", "min prompt tokens");
  cli.add_flag("max-prompt", "32", "max prompt tokens");
  cli.add_flag("max-batch", "8", "scheduler max batch size");
  cli.add_flag("max-wait-us", "1000", "scheduler max batching wait (us)");
  cli.add_flag("queue-cap", "128", "request queue capacity");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_flag("paced", "true", "honor Poisson arrival times (open-loop)");
  cli.add_flag("calibrate", "true", "calibrate a skip plan at startup");
  cli.add_flag("verify", "true",
               "compare against a single-threaded reference, bit-for-bit");
  cli.add_flag("json", "", "write the report as JSON to this path");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const auto width = static_cast<std::size_t>(cli.get_int("width"));
  serve::ServerConfig config;
  const auto model_config = model::surrogate_by_name(cli.get("model"), width);
  if (!model_config) {
    std::fprintf(stderr, "unknown --model '%s' (expected %s)\n",
                 cli.get("model").c_str(), model::surrogate_names_help().c_str());
    return 1;
  }
  config.model = *model_config;
  config.norm = cli.get("norm");
  if (!core::is_norm_provider_name(config.norm)) {
    std::fprintf(stderr, "unknown --norm '%s' (expected %s)\n",
                 config.norm.c_str(), core::norm_provider_help().c_str());
    return 1;
  }
  config.workers = static_cast<std::size_t>(cli.get_int("workers"));
  config.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-cap"));
  config.scheduler.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  config.scheduler.max_wait =
      std::chrono::microseconds(cli.get_int("max-wait-us"));
  config.paced = cli.get_bool("paced");
  config.calibrate = cli.get_bool("calibrate");
  config.calibration.n_samples = 8;
  config.calibration.seq_len = 16;
  config.calibration.position_stride = 4;
  config.calibration.planner.min_gap =
      config.model.norm_layer_count() > 16 ? 8 : 4;

  const auto scenario = serve::try_scenario_from_string(cli.get("scenario"));
  if (!scenario) {
    std::fprintf(stderr, "unknown --scenario '%s' (expected steady | bursty | ramp)\n",
                 cli.get("scenario").c_str());
    return 1;
  }
  const auto length_model = serve::try_length_model_from_string(cli.get("length"));
  if (!length_model) {
    std::fprintf(stderr, "unknown --length '%s' (expected fixed | uniform | bimodal)\n",
                 cli.get("length").c_str());
    return 1;
  }

  serve::WorkloadConfig workload_config;
  workload_config.n_requests = static_cast<std::size_t>(cli.get_int("requests"));
  workload_config.rate_rps = cli.get_double("rate");
  workload_config.scenario = *scenario;
  workload_config.burst_factor = cli.get_double("burst-factor");
  workload_config.length_model = *length_model;
  workload_config.min_prompt = static_cast<std::size_t>(cli.get_int("min-prompt"));
  workload_config.max_prompt = static_cast<std::size_t>(cli.get_int("max-prompt"));
  workload_config.vocab_size = config.model.vocab_size;
  workload_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf(
      "=== serve_throughput — %s, norm=%s, %zu workers, %s traffic, "
      "%s kernels ===\n",
      config.model.name.c_str(), config.norm.c_str(), config.workers,
      serve::to_string(workload_config.scenario).c_str(),
      kernels::active_name());

  serve::Server server(config);
  if (config.norm != "exact") {
    std::printf("skip plan : %s\n", server.plan().to_string().c_str());
  }

  const auto workload = serve::generate_workload(workload_config);
  const auto report = server.run(workload);
  std::printf("%s", report.metrics.to_string().c_str());

  bool verified = true;
  const bool verify = cli.get_bool("verify");
  if (verify) {
    const auto reference = server.run_reference(workload);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      if (report.results[i].hidden_checksum !=
          reference.results[i].hidden_checksum) {
        ++mismatches;
      }
    }
    const bool counters_match =
        report.metrics.norm.norm_calls == reference.metrics.norm.norm_calls &&
        report.metrics.norm.isd_computed == reference.metrics.norm.isd_computed &&
        report.metrics.norm.isd_predicted ==
            reference.metrics.norm.isd_predicted &&
        report.metrics.norm.elements_read ==
            reference.metrics.norm.elements_read &&
        report.metrics.norm.fused_residual_norms ==
            reference.metrics.norm.fused_residual_norms;
    verified = mismatches == 0 && counters_match;
    std::printf(
        "verify           : %s (%zu/%zu hidden-state checksums match, "
        "counters %s)\n",
        verified ? "bit-identical to single-threaded reference" : "MISMATCH",
        report.results.size() - mismatches, report.results.size(),
        counters_match ? "identical" : "DIFFER");
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    common::Json::Object doc;
    doc["bench"] = "serve_throughput";
    common::Json::Object cfg;
    cfg["model"] = config.model.name;
    cfg["d_model"] = config.model.d_model;
    cfg["norm"] = config.norm;
    cfg["workers"] = config.workers;
    cfg["requests"] = workload_config.n_requests;
    cfg["scenario"] = serve::to_string(workload_config.scenario);
    cfg["rate_rps"] = workload_config.rate_rps;
    cfg["length_model"] = serve::to_string(workload_config.length_model);
    cfg["min_prompt"] = workload_config.min_prompt;
    cfg["max_prompt"] = workload_config.max_prompt;
    cfg["max_batch"] = config.scheduler.max_batch;
    cfg["max_wait_us"] =
        static_cast<std::size_t>(config.scheduler.max_wait.count());
    cfg["queue_capacity"] = config.queue_capacity;
    cfg["paced"] = config.paced;
    cfg["seed"] = static_cast<std::size_t>(workload_config.seed);
    cfg["skip_plan"] = server.plan().to_string();
    cfg["kernel"] = kernels::active_name();
    doc["config"] = cfg;
    doc["metrics"] = report.metrics.to_json();
    common::Json::Object ver;
    ver["checked"] = verify;
    ver["bit_identical"] = verified;
    doc["verify"] = ver;
    if (!common::write_file(json_path, common::Json(doc).dump_pretty() + "\n")) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json report      : %s\n", json_path.c_str());
  }
  return verified ? 0 : 1;
}
