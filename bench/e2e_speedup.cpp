// Regenerates the paper's end-to-end experiment (§V-B-2): GPT-2 355M on a
// [41]-style FPGA spatial LLM accelerator with HAAN replacing the system's
// two-pass normalization unit, input lengths 128/256/512. Paper: ~1.11x
// average end-to-end speedup.
#include <cstdio>

#include "baselines/e2e_model.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace haan;

int main(int argc, char** argv) {
  common::CliParser cli("End-to-end speedup of HAAN inside a spatial FPGA system");
  cli.add_flag("skipped", "5", "normalization layers with predicted ISD");
  cli.add_flag("nsub", "512", "statistics subsample length (E=1024)");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  common::Table table({"input length", "baseline (ms)", "with HAAN (ms)",
                       "norm share", "norm speedup", "e2e speedup"});
  double sum = 0.0;
  const std::size_t seqs[] = {128, 256, 512};
  for (const std::size_t seq : seqs) {
    const auto result = baselines::e2e_speedup(
        model::real_dims_gpt2_355m(), seq, accel::haan_v1(),
        static_cast<std::size_t>(cli.get_int("nsub")),
        static_cast<std::size_t>(cli.get_int("skipped")));
    table.add_row({std::to_string(seq),
                   common::format_double(result.baseline_ms, 2),
                   common::format_double(result.haan_ms, 2),
                   common::format_percent(result.norm_fraction),
                   common::format_ratio(result.norm_speedup),
                   common::format_ratio(result.e2e_speedup, 3)});
    sum += result.e2e_speedup;
  }
  std::printf("=== End-to-end — GPT-2 355M on the [41] spatial system ===\n%s",
              table.render().c_str());
  std::printf("\naverage e2e speedup: %s (paper: ~1.11x)\n",
              common::format_ratio(sum / 3.0, 3).c_str());
  return 0;
}
