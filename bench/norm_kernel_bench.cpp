// Per-kernel ns/element across d in {768, 2048, 4096, 8192}: every backend's
// kernels plus the seed's scalar two-pass path (separate residual add, exact
// double-precision stats, temp normalize buffer, separate affine pass) as the
// pre-kernel-layer baseline. The JSON report is the anchor recorded in
// bench/kernel_baseline.json; --min-speedup gates CI on the fused vectorized
// residual_add_rmsnorm at d=4096 staying ahead of the seed path.
//
//   ./build/bench/norm_kernel_bench --json=bench/kernel_baseline.json
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json_lite.hpp"
#include "common/rng.hpp"
#include "core/haan_norm.hpp"
#include "kernels/autotune.hpp"
#include "kernels/kernels.hpp"
#include "mem/topology.hpp"
#include "model/norm_provider.hpp"
#include "numerics/formats.hpp"

using namespace haan;

namespace {

/// Nominal bytes moved per element by each measured op (float = 4 B per
/// touched stream), so ns/element converts to an effective bandwidth:
/// GB/s = bytes_per_element / ns_per_element. "Nominal" counts the streams
/// the op's contract touches, not cache-line traffic.
constexpr double kStatsBytes = 4.0;              // read z
constexpr double kResidualAddStatsBytes = 12.0;  // read h + r, write h
constexpr double kNormalizeAffineBytes = 16.0;   // read z + alpha + beta, write out
constexpr double kQuantizeBytes = 8.0;           // read + write in place
/// Fused residual+RMSNorm: add pass (12) + normalize pass (16).
constexpr double kFusedRmsBytes = 28.0;
/// LayerNorm adds the centered second-moment re-read of h.
constexpr double kFusedLayerBytes = 32.0;

double gbps(double bytes_per_element, double ns_per_element) {
  return ns_per_element > 0.0 ? bytes_per_element / ns_per_element : 0.0;
}

double g_sink = 0.0;  // defeats dead-code elimination across measurements

void sink(double v) {
  g_sink += v;
  asm volatile("" : : "r,m"(g_sink) : "memory");
}

/// Median-free simple timer: calibrates an iteration count to ~target_ms,
/// then reports ns per element over the timed loop.
double time_ns_per_element(const std::function<void()>& op, std::size_t d,
                           double target_ms) {
  using Clock = std::chrono::steady_clock;
  op();  // warm up caches and code
  std::size_t iters = 1;
  for (;;) {
    const Clock::time_point begin = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - begin)
            .count());
    if (ns >= target_ms * 1e6 || iters >= (1u << 24)) {
      return ns / static_cast<double>(iters) / static_cast<double>(d);
    }
    const double scale = ns > 0.0 ? (target_ms * 1.2e6) / ns : 16.0;
    iters = static_cast<std::size_t>(static_cast<double>(iters) *
                                     std::max(2.0, scale));
  }
}

/// The seed's pre-kernel-layer residual + norm sequence, verbatim: one add
/// pass, exact_stats (sum/sum_sq pass + centered two-pass variance), a temp
/// normalized buffer, and a separate affine pass.
void seed_residual_norm(std::vector<float>& h, const std::vector<float>& r,
                        const std::vector<float>& alpha,
                        const std::vector<float>& beta, std::vector<float>& out,
                        bool layernorm, double eps) {
  const std::size_t n = h.size();
  for (std::size_t i = 0; i < n; ++i) h[i] += r[i];
  double sum = 0.0, sum_sq = 0.0;
  for (const float v : h) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double dn = static_cast<double>(n);
  const double mean = sum / dn;
  double acc = 0.0;
  for (const float v : h) {
    const double dv = v - mean;
    acc += dv * dv;
  }
  const double variance = acc / dn;
  const double rms = std::sqrt(sum_sq / dn);
  double isd;
  double shift;
  if (layernorm) {
    isd = 1.0 / std::sqrt(variance + eps);
    shift = mean;
  } else {
    isd = 1.0 / std::sqrt(rms * rms + eps);
    shift = 0.0;
  }
  std::vector<float> normalized(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized[i] = static_cast<float>((h[i] - shift) * isd);
  }
  for (std::size_t i = 0; i < n; ++i) {
    float v = normalized[i];
    v *= alpha[i];
    v += beta[i];
    out[i] = v;
  }
}

struct Workspace {
  std::vector<float> h, residual, alpha, beta, out, quant;

  explicit Workspace(std::size_t d) : h(d), residual(d), alpha(d), beta(d), out(d), quant(d) {
    common::Rng rng(d);
    rng.fill_gaussian(h, 0.2, 1.5);
    rng.fill_gaussian(residual, 0.0, 0.02);  // keeps repeated adds bounded
    rng.fill_gaussian(alpha, 1.0, 0.1);
    rng.fill_gaussian(beta, 0.0, 0.2);
    rng.fill_gaussian(quant, 0.0, 2.0);
  }
};

/// A (rows x d) block workspace for the row-block measurements.
struct RowWorkspace {
  std::size_t rows, d;
  std::vector<float> h, residual, alpha, beta, out;

  RowWorkspace(std::size_t rows_, std::size_t d_)
      : rows(rows_), d(d_), h(rows_ * d_), residual(rows_ * d_), alpha(d_),
        beta(d_), out(rows_ * d_) {
    common::Rng rng(rows_ * 31 + d_);
    rng.fill_gaussian(h, 0.2, 1.5);
    rng.fill_gaussian(residual, 0.0, 0.02);
    rng.fill_gaussian(alpha, 1.0, 0.1);
    rng.fill_gaussian(beta, 0.0, 0.2);
  }

  std::span<float> row(std::vector<float>& v, std::size_t r) {
    return std::span(v).subspan(r * d, d);
  }
};

/// The provider-seam comparison this PR is about: one virtual fused call per
/// token row (the seed execution model) vs one batched row-block call per
/// norm layer. `haan-full` semantics (full-vector stats, FP32 operands) keep
/// both paths deterministic and predictor-free.
struct RowBlockTimings {
  double per_row_ns = 0.0;
  double rowblock_ns = 0.0;

  double speedup() const {
    return rowblock_ns > 0.0 ? per_row_ns / rowblock_ns : 0.0;
  }
};

RowBlockTimings time_provider_rowblock(model::NormProvider& provider,
                                       RowWorkspace& ws, double target_ms) {
  using model::NormKind;
  const std::size_t rows = ws.rows;
  RowBlockTimings t;
  t.per_row_ns = time_ns_per_element(
      [&] {
        for (std::size_t r = 0; r < rows; ++r) {
          provider.residual_add_normalize(0, r, NormKind::kRMSNorm,
                                          ws.row(ws.h, r), ws.row(ws.residual, r),
                                          ws.alpha, ws.beta, ws.row(ws.out, r));
        }
        sink(ws.out[0]);
      },
      rows * ws.d, target_ms);
  t.rowblock_ns = time_ns_per_element(
      [&] {
        provider.residual_add_normalize_rows(0, 0, NormKind::kRMSNorm, rows,
                                             ws.h, ws.residual, ws.alpha,
                                             ws.beta, ws.out);
        sink(ws.out[0]);
      },
      rows * ws.d, target_ms);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("normalization kernel microbenchmark");
  cli.add_flag("target-ms", "25", "per-measurement timed-loop budget, ms");
  cli.add_flag("min-speedup", "0",
               "fail unless fused residual_add_rmsnorm at d=4096 beats the "
               "seed scalar path by this factor (0 disables)");
  cli.add_flag("min-rowblock-speedup", "0",
               "fail unless the batched row-block provider path at d=4096, "
               "rows=64 beats the per-row provider path by this factor "
               "(0 disables)");
  cli.add_flag("json", "", "write the report as JSON to this path");
  cli.add_flag("tune", "0",
               "run the autotune sweep: per (d, rows) cell compare the static "
               "dispatch table against kernels::tuned_for(d) with the tuner's "
               "own measurement harness");
  cli.add_flag("min-tune-ratio", "0",
               "with --tune, fail unless static_ns/tuned_ns >= this ratio in "
               "every swept cell (0 disables; use <1, e.g. 0.9, for noise "
               "headroom)");
  cli.add_flag("autotune-cache", "",
               "autotune decision cache path (overrides HAAN_AUTOTUNE_CACHE)");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  if (!cli.get("autotune-cache").empty()) {
    kernels::set_autotune_cache_path(cli.get("autotune-cache"));
  }

  const double target_ms = cli.get_double("target-ms");
  const double min_speedup = cli.get_double("min-speedup");
  const std::vector<std::size_t> dims = {768, 2048, 4096, 8192};
  constexpr double kEps = 1e-5;

  std::printf("=== norm_kernel_bench — active dispatch: %s ===\n",
              kernels::active_name());
  std::printf("topology: %s, numa=%s%s\n", mem::topology().describe().c_str(),
              mem::to_string(mem::numa_mode()),
              mem::topology().discovered() ? "" : " (sysfs fallback)");

  common::Json::Array results;
  double rmsnorm_speedup_4096 = 0.0;
  for (const std::size_t d : dims) {
    Workspace ws(d);
    common::Json::Object per_backend;

    // Seed reference: the pre-kernel-layer five-pass scalar path.
    common::Json::Object seed_ref;
    seed_ref["residual_add_rmsnorm"] = time_ns_per_element(
        [&] {
          seed_residual_norm(ws.h, ws.residual, ws.alpha, ws.beta, ws.out,
                             /*layernorm=*/false, kEps);
          sink(ws.out[0]);
        },
        d, target_ms);
    seed_ref["residual_add_layernorm"] = time_ns_per_element(
        [&] {
          seed_residual_norm(ws.h, ws.residual, ws.alpha, ws.beta, ws.out,
                             /*layernorm=*/true, kEps);
          sink(ws.out[0]);
        },
        d, target_ms);
    per_backend["seed_ref"] = seed_ref;

    double active_fused_rmsnorm = 0.0;
    for (const kernels::KernelTable* table : kernels::supported_kernels()) {
      common::Json::Object ops;
      const auto record = [&ops](const char* name, double bytes_per_element,
                                 double ns) {
        ops[name] = ns;
        ops[std::string(name) + "_gbps"] = gbps(bytes_per_element, ns);
        return ns;
      };
      record("stats", kStatsBytes,
             time_ns_per_element(
                 [&] { sink(table->stats(ws.h.data(), d).sum_sq); }, d,
                 target_ms));
      record("residual_add_stats", kResidualAddStatsBytes,
             time_ns_per_element(
                 [&] {
                   sink(table
                            ->residual_add_stats(ws.h.data(),
                                                 ws.residual.data(), d)
                            .sum_sq);
                 },
                 d, target_ms));
      record("normalize_affine", kNormalizeAffineBytes,
             time_ns_per_element(
                 [&] {
                   table->normalize_affine(ws.h.data(), d, 0.01, 0.66,
                                           ws.alpha.data(), ws.beta.data(),
                                           ws.out.data());
                   sink(ws.out[0]);
                 },
                 d, target_ms));
      record("quantize_int8", kQuantizeBytes,
             time_ns_per_element(
                 [&] {
                   table->quantize_dequantize(ws.quant.data(), d,
                                              numerics::NumericFormat::kINT8,
                                              0.05f);
                   sink(ws.quant[0]);
                 },
                 d, target_ms));
      record("quantize_fp16", kQuantizeBytes,
             time_ns_per_element(
                 [&] {
                   table->quantize_dequantize(ws.quant.data(), d,
                                              numerics::NumericFormat::kFP16,
                                              1.0f);
                   sink(ws.quant[0]);
                 },
                 d, target_ms));
      const double fused_rms =
          record("residual_add_rmsnorm", kFusedRmsBytes,
                 time_ns_per_element(
                     [&] {
                       kernels::residual_add_rmsnorm(*table, ws.h, ws.residual,
                                                     ws.alpha, ws.beta, ws.out,
                                                     kEps);
                       sink(ws.out[0]);
                     },
                     d, target_ms));
      record("residual_add_layernorm", kFusedLayerBytes,
             time_ns_per_element(
                 [&] {
                   kernels::residual_add_layernorm(*table, ws.h, ws.residual,
                                                   ws.alpha, ws.beta, ws.out,
                                                   kEps);
                   sink(ws.out[0]);
                 },
                 d, target_ms));
      per_backend[table->name] = ops;
      if (std::string(table->name) == kernels::active_name()) {
        active_fused_rmsnorm = fused_rms;
      }
    }

    common::Json::Object row;
    row["d"] = d;
    row["ns_per_element"] = per_backend;
    const double seed_rms = per_backend["seed_ref"]
                                .find("residual_add_rmsnorm")
                                ->as_number();
    const double speedup =
        active_fused_rmsnorm > 0.0 ? seed_rms / active_fused_rmsnorm : 0.0;
    row["speedup_fused_rmsnorm_vs_seed"] = speedup;
    if (d == 4096) rmsnorm_speedup_4096 = speedup;
    results.push_back(row);

    std::printf(
        "d=%5zu  seed %6.3f ns/el  fused(%s) %6.3f ns/el (%6.2f GB/s)  "
        "speedup %5.2fx\n",
        d, seed_rms, kernels::active_name(), active_fused_rmsnorm,
        gbps(kFusedRmsBytes, active_fused_rmsnorm), speedup);
  }

  // --- Row-block sweep: batched provider calls vs the per-row seam --------
  const double min_rowblock_speedup = cli.get_double("min-rowblock-speedup");
  const std::vector<std::size_t> row_counts = {8, 64, 256};
  common::Json::Array rowblock_results;
  double rowblock_speedup_4096x64 = 0.0;
  std::printf("--- row-block provider path vs per-row provider path ---\n");
  for (const std::size_t d : dims) {
    for (const std::size_t rows : row_counts) {
      RowWorkspace ws(rows, d);
      // haan-full semantics: full-vector statistics, FP32 operands, fast
      // inverse sqrt; plan disabled so both paths are predictor-free.
      core::HaanNormProvider haan(core::HaanConfig{});
      const RowBlockTimings haan_t = time_provider_rowblock(haan, ws, target_ms);
      model::ExactNormProvider exact;
      const RowBlockTimings exact_t =
          time_provider_rowblock(exact, ws, target_ms);

      common::Json::Object entry;
      entry["d"] = d;
      entry["rows"] = rows;
      entry["haan_per_row_ns"] = haan_t.per_row_ns;
      entry["haan_rowblock_ns"] = haan_t.rowblock_ns;
      entry["haan_speedup"] = haan_t.speedup();
      entry["exact_per_row_ns"] = exact_t.per_row_ns;
      entry["exact_rowblock_ns"] = exact_t.rowblock_ns;
      entry["exact_speedup"] = exact_t.speedup();
      entry["haan_rowblock_gbps"] = gbps(kFusedRmsBytes, haan_t.rowblock_ns);
      entry["exact_rowblock_gbps"] = gbps(kFusedRmsBytes, exact_t.rowblock_ns);
      rowblock_results.push_back(entry);
      if (d == 4096 && rows == 64) {
        rowblock_speedup_4096x64 = haan_t.speedup();
      }
      std::printf(
          "d=%5zu rows=%4zu  haan %6.3f -> %6.3f ns/el (%5.2fx)  exact %6.3f "
          "-> %6.3f ns/el (%5.2fx)\n",
          d, rows, haan_t.per_row_ns, haan_t.rowblock_ns, haan_t.speedup(),
          exact_t.per_row_ns, exact_t.rowblock_ns, exact_t.speedup());
    }
  }

  // --- Autotune sweep: static dispatch table vs tuned_for(d), measured with
  // the tuner's own harness so the gate checks exactly what the tuner
  // optimizes (the fused residual+RMSNorm row-block bandwidth pass). ---------
  const bool tune = cli.get_bool("tune");
  const double min_tune_ratio = cli.get_double("min-tune-ratio");
  common::Json::Object tune_doc;
  bool tune_ok = true;
  if (tune) {
    std::printf("--- autotune sweep: static dispatch vs tuned_for(d) ---\n");
    common::Json::Array tune_entries;
    double worst_ratio = std::numeric_limits<double>::infinity();
    for (const std::size_t d : dims) {
      const kernels::AutotuneChoice& choice = kernels::tuned_for(d);
      for (const std::size_t rows : row_counts) {
        const double static_ns =
            kernels::measure_rows_ns_per_row(kernels::active(), d, rows);
        const double tuned_ns =
            kernels::measure_rows_ns_per_row(*choice.table, d, rows);
        const double ratio = tuned_ns > 0.0 ? static_ns / tuned_ns : 0.0;
        worst_ratio = std::min(worst_ratio, ratio);
        common::Json::Object entry;
        entry["d"] = d;
        entry["rows"] = rows;
        entry["static_table"] = kernels::active_name();
        entry["tuned_table"] = choice.table->name;
        entry["source"] = kernels::to_string(choice.source);
        entry["static_ns_per_row"] = static_ns;
        entry["tuned_ns_per_row"] = tuned_ns;
        entry["static_gbps"] =
            gbps(kFusedRmsBytes, static_ns / static_cast<double>(d));
        entry["tuned_gbps"] =
            gbps(kFusedRmsBytes, tuned_ns / static_cast<double>(d));
        entry["ratio"] = ratio;
        tune_entries.push_back(entry);
        std::printf(
            "d=%5zu rows=%4zu  static(%s) %9.1f ns/row  tuned(%s) %9.1f "
            "ns/row  ratio %5.2fx\n",
            d, rows, kernels::active_name(), static_ns, choice.table->name,
            tuned_ns, ratio);
      }
    }
    tune_doc["entries"] = tune_entries;
    tune_doc["worst_ratio"] = worst_ratio;
    if (min_tune_ratio > 0.0 && worst_ratio < min_tune_ratio) {
      std::fprintf(stderr,
                   "FAIL: autotuned table is %.3fx the static dispatch in the "
                   "worst cell (< required %.3fx)\n",
                   worst_ratio, min_tune_ratio);
      tune_ok = false;
    }

    // AVX-512 vs AVX2 anchor: the tentpole claim — fused RMSNorm d=4096 on
    // large row blocks improves over the AVX2 family when both are runnable.
    // rows=64 (the same cell as the rowblock anchor) keeps the loop
    // compute-bound; past ~128 rows the pass saturates memory bandwidth and
    // the two families converge into noise.
    const kernels::KernelTable* avx512 = kernels::find_kernel_table("avx512");
    const kernels::KernelTable* avx2 = kernels::find_kernel_table("avx2");
    const bool avx512_runnable = [&] {
      if (avx512 == nullptr || avx2 == nullptr) return false;
      for (const kernels::KernelTable* t : kernels::supported_kernels()) {
        if (t == avx512) return true;
      }
      return false;
    }();
    if (avx512_runnable) {
      const std::size_t d = 4096, rows = 64;
      const double avx2_ns = kernels::measure_rows_ns_per_row(*avx2, d, rows);
      const double avx512_ns =
          kernels::measure_rows_ns_per_row(*avx512, d, rows);
      const double ratio = avx512_ns > 0.0 ? avx2_ns / avx512_ns : 0.0;
      common::Json::Object cmp;
      cmp["d"] = d;
      cmp["rows"] = rows;
      cmp["avx2_ns_per_row"] = avx2_ns;
      cmp["avx512_ns_per_row"] = avx512_ns;
      cmp["avx512_speedup_vs_avx2"] = ratio;
      tune_doc["avx512_vs_avx2"] = cmp;
      std::printf(
          "d=%5zu rows=%4zu  avx2 %9.1f ns/row  avx512 %9.1f ns/row  "
          "avx512 speedup %5.2fx\n",
          d, rows, avx2_ns, avx512_ns, ratio);
      if (min_tune_ratio > 0.0 && ratio < min_tune_ratio) {
        std::fprintf(stderr,
                     "FAIL: avx512 fused RMSNorm d=4096 rows=256 is %.3fx "
                     "avx2 (< required %.3fx)\n",
                     ratio, min_tune_ratio);
        tune_ok = false;
      }
    }
  }

  common::Json::Object doc;
  doc["bench"] = "norm_kernel_bench";
  doc["active_kernel"] = kernels::active_name();
  doc["topology"] = mem::topology().describe();
  doc["numa_nodes"] = mem::topology().nodes();
  doc["numa_mode"] = mem::to_string(mem::numa_mode());
  common::Json::Array dims_json;
  for (const std::size_t d : dims) dims_json.push_back(d);
  doc["dims"] = dims_json;
  doc["results"] = results;
  common::Json::Array rows_json;
  for (const std::size_t r : row_counts) rows_json.push_back(r);
  doc["rowblock_rows"] = rows_json;
  doc["rowblock_results"] = rowblock_results;
  doc["rowblock_speedup_d4096_rows64"] = rowblock_speedup_4096x64;
  if (tune) doc["tune"] = tune_doc;

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    if (!common::write_file(json_path, common::Json(doc).dump_pretty() + "\n")) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json report: %s\n", json_path.c_str());
  }

  if (min_speedup > 0.0 && rmsnorm_speedup_4096 < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: fused residual_add_rmsnorm at d=4096 is %.2fx the seed "
                 "path (< required %.2fx)\n",
                 rmsnorm_speedup_4096, min_speedup);
    return 1;
  }
  if (min_rowblock_speedup > 0.0 &&
      rowblock_speedup_4096x64 < min_rowblock_speedup) {
    std::fprintf(stderr,
                 "FAIL: row-block provider path at d=4096, rows=64 is %.2fx "
                 "the per-row path (< required %.2fx)\n",
                 rowblock_speedup_4096x64, min_rowblock_speedup);
    return 1;
  }
  if (!tune_ok) return 1;
  return 0;
}
