// Per-kernel ns/element across d in {768, 2048, 4096, 8192}: every backend's
// kernels plus the seed's scalar two-pass path (separate residual add, exact
// double-precision stats, temp normalize buffer, separate affine pass) as the
// pre-kernel-layer baseline. The JSON report is the anchor recorded in
// bench/kernel_baseline.json; --min-speedup gates CI on the fused vectorized
// residual_add_rmsnorm at d=4096 staying ahead of the seed path.
//
//   ./build/bench/norm_kernel_bench --json=bench/kernel_baseline.json
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json_lite.hpp"
#include "common/rng.hpp"
#include "kernels/kernels.hpp"
#include "numerics/formats.hpp"

using namespace haan;

namespace {

double g_sink = 0.0;  // defeats dead-code elimination across measurements

void sink(double v) {
  g_sink += v;
  asm volatile("" : : "r,m"(g_sink) : "memory");
}

/// Median-free simple timer: calibrates an iteration count to ~target_ms,
/// then reports ns per element over the timed loop.
double time_ns_per_element(const std::function<void()>& op, std::size_t d,
                           double target_ms) {
  using Clock = std::chrono::steady_clock;
  op();  // warm up caches and code
  std::size_t iters = 1;
  for (;;) {
    const Clock::time_point begin = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - begin)
            .count());
    if (ns >= target_ms * 1e6 || iters >= (1u << 24)) {
      return ns / static_cast<double>(iters) / static_cast<double>(d);
    }
    const double scale = ns > 0.0 ? (target_ms * 1.2e6) / ns : 16.0;
    iters = static_cast<std::size_t>(static_cast<double>(iters) *
                                     std::max(2.0, scale));
  }
}

/// The seed's pre-kernel-layer residual + norm sequence, verbatim: one add
/// pass, exact_stats (sum/sum_sq pass + centered two-pass variance), a temp
/// normalized buffer, and a separate affine pass.
void seed_residual_norm(std::vector<float>& h, const std::vector<float>& r,
                        const std::vector<float>& alpha,
                        const std::vector<float>& beta, std::vector<float>& out,
                        bool layernorm, double eps) {
  const std::size_t n = h.size();
  for (std::size_t i = 0; i < n; ++i) h[i] += r[i];
  double sum = 0.0, sum_sq = 0.0;
  for (const float v : h) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double dn = static_cast<double>(n);
  const double mean = sum / dn;
  double acc = 0.0;
  for (const float v : h) {
    const double dv = v - mean;
    acc += dv * dv;
  }
  const double variance = acc / dn;
  const double rms = std::sqrt(sum_sq / dn);
  double isd;
  double shift;
  if (layernorm) {
    isd = 1.0 / std::sqrt(variance + eps);
    shift = mean;
  } else {
    isd = 1.0 / std::sqrt(rms * rms + eps);
    shift = 0.0;
  }
  std::vector<float> normalized(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized[i] = static_cast<float>((h[i] - shift) * isd);
  }
  for (std::size_t i = 0; i < n; ++i) {
    float v = normalized[i];
    v *= alpha[i];
    v += beta[i];
    out[i] = v;
  }
}

struct Workspace {
  std::vector<float> h, residual, alpha, beta, out, quant;

  explicit Workspace(std::size_t d) : h(d), residual(d), alpha(d), beta(d), out(d), quant(d) {
    common::Rng rng(d);
    rng.fill_gaussian(h, 0.2, 1.5);
    rng.fill_gaussian(residual, 0.0, 0.02);  // keeps repeated adds bounded
    rng.fill_gaussian(alpha, 1.0, 0.1);
    rng.fill_gaussian(beta, 0.0, 0.2);
    rng.fill_gaussian(quant, 0.0, 2.0);
  }
};

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("normalization kernel microbenchmark");
  cli.add_flag("target-ms", "25", "per-measurement timed-loop budget, ms");
  cli.add_flag("min-speedup", "0",
               "fail unless fused residual_add_rmsnorm at d=4096 beats the "
               "seed scalar path by this factor (0 disables)");
  cli.add_flag("json", "", "write the report as JSON to this path");
  if (!cli.parse(argc, argv)) return cli.error() ? 1 : 0;

  const double target_ms = cli.get_double("target-ms");
  const double min_speedup = cli.get_double("min-speedup");
  const std::vector<std::size_t> dims = {768, 2048, 4096, 8192};
  constexpr double kEps = 1e-5;

  std::printf("=== norm_kernel_bench — active dispatch: %s ===\n",
              kernels::active_name());

  common::Json::Array results;
  double rmsnorm_speedup_4096 = 0.0;
  for (const std::size_t d : dims) {
    Workspace ws(d);
    common::Json::Object per_backend;

    // Seed reference: the pre-kernel-layer five-pass scalar path.
    common::Json::Object seed_ref;
    seed_ref["residual_add_rmsnorm"] = time_ns_per_element(
        [&] {
          seed_residual_norm(ws.h, ws.residual, ws.alpha, ws.beta, ws.out,
                             /*layernorm=*/false, kEps);
          sink(ws.out[0]);
        },
        d, target_ms);
    seed_ref["residual_add_layernorm"] = time_ns_per_element(
        [&] {
          seed_residual_norm(ws.h, ws.residual, ws.alpha, ws.beta, ws.out,
                             /*layernorm=*/true, kEps);
          sink(ws.out[0]);
        },
        d, target_ms);
    per_backend["seed_ref"] = seed_ref;

    double active_fused_rmsnorm = 0.0;
    for (const kernels::KernelTable* table : kernels::supported_kernels()) {
      common::Json::Object ops;
      ops["stats"] = time_ns_per_element(
          [&] { sink(table->stats(ws.h.data(), d).sum_sq); }, d, target_ms);
      ops["residual_add_stats"] = time_ns_per_element(
          [&] {
            sink(table->residual_add_stats(ws.h.data(), ws.residual.data(), d)
                     .sum_sq);
          },
          d, target_ms);
      ops["normalize_affine"] = time_ns_per_element(
          [&] {
            table->normalize_affine(ws.h.data(), d, 0.01, 0.66,
                                    ws.alpha.data(), ws.beta.data(),
                                    ws.out.data());
            sink(ws.out[0]);
          },
          d, target_ms);
      ops["quantize_int8"] = time_ns_per_element(
          [&] {
            table->quantize_dequantize(ws.quant.data(), d,
                                       numerics::NumericFormat::kINT8, 0.05f);
            sink(ws.quant[0]);
          },
          d, target_ms);
      ops["quantize_fp16"] = time_ns_per_element(
          [&] {
            table->quantize_dequantize(ws.quant.data(), d,
                                       numerics::NumericFormat::kFP16, 1.0f);
            sink(ws.quant[0]);
          },
          d, target_ms);
      const double fused_rms = time_ns_per_element(
          [&] {
            kernels::residual_add_rmsnorm(*table, ws.h, ws.residual, ws.alpha,
                                          ws.beta, ws.out, kEps);
            sink(ws.out[0]);
          },
          d, target_ms);
      ops["residual_add_rmsnorm"] = fused_rms;
      ops["residual_add_layernorm"] = time_ns_per_element(
          [&] {
            kernels::residual_add_layernorm(*table, ws.h, ws.residual, ws.alpha,
                                            ws.beta, ws.out, kEps);
            sink(ws.out[0]);
          },
          d, target_ms);
      per_backend[table->name] = ops;
      if (std::string(table->name) == kernels::active_name()) {
        active_fused_rmsnorm = fused_rms;
      }
    }

    common::Json::Object row;
    row["d"] = d;
    row["ns_per_element"] = per_backend;
    const double seed_rms = per_backend["seed_ref"]
                                .find("residual_add_rmsnorm")
                                ->as_number();
    const double speedup =
        active_fused_rmsnorm > 0.0 ? seed_rms / active_fused_rmsnorm : 0.0;
    row["speedup_fused_rmsnorm_vs_seed"] = speedup;
    if (d == 4096) rmsnorm_speedup_4096 = speedup;
    results.push_back(row);

    std::printf(
        "d=%5zu  seed %6.3f ns/el  fused(%s) %6.3f ns/el  speedup %5.2fx\n", d,
        seed_rms, kernels::active_name(), active_fused_rmsnorm, speedup);
  }

  common::Json::Object doc;
  doc["bench"] = "norm_kernel_bench";
  doc["active_kernel"] = kernels::active_name();
  common::Json::Array dims_json;
  for (const std::size_t d : dims) dims_json.push_back(d);
  doc["dims"] = dims_json;
  doc["results"] = results;

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    if (!common::write_file(json_path, common::Json(doc).dump_pretty() + "\n")) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json report: %s\n", json_path.c_str());
  }

  if (min_speedup > 0.0 && rmsnorm_speedup_4096 < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: fused residual_add_rmsnorm at d=4096 is %.2fx the seed "
                 "path (< required %.2fx)\n",
                 rmsnorm_speedup_4096, min_speedup);
    return 1;
  }
  return 0;
}
