// Microbenchmarks (google-benchmark) for the performance-sensitive kernels:
// the square-root inverter path, FP16 conversion, fixed-point arithmetic, the
// datapath units, and the end-to-end HAAN normalization operator.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "accel/accelerator.hpp"
#include "common/rng.hpp"
#include "core/haan_norm.hpp"
#include "numerics/fast_math.hpp"
#include "numerics/float16.hpp"
#include "tensor/norm_ref.hpp"

using namespace haan;

namespace {

std::vector<float> random_vector(std::size_t n, double stddev = 1.5) {
  common::Rng rng(42);
  std::vector<float> z(n);
  rng.fill_gaussian(z, 0.2, stddev);
  return z;
}

void BM_FastInvSqrt(benchmark::State& state) {
  const auto iterations = static_cast<int>(state.range(0));
  float x = 3.7f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::fast_inv_sqrt(x, iterations));
    x += 0.001f;
  }
}
BENCHMARK(BM_FastInvSqrt)->Arg(0)->Arg(1)->Arg(2);

void BM_ExactInvSqrt(benchmark::State& state) {
  double x = 3.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::exact_inv_sqrt(x));
    x += 0.001;
  }
}
BENCHMARK(BM_ExactInvSqrt);

void BM_Float16RoundTrip(benchmark::State& state) {
  float x = 1.2345f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::Float16(x).to_float());
    x += 0.001f;
  }
}
BENCHMARK(BM_Float16RoundTrip);

void BM_FixedMul(benchmark::State& state) {
  const numerics::FixedFormat f{26, 20};
  auto a = numerics::Fixed::from_double(1.37, f);
  const auto b = numerics::Fixed::from_double(0.731, f);
  for (auto _ : state) {
    a = mul(a, b, f);
    benchmark::DoNotOptimize(a);
    if (a.raw() == 0) a = numerics::Fixed::from_double(1.37, f);
  }
}
BENCHMARK(BM_FixedMul);

void BM_ReferenceLayerNorm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto z = random_vector(n);
  std::vector<float> out(n);
  for (auto _ : state) {
    tensor::layernorm(z, {}, {}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReferenceLayerNorm)->Arg(128)->Arg(1024)->Arg(4096);

void BM_HaanNormProvider(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool subsample = state.range(1) != 0;
  core::HaanConfig config;
  config.nsub = subsample ? n / 2 : 0;
  core::HaanNormProvider provider(config);
  const auto z = random_vector(n);
  std::vector<float> out(n);
  provider.begin_sequence();
  for (auto _ : state) {
    provider.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HaanNormProvider)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

void BM_IscDatapath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const accel::AcceleratorConfig config = accel::haan_v1();
  const auto z = random_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel::input_statistics_calculator(z, 0, model::NormKind::kLayerNorm,
                                           config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IscDatapath)->Arg(256)->Arg(1600);

void BM_AcceleratorRunLayer(benchmark::State& state) {
  const accel::HaanAccelerator accelerator(accel::haan_v1());
  common::Rng rng(7);
  const tensor::Tensor input =
      tensor::Tensor::randn(tensor::Shape{16, 512}, rng, 0.0, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accelerator.run_layer(input, {}, {}, model::NormKind::kLayerNorm, 256));
  }
}
BENCHMARK(BM_AcceleratorRunLayer);

void BM_CycleModel(benchmark::State& state) {
  const accel::HaanAccelerator accelerator(accel::haan_v1());
  accel::NormLayerWork work;
  work.n = 2560;
  work.vectors = 1024;
  work.nsub = 1280;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accelerator.time_layer(work));
  }
}
BENCHMARK(BM_CycleModel);

}  // namespace
