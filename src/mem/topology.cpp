#include "mem/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <dirent.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "common/assert.hpp"

namespace haan::mem {

namespace {

constexpr int kModeUnset = -1;

// Override encoded as int so a single atomic covers "unset" and every mode.
std::atomic<int> g_mode_override{kModeUnset};

std::vector<int> online_cpus_fallback() {
#ifdef __linux__
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  const std::size_t n = online > 0 ? static_cast<std::size_t>(online) : 1;
#else
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n = hw > 0 ? hw : 1;
#endif
  std::vector<int> cpus(n);
  for (std::size_t i = 0; i < n; ++i) cpus[i] = static_cast<int>(i);
  return cpus;
}

}  // namespace

const char* to_string(NumaMode mode) {
  switch (mode) {
    case NumaMode::kOff:
      return "off";
    case NumaMode::kAuto:
      return "auto";
    case NumaMode::kInterleave:
      return "interleave";
  }
  return "off";
}

std::optional<NumaMode> parse_numa_mode(std::string_view text) {
  if (text == "off" || text == "0") return NumaMode::kOff;
  if (text == "auto" || text == "1") return NumaMode::kAuto;
  if (text == "interleave") return NumaMode::kInterleave;
  return std::nullopt;
}

NumaMode numa_mode() {
  const int forced = g_mode_override.load(std::memory_order_relaxed);
  if (forced != kModeUnset) return static_cast<NumaMode>(forced);
  if (const char* env = std::getenv("HAAN_NUMA")) {
    if (const auto parsed = parse_numa_mode(env)) return *parsed;
  }
  return NumaMode::kAuto;
}

bool placement_enabled() { return numa_mode() != NumaMode::kOff; }

void set_numa_mode_override(NumaMode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void clear_numa_mode_override() {
  g_mode_override.store(kModeUnset, std::memory_order_relaxed);
}

std::vector<int> parse_cpu_list(std::string_view text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view seg = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim whitespace (sysfs files end in '\n').
    while (!seg.empty() && std::isspace(static_cast<unsigned char>(seg.front()))) {
      seg.remove_prefix(1);
    }
    while (!seg.empty() && std::isspace(static_cast<unsigned char>(seg.back()))) {
      seg.remove_suffix(1);
    }
    if (seg.empty()) continue;
    int lo = 0;
    int hi = 0;
    const std::size_t dash = seg.find('-');
    const char* seg_end = seg.data() + seg.size();
    if (dash == std::string_view::npos) {
      if (std::from_chars(seg.data(), seg_end, lo).ec != std::errc{}) continue;
      hi = lo;
    } else {
      const char* lo_end = seg.data() + dash;
      if (std::from_chars(seg.data(), lo_end, lo).ec != std::errc{}) continue;
      if (std::from_chars(lo_end + 1, seg_end, hi).ec != std::errc{}) continue;
    }
    if (lo < 0 || hi < lo) continue;
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology Topology::single_node() {
  Topology t;
  t.nodes_.push_back(NumaNode{0, online_cpus_fallback()});
  t.discovered_ = false;
  return t;
}

Topology Topology::from_sysfs(const std::string& root) {
  Topology t;
#ifdef __linux__
  if (DIR* dir = opendir(root.c_str())) {
    while (const dirent* entry = readdir(dir)) {
      const std::string_view name = entry->d_name;
      if (name.size() <= 4 || name.substr(0, 4) != "node") continue;
      int id = 0;
      const char* id_begin = name.data() + 4;
      const char* id_end = name.data() + name.size();
      if (std::from_chars(id_begin, id_end, id).ec != std::errc{} || id < 0) {
        continue;
      }
      std::ifstream cpulist(root + "/" + std::string(name) + "/cpulist");
      if (!cpulist) continue;
      std::stringstream buffer;
      buffer << cpulist.rdbuf();
      std::vector<int> cpus = parse_cpu_list(buffer.str());
      // Memory-only nodes (no CPUs) exist on some hosts; they cannot home a
      // worker, so they are dropped from the placement map.
      if (cpus.empty()) continue;
      t.nodes_.push_back(NumaNode{id, std::move(cpus)});
    }
    closedir(dir);
  }
#else
  (void)root;
#endif
  if (t.nodes_.empty()) return single_node();
  std::sort(t.nodes_.begin(), t.nodes_.end(),
            [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
  t.discovered_ = true;
  return t;
}

std::size_t Topology::total_cpus() const {
  std::size_t n = 0;
  for (const NumaNode& node : nodes_) n += node.cpus.size();
  return n;
}

int Topology::node_of_cpu(int cpu) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::vector<int>& cpus = nodes_[i].cpus;
    if (std::binary_search(cpus.begin(), cpus.end(), cpu)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Topology::cpu_for_slot(std::size_t index, std::size_t slot) const {
  HAAN_EXPECTS(index < nodes_.size());
  const std::vector<int>& cpus = nodes_[index].cpus;
  HAAN_EXPECTS(!cpus.empty());
  return cpus[slot % cpus.size()];
}

std::size_t Topology::max_node_cpus() const {
  std::size_t widest = 1;
  for (const NumaNode& node : nodes_) widest = std::max(widest, node.cpus.size());
  return widest;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << "nodes=" << nodes_.size() << " cpus=";
  for (const NumaNode& node : nodes_) {
    out << "[";
    // Compress runs, mirroring the sysfs cpulist format.
    for (std::size_t i = 0; i < node.cpus.size();) {
      std::size_t j = i;
      while (j + 1 < node.cpus.size() &&
             node.cpus[j + 1] == node.cpus[j] + 1) {
        ++j;
      }
      if (i != 0) out << ",";
      out << node.cpus[i];
      if (j > i) out << "-" << node.cpus[j];
      i = j + 1;
    }
    out << "]";
  }
  return out.str();
}

const Topology& topology() {
  static const Topology t = Topology::from_sysfs("/sys/devices/system/node");
  return t;
}

int current_cpu() {
#ifdef __linux__
  return sched_getcpu();
#else
  return -1;
#endif
}

int current_node() {
  const int cpu = current_cpu();
  if (cpu < 0) return 0;
  const int node = topology().node_of_cpu(cpu);
  return node < 0 ? 0 : node;
}

}  // namespace haan::mem
