// NUMA topology discovery and placement policy for the serving runtime.
// Nodes and their CPU lists are read from sysfs (/sys/devices/system/node)
// with no libnuma dependency; hosts without that tree (non-Linux, containers
// with a masked sysfs, single-socket machines exposing no node directories)
// degrade to a single synthetic node covering every online CPU. Placement is
// policy-gated by HAAN_NUMA (auto | off | interleave) plus a programmatic
// override so benches can sweep modes inside one process. Topology and mode
// only ever steer WHERE memory lives and which CPU a thread prefers — they
// never change computed values (the repo's bit-identity guarantee).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace haan::mem {

/// Memory/thread placement policy.
///   kOff        — legacy behavior: default allocator, no arena scopes, no
///                 topology-driven pinning (explicit HAAN_NORM_AFFINITY still
///                 honored, routed through the topology for node bounds).
///   kAuto       — arenas on; on multi-node hosts workers bind node-local
///                 (round-robin across nodes) and slabs mbind to the home node.
///   kInterleave — arenas on; slabs mbind interleaved across all nodes
///                 (the bandwidth-spreading baseline --numa-sweep compares
///                 node-local placement against).
enum class NumaMode { kOff, kAuto, kInterleave };

/// "off" | "auto" | "interleave".
const char* to_string(NumaMode mode);

/// Parses "off"/"0", "auto"/"1", "interleave"; nullopt on anything else.
std::optional<NumaMode> parse_numa_mode(std::string_view text);

/// Effective mode: the programmatic override if set, else HAAN_NUMA from the
/// environment (read afresh each call), else kAuto.
NumaMode numa_mode();

/// Arenas + placement active (numa_mode() != kOff).
bool placement_enabled();

/// Forces `mode` for the process regardless of HAAN_NUMA (benches sweep
/// off/auto/interleave in one process; tests pin a mode without env races).
void set_numa_mode_override(NumaMode mode);

/// Restores environment-driven mode resolution.
void clear_numa_mode_override();

/// One NUMA node: its sysfs id and the online CPUs it owns.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// Immutable node/CPU map. Always holds at least one node with at least one
/// CPU, so indexing code never needs an empty-topology branch.
class Topology {
 public:
  /// Reads `<root>/node<N>/cpulist` for every node directory under `root`.
  /// Falls back to single_node() when the tree is absent or yields no CPUs.
  /// Exposed (with the root parameter) so tests can point it at a fake tree.
  static Topology from_sysfs(const std::string& root);

  /// One synthetic node 0 covering every online CPU (the fallback path).
  static Topology single_node();

  /// Number of nodes (>= 1).
  std::size_t nodes() const { return nodes_.size(); }

  const NumaNode& node(std::size_t index) const { return nodes_[index]; }

  /// True when the map came from a sysfs node tree (false = fallback).
  bool discovered() const { return discovered_; }

  std::size_t total_cpus() const;

  /// Node INDEX (not sysfs id) owning `cpu`; -1 when unknown.
  int node_of_cpu(int cpu) const;

  /// CPU for round-robin slot `slot` within node `index` (wraps around the
  /// node's CPU list, never leaving the node).
  int cpu_for_slot(std::size_t index, std::size_t slot) const;

  /// CPU count of the widest node — the most chunks a row partition can use
  /// without crossing a socket (the autotuner's cross-node cap).
  std::size_t max_node_cpus() const;

  /// "nodes=2 cpus=[0-23][24-47]" — for bench/report headers and logs.
  std::string describe() const;

 private:
  std::vector<NumaNode> nodes_;
  bool discovered_ = false;
};

/// The host topology, discovered once per process (thread-safe memoization).
const Topology& topology();

/// Parses a sysfs cpulist ("0-3,8,10-11") into sorted CPU ids. Malformed
/// segments are skipped; exposed for tests.
std::vector<int> parse_cpu_list(std::string_view text);

/// CPU the calling thread is currently on (sched_getcpu), -1 when
/// unavailable.
int current_cpu();

/// Node index of the calling thread's CPU; 0 when it cannot be determined
/// (callers use it to pick an arena/pinning home, where node 0 is a safe
/// default).
int current_node();

}  // namespace haan::mem
