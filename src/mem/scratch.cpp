#include "mem/scratch.hpp"

namespace haan::mem {

namespace {

thread_local Arena* t_scratch = nullptr;

}  // namespace

Arena* current_scratch() { return t_scratch; }

std::pmr::memory_resource* current_resource() {
  return t_scratch != nullptr ? static_cast<std::pmr::memory_resource*>(t_scratch)
                              : std::pmr::get_default_resource();
}

ScratchScope::ScratchScope(Arena* arena)
    : previous_(t_scratch), engaged_(arena != nullptr) {
  if (engaged_) t_scratch = arena;
}

ScratchScope::~ScratchScope() {
  if (engaged_) t_scratch = previous_;
}

}  // namespace haan::mem
