// Thread-local scratch-arena scope. The serving worker opens a ScratchScope
// around each pack's forward; while the scope is active, every
// tensor::Tensor constructed ON THAT THREAD draws its storage from the
// worker's node-bound bump arena instead of the heap (current_resource()).
// Other threads — notably RowPartitionPool workers running span chunks — see
// no scope and keep allocating from the default resource, so the arena stays
// single-owner without any locking. With HAAN_NUMA=off no scope is ever
// opened and every allocation takes the legacy heap path.
#pragma once

#include <memory_resource>

#include "mem/arena.hpp"

namespace haan::mem {

/// The arena of the innermost active ScratchScope on this thread, or nullptr.
Arena* current_scratch();

/// current_scratch() when a scope is active, else
/// std::pmr::get_default_resource().
std::pmr::memory_resource* current_resource();

/// RAII: routes this thread's scratch allocations to `arena` (nullptr = leave
/// the current routing untouched, making call sites mode-agnostic). Nests.
class ScratchScope {
 public:
  explicit ScratchScope(Arena* arena);
  ~ScratchScope();

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  Arena* previous_;
  bool engaged_;
};

/// Destroy-and-reconstruct move assignment for pmr vectors: the vector move
/// CONSTRUCTOR always steals the buffer (keeping the source's allocator),
/// whereas pmr move *assignment* deep-copies when allocators differ — the
/// wrong behavior for handing an arena-backed result to a default-constructed
/// local. Tensor and friends build their move assignment on this.
template <typename T>
void steal_assign(std::pmr::vector<T>& dst, std::pmr::vector<T>&& src) noexcept {
  if (&dst == &src) return;
  using Vector = std::pmr::vector<T>;
  dst.~Vector();
  ::new (static_cast<void*>(&dst)) Vector(std::move(src));
}

}  // namespace haan::mem
