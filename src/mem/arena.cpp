#include "mem/arena.hpp"

#include <algorithm>
#include <new>

#ifdef __linux__
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "common/assert.hpp"
#include "mem/topology.hpp"

namespace haan::mem {

namespace {

std::size_t page_size() {
#ifdef __linux__
  static const std::size_t size = [] {
    const long value = sysconf(_SC_PAGESIZE);
    return value > 0 ? static_cast<std::size_t>(value) : 4096u;
  }();
  return size;
#else
  return 4096;
#endif
}

std::size_t round_up(std::size_t bytes, std::size_t unit) {
  return (bytes + unit - 1) / unit * unit;
}

#if defined(__linux__) && defined(SYS_mbind)
// From <linux/mempolicy.h>, defined locally so the build never needs libnuma
// or kernel headers beyond the syscall number.
constexpr int kMpolBind = 2;
constexpr int kMpolInterleave = 3;
#endif

}  // namespace

Arena::Arena(ArenaOptions options) : options_(options) {
  if (options_.initial_bytes == 0) options_.initial_bytes = page_size();
}

Arena::~Arena() {
  for (Slab& slab : slabs_) unmap_slab(slab);
}

void Arena::bind_slab(void* base, std::size_t size) const {
#if defined(__linux__) && defined(SYS_mbind)
  const Topology& topo = topology();
  if (!topo.discovered()) return;
  unsigned long nodemask[8] = {};
  const std::size_t max_node = sizeof(nodemask) * 8;
  int policy = 0;
  if (options_.interleave) {
    policy = kMpolInterleave;
    for (std::size_t i = 0; i < topo.nodes(); ++i) {
      const int id = topo.node(i).id;
      if (static_cast<std::size_t>(id) < max_node) {
        nodemask[id / (8 * sizeof(unsigned long))] |=
            1ul << (id % (8 * sizeof(unsigned long)));
      }
    }
  } else if (options_.node >= 0 &&
             static_cast<std::size_t>(options_.node) < topo.nodes()) {
    policy = kMpolBind;
    const int id = topo.node(static_cast<std::size_t>(options_.node)).id;
    if (static_cast<std::size_t>(id) >= max_node) return;
    nodemask[id / (8 * sizeof(unsigned long))] |=
        1ul << (id % (8 * sizeof(unsigned long)));
  } else {
    return;  // unbound: first-touch
  }
  // Best-effort: EPERM/ENOSYS in sandboxes, or a raced-offline node, just
  // leaves the slab on the default (first-touch) policy.
  (void)syscall(SYS_mbind, base, size, policy, nodemask, max_node + 1, 0);
#else
  (void)base;
  (void)size;
#endif
}

Arena::Slab Arena::map_slab(std::size_t min_bytes) {
  // Geometric growth from the last slab keeps the slab count logarithmic in
  // the warmup peak; reset() collapses the list again.
  std::size_t size = options_.initial_bytes;
  if (!slabs_.empty()) size = slabs_.back().size * 2;
  size = round_up(std::max(size, min_bytes), page_size());

  Slab slab;
  slab.size = size;
#ifdef __linux__
  void* base = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  HAAN_ASSERT(base != MAP_FAILED);
  bind_slab(base, size);
  slab.base = static_cast<std::byte*>(base);
#else
  slab.base = static_cast<std::byte*>(
      ::operator new(size, std::align_val_t{page_size()}));
#endif
  stats_.reserved_bytes += size;
  return slab;
}

void Arena::unmap_slab(Slab& slab) {
  if (slab.base == nullptr) return;
#ifdef __linux__
  munmap(slab.base, slab.size);
#else
  ::operator delete(slab.base, std::align_val_t{page_size()});
#endif
  stats_.reserved_bytes -= slab.size;
  slab.base = nullptr;
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  HAAN_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;
  ++stats_.allocations;

  if (!slabs_.empty()) {
    Slab& slab = slabs_.back();
    const std::size_t offset = round_up(slab.used, alignment);
    if (offset + bytes <= slab.size) {
      stats_.used_bytes += (offset + bytes) - slab.used;
      slab.used = offset + bytes;
      stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.used_bytes);
      return slab.base + offset;
    }
  }

  ++stats_.slab_allocations;
  // Slab bases are page-aligned, which dominates any sane alignment request.
  slabs_.push_back(map_slab(bytes));
  Slab& slab = slabs_.back();
  slab.used = bytes;
  stats_.used_bytes += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.used_bytes);
  return slab.base;
}

void Arena::reset() {
  ++stats_.resets;
  if (slabs_.size() > 1 ||
      (slabs_.size() == 1 && slabs_[0].size < stats_.peak_bytes)) {
    // Watermark consolidation: replace the slab list with one slab that fits
    // the lifetime peak, so the next identical workload never maps again.
    const std::size_t target =
        std::max(stats_.peak_bytes, options_.initial_bytes);
    for (Slab& slab : slabs_) unmap_slab(slab);
    slabs_.clear();
    slabs_.push_back(map_slab(target));
  }
  for (Slab& slab : slabs_) slab.used = 0;
  stats_.used_bytes = 0;
}

}  // namespace haan::mem
