// Page-aligned, node-bindable bump arenas. An Arena owns a small list of
// mmap'd slabs and serves allocations by bumping an offset; deallocation is a
// no-op and reset() rewinds the whole arena at once, consolidating to a
// single slab sized to the high watermark so a steady-state workload (one
// serve pack, one session's KV) stops touching the system allocator entirely
// after warmup. Slabs can be mbind()-bound to one NUMA node or interleaved
// across all of them; binding failures (no such node, sandboxed container,
// non-Linux) are silently ignored — placement is a locality hint, and
// first-touch by the (pinned) owning thread gives the same result on the
// common path. Arenas are single-owner and NOT thread-safe: one worker, one
// session, one provider each owns its own.
//
// The arena implements std::pmr::memory_resource, so std::pmr containers
// (Tensor storage, KvCache layers, RowNormWorkspace) allocate from it
// directly; do_deallocate is a no-op, which is exactly the right contract for
// per-pack scratch that dies wholesale at reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <span>
#include <vector>

namespace haan::mem {

struct ArenaOptions {
  /// First slab size; later slabs grow geometrically (and reset() replaces
  /// them with one slab sized to the peak). Rounded up to whole pages.
  std::size_t initial_bytes = std::size_t{1} << 20;

  /// Topology node INDEX to bind slabs to (-1 = unbound: first-touch decides
  /// placement, which lands node-local when the owner is pinned).
  int node = -1;

  /// Bind slabs interleaved across all nodes (wins over `node`).
  bool interleave = false;
};

struct ArenaStats {
  std::size_t reserved_bytes = 0;  ///< Σ slab sizes currently mapped
  std::size_t used_bytes = 0;      ///< bytes bumped since the last reset
  std::size_t peak_bytes = 0;      ///< high watermark of used_bytes (lifetime)
  std::uint64_t allocations = 0;   ///< allocate() calls (lifetime)
  /// allocate() calls that had to map a NEW slab. After watermark warmup this
  /// stops growing: reuse_ratio() -> 1.
  std::uint64_t slab_allocations = 0;
  std::uint64_t resets = 0;

  /// Fraction of allocations served from already-mapped slabs (1.0 when no
  /// allocation ever missed, or before any allocation).
  double reuse_ratio() const {
    return allocations == 0
               ? 1.0
               : 1.0 - static_cast<double>(slab_allocations) /
                           static_cast<double>(allocations);
  }
};

class Arena final : public std::pmr::memory_resource {
 public:
  explicit Arena(ArenaOptions options = {});
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` at `alignment` (power of two). Never fails short
  /// of mmap exhaustion; contents are unspecified (fresh slabs are
  /// kernel-zeroed, reused ones carry old bytes).
  void* allocate(std::size_t bytes,
                 std::size_t alignment = alignof(std::max_align_t));

  /// Typed convenience: `count` default-alignment elements.
  template <typename T>
  std::span<T> allocate_span(std::size_t count) {
    return {static_cast<T*>(allocate(count * sizeof(T), alignof(T))), count};
  }

  /// Rewinds the arena. Every pointer previously returned becomes invalid.
  /// When the bump high watermark outgrew the first slab, the slab list is
  /// consolidated into ONE slab covering the peak, so the next cycle of the
  /// same workload never maps again.
  void reset();

  const ArenaStats& stats() const { return stats_; }
  int node() const { return options_.node; }

 protected:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override {
    return allocate(bytes, alignment);
  }
  void do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                     std::size_t /*alignment*/) override {}
  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

 private:
  struct Slab {
    std::byte* base = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Slab map_slab(std::size_t min_bytes);
  void unmap_slab(Slab& slab);
  void bind_slab(void* base, std::size_t size) const;

  ArenaOptions options_;
  std::vector<Slab> slabs_;
  ArenaStats stats_;
};

}  // namespace haan::mem
