// Bounded MPMC request queue: the admission point of the serving runtime.
// Producers block when the queue is full (backpressure), consumers block when
// it is empty. close() wakes everyone; consumers drain remaining items and
// then observe end-of-stream. The queue keeps its own depth statistics,
// sampled after every successful push AND pop — a push-only sample stream
// (the old feeder-side sampling) never sees drain-phase decay and biases the
// mean depth upward.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/request.hpp"

namespace haan::serve {

/// Outcome of a non-blocking pop: distinguishes a queue that is momentarily
/// empty (more items may arrive) from one that is closed and fully drained
/// (end-of-stream), so non-blocking consumers don't spin after shutdown.
enum class TryPopResult {
  kItem,     ///< an item was popped
  kEmpty,    ///< nothing available right now; the queue is still open
  kDrained,  ///< closed and empty: no item will ever arrive again
};

/// Bounded blocking multi-producer / multi-consumer FIFO of Requests.
class RequestQueue {
 public:
  /// `capacity` must be > 0.
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while full. Returns false (request dropped) iff the queue was
  /// closed before space became available.
  bool push(Request request);

  /// Non-blocking push; false when full or closed.
  bool try_push(Request request);

  /// Blocks while empty. Returns nullopt only after close() with the queue
  /// fully drained (end-of-stream).
  std::optional<Request> pop();

  /// Non-blocking pop; nullopt when currently empty. Cannot distinguish
  /// "momentarily empty" from end-of-stream — prefer the tri-state overload
  /// in consumers that loop.
  std::optional<Request> try_pop();

  /// Non-blocking tri-state pop: fills `out` and returns kItem, or reports
  /// kEmpty (still open) / kDrained (closed and fully drained).
  TryPopResult try_pop(Request& out);

  /// Pop waiting at most `timeout`; nullopt on timeout or end-of-stream.
  std::optional<Request> pop_for(std::chrono::microseconds timeout);

  /// Closes the queue: no new pushes; consumers drain then see end-of-stream.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Deepest occupancy observed since construction (metrics).
  std::size_t high_watermark() const;

  /// Mean depth over all push/pop event samples (0 before any traffic).
  /// Unbiased across fill and drain phases: each successful push and pop
  /// contributes one sample of the post-operation depth.
  double mean_depth() const;

  /// Number of depth samples taken (pushes + pops).
  std::size_t depth_samples() const;

 private:
  /// Records the current depth after a successful push or pop; mu_ held.
  void sample_depth_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> items_;
  std::size_t high_watermark_ = 0;
  std::uint64_t depth_sum_ = 0;
  std::uint64_t depth_samples_ = 0;
  bool closed_ = false;
};

}  // namespace haan::serve
