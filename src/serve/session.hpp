// Live per-request decode state. A Session is born when the scheduler admits
// a Request, carries its KV cache and pending-token state across steps (a
// step = one span of a packed forward: a prefill chunk or a single decode
// row), and dies when the last token is generated. The SessionTable owns all
// live sessions for a worker pool and accounts KV bytes resident so metrics
// can report cache pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mem/arena.hpp"
#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "serve/request.hpp"

namespace haan::serve {

/// State of one request served incrementally. Owned by the SessionTable; at
/// any instant a session is EITHER inside exactly one worker's pack OR parked
/// in the scheduler's ready queue, so its fields need no lock of their own.
struct Session {
  Request request;

  /// Backing storage for `cache` under HAAN_NUMA=auto/interleave: a bump
  /// arena sized for the session's whole K/V footprint, recycled through the
  /// SessionTable's pool when the session dies. Declared BEFORE `cache` so
  /// the cache's pmr vectors are destroyed while their resource is alive.
  /// Null with placement off (cache allocates from the heap as before).
  std::unique_ptr<mem::Arena> kv_arena;

  model::KvCache cache;

  /// request.max_new_tokens clamped so fed tokens (prompt + all generated but
  /// the last) never exceed the model's max_seq_len.
  std::size_t max_new_tokens = 0;

  /// Tokens fed through the model so far (== cache.position()).
  std::size_t fed = 0;

  /// Stable storage for the single decode token a step feeds (spans point at
  /// this; `generated` may reallocate).
  int pending_token = -1;

  std::vector<int> generated;

  /// Running FNV-1a over the final hidden states of fed rows, in order.
  std::uint64_t hidden_hash = kChecksumSeed;

  /// Fed rows' final hidden states, accumulated only under keep_hidden.
  std::vector<float> hidden;

  double compute_us = 0.0;  ///< Σ forward durations of packs this session rode
  double ttft_us = 0.0;
  bool first_token_done = false;
  Clock::time_point last_token_at{};
  std::size_t steps = 0;

  /// KV bytes currently charged to the table's resident gauge.
  std::size_t kv_bytes_accounted = 0;

  std::size_t prompt_len() const { return request.tokens.size(); }
  bool prompt_done() const { return fed >= prompt_len(); }

  /// A session finishes when the prompt is fed and every token is generated.
  /// The last generated token is returned, never fed.
  bool finished() const {
    return prompt_done() && generated.size() >= max_new_tokens;
  }

  /// Rows the next step feeds: min(prefill_chunk, remaining prompt) while
  /// prefilling (prefill_chunk 0 = the whole remaining prompt), else 1 (the
  /// pending decode token).
  std::size_t next_rows(std::size_t prefill_chunk) const;
};

/// Registry of live sessions plus KV residency accounting. Thread-safe;
/// create/release serialize under one lock, but Session field access is
/// lock-free by the ownership rule above.
class SessionTable {
 public:
  /// `config` supplies KV cache shape and the max_seq_len decode clamp.
  explicit SessionTable(const model::ModelConfig& config);

  /// Admits a request: builds its KV cache, clamps max_new_tokens, stamps
  /// nothing. The returned pointer stays valid until release(id).
  Session* create(Request request);

  /// Removes a finished session, un-charging its KV bytes.
  void release(std::uint64_t id);

  std::size_t live() const;

  /// Re-charges `session`'s KV allocation to the resident gauge (call after
  /// each step; caches only grow).
  void account_kv(Session& session);

  /// KV bytes currently resident across live sessions (LOGICAL bytes — rows
  /// actually stored — so the gauge is comparable across HAAN_NUMA modes;
  /// arena capacity is reported separately via arena_usage()).
  std::size_t kv_bytes_resident() const;

  /// High watermark of kv_bytes_resident() over the table's lifetime.
  std::size_t max_kv_bytes() const;

  /// Aggregate arena accounting across live sessions and the recycle pool
  /// (all zero with placement off).
  struct ArenaUsage {
    std::size_t reserved_bytes = 0;
    std::uint64_t allocations = 0;
    std::uint64_t slab_allocations = 0;
    std::uint64_t resets = 0;
  };
  ArenaUsage arena_usage() const;

 private:
  const std::size_t n_blocks_;
  const std::size_t d_model_;
  const std::size_t max_seq_len_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  /// Arenas of dead sessions, reset and waiting for the next create(). Reuse
  /// converges each arena to one slab at the largest session footprint seen,
  /// so steady-state session churn performs zero system allocations for KV.
  std::vector<std::unique_ptr<mem::Arena>> arena_pool_;
  std::size_t kv_bytes_ = 0;
  std::size_t max_kv_bytes_ = 0;
};

}  // namespace haan::serve
