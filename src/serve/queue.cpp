#include "serve/queue.hpp"

#include "common/assert.hpp"

namespace haan::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  HAAN_EXPECTS(capacity > 0);
}

void RequestQueue::sample_depth_locked() {
  if (items_.size() > high_watermark_) high_watermark_ = items_.size();
  depth_sum_ += items_.size();
  ++depth_samples_;
}

bool RequestQueue::push(Request request) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
  if (closed_) return false;
  items_.push_back(std::move(request));
  sample_depth_locked();
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::try_push(Request request) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(request));
  sample_depth_locked();
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request request = std::move(items_.front());
  items_.pop_front();
  sample_depth_locked();
  lock.unlock();
  not_full_.notify_one();
  return request;
}

std::optional<Request> RequestQueue::try_pop() {
  Request request;
  if (try_pop(request) != TryPopResult::kItem) return std::nullopt;
  return request;
}

TryPopResult RequestQueue::try_pop(Request& out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (items_.empty()) {
    return closed_ ? TryPopResult::kDrained : TryPopResult::kEmpty;
  }
  out = std::move(items_.front());
  items_.pop_front();
  sample_depth_locked();
  lock.unlock();
  not_full_.notify_one();
  return TryPopResult::kItem;
}

std::optional<Request> RequestQueue::pop_for(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!not_empty_.wait_for(lock, timeout,
                           [&] { return !items_.empty() || closed_; })) {
    return std::nullopt;  // timeout
  }
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request request = std::move(items_.front());
  items_.pop_front();
  sample_depth_locked();
  lock.unlock();
  not_full_.notify_one();
  return request;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::size_t RequestQueue::high_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_watermark_;
}

double RequestQueue::mean_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_samples_ == 0 ? 0.0
                             : static_cast<double>(depth_sum_) /
                                   static_cast<double>(depth_samples_);
}

std::size_t RequestQueue::depth_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_samples_;
}

}  // namespace haan::serve
