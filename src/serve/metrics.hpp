// Serving metrics: per-request latency percentiles (p50/p95/p99), throughput,
// batch and queue-depth statistics, and HAAN norm-execution counters
// aggregated across workers. The collector is thread-safe and STREAMING: all
// latency distributions live in fixed-size log-bucketed histograms
// (common::LogHistogram) and every other statistic is a running
// count/sum/max, so collector memory is constant no matter how many requests
// complete — finalize() may be called mid-run (live snapshots) as well as at
// drain time, rendering an immutable summary that serializes to JSON for
// trajectory anchoring.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/json_lite.hpp"
#include "core/haan_norm.hpp"
#include "mem/arena.hpp"
#include "serve/request.hpp"

namespace haan::serve {

/// Aggregated HAAN execution counters (sums across all workers' providers).
using NormCounters = core::HaanNormProvider::Counters;

/// Latency distribution summary in microseconds.
struct LatencySummary {
  std::size_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  common::Json to_json() const;
};

/// Bucket layout for latency histograms: 1 us resolution floor, 1000 s cap,
/// 48 buckets per decade — every quantile is within ~4.9%
/// (one bucket ratio) of the exact nearest-rank sample.
common::LogHistogram::Config latency_histogram_config();

/// EXACT nearest-rank reference summary from an unsorted sample set (all
/// zeros when empty). The serving runtime itself summarizes from histograms
/// (summarize_histogram); this stays as the oracle the histogram path is
/// tolerance-tested against, and for small offline sample sets.
LatencySummary summarize_latency(std::vector<double> samples);

/// Histogram-backed summary: count/mean/max are exact, p50/p95/p99 are
/// bucket-resolution (within one bucket ratio of the exact nearest-rank).
LatencySummary summarize_histogram(const common::LogHistogram& histogram);

/// The kernel backend + autotune decision behind this run's norm layers,
/// stamped by the server from kernels::tuned_for(d_model). One decision
/// covers every norm layer (the tuner picks per row width, and all of a
/// model's norm layers share d_model).
struct KernelTuningInfo {
  std::string backend;   ///< tuned table name ("avx512-pf", "avx2", ...)
  std::string dispatch;  ///< static dispatch family (kernels::active_name())
  std::string source;    ///< "static" | "measured" | "cache"
  bool cache_hit = false;
  std::size_t d = 0;          ///< row width the choice was tuned for
  std::size_t rows_tile = 0;  ///< tile where the winner's advantage peaks
  std::size_t norm_layers = 0;  ///< norm layers the decision applies to

  common::Json to_json() const;
};

/// NUMA/arena placement accounting. Worker scratch-arena stats are folded in
/// by workers at drain (MetricsCollector::add_arena_stats); the topology
/// fields, KV arena usage, and the cross-node row delta are stamped by the
/// server (it owns the SessionTable and the run's start/end counter samples).
/// arena_* are all zero under HAAN_NUMA=off — the legacy allocator is in
/// force and no arena exists.
struct MemPlacementInfo {
  std::string numa_mode;  ///< "off" | "auto" | "interleave"
  int nodes = 1;          ///< NUMA nodes the topology discovered
  std::size_t arena_bytes = 0;  ///< Σ reserved slab bytes, scratch + KV arenas
  std::uint64_t arena_allocations = 0;
  std::uint64_t arena_slab_allocations = 0;  ///< allocations that mapped a new slab
  std::uint64_t arena_resets = 0;
  /// Rows whose row-partition chunk executed off its pool's home node during
  /// the run (0 on single-node hosts or with placement off).
  std::uint64_t cross_node_rows = 0;
  bool cross_node_partition = true;  ///< autotuner's cross-socket verdict

  /// Fraction of arena allocations served from already-mapped slabs. The
  /// --numa-sweep gate requires this >= 0.95 after warmup: steady-state
  /// serving should not be talking to the system allocator.
  double arena_reuse_ratio() const {
    return arena_allocations == 0
               ? 1.0
               : 1.0 - static_cast<double>(arena_slab_allocations) /
                           static_cast<double>(arena_allocations);
  }

  common::Json to_json() const;
};

/// Per-priority-class slice of the run: served-latency summary plus the SLA
/// outcome counters, so overload runs are debuggable per class from the
/// metrics artifact alone.
struct PrioritySummary {
  LatencySummary total;  ///< enqueue -> completion of SERVED requests
  std::size_t shed = 0;
  std::size_t degraded = 0;
  std::size_t deadline_missed = 0;

  common::Json to_json() const;
};

/// Immutable end-of-run (or mid-run snapshot) metrics.
struct ServeMetrics {
  std::size_t completed = 0;  ///< requests SERVED (excludes shed)
  double wall_us = 0.0;
  double throughput_rps = 0.0;

  LatencySummary total;    ///< enqueue -> completion
  LatencySummary queued;   ///< enqueue -> dequeue
  LatencySummary compute;  ///< forward pass

  /// Phase latencies, reported SEPARATELY from totals: TTFT is enqueue ->
  /// first-token step (recorded per request, including prefill-only ones,
  /// where it is the prompt-completion step); inter-token is the gap between
  /// consecutive decoded-token completions of one session (count = Σ
  /// max(generated - 1, 0)). Both empty outside chunked/session execution.
  LatencySummary ttft;
  LatencySummary intertoken;

  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  std::size_t max_batch_size = 0;

  /// Queue depth statistics, stamped by the server from the RequestQueue's
  /// own event-sampled accounting (every push AND pop, so drain-phase decay
  /// is represented; see RequestQueue::mean_depth).
  std::size_t max_queue_depth = 0;
  double mean_queue_depth = 0.0;

  /// Mega-batch packing: one "pack" = one cross-request forward_hidden_batch
  /// over a whole scheduler batch. Zero in per-request mode.
  std::uint64_t packed_forwards = 0;
  std::size_t packed_rows = 0;       ///< Σ seq_len over all packs
  std::size_t packed_sequences = 0;  ///< Σ requests over all packs
  /// Scheduler max_batch, stamped by the server so occupancy is computable.
  std::size_t pack_capacity = 0;

  /// Phase row accounting under chunked/session execution: every packed row
  /// is either a prefill row (prompt chunk) or a decode row (one generated
  /// token fed back). Pack phase counts classify whole packs: pure-prefill,
  /// pure-decode, or mixed. All zero outside session mode.
  std::size_t prefill_rows = 0;
  std::size_t decode_rows = 0;
  std::uint64_t prefill_packs = 0;
  std::uint64_t decode_packs = 0;
  std::uint64_t mixed_packs = 0;

  /// KV cache residency: bytes at the last sample (final = 0 after drain) and
  /// the high watermark across the run. Zero outside session mode.
  std::size_t kv_bytes_resident = 0;
  std::size_t max_kv_bytes = 0;

  /// SLA outcomes: requests shed (completed unserved), served on the degrade
  /// provider, or served past their deadline. A shed request is counted here
  /// and NOT in `completed`/latency histograms — it is distinguishable from
  /// one that never arrived.
  std::size_t shed_requests = 0;
  std::size_t degraded_requests = 0;
  std::size_t deadline_missed_requests = 0;

  /// Per-priority-class latency + SLA breakdown (key = Request.priority).
  std::map<int, PrioritySummary> per_priority;

  NormCounters norm;

  KernelTuningInfo kernel;

  MemPlacementInfo mem;

  /// Mean prefill rows per pack that carried any prefill (0 when none did).
  double prefill_rows_per_pack() const {
    const std::uint64_t packs = prefill_packs + mixed_packs;
    return packs == 0 ? 0.0
                      : static_cast<double>(prefill_rows) /
                            static_cast<double>(packs);
  }

  /// Mean decode rows per pack that carried any decode (0 when none did).
  double decode_rows_per_pack() const {
    const std::uint64_t packs = decode_packs + mixed_packs;
    return packs == 0 ? 0.0
                      : static_cast<double>(decode_rows) /
                            static_cast<double>(packs);
  }

  /// Mean rows per batched norm call (0 when the batch path never ran) — the
  /// row-block execution model's utilization: Σ seq_len of a whole mega-batch
  /// under packed execution, seq_len for per-request forwards, 1 if the seam
  /// degenerated to token-at-a-time calls.
  double rows_per_batched_call() const {
    return norm.batched_norm_calls == 0
               ? 0.0
               : static_cast<double>(norm.batched_rows) /
                     static_cast<double>(norm.batched_norm_calls);
  }

  /// Mean token rows packed into one cross-request forward.
  double rows_per_pack() const {
    return packed_forwards == 0 ? 0.0
                                : static_cast<double>(packed_rows) /
                                      static_cast<double>(packed_forwards);
  }

  /// Batch-pack occupancy: mean sequences per pack relative to the
  /// scheduler's max_batch — 1.0 when every pack carried a full batch, lower
  /// when max-wait expiry or end-of-stream closed batches early.
  double pack_occupancy() const {
    return packed_forwards == 0 || pack_capacity == 0
               ? 0.0
               : static_cast<double>(packed_sequences) /
                     (static_cast<double>(packed_forwards) *
                      static_cast<double>(pack_capacity));
  }

  common::Json to_json() const;
  std::string to_string() const;  ///< multi-line human-readable report
};

/// Thread-safe streaming metrics sink shared by the feeder and all workers.
/// Memory is constant in the number of completed requests (three fixed-size
/// histograms plus counters).
class MetricsCollector {
 public:
  MetricsCollector();

  /// Records one completed request (called by workers).
  void record(const RequestResult& result);

  /// Records one formed batch's size (called by workers).
  void record_batch(std::size_t batch_size);

  /// Records one packed cross-request forward (called by workers in
  /// mega-batch mode): `rows` = Σ seq_len, `sequences` = requests packed.
  void record_packed(std::size_t rows, std::size_t sequences);

  /// Records one step pack's phase mix (session mode): prefill vs decode rows
  /// it carried. Classifies the pack as prefill/decode/mixed internally.
  void record_step_pack(std::size_t prefill_rows, std::size_t decode_rows);

  /// Records one request's time-to-first-token (microseconds).
  void record_ttft(double us);

  /// Records one inter-token gap (microseconds) between consecutive decoded
  /// tokens of a session.
  void record_intertoken(double us);

  /// Samples the KV-bytes-resident gauge (session mode, after each step).
  void record_kv_bytes(std::size_t bytes);

  /// Accumulates one worker's provider counters at drain time.
  void add_norm_counters(const NormCounters& counters);

  /// Accumulates one arena's lifetime stats (called by workers for their
  /// scratch arenas at drain, and by the server for the session table's KV
  /// arenas). Sums land in ServeMetrics::mem.
  void add_arena_stats(const mem::ArenaStats& stats);

  /// Number of results recorded so far.
  std::size_t completed() const;

  /// Renders the summary; `wall_us` is the workload wall-clock span so far.
  /// Cheap and safe to call while workers are still recording (the live
  /// snapshot path); queue-depth fields are left zero for the server/caller
  /// to stamp from the RequestQueue.
  ServeMetrics finalize(double wall_us) const;

  /// Bytes retained by the collector — constant for its lifetime (histogram
  /// buckets + counters), asserted by tests to stay flat under load.
  std::size_t approx_memory_bytes() const;

 private:
  /// Per-priority streaming slice (lazy: one per distinct priority class, so
  /// memory stays constant for a fixed class set).
  struct PriorityBucket {
    common::LogHistogram total_us;
    std::size_t shed = 0;
    std::size_t degraded = 0;
    std::size_t deadline_missed = 0;

    PriorityBucket() : total_us(latency_histogram_config()) {}
  };

  PriorityBucket& priority_bucket(int priority);  ///< mu_ held by caller

  mutable std::mutex mu_;
  common::LogHistogram total_us_;
  common::LogHistogram queue_us_;
  common::LogHistogram compute_us_;
  common::LogHistogram ttft_us_;
  common::LogHistogram intertoken_us_;
  std::map<int, PriorityBucket> per_priority_;
  std::size_t shed_ = 0;
  std::size_t degraded_ = 0;
  std::size_t deadline_missed_ = 0;
  std::uint64_t batch_count_ = 0;
  std::size_t batch_requests_ = 0;
  std::size_t max_batch_size_ = 0;
  std::uint64_t packed_forwards_ = 0;
  std::size_t packed_rows_ = 0;
  std::size_t packed_sequences_ = 0;
  std::size_t prefill_rows_ = 0;
  std::size_t decode_rows_ = 0;
  std::uint64_t prefill_packs_ = 0;
  std::uint64_t decode_packs_ = 0;
  std::uint64_t mixed_packs_ = 0;
  std::size_t kv_bytes_resident_ = 0;
  std::size_t max_kv_bytes_ = 0;
  NormCounters norm_;
  std::size_t arena_bytes_ = 0;
  std::uint64_t arena_allocations_ = 0;
  std::uint64_t arena_slab_allocations_ = 0;
  std::uint64_t arena_resets_ = 0;
};

}  // namespace haan::serve
