// Continuous-batching scheduler: turns the request stream into batches for
// the worker pool. A batch opens when the first request is popped and closes
// when either max_batch requests have been collected, the row budget is
// reached, or max_wait has elapsed since the batch opened — the classic
// batching latency/throughput knob. Batch formation is serialized so batches
// carry monotonically increasing sequence numbers.
//
// Formation order is a policy (serve/policy.hpp): FIFO keeps the legacy
// contiguous arrival runs (fairness: no request can be overtaken by a later
// arrival in a different batch); BINNED anchors each batch on the oldest
// pending request and fills from its prompt-length bin so packs carry
// near-uniform lengths (higher pack occupancy under a row budget, less
// ragged-tail waste); EDF orders by effective priority then deadline slack
// within the same bins. Under overload, admission control sheds or degrades
// deadline-bearing requests before they are packed; shed requests ride out
// in Batch.shed and degraded ones form provider-uniform degraded batches.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/policy.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace haan::serve {

/// Batch formation knobs.
struct SchedulerConfig {
  /// Maximum requests per batch; must be > 0.
  std::size_t max_batch = 8;

  /// Maximum time to hold an open batch waiting for more requests.
  std::chrono::microseconds max_wait{1000};

  /// Row budget: cap on Σ prompt rows per batch (0 = unlimited, the legacy
  /// behavior). With a budget, mixed-length FIFO batches exhaust rows with
  /// few sequences while binned batches fill every max_batch slot — the
  /// lever that lets length binning raise pack occupancy.
  std::size_t max_rows = 0;

  /// Formation order + overload admission control (serve/policy.hpp).
  PolicyConfig policy;
};

/// One formed batch.
struct Batch {
  std::uint64_t sequence = 0;  ///< monotone formation order
  std::vector<Request> requests;

  /// True: every request aboard is degraded and the worker must execute the
  /// batch on its degrade provider. Lanes never mix in one batch.
  bool degraded = false;

  /// Requests shed by admission control during this formation pass. The
  /// worker records them as unserved results (no forward runs). A batch may
  /// carry shed requests and no serveable ones (requests empty).
  std::vector<Request> shed;
};

/// Pulls batches off a RequestQueue. Thread-safe: any number of workers may
/// call next_batch() concurrently; formation itself is serialized.
class BatchScheduler {
 public:
  /// Resolves policy kAuto against HAAN_SCHED_POLICY at construction.
  BatchScheduler(RequestQueue& queue, SchedulerConfig config);

  /// Blocks for the next batch. Returns nullopt only at end-of-stream (queue
  /// closed and drained, reorder pool empty). The returned batch has
  /// 0..max_batch serveable requests (0 only when it carries shed requests),
  /// each stamped with its dequeue time.
  std::optional<Batch> next_batch();

  /// Number of batches formed so far.
  std::uint64_t batches_formed() const;

  const SchedulerConfig& config() const { return config_; }

  /// The formation order in effect (config policy with kAuto resolved).
  SchedPolicy policy() const { return policy_; }

 private:
  /// Drains everything currently queued into the pool without blocking;
  /// returns the queue state seen at the end (kEmpty or kDrained).
  TryPopResult drain_queue_into_pool();

  /// The pre-policy formation path: direct FIFO pops, no reorder pool. Taken
  /// when the config is pure legacy (FIFO order, no row budget, no overload
  /// admission) so existing behavior stays bit-for-bit identical.
  std::optional<Batch> next_batch_fifo();

  RequestQueue& queue_;
  SchedulerConfig config_;
  SchedPolicy policy_;  ///< resolved (never kAuto)
  bool legacy_fifo_;    ///< pure-FIFO fast path, bypasses the pool
  std::mutex mu_;       ///< serializes batch formation (fairness)
  PendingPool pool_;    ///< policy reorder buffer (guarded by mu_)
  /// Atomic (not mu_-guarded) so batches_formed() never blocks behind a
  /// worker that is parked inside next_batch() holding mu_.
  std::atomic<std::uint64_t> next_sequence_{0};
};

}  // namespace haan::serve
