// Continuous-batching scheduler: turns the FIFO request stream into batches
// for the worker pool. A batch opens when the first request is popped and
// closes when either max_batch requests have been collected or max_wait has
// elapsed since the batch opened — the classic batching latency/throughput
// knob. Batch formation is serialized so batches are contiguous FIFO runs
// with monotonically increasing sequence numbers (fairness: no request can be
// overtaken by a later arrival in a different batch).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace haan::serve {

/// Batch formation knobs.
struct SchedulerConfig {
  /// Maximum requests per batch; must be > 0.
  std::size_t max_batch = 8;

  /// Maximum time to hold an open batch waiting for more requests.
  std::chrono::microseconds max_wait{1000};
};

/// One formed batch.
struct Batch {
  std::uint64_t sequence = 0;  ///< monotone formation order
  std::vector<Request> requests;
};

/// Pulls batches off a RequestQueue. Thread-safe: any number of workers may
/// call next_batch() concurrently; formation itself is serialized.
class BatchScheduler {
 public:
  BatchScheduler(RequestQueue& queue, SchedulerConfig config);

  /// Blocks for the next batch. Returns nullopt only at end-of-stream (queue
  /// closed and drained). The returned batch has 1..max_batch requests, each
  /// stamped with its dequeue time.
  std::optional<Batch> next_batch();

  /// Number of batches formed so far.
  std::uint64_t batches_formed() const;

  const SchedulerConfig& config() const { return config_; }

 private:
  RequestQueue& queue_;
  SchedulerConfig config_;
  std::mutex mu_;  ///< serializes batch formation (FIFO fairness)
  /// Atomic (not mu_-guarded) so batches_formed() never blocks behind a
  /// worker that is parked inside next_batch() holding mu_.
  std::atomic<std::uint64_t> next_sequence_{0};
};

}  // namespace haan::serve
