#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace haan::serve {

std::optional<Scenario> try_scenario_from_string(const std::string& name) {
  if (name == "steady") return Scenario::kSteady;
  if (name == "bursty") return Scenario::kBursty;
  if (name == "ramp") return Scenario::kRamp;
  return std::nullopt;
}

Scenario scenario_from_string(const std::string& name) {
  const auto scenario = try_scenario_from_string(name);
  HAAN_EXPECTS(scenario.has_value() &&
               "unknown scenario (expected steady | bursty | ramp)");
  return *scenario;
}

std::string to_string(Scenario scenario) {
  switch (scenario) {
    case Scenario::kSteady: return "steady";
    case Scenario::kBursty: return "bursty";
    case Scenario::kRamp: return "ramp";
  }
  return "?";
}

std::optional<LengthModel> try_length_model_from_string(const std::string& name) {
  if (name == "fixed") return LengthModel::kFixed;
  if (name == "uniform") return LengthModel::kUniform;
  if (name == "bimodal") return LengthModel::kBimodal;
  return std::nullopt;
}

LengthModel length_model_from_string(const std::string& name) {
  const auto model = try_length_model_from_string(name);
  HAAN_EXPECTS(model.has_value() &&
               "unknown length model (expected fixed | uniform | bimodal)");
  return *model;
}

std::string to_string(LengthModel model) {
  switch (model) {
    case LengthModel::kFixed: return "fixed";
    case LengthModel::kUniform: return "uniform";
    case LengthModel::kBimodal: return "bimodal";
  }
  return "?";
}

std::optional<DecodeModel> try_decode_model_from_string(const std::string& name) {
  if (name == "none") return DecodeModel::kNone;
  if (name == "fixed") return DecodeModel::kFixed;
  if (name == "geometric") return DecodeModel::kGeometric;
  return std::nullopt;
}

DecodeModel decode_model_from_string(const std::string& name) {
  const auto model = try_decode_model_from_string(name);
  HAAN_EXPECTS(model.has_value() &&
               "unknown decode model (expected none | fixed | geometric)");
  return *model;
}

std::string to_string(DecodeModel model) {
  switch (model) {
    case DecodeModel::kNone: return "none";
    case DecodeModel::kFixed: return "fixed";
    case DecodeModel::kGeometric: return "geometric";
  }
  return "?";
}

namespace {

/// Instantaneous Poisson rate for request `i` of `n` under the scenario.
double instant_rate(const WorkloadConfig& config, std::size_t i) {
  switch (config.scenario) {
    case Scenario::kSteady:
      return config.rate_rps;
    case Scenario::kBursty: {
      // Phases alternate every burst_period *requests*, so the time-average
      // arrival rate is the harmonic mean of the two phase rates: the raw
      // rate*f / rate/f square wave has mean inter-arrival (1/f + f)/2 / rate
      // and under-delivers the configured rate by that factor. Scale both
      // phases by it so the mean arrival rate equals rate_rps while the
      // peak:trough ratio stays f^2.
      const double f = config.burst_factor;
      const double balance = 0.5 * (f + 1.0 / f);
      const bool peak = (i / config.burst_period) % 2 == 0;
      return peak ? config.rate_rps * f * balance
                  : config.rate_rps / f * balance;
    }
    case Scenario::kRamp: {
      const double t = config.n_requests <= 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(config.n_requests - 1);
      return config.rate_rps *
             (config.ramp_start + (config.ramp_end - config.ramp_start) * t);
    }
  }
  return config.rate_rps;
}

std::size_t draw_length(const WorkloadConfig& config, common::Rng& rng) {
  switch (config.length_model) {
    case LengthModel::kFixed:
      return config.min_prompt;
    case LengthModel::kUniform:
      return config.min_prompt +
             rng.uniform_index(config.max_prompt - config.min_prompt + 1);
    case LengthModel::kBimodal:
      return rng.uniform() < config.long_fraction ? config.max_prompt
                                                  : config.min_prompt;
  }
  return config.min_prompt;
}

std::size_t draw_decode(const WorkloadConfig& config, common::Rng& rng) {
  switch (config.decode_model) {
    case DecodeModel::kNone:
      return 0;
    case DecodeModel::kFixed:
      return std::min(config.decode_tokens, config.max_decode);
    case DecodeModel::kGeometric: {
      // Geometric on {1, 2, ...} with mean decode_tokens via inversion:
      // n = 1 + floor(log(1-u) / log(1-p)), p = 1/mean.
      const double p = 1.0 / static_cast<double>(config.decode_tokens);
      const double u = rng.uniform();
      const double n = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
      return std::min(static_cast<std::size_t>(std::max(n, 1.0)),
                      config.max_decode);
    }
  }
  return 0;
}

}  // namespace

std::vector<Request> generate_workload(const WorkloadConfig& config) {
  HAAN_EXPECTS(config.rate_rps > 0.0);
  HAAN_EXPECTS(config.min_prompt > 0 && config.min_prompt <= config.max_prompt);
  HAAN_EXPECTS(config.vocab_size > 0);
  HAAN_EXPECTS(config.burst_factor >= 1.0 && config.burst_period > 0);
  // A non-positive ramp endpoint would yield an infinite or negative
  // inter-arrival time at some point of the run.
  HAAN_EXPECTS(config.ramp_start > 0.0 && config.ramp_end > 0.0);
  if (config.decode_model != DecodeModel::kNone) {
    HAAN_EXPECTS(config.decode_tokens >= 1 && config.max_decode >= 1);
  }

  common::Rng root(config.seed);
  common::Rng arrival_rng = root.fork();
  common::Rng length_rng = root.fork();
  common::Rng token_rng = root.fork();
  // Forked LAST so the streams above keep their pre-decode sequences: a seed
  // produces the exact same arrivals/prompts whether or not decode is on.
  common::Rng decode_rng = root.fork();

  std::vector<Request> requests;
  requests.reserve(config.n_requests);
  double clock_us = 0.0;
  for (std::size_t i = 0; i < config.n_requests; ++i) {
    // Exponential inter-arrival at the scenario's instantaneous rate.
    const double rate = instant_rate(config, i);
    const double u = arrival_rng.uniform();
    clock_us += -std::log(1.0 - u) / rate * 1e6;

    Request request;
    request.id = i;
    request.arrival_us = clock_us;
    const std::size_t len = draw_length(config, length_rng);
    request.tokens.resize(len);
    for (auto& token : request.tokens) {
      token = static_cast<int>(token_rng.uniform_index(config.vocab_size));
    }
    request.max_new_tokens = draw_decode(config, decode_rng);
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace haan::serve
