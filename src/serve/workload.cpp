#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace haan::serve {

std::optional<Scenario> try_scenario_from_string(const std::string& name) {
  if (name == "steady") return Scenario::kSteady;
  if (name == "bursty") return Scenario::kBursty;
  if (name == "ramp") return Scenario::kRamp;
  if (name == "diurnal") return Scenario::kDiurnal;
  if (name == "overload") return Scenario::kOverload;
  return std::nullopt;
}

Scenario scenario_from_string(const std::string& name) {
  const auto scenario = try_scenario_from_string(name);
  HAAN_EXPECTS(scenario.has_value() &&
               "unknown scenario (expected steady | bursty | ramp | diurnal | "
               "overload)");
  return *scenario;
}

std::string to_string(Scenario scenario) {
  switch (scenario) {
    case Scenario::kSteady: return "steady";
    case Scenario::kBursty: return "bursty";
    case Scenario::kRamp: return "ramp";
    case Scenario::kDiurnal: return "diurnal";
    case Scenario::kOverload: return "overload";
  }
  return "?";
}

std::optional<LengthModel> try_length_model_from_string(const std::string& name) {
  if (name == "fixed") return LengthModel::kFixed;
  if (name == "uniform") return LengthModel::kUniform;
  if (name == "bimodal") return LengthModel::kBimodal;
  return std::nullopt;
}

LengthModel length_model_from_string(const std::string& name) {
  const auto model = try_length_model_from_string(name);
  HAAN_EXPECTS(model.has_value() &&
               "unknown length model (expected fixed | uniform | bimodal)");
  return *model;
}

std::string to_string(LengthModel model) {
  switch (model) {
    case LengthModel::kFixed: return "fixed";
    case LengthModel::kUniform: return "uniform";
    case LengthModel::kBimodal: return "bimodal";
  }
  return "?";
}

std::optional<DecodeModel> try_decode_model_from_string(const std::string& name) {
  if (name == "none") return DecodeModel::kNone;
  if (name == "fixed") return DecodeModel::kFixed;
  if (name == "geometric") return DecodeModel::kGeometric;
  return std::nullopt;
}

DecodeModel decode_model_from_string(const std::string& name) {
  const auto model = try_decode_model_from_string(name);
  HAAN_EXPECTS(model.has_value() &&
               "unknown decode model (expected none | fixed | geometric)");
  return *model;
}

std::string to_string(DecodeModel model) {
  switch (model) {
    case DecodeModel::kNone: return "none";
    case DecodeModel::kFixed: return "fixed";
    case DecodeModel::kGeometric: return "geometric";
  }
  return "?";
}

namespace {

/// Instantaneous Poisson rate for request `i` of `n` under the scenario.
double instant_rate(const WorkloadConfig& config, std::size_t i) {
  switch (config.scenario) {
    case Scenario::kSteady:
      return config.rate_rps;
    case Scenario::kBursty: {
      // Phases alternate every burst_period *requests*, so the time-average
      // arrival rate is the harmonic mean of the two phase rates: the raw
      // rate*f / rate/f square wave has mean inter-arrival (1/f + f)/2 / rate
      // and under-delivers the configured rate by that factor. Scale both
      // phases by it so the mean arrival rate equals rate_rps while the
      // peak:trough ratio stays f^2.
      const double f = config.burst_factor;
      const double balance = 0.5 * (f + 1.0 / f);
      const bool peak = (i / config.burst_period) % 2 == 0;
      return peak ? config.rate_rps * f * balance
                  : config.rate_rps / f * balance;
    }
    case Scenario::kRamp: {
      const double t = config.n_requests <= 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(config.n_requests - 1);
      return config.rate_rps *
             (config.ramp_start + (config.ramp_end - config.ramp_start) * t);
    }
    case Scenario::kDiurnal: {
      // Sinusoidal day/night curve. The modulation is indexed by REQUEST, so
      // the realized time-average rate is the harmonic mean of the curve —
      // rate * sqrt(1 - a^2) over whole cycles — not rate itself (the same
      // under-delivery the bursty phases correct for). Scale by the inverse
      // so the empirical mean rate equals rate_rps while the peak:trough
      // ratio stays (1+a):(1-a). Amplitude < 1 keeps the trough positive.
      const double t = config.n_requests <= 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(config.n_requests - 1);
      constexpr double kTwoPi = 6.283185307179586;
      const double a = config.diurnal_amplitude;
      const double balance = 1.0 / std::sqrt(1.0 - a * a);
      return config.rate_rps * balance *
             (1.0 + a * std::sin(kTwoPi * config.diurnal_cycles * t));
    }
    case Scenario::kOverload: {
      // Square saturating spike over the middle of the stream: the serving
      // side sees a sustained burst it cannot keep up with, bracketed by
      // normal traffic that shows recovery.
      const double t = config.n_requests <= 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(config.n_requests - 1);
      const bool spike = t >= 0.3 && t < 0.7;
      return spike ? config.rate_rps * config.overload_factor : config.rate_rps;
    }
  }
  return config.rate_rps;
}

std::size_t draw_length(const WorkloadConfig& config, common::Rng& rng) {
  switch (config.length_model) {
    case LengthModel::kFixed:
      return config.min_prompt;
    case LengthModel::kUniform:
      return config.min_prompt +
             rng.uniform_index(config.max_prompt - config.min_prompt + 1);
    case LengthModel::kBimodal:
      return rng.uniform() < config.long_fraction ? config.max_prompt
                                                  : config.min_prompt;
  }
  return config.min_prompt;
}

std::size_t draw_decode(const WorkloadConfig& config, common::Rng& rng) {
  switch (config.decode_model) {
    case DecodeModel::kNone:
      return 0;
    case DecodeModel::kFixed:
      return std::min(config.decode_tokens, config.max_decode);
    case DecodeModel::kGeometric: {
      // Geometric on {1, 2, ...} with mean decode_tokens via inversion:
      // n = 1 + floor(log(1-u) / log(1-p)), p = 1/mean.
      const double p = 1.0 / static_cast<double>(config.decode_tokens);
      const double u = rng.uniform();
      const double n = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
      return std::min(static_cast<std::size_t>(std::max(n, 1.0)),
                      config.max_decode);
    }
  }
  return 0;
}

}  // namespace

std::vector<Request> generate_workload(const WorkloadConfig& config) {
  HAAN_EXPECTS(config.rate_rps > 0.0);
  HAAN_EXPECTS(config.min_prompt > 0 && config.min_prompt <= config.max_prompt);
  HAAN_EXPECTS(config.vocab_size > 0);
  HAAN_EXPECTS(config.burst_factor >= 1.0 && config.burst_period > 0);
  // A non-positive ramp endpoint would yield an infinite or negative
  // inter-arrival time at some point of the run.
  HAAN_EXPECTS(config.ramp_start > 0.0 && config.ramp_end > 0.0);
  if (config.decode_model != DecodeModel::kNone) {
    HAAN_EXPECTS(config.decode_tokens >= 1 && config.max_decode >= 1);
  }
  HAAN_EXPECTS(config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude < 1.0);
  HAAN_EXPECTS(config.diurnal_cycles > 0.0);
  HAAN_EXPECTS(config.overload_factor >= 1.0);
  HAAN_EXPECTS(config.tenants >= 1);
  HAAN_EXPECTS(config.priority_levels >= 1);
  HAAN_EXPECTS(config.tenant_rate_rps >= 0.0);
  HAAN_EXPECTS(config.deadline_us >= 0.0);

  common::Rng root(config.seed);
  common::Rng arrival_rng = root.fork();
  common::Rng length_rng = root.fork();
  common::Rng token_rng = root.fork();
  // Forked LAST so the streams above keep their pre-decode sequences: a seed
  // produces the exact same arrivals/prompts whether or not decode is on.
  common::Rng decode_rng = root.fork();
  // Same discipline, appended after decode: the SLA stream (tenants,
  // priorities) never reshuffles arrivals/lengths/tokens/decode budgets.
  common::Rng sla_rng = root.fork();

  // Per-tenant token buckets: the next instant each tenant may emit.
  std::vector<double> tenant_next_allowed(config.tenants, 0.0);
  const bool rate_limited = config.tenants > 1 && config.tenant_rate_rps > 0.0;

  std::vector<Request> requests;
  requests.reserve(config.n_requests);
  double clock_us = 0.0;
  for (std::size_t i = 0; i < config.n_requests; ++i) {
    // Exponential inter-arrival at the scenario's instantaneous rate.
    const double rate = instant_rate(config, i);
    const double u = arrival_rng.uniform();
    clock_us += -std::log(1.0 - u) / rate * 1e6;

    Request request;
    request.id = i;
    request.arrival_us = clock_us;
    const std::size_t len = draw_length(config, length_rng);
    request.tokens.resize(len);
    for (auto& token : request.tokens) {
      token = static_cast<int>(token_rng.uniform_index(config.vocab_size));
    }
    request.max_new_tokens = draw_decode(config, decode_rng);

    if (config.tenants > 1) {
      request.tenant =
          static_cast<std::uint32_t>(sla_rng.uniform_index(config.tenants));
    }
    if (config.priority_levels > 1) {
      // Multi-tenant mixes give each tenant a stable class; single-tenant
      // workloads draw a class per request.
      request.priority =
          config.tenants > 1
              ? static_cast<int>(request.tenant % config.priority_levels)
              : static_cast<int>(sla_rng.uniform_index(config.priority_levels));
    }
    request.deadline_us = config.deadline_us;
    if (rate_limited) {
      // Token bucket: a tenant over its cap has this arrival pushed to its
      // next allowed instant (the Poisson process shapes within the cap).
      double& next_allowed = tenant_next_allowed[request.tenant];
      request.arrival_us = std::max(request.arrival_us, next_allowed);
      next_allowed = request.arrival_us + 1e6 / config.tenant_rate_rps;
    }
    requests.push_back(std::move(request));
  }

  if (rate_limited) {
    // Pushed arrivals can land after later tenants' unpushed ones; restore
    // the trace contract (nondecreasing arrivals, ids 0..n-1 in arrival
    // order) with a deterministic stable sort + id reassignment.
    std::stable_sort(requests.begin(), requests.end(),
                     [](const Request& a, const Request& b) {
                       return a.arrival_us < b.arrival_us;
                     });
    for (std::size_t i = 0; i < requests.size(); ++i) requests[i].id = i;
  }
  return requests;
}

}  // namespace haan::serve
