#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace haan::serve {

common::LogHistogram::Config latency_histogram_config() {
  common::LogHistogram::Config config;
  config.min_value = 1.0;    // 1 us resolution floor
  config.max_value = 1e9;    // 1000 s overflow cap
  config.buckets_per_decade = 48;
  return config;
}

LatencySummary summarize_latency(std::vector<double> samples) {
  LatencySummary summary;
  // Empty sample sets (a drained-empty run with zero completed requests) must
  // report all-zero summaries; everything below indexes into `samples`.
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: smallest value with at least ceil(q*n) samples <= it.
  const auto nearest_rank = [&](double q) {
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
    if (rank > 0) --rank;  // 1-based rank -> 0-based index
    return samples[rank];
  };
  summary.count = samples.size();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  summary.mean_us = sum / static_cast<double>(samples.size());
  summary.max_us = samples.back();
  summary.p50_us = nearest_rank(0.50);
  summary.p95_us = nearest_rank(0.95);
  summary.p99_us = nearest_rank(0.99);
  return summary;
}

LatencySummary summarize_histogram(const common::LogHistogram& histogram) {
  LatencySummary summary;
  summary.count = histogram.count();
  summary.mean_us = histogram.mean();
  summary.max_us = histogram.max();
  summary.p50_us = histogram.quantile(0.50);
  summary.p95_us = histogram.quantile(0.95);
  summary.p99_us = histogram.quantile(0.99);
  return summary;
}

common::Json LatencySummary::to_json() const {
  common::Json::Object out;
  out["count"] = count;
  out["mean_us"] = mean_us;
  out["p50_us"] = p50_us;
  out["p95_us"] = p95_us;
  out["p99_us"] = p99_us;
  out["max_us"] = max_us;
  return out;
}

common::Json PrioritySummary::to_json() const {
  common::Json::Object out;
  out["latency_total"] = total.to_json();
  out["shed"] = shed;
  out["degraded"] = degraded;
  out["deadline_missed"] = deadline_missed;
  return out;
}

common::Json KernelTuningInfo::to_json() const {
  common::Json::Object out;
  out["backend"] = backend;
  out["dispatch"] = dispatch;
  out["source"] = source;
  out["cache_hit"] = cache_hit;
  out["d"] = d;
  out["rows_tile"] = rows_tile;
  out["norm_layers"] = norm_layers;
  return out;
}

common::Json MemPlacementInfo::to_json() const {
  common::Json::Object out;
  out["numa_mode"] = numa_mode;
  out["nodes"] = nodes;
  out["arena_bytes"] = arena_bytes;
  out["arena_allocations"] = static_cast<std::size_t>(arena_allocations);
  out["arena_slab_allocations"] =
      static_cast<std::size_t>(arena_slab_allocations);
  out["arena_resets"] = static_cast<std::size_t>(arena_resets);
  out["arena_reuse_ratio"] = arena_reuse_ratio();
  out["cross_node_rows"] = static_cast<std::size_t>(cross_node_rows);
  out["cross_node_partition"] = cross_node_partition;
  return out;
}

common::Json ServeMetrics::to_json() const {
  common::Json::Object out;
  out["completed"] = completed;
  out["wall_us"] = wall_us;
  out["throughput_rps"] = throughput_rps;
  out["latency_total"] = total.to_json();
  out["latency_queue"] = queued.to_json();
  out["latency_compute"] = compute.to_json();
  out["latency_ttft"] = ttft.to_json();
  out["latency_intertoken"] = intertoken.to_json();
  out["batches"] = static_cast<std::size_t>(batches);
  out["mean_batch_size"] = mean_batch_size;
  out["max_batch_size"] = max_batch_size;
  out["max_queue_depth"] = max_queue_depth;
  out["mean_queue_depth"] = mean_queue_depth;
  out["packed_forwards"] = static_cast<std::size_t>(packed_forwards);
  out["packed_rows"] = packed_rows;
  out["packed_sequences"] = packed_sequences;
  out["rows_per_pack"] = rows_per_pack();
  out["pack_occupancy"] = pack_occupancy();
  out["prefill_rows"] = prefill_rows;
  out["decode_rows"] = decode_rows;
  out["prefill_packs"] = static_cast<std::size_t>(prefill_packs);
  out["decode_packs"] = static_cast<std::size_t>(decode_packs);
  out["mixed_packs"] = static_cast<std::size_t>(mixed_packs);
  out["prefill_rows_per_pack"] = prefill_rows_per_pack();
  out["decode_rows_per_pack"] = decode_rows_per_pack();
  out["kv_bytes_resident"] = kv_bytes_resident;
  out["max_kv_bytes"] = max_kv_bytes;
  out["shed_requests"] = shed_requests;
  out["degraded_requests"] = degraded_requests;
  out["deadline_missed_requests"] = deadline_missed_requests;
  if (!per_priority.empty()) {
    common::Json::Object priorities;
    for (const auto& [priority, summary] : per_priority) {
      priorities[std::to_string(priority)] = summary.to_json();
    }
    out["per_priority"] = priorities;
  }
  common::Json::Object counters;
  counters["norm_calls"] = norm.norm_calls;
  counters["isd_computed"] = norm.isd_computed;
  counters["isd_predicted"] = norm.isd_predicted;
  counters["elements_read"] = norm.elements_read;
  counters["fused_residual_norms"] = norm.fused_residual_norms;
  counters["batched_norm_calls"] = norm.batched_norm_calls;
  counters["batched_rows"] = norm.batched_rows;
  counters["rows_per_batched_call"] = rows_per_batched_call();
  out["norm_counters"] = counters;
  if (!kernel.backend.empty()) out["kernel"] = kernel.to_json();
  if (!mem.numa_mode.empty()) out["mem"] = mem.to_json();
  return out;
}

std::string ServeMetrics::to_string() const {
  common::Table table({"metric", "mean", "p50", "p95", "p99", "max"});
  const auto row = [](const char* name, const LatencySummary& s) {
    return std::vector<std::string>{
        name,
        common::format_double(s.mean_us / 1000.0, 3),
        common::format_double(s.p50_us / 1000.0, 3),
        common::format_double(s.p95_us / 1000.0, 3),
        common::format_double(s.p99_us / 1000.0, 3),
        common::format_double(s.max_us / 1000.0, 3)};
  };
  table.add_row(row("total latency (ms)", total));
  table.add_row(row("queue latency (ms)", queued));
  table.add_row(row("compute latency (ms)", compute));
  if (ttft.count > 0) table.add_row(row("ttft (ms)", ttft));
  if (intertoken.count > 0) {
    table.add_row(row("inter-token (ms)", intertoken));
  }
  if (per_priority.size() > 1) {
    for (const auto& [priority, summary] : per_priority) {
      table.add_row(
          row(("p" + std::to_string(priority) + " total (ms)").c_str(),
              summary.total));
    }
  }

  std::ostringstream out;
  out << table.render();
  out << "completed        : " << completed << " requests in "
      << common::format_double(wall_us / 1e6, 3) << " s ("
      << common::format_double(throughput_rps, 1) << " req/s)\n";
  out << "batches          : " << batches << " (mean size "
      << common::format_double(mean_batch_size, 2) << ", max " << max_batch_size
      << ")\n";
  out << "queue depth      : max " << max_queue_depth << ", mean "
      << common::format_double(mean_queue_depth, 2) << "\n";
  if (packed_forwards > 0) {
    out << "mega-batch packs : " << packed_forwards << " ("
        << common::format_double(rows_per_pack(), 1) << " rows/pack, occupancy "
        << common::format_double(pack_occupancy(), 2) << ")\n";
  }
  if (prefill_rows + decode_rows > 0) {
    out << "phase rows       : prefill " << prefill_rows << " ("
        << common::format_double(prefill_rows_per_pack(), 1)
        << " rows/pack), decode " << decode_rows << " ("
        << common::format_double(decode_rows_per_pack(), 1) << " rows/pack)\n";
    out << "pack phases      : prefill " << prefill_packs << ", decode "
        << decode_packs << ", mixed " << mixed_packs << "\n";
    out << "kv cache         : max " << max_kv_bytes << " bytes resident\n";
  }
  if (shed_requests + degraded_requests + deadline_missed_requests > 0) {
    out << "sla outcomes     : shed " << shed_requests << ", degraded "
        << degraded_requests << ", deadline-missed " << deadline_missed_requests
        << "\n";
  }
  out << "norm counters    : calls " << norm.norm_calls << ", isd computed "
      << norm.isd_computed << ", isd predicted " << norm.isd_predicted
      << ", elements read " << norm.elements_read << ", fused residual+norm "
      << norm.fused_residual_norms << "\n";
  out << "batched norms    : " << norm.batched_norm_calls << " calls ("
      << common::format_double(rows_per_batched_call(), 2) << " rows/call)\n";
  if (!kernel.backend.empty()) {
    out << "kernel backend   : " << kernel.backend << " (dispatch "
        << kernel.dispatch << ", autotune " << kernel.source;
    if (kernel.rows_tile != 0) out << ", rows_tile " << kernel.rows_tile;
    out << ") over " << kernel.norm_layers << " norm layers\n";
  }
  if (!mem.numa_mode.empty()) {
    out << "memory placement : numa " << mem.numa_mode << ", " << mem.nodes
        << " node" << (mem.nodes == 1 ? "" : "s") << ", arenas "
        << mem.arena_bytes << " bytes (reuse "
        << common::format_double(mem.arena_reuse_ratio(), 3) << ", "
        << mem.arena_resets << " resets)";
    if (mem.nodes > 1) {
      out << ", cross-node rows " << mem.cross_node_rows << " (partition "
          << (mem.cross_node_partition ? "allowed" : "capped") << ")";
    }
    out << "\n";
  }
  return out.str();
}

MetricsCollector::MetricsCollector()
    : total_us_(latency_histogram_config()),
      queue_us_(latency_histogram_config()),
      compute_us_(latency_histogram_config()),
      ttft_us_(latency_histogram_config()),
      intertoken_us_(latency_histogram_config()) {}

MetricsCollector::PriorityBucket& MetricsCollector::priority_bucket(
    int priority) {
  return per_priority_[priority];  // default-constructs the slice lazily
}

void MetricsCollector::record(const RequestResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  PriorityBucket& bucket = priority_bucket(result.priority);
  if (result.shed) {
    // Shed requests never ran: they count as SLA outcomes, not latencies
    // (their totals would poison the served-latency percentiles).
    ++shed_;
    ++bucket.shed;
    ++deadline_missed_;
    ++bucket.deadline_missed;
    return;
  }
  total_us_.record(result.total_us);
  queue_us_.record(result.queue_us);
  compute_us_.record(result.compute_us);
  bucket.total_us.record(result.total_us);
  if (result.degraded) {
    ++degraded_;
    ++bucket.degraded;
  }
  if (result.deadline_missed) {
    ++deadline_missed_;
    ++bucket.deadline_missed;
  }
}

void MetricsCollector::record_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batch_count_;
  batch_requests_ += batch_size;
  max_batch_size_ = std::max(max_batch_size_, batch_size);
}

void MetricsCollector::record_packed(std::size_t rows, std::size_t sequences) {
  std::lock_guard<std::mutex> lock(mu_);
  ++packed_forwards_;
  packed_rows_ += rows;
  packed_sequences_ += sequences;
}

void MetricsCollector::record_step_pack(std::size_t prefill_rows,
                                        std::size_t decode_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  prefill_rows_ += prefill_rows;
  decode_rows_ += decode_rows;
  if (prefill_rows > 0 && decode_rows > 0) {
    ++mixed_packs_;
  } else if (decode_rows > 0) {
    ++decode_packs_;
  } else {
    ++prefill_packs_;
  }
}

void MetricsCollector::record_ttft(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  ttft_us_.record(us);
}

void MetricsCollector::record_intertoken(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  intertoken_us_.record(us);
}

void MetricsCollector::record_kv_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  kv_bytes_resident_ = bytes;
  max_kv_bytes_ = std::max(max_kv_bytes_, bytes);
}

void MetricsCollector::add_norm_counters(const NormCounters& counters) {
  std::lock_guard<std::mutex> lock(mu_);
  norm_.norm_calls += counters.norm_calls;
  norm_.isd_computed += counters.isd_computed;
  norm_.isd_predicted += counters.isd_predicted;
  norm_.elements_read += counters.elements_read;
  norm_.fused_residual_norms += counters.fused_residual_norms;
  norm_.batched_norm_calls += counters.batched_norm_calls;
  norm_.batched_rows += counters.batched_rows;
}

void MetricsCollector::add_arena_stats(const mem::ArenaStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  arena_bytes_ += stats.reserved_bytes;
  arena_allocations_ += stats.allocations;
  arena_slab_allocations_ += stats.slab_allocations;
  arena_resets_ += stats.resets;
}

std::size_t MetricsCollector::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_us_.count();
}

ServeMetrics MetricsCollector::finalize(double wall_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeMetrics metrics;
  metrics.completed = total_us_.count();
  metrics.wall_us = wall_us;
  metrics.throughput_rps =
      wall_us > 0.0 ? static_cast<double>(metrics.completed) / (wall_us / 1e6)
                    : 0.0;
  metrics.total = summarize_histogram(total_us_);
  metrics.queued = summarize_histogram(queue_us_);
  metrics.compute = summarize_histogram(compute_us_);
  metrics.ttft = summarize_histogram(ttft_us_);
  metrics.intertoken = summarize_histogram(intertoken_us_);

  metrics.batches = batch_count_;
  metrics.mean_batch_size =
      batch_count_ == 0 ? 0.0
                        : static_cast<double>(batch_requests_) /
                              static_cast<double>(batch_count_);
  metrics.max_batch_size = max_batch_size_;

  metrics.packed_forwards = packed_forwards_;
  metrics.packed_rows = packed_rows_;
  metrics.packed_sequences = packed_sequences_;
  metrics.prefill_rows = prefill_rows_;
  metrics.decode_rows = decode_rows_;
  metrics.prefill_packs = prefill_packs_;
  metrics.decode_packs = decode_packs_;
  metrics.mixed_packs = mixed_packs_;
  metrics.kv_bytes_resident = kv_bytes_resident_;
  metrics.max_kv_bytes = max_kv_bytes_;
  metrics.shed_requests = shed_;
  metrics.degraded_requests = degraded_;
  metrics.deadline_missed_requests = deadline_missed_;
  for (const auto& [priority, bucket] : per_priority_) {
    PrioritySummary summary;
    summary.total = summarize_histogram(bucket.total_us);
    summary.shed = bucket.shed;
    summary.degraded = bucket.degraded;
    summary.deadline_missed = bucket.deadline_missed;
    metrics.per_priority.emplace(priority, std::move(summary));
  }
  metrics.norm = norm_;
  metrics.mem.arena_bytes = arena_bytes_;
  metrics.mem.arena_allocations = arena_allocations_;
  metrics.mem.arena_slab_allocations = arena_slab_allocations_;
  metrics.mem.arena_resets = arena_resets_;
  return metrics;
}

std::size_t MetricsCollector::approx_memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = sizeof(*this) + total_us_.memory_bytes() +
                      queue_us_.memory_bytes() + compute_us_.memory_bytes() +
                      ttft_us_.memory_bytes() + intertoken_us_.memory_bytes();
  // One fixed-size slice per distinct priority class — constant for a fixed
  // class set, independent of completed-request count.
  for (const auto& [priority, bucket] : per_priority_) {
    bytes += sizeof(bucket) + bucket.total_us.memory_bytes();
  }
  return bytes;
}

}  // namespace haan::serve
