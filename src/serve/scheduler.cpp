#include "serve/scheduler.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace haan::serve {

BatchScheduler::BatchScheduler(RequestQueue& queue, SchedulerConfig config)
    : queue_(queue), config_(config) {
  HAAN_EXPECTS(config_.max_batch > 0);
}

std::optional<Batch> BatchScheduler::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);

  // The batch opens on the first request; this blocks until one arrives or
  // the stream ends. Holding mu_ here is intentional: another worker waiting
  // in next_batch() would otherwise interleave pops and break FIFO runs.
  std::optional<Request> first = queue_.pop();
  if (!first) return std::nullopt;

  Batch batch;
  batch.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  // Covers only the gather window (first pop already happened): the span
  // length is exactly the batching delay this batch added on top of queueing.
  HAAN_TRACE_SPAN("batch-form", "serve",
                  static_cast<std::uint32_t>(batch.sequence));
  const Clock::time_point opened = Clock::now();
  first->dequeued_at = opened;
  batch.requests.push_back(std::move(*first));

  const Clock::time_point deadline = opened + config_.max_wait;
  while (batch.requests.size() < config_.max_batch) {
    // Fast path: take whatever is already queued without waiting. The
    // tri-state pop lets us close the batch immediately at end-of-stream
    // instead of burning the remaining max-wait on a drained queue.
    Request next;
    const TryPopResult result = queue_.try_pop(next);
    if (result == TryPopResult::kDrained) break;
    if (result == TryPopResult::kEmpty) {
      const Clock::time_point now = Clock::now();
      if (now >= deadline) break;
      std::optional<Request> waited = queue_.pop_for(
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
      if (!waited) break;  // max-wait expired or end-of-stream
      next = std::move(*waited);
    }
    next.dequeued_at = Clock::now();
    batch.requests.push_back(std::move(next));
  }
  return batch;
}

std::uint64_t BatchScheduler::batches_formed() const {
  return next_sequence_.load(std::memory_order_relaxed);
}

}  // namespace haan::serve
