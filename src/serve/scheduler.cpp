#include "serve/scheduler.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace haan::serve {

namespace {

PolicyConfig resolved_policy_config(const SchedulerConfig& config,
                                    SchedPolicy resolved) {
  PolicyConfig out = config.policy;
  out.policy = resolved;
  return out;
}

}  // namespace

BatchScheduler::BatchScheduler(RequestQueue& queue, SchedulerConfig config)
    : queue_(queue),
      config_(config),
      policy_(resolve_policy(config.policy.policy)),
      legacy_fifo_(policy_ == SchedPolicy::kFifo && config.max_rows == 0 &&
                   !config.policy.allow_shed && !config.policy.allow_degrade),
      pool_(resolved_policy_config(config, policy_)) {
  HAAN_EXPECTS(config_.max_batch > 0);
}

std::optional<Batch> BatchScheduler::next_batch_fifo() {
  // The batch opens on the first request; this blocks until one arrives or
  // the stream ends. Holding mu_ here is intentional: another worker waiting
  // in next_batch() would otherwise interleave pops and break FIFO runs.
  std::optional<Request> first = queue_.pop();
  if (!first) return std::nullopt;

  Batch batch;
  batch.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  // Covers only the gather window (first pop already happened): the span
  // length is exactly the batching delay this batch added on top of queueing.
  HAAN_TRACE_SPAN("batch-form", "serve",
                  static_cast<std::uint32_t>(batch.sequence));
  const Clock::time_point opened = Clock::now();
  first->dequeued_at = opened;
  batch.requests.push_back(std::move(*first));

  const Clock::time_point deadline = opened + config_.max_wait;
  while (batch.requests.size() < config_.max_batch) {
    // Fast path: take whatever is already queued without waiting. The
    // tri-state pop lets us close the batch immediately at end-of-stream
    // instead of burning the remaining max-wait on a drained queue.
    Request next;
    const TryPopResult result = queue_.try_pop(next);
    if (result == TryPopResult::kDrained) break;
    if (result == TryPopResult::kEmpty) {
      const Clock::time_point now = Clock::now();
      if (now >= deadline) break;
      std::optional<Request> waited = queue_.pop_for(
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
      if (!waited) break;  // max-wait expired or end-of-stream
      next = std::move(*waited);
    }
    next.dequeued_at = Clock::now();
    batch.requests.push_back(std::move(next));
  }
  return batch;
}

TryPopResult BatchScheduler::drain_queue_into_pool() {
  for (;;) {
    Request request;
    const TryPopResult result = queue_.try_pop(request);
    if (result != TryPopResult::kItem) return result;
    pool_.push(std::move(request));
  }
}

std::optional<Batch> BatchScheduler::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  if (legacy_fifo_) return next_batch_fifo();

  Batch batch;

  // Phase 1: get at least one serveable request into the reorder pool. Shed
  // decisions made while waiting ride out immediately (a shed-only batch)
  // rather than sitting on results while this worker blocks for arrivals.
  for (;;) {
    drain_queue_into_pool();
    pool_.apply_admission(Clock::now(), batch.shed);
    if (!pool_.empty()) break;
    if (!batch.shed.empty()) {
      batch.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
      return batch;
    }
    std::optional<Request> first = queue_.pop();  // blocks; nullopt = drained
    if (!first) return std::nullopt;  // end-of-stream: pool empty too
    pool_.push(std::move(*first));
  }

  batch.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  HAAN_TRACE_SPAN("batch-form", "serve",
                  static_cast<std::uint32_t>(batch.sequence));
  const Clock::time_point opened = Clock::now();

  // Anchor: the policy's most urgent request across all bins — under FIFO
  // and binned the globally oldest (inherently starvation-free), under EDF
  // the highest effective priority / tightest slack. The anchor fixes the
  // batch's provider lane and (for binned/EDF) its length bin.
  const std::size_t anchor_index =
      *pool_.select(opened, std::nullopt, std::nullopt, true);
  Request anchor = pool_.extract(anchor_index);
  batch.degraded = anchor.degraded;
  const bool binned =
      policy_ == SchedPolicy::kBinned || policy_ == SchedPolicy::kEdf;
  const std::optional<std::size_t> bin =
      binned ? std::optional<std::size_t>(pool_.bin_of(anchor.tokens.size()))
             : std::nullopt;
  std::size_t rows = anchor.tokens.size();
  anchor.dequeued_at = opened;
  batch.requests.push_back(std::move(anchor));

  // Fill: same lane, same bin while the gather window is open; once it
  // expires (or the stream drains) top off from the nearest bins so the last
  // batches of a run are not taxed for bin purity.
  const Clock::time_point deadline = opened + config_.max_wait;
  bool relax_bin = false;
  while (batch.requests.size() < config_.max_batch) {
    const TryPopResult queue_state = drain_queue_into_pool();
    const Clock::time_point now = Clock::now();
    pool_.apply_admission(now, batch.shed);
    const std::optional<std::size_t> index =
        pool_.select(now, batch.degraded, bin, relax_bin);
    if (index.has_value()) {
      if (config_.max_rows > 0 &&
          rows + pool_.peek(*index).tokens.size() > config_.max_rows) {
        break;  // row budget reached: the batch is as full as it can get
      }
      Request next = pool_.extract(*index);
      next.dequeued_at = now;
      rows += next.tokens.size();
      batch.requests.push_back(std::move(next));
      continue;
    }
    // No matching candidate right now. Wait for arrivals while the gather
    // window is open; at expiry or end-of-stream, relax the bin once and
    // take whatever (same-lane) work remains.
    if (queue_state == TryPopResult::kDrained || now >= deadline) {
      if (!relax_bin && bin.has_value()) {
        relax_bin = true;
        continue;
      }
      break;
    }
    std::optional<Request> waited = queue_.pop_for(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
    if (waited.has_value()) {
      pool_.push(std::move(*waited));
    }
    // On timeout/drain the loop re-checks the deadline and relaxes the bin.
  }
  return batch;
}

std::uint64_t BatchScheduler::batches_formed() const {
  return next_sequence_.load(std::memory_order_relaxed);
}

}  // namespace haan::serve
