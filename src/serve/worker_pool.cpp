#include "serve/worker_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/provider_factory.hpp"
#include "tensor/tensor.hpp"

namespace haan::serve {

WorkerPool::WorkerPool(const model::Transformer& model, BatchScheduler& scheduler,
                       ProviderFactory provider_factory, MetricsCollector& metrics,
                       Options options)
    : model_(model),
      scheduler_(scheduler),
      provider_factory_(std::move(provider_factory)),
      metrics_(metrics),
      options_(options) {
  HAAN_EXPECTS(options_.n_workers > 0);
  HAAN_EXPECTS(static_cast<bool>(provider_factory_));
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::start() {
  HAAN_EXPECTS(threads_.empty());
  threads_.reserve(options_.n_workers);
  for (std::size_t w = 0; w < options_.n_workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

void WorkerPool::join() {
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::vector<RequestResult> WorkerPool::take_results() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<RequestResult> out = std::move(results_);
  results_.clear();
  std::sort(out.begin(), out.end(),
            [](const RequestResult& a, const RequestResult& b) { return a.id < b.id; });
  return out;
}

void WorkerPool::worker_main(std::size_t worker_index) {
  const std::unique_ptr<model::NormProvider> provider = provider_factory_();
  HAAN_ASSERT(provider != nullptr);

  while (auto batch = scheduler_.next_batch()) {
    metrics_.record_batch(batch->requests.size());
    for (Request& request : batch->requests) {
      const Clock::time_point compute_start = Clock::now();
      const tensor::Tensor hidden = model_.forward_hidden(request.tokens, *provider);
      const Clock::time_point done = Clock::now();

      RequestResult result;
      result.id = request.id;
      result.worker = worker_index;
      result.batch = batch->sequence;
      result.batch_size = batch->requests.size();
      result.prompt_len = request.tokens.size();
      result.hidden_checksum = checksum_floats(hidden.data());
      if (options_.keep_hidden) {
        result.hidden.assign(hidden.data().begin(), hidden.data().end());
      }
      result.queue_us = elapsed_us(request.enqueued_at, request.dequeued_at);
      result.compute_us = elapsed_us(compute_start, done);
      result.total_us = elapsed_us(request.enqueued_at, done);

      metrics_.record(result);
      {
        std::lock_guard<std::mutex> lock(results_mu_);
        results_.push_back(std::move(result));
      }
    }
  }

  // End-of-stream: fold this worker's HAAN counters into the shared metrics.
  if (const core::HaanNormProvider* haan = core::as_haan_provider(provider.get())) {
    metrics_.add_norm_counters(haan->counters());
  }
}

}  // namespace haan::serve
