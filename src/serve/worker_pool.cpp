#include "serve/worker_pool.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"
#include "core/provider_factory.hpp"
#include "model/batch_layout.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace haan::serve {

WorkerPool::WorkerPool(const model::Transformer& model, BatchScheduler& scheduler,
                       ProviderFactory provider_factory, MetricsCollector& metrics,
                       Options options)
    : model_(model),
      scheduler_(scheduler),
      provider_factory_(std::move(provider_factory)),
      metrics_(metrics),
      options_(options) {
  HAAN_EXPECTS(options_.n_workers > 0);
  HAAN_EXPECTS(static_cast<bool>(provider_factory_));
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::start() {
  HAAN_EXPECTS(threads_.empty());
  threads_.reserve(options_.n_workers);
  for (std::size_t w = 0; w < options_.n_workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

void WorkerPool::join() {
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::vector<RequestResult> WorkerPool::take_results() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<RequestResult> out = std::move(results_);
  results_.clear();
  std::sort(out.begin(), out.end(),
            [](const RequestResult& a, const RequestResult& b) { return a.id < b.id; });
  return out;
}

void WorkerPool::push_result(RequestResult result) {
  metrics_.record(result);
  std::lock_guard<std::mutex> lock(results_mu_);
  results_.push_back(std::move(result));
}

RequestResult WorkerPool::make_result(std::size_t worker_index,
                                      const Batch& batch, const Request& request,
                                      std::span<const float> hidden,
                                      double compute_us,
                                      Clock::time_point done) const {
  RequestResult result;
  result.id = request.id;
  result.worker = worker_index;
  result.batch = batch.sequence;
  result.batch_size = batch.requests.size();
  result.prompt_len = request.tokens.size();
  result.hidden_checksum = checksum_floats(hidden);
  if (options_.keep_hidden) {
    result.hidden.assign(hidden.begin(), hidden.end());
  }
  result.queue_us = elapsed_us(request.enqueued_at, request.dequeued_at);
  result.compute_us = compute_us;
  result.total_us = elapsed_us(request.enqueued_at, done);
  return result;
}

void WorkerPool::worker_main(std::size_t worker_index) {
  obs::set_thread_name("worker-" + std::to_string(worker_index));
  const std::unique_ptr<model::NormProvider> provider = provider_factory_();
  HAAN_ASSERT(provider != nullptr);
  // Worker-local span parallelism for packed forwards (threads start lazily,
  // so per-request mode never pays for the pool).
  model::RowPartitionPool span_pool(options_.norm_threads);

  while (auto batch = scheduler_.next_batch()) {
    metrics_.record_batch(batch->requests.size());
    if (options_.mega_batch) {
      execute_packed(worker_index, *batch, *provider, span_pool);
    } else {
      execute_per_request(worker_index, *batch, *provider);
    }
  }

  // End-of-stream: fold this worker's HAAN counters into the shared metrics.
  if (const core::HaanNormProvider* haan = core::as_haan_provider(provider.get())) {
    metrics_.add_norm_counters(haan->counters());
  }
}

void WorkerPool::execute_packed(std::size_t worker_index, Batch& batch,
                                model::NormProvider& provider,
                                model::RowPartitionPool& span_pool) {
  std::vector<std::span<const int>> sequences;
  sequences.reserve(batch.requests.size());
  std::optional<model::BatchLayout> layout_storage;
  {
    HAAN_TRACE_SPAN("pack", "serve",
                    static_cast<std::uint32_t>(batch.requests.size()));
    for (const Request& request : batch.requests) {
      sequences.emplace_back(request.tokens);
    }
    layout_storage = model::BatchLayout::from_sequences(sequences);
  }
  const model::BatchLayout& layout = *layout_storage;

  const Clock::time_point compute_start = Clock::now();
  tensor::Tensor hidden;
  {
    HAAN_TRACE_SPAN("forward", "serve",
                    static_cast<std::uint32_t>(layout.total_rows()),
                    static_cast<std::uint32_t>(layout.sequences()));
    hidden = model_.forward_hidden_batch(sequences, layout, provider, &span_pool);
  }
  const Clock::time_point done = Clock::now();
  metrics_.record_packed(layout.total_rows(), layout.sequences());

  // Requests in a mega-batch complete together: each carries the packed
  // forward's duration as its compute time.
  const double compute_us = elapsed_us(compute_start, done);
  const std::size_t d = model_.config().d_model;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const model::SequenceSpan& span = layout.span(i);
    HAAN_TRACE_SPAN("complete", "serve",
                    static_cast<std::uint32_t>(batch.requests[i].id));
    obs::flow_end("req", "serve", batch.requests[i].id);
    push_result(make_result(
        worker_index, batch, batch.requests[i],
        hidden.data().subspan(span.row_begin * d, span.rows * d), compute_us,
        done));
  }
}

void WorkerPool::execute_per_request(std::size_t worker_index, Batch& batch,
                                     model::NormProvider& provider) {
  for (const Request& request : batch.requests) {
    const Clock::time_point compute_start = Clock::now();
    tensor::Tensor hidden;
    {
      HAAN_TRACE_SPAN("forward", "serve",
                      static_cast<std::uint32_t>(request.tokens.size()), 1u);
      hidden = model_.forward_hidden(request.tokens, provider);
    }
    const Clock::time_point done = Clock::now();
    HAAN_TRACE_SPAN("complete", "serve", static_cast<std::uint32_t>(request.id));
    obs::flow_end("req", "serve", request.id);
    push_result(make_result(worker_index, batch, request, hidden.data(),
                            elapsed_us(compute_start, done), done));
  }
}

}  // namespace haan::serve
