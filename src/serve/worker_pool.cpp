#include "serve/worker_pool.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "core/provider_factory.hpp"
#include "mem/arena.hpp"
#include "mem/scratch.hpp"
#include "mem/topology.hpp"
#include "model/batch_layout.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace haan::serve {
namespace {

/// Under HAAN_NUMA=auto on a multi-node host, serve workers spread
/// round-robin across nodes: worker w is confined to node (w % nodes) — the
/// whole node's CPU set, not one CPU, so the OS still schedules freely within
/// the socket. The worker's arenas and pool threads then inherit that home
/// via first touch and RowPartitionPool's own node capture. No-op (legacy OS
/// placement) in every other configuration.
void pin_worker_to_node(std::size_t worker_index) {
#ifdef __linux__
  if (mem::numa_mode() != mem::NumaMode::kAuto) return;
  const mem::Topology& topo = mem::topology();
  if (topo.nodes() < 2) return;
  const mem::NumaNode& node = topo.node(worker_index % topo.nodes());
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : node.cpus) CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    HAAN_LOG_WARN_C("serve") << "worker " << worker_index
                             << ": failed to bind to node " << node.id;
  }
#else
  (void)worker_index;
#endif
}

}  // namespace

WorkerPool::WorkerPool(const model::Transformer& model, BatchScheduler& scheduler,
                       ProviderFactory provider_factory, MetricsCollector& metrics,
                       Options options)
    : model_(model),
      scheduler_(&scheduler),
      provider_factory_(std::move(provider_factory)),
      metrics_(metrics),
      options_(options) {
  HAAN_EXPECTS(options_.n_workers > 0);
  HAAN_EXPECTS(static_cast<bool>(provider_factory_));
}

WorkerPool::WorkerPool(const model::Transformer& model, StepScheduler& scheduler,
                       SessionTable& sessions, ProviderFactory provider_factory,
                       MetricsCollector& metrics, Options options)
    : model_(model),
      step_scheduler_(&scheduler),
      sessions_(&sessions),
      provider_factory_(std::move(provider_factory)),
      metrics_(metrics),
      options_(options) {
  HAAN_EXPECTS(options_.n_workers > 0);
  HAAN_EXPECTS(static_cast<bool>(provider_factory_));
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::start() {
  HAAN_EXPECTS(threads_.empty());
  threads_.reserve(options_.n_workers);
  for (std::size_t w = 0; w < options_.n_workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

void WorkerPool::join() {
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::vector<RequestResult> WorkerPool::take_results() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<RequestResult> out = std::move(results_);
  results_.clear();
  std::sort(out.begin(), out.end(),
            [](const RequestResult& a, const RequestResult& b) { return a.id < b.id; });
  return out;
}

void WorkerPool::push_result(RequestResult result) {
  metrics_.record(result);
  std::lock_guard<std::mutex> lock(results_mu_);
  results_.push_back(std::move(result));
}

RequestResult WorkerPool::make_result(std::size_t worker_index,
                                      const Batch& batch, const Request& request,
                                      std::span<const float> hidden,
                                      double compute_us,
                                      Clock::time_point done) const {
  RequestResult result;
  result.id = request.id;
  result.worker = worker_index;
  result.batch = batch.sequence;
  result.batch_size = batch.requests.size();
  result.prompt_len = request.tokens.size();
  result.hidden_checksum = checksum_floats(hidden);
  if (options_.keep_hidden) {
    result.hidden.assign(hidden.begin(), hidden.end());
  }
  result.queue_us = elapsed_us(request.enqueued_at, request.dequeued_at);
  result.compute_us = compute_us;
  result.total_us = elapsed_us(request.enqueued_at, done);
  result.priority = request.priority;
  result.tenant = request.tenant;
  result.degraded = request.degraded;
  result.deadline_missed =
      request.deadline_us > 0.0 && result.total_us > request.deadline_us;
  return result;
}

void WorkerPool::record_shed(std::size_t worker_index, std::uint64_t sequence,
                             std::vector<Request>& shed) {
  for (Request& request : shed) {
    const Clock::time_point done = Clock::now();
    obs::flow_end("req", "serve", request.id);
    RequestResult result;
    result.id = request.id;
    result.worker = worker_index;
    result.batch = sequence;
    result.prompt_len = request.tokens.size();
    result.priority = request.priority;
    result.tenant = request.tenant;
    result.degraded = request.degraded;
    result.shed = true;
    result.deadline_missed = true;  // shed fires only past the slack bound
    result.queue_us = elapsed_us(request.enqueued_at, request.dequeued_at);
    result.total_us = elapsed_us(request.enqueued_at, done);
    push_result(std::move(result));
  }
  shed.clear();
}

void WorkerPool::worker_main(std::size_t worker_index) {
  obs::set_thread_name("worker-" + std::to_string(worker_index));
  // Placement first: everything the worker allocates or spawns below (scratch
  // arena first touch, provider pools' home-node capture) keys off where this
  // thread runs.
  pin_worker_to_node(worker_index);
  // Per-pack scratch arena: while a pack executes, every Tensor the forward
  // pass constructs on this thread (packed hidden block, attention scratch,
  // MLP intermediates) bump-allocates here via the thread-local ScratchScope,
  // and reset() recycles the whole lot between packs. Null with placement
  // off — Tensors fall through to the default heap resource, byte-for-byte
  // the legacy behavior.
  std::unique_ptr<mem::Arena> scratch;
  if (mem::placement_enabled()) {
    mem::ArenaOptions opts;
    opts.interleave = mem::numa_mode() == mem::NumaMode::kInterleave;
    scratch = std::make_unique<mem::Arena>(opts);
  }
  const std::unique_ptr<model::NormProvider> provider = provider_factory_();
  HAAN_ASSERT(provider != nullptr);
  // The degrade lane's provider is built lazily: runs that never degrade
  // never pay for it.
  std::unique_ptr<model::NormProvider> degrade_provider;
  const auto lane_provider = [&](bool degraded) -> model::NormProvider& {
    if (!degraded) return *provider;
    if (degrade_provider == nullptr) {
      degrade_provider = options_.degrade_factory ? options_.degrade_factory()
                                                  : provider_factory_();
      HAAN_ASSERT(degrade_provider != nullptr);
    }
    return *degrade_provider;
  };
  // Worker-local span parallelism for packed forwards (threads start lazily,
  // so per-request mode never pays for the pool).
  model::RowPartitionPool span_pool(options_.norm_threads);

  if (step_scheduler_ != nullptr) {
    while (auto pack = step_scheduler_->next_pack()) {
      record_shed(worker_index, pack->sequence, pack->shed);
      if (pack->entries.empty()) continue;  // shed-only pack
      metrics_.record_batch(pack->entries.size());
      // Resolve the lane BEFORE opening the scratch scope: a lazily built
      // degrade provider must not put its long-lived state in pack scratch.
      model::NormProvider& lane = lane_provider(pack->degraded);
      if (scratch) scratch->reset();
      mem::ScratchScope scope(scratch.get());
      execute_step_pack(worker_index, *pack, lane, span_pool);
    }
  } else {
    while (auto batch = scheduler_->next_batch()) {
      record_shed(worker_index, batch->sequence, batch->shed);
      if (batch->requests.empty()) continue;  // shed-only batch
      metrics_.record_batch(batch->requests.size());
      model::NormProvider& lane = lane_provider(batch->degraded);
      if (scratch) scratch->reset();
      mem::ScratchScope scope(scratch.get());
      if (options_.mega_batch) {
        execute_packed(worker_index, *batch, lane, span_pool);
      } else {
        execute_per_request(worker_index, *batch, lane);
      }
    }
  }

  if (scratch) metrics_.add_arena_stats(scratch->stats());

  // End-of-stream: fold this worker's HAAN counters (both lanes) into the
  // shared metrics.
  if (const core::HaanNormProvider* haan = core::as_haan_provider(provider.get())) {
    metrics_.add_norm_counters(haan->counters());
  }
  if (const core::HaanNormProvider* haan =
          core::as_haan_provider(degrade_provider.get())) {
    metrics_.add_norm_counters(haan->counters());
  }
}

void WorkerPool::execute_packed(std::size_t worker_index, Batch& batch,
                                model::NormProvider& provider,
                                model::RowPartitionPool& span_pool) {
  std::vector<std::span<const int>> sequences;
  sequences.reserve(batch.requests.size());
  std::optional<model::BatchLayout> layout_storage;
  {
    HAAN_TRACE_SPAN("pack", "serve",
                    static_cast<std::uint32_t>(batch.requests.size()));
    for (const Request& request : batch.requests) {
      sequences.emplace_back(request.tokens);
    }
    layout_storage = model::BatchLayout::from_sequences(sequences);
  }
  const model::BatchLayout& layout = *layout_storage;

  const Clock::time_point compute_start = Clock::now();
  tensor::Tensor hidden;
  {
    HAAN_TRACE_SPAN("forward", "serve",
                    static_cast<std::uint32_t>(layout.total_rows()),
                    static_cast<std::uint32_t>(layout.sequences()));
    hidden = model_.forward_hidden_batch(sequences, layout, provider, &span_pool);
  }
  const Clock::time_point done = Clock::now();
  metrics_.record_packed(layout.total_rows(), layout.sequences());

  // Requests in a mega-batch complete together: each carries the packed
  // forward's duration as its compute time.
  const double compute_us = elapsed_us(compute_start, done);
  const std::size_t d = model_.config().d_model;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const model::SequenceSpan& span = layout.span(i);
    HAAN_TRACE_SPAN("complete", "serve",
                    static_cast<std::uint32_t>(batch.requests[i].id));
    obs::flow_end("req", "serve", batch.requests[i].id);
    push_result(make_result(
        worker_index, batch, batch.requests[i],
        hidden.data().subspan(span.row_begin * d, span.rows * d), compute_us,
        done));
  }
}

void WorkerPool::execute_step_pack(std::size_t worker_index, StepPack& pack,
                                   model::NormProvider& provider,
                                   model::RowPartitionPool& span_pool) {
  const std::size_t n = pack.entries.size();
  std::vector<std::span<const int>> sequences;
  std::vector<std::size_t> lengths;
  std::vector<std::size_t> starts;
  std::vector<model::KvCache*> caches;
  sequences.reserve(n);
  lengths.reserve(n);
  starts.reserve(n);
  caches.reserve(n);
  std::size_t prefill_rows = 0;
  std::size_t decode_rows = 0;
  {
    HAAN_TRACE_SPAN("pack", "serve", static_cast<std::uint32_t>(n));
    for (const StepEntry& entry : pack.entries) {
      Session& session = *entry.session;
      std::span<const int> tokens;
      if (entry.decode) {
        // Feed the last generated token as one row. pending_token is the
        // session's stable storage — `generated` may reallocate.
        session.pending_token = session.generated.back();
        tokens = std::span<const int>(&session.pending_token, 1);
        decode_rows += 1;
      } else {
        tokens = std::span<const int>(session.request.tokens)
                     .subspan(session.fed, entry.rows);
        prefill_rows += entry.rows;
      }
      sequences.push_back(tokens);
      lengths.push_back(tokens.size());
      starts.push_back(session.fed);
      caches.push_back(&session.cache);
    }
  }
  const model::BatchLayout layout = model::BatchLayout::from_spans(lengths, starts);
  const char* phase = decode_rows == 0   ? "prefill"
                      : prefill_rows == 0 ? "decode"
                                          : "mixed";

  const Clock::time_point compute_start = Clock::now();
  tensor::Tensor hidden;
  {
    HAAN_TRACE_SPAN("forward", "serve", phase,
                    static_cast<std::uint32_t>(layout.total_rows()),
                    static_cast<std::uint32_t>(layout.sequences()));
    hidden = model_.forward_hidden_batch(sequences, layout, provider,
                                         &span_pool, caches);
  }
  const Clock::time_point done = Clock::now();
  const double compute_us = elapsed_us(compute_start, done);
  metrics_.record_packed(layout.total_rows(), layout.sequences());
  metrics_.record_step_pack(prefill_rows, decode_rows);

  const std::size_t d = model_.config().d_model;
  for (std::size_t i = 0; i < n; ++i) {
    Session& session = *pack.entries[i].session;
    const model::SequenceSpan& span = layout.span(i);
    const std::span<const float> rows =
        hidden.data().subspan(span.row_begin * d, span.rows * d);

    // Advance the session: the checksum chains over fed rows in position
    // order, so the final value is bit-identical to hashing a one-shot
    // forward over the same fed tokens.
    session.hidden_hash = checksum_floats(rows, session.hidden_hash);
    if (options_.keep_hidden) {
      session.hidden.insert(session.hidden.end(), rows.begin(), rows.end());
    }
    session.fed += span.rows;
    session.compute_us += compute_us;
    session.steps += 1;

    if (session.prompt_done() &&
        session.generated.size() < session.max_new_tokens) {
      // The step's newest row predicts the next token (greedy argmax over
      // tied-embedding logits).
      const auto logits =
          model_.logits_for_hidden_row(rows.subspan((span.rows - 1) * d, d));
      session.generated.push_back(static_cast<int>(tensor::argmax(logits)));
      if (!session.first_token_done) {
        session.first_token_done = true;
        session.ttft_us = elapsed_us(session.request.enqueued_at, done);
        metrics_.record_ttft(session.ttft_us);
      } else {
        metrics_.record_intertoken(elapsed_us(session.last_token_at, done));
      }
      session.last_token_at = done;
    } else if (session.prompt_done() && !session.first_token_done) {
      // Prefill-only request: TTFT is the prompt-completion step (the moment
      // its "response" is ready).
      session.first_token_done = true;
      session.ttft_us = elapsed_us(session.request.enqueued_at, done);
      metrics_.record_ttft(session.ttft_us);
    }

    sessions_->account_kv(session);

    if (session.finished()) {
      HAAN_TRACE_SPAN("complete", "serve",
                      static_cast<std::uint32_t>(session.request.id));
      obs::flow_end("req", "serve", session.request.id);
      RequestResult result;
      result.id = session.request.id;
      result.worker = worker_index;
      result.batch = pack.sequence;
      result.batch_size = n;
      result.prompt_len = session.prompt_len();
      result.hidden_checksum = session.hidden_hash;
      result.generated = std::move(session.generated);
      result.ttft_us = session.ttft_us;
      result.hidden = std::move(session.hidden);
      result.queue_us =
          elapsed_us(session.request.enqueued_at, session.request.dequeued_at);
      result.compute_us = session.compute_us;
      result.total_us = elapsed_us(session.request.enqueued_at, done);
      result.priority = session.request.priority;
      result.tenant = session.request.tenant;
      result.degraded = session.request.degraded;
      result.deadline_missed = session.request.deadline_us > 0.0 &&
                               result.total_us > session.request.deadline_us;
      push_result(std::move(result));
      step_scheduler_->finish(&session);
    } else {
      step_scheduler_->requeue(&session);
    }
  }
  metrics_.record_kv_bytes(sessions_->kv_bytes_resident());
}

void WorkerPool::execute_per_request(std::size_t worker_index, Batch& batch,
                                     model::NormProvider& provider) {
  for (const Request& request : batch.requests) {
    const Clock::time_point compute_start = Clock::now();
    tensor::Tensor hidden;
    {
      HAAN_TRACE_SPAN("forward", "serve",
                      static_cast<std::uint32_t>(request.tokens.size()), 1u);
      hidden = model_.forward_hidden(request.tokens, provider);
    }
    const Clock::time_point done = Clock::now();
    HAAN_TRACE_SPAN("complete", "serve", static_cast<std::uint32_t>(request.id));
    obs::flow_end("req", "serve", request.id);
    push_result(make_result(worker_index, batch, request, hidden.data(),
                            elapsed_us(compute_start, done), done));
  }
}

}  // namespace haan::serve
