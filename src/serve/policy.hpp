// SLA-aware batch-formation policy: the reorder buffer and admission-control
// decisions behind BatchScheduler and StepScheduler. Three formation orders
// are supported — FIFO (arrival order, the legacy behavior), BINNED
// (length-aware: a batch anchors on the oldest pending request and fills from
// its prompt-length bin, so packs carry near-uniform sequence lengths and
// forward_hidden_batch wastes less work on ragged tails), and EDF
// (earliest-deadline-first within the same bins: effective priority first,
// then remaining deadline slack, with time-based aging so low-priority
// requests cannot starve). Admission control runs on every formation pass:
// requests whose remaining slack crosses the configured thresholds are
// degraded (rerouted to a cheaper norm provider lane) or shed (completed
// unserved with shed=true).
//
// Reordering never touches numerics: policies change WHICH requests share a
// pack, and per-request outputs are bit-identical under any pack composition
// (the PR 4/6 invariant), so FIFO/binned/EDF runs all match the
// single-threaded reference oracle bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace haan::serve {

/// Batch/pack formation order.
enum class SchedPolicy {
  /// Resolve at scheduler construction: HAAN_SCHED_POLICY in the environment
  /// ("fifo" | "binned" | "edf") or kFifo. The default — existing configs
  /// keep FIFO behavior, and the CI matrix can flip whole test suites onto a
  /// policy via the environment.
  kAuto,
  kFifo,    ///< strict arrival order (the legacy scheduler)
  kBinned,  ///< oldest request anchors, batch fills from its length bin
  kEdf,     ///< earliest-deadline-first (priority, then slack) within bins
};

std::optional<SchedPolicy> try_policy_from_string(const std::string& name);
SchedPolicy policy_from_string(const std::string& name);  ///< aborts on unknown
std::string to_string(SchedPolicy policy);

/// Resolves kAuto against HAAN_SCHED_POLICY (unset/unparseable -> kFifo);
/// explicit policies pass through.
SchedPolicy resolve_policy(SchedPolicy policy);

/// Admission-control outcome for one pending request.
enum class OverloadAction {
  kServe,    ///< meets its deadline (or has none): serve normally
  kDegrade,  ///< slack below degrade threshold: serve on the cheap provider
  kShed,     ///< slack below shed threshold: complete unserved
};

/// Policy knobs, carried inside SchedulerConfig.
struct PolicyConfig {
  SchedPolicy policy = SchedPolicy::kAuto;

  /// Prompt-length bin width for kBinned/kEdf (bin = len / bin_width). Wider
  /// bins trade pack uniformity for fill speed. Must be > 0.
  std::size_t bin_width = 16;

  /// EDF anti-starvation: a request gains +1 effective priority per aging_us
  /// waited (0 = aging off). Bounds how long sustained high-priority load can
  /// overtake a low-priority request.
  double aging_us = 0.0;

  /// Overload admission control (only requests WITH a deadline are ever shed
  /// or degraded). Shed takes precedence over degrade.
  bool allow_shed = false;
  bool allow_degrade = false;

  /// Shed when remaining slack (deadline_us - waited_us) < this. The default
  /// 0 sheds exactly the requests that have already missed their deadline.
  double shed_slack_us = 0.0;

  /// Degrade when remaining slack < this (and shed did not fire). Set it to
  /// roughly the cheap provider's latency advantage.
  double degrade_slack_us = 0.0;
};

/// Pure admission decision for a request with `slack_us` microseconds of
/// remaining deadline budget. Monotone in slack: as slack shrinks a request
/// escalates serve -> degrade -> shed and never de-escalates (the scheduler
/// stamps degrade stickily).
OverloadAction decide_admission(double slack_us, bool has_deadline,
                                const PolicyConfig& config);

/// Policy-ordered reorder buffer between the FIFO RequestQueue and batch
/// formation. NOT thread-safe: the owning scheduler serializes all access
/// under its formation lock. Selection is an O(n) scan (pending sets are
/// bounded by queue capacity, and the comparator depends on `now`).
class PendingPool {
 public:
  /// `config.policy` must already be resolved (not kAuto).
  explicit PendingPool(PolicyConfig config);

  void push(Request request);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Prompt-length bin index.
  std::size_t bin_of(std::size_t prompt_len) const {
    return prompt_len / config_.bin_width;
  }

  /// True when some pending request has `degraded == lane`.
  bool has_lane(bool lane) const;

  /// One admission-control pass over every pending request at `now`:
  /// requests past the shed threshold move (stamped dequeued_at = now) into
  /// `shed`; requests past the degrade threshold get degraded stamped sticky.
  /// Emits "shed"/"degrade" trace instants carrying the deadline slack.
  void apply_admission(Clock::time_point now, std::vector<Request>& shed);

  /// Index of the next request under the policy order, or nullopt if no
  /// pending request matches the constraints. `lane` (when set) is a hard
  /// filter on the degraded flag — degraded and normal requests never share
  /// a pack (a pack runs exactly one provider). `bin` (when set) restricts
  /// to that prompt-length bin; with `relax_bin` the nearest bins become
  /// eligible instead (top-off after the gather window expires), preferring
  /// smaller bin distance before the policy order.
  std::optional<std::size_t> select(Clock::time_point now,
                                    std::optional<bool> lane,
                                    std::optional<std::size_t> bin,
                                    bool relax_bin) const;

  const Request& peek(std::size_t index) const {
    return entries_[index].request;
  }

  /// Removes and returns the request at `index` (from select()).
  Request extract(std::size_t index);

  /// Effective priority at `now`: priority plus the aging credit
  /// floor(waited_us / aging_us). Exposed for tests.
  double effective_priority(const Request& request,
                            Clock::time_point now) const;

  /// Remaining deadline budget at `now` (+infinity when no deadline).
  static double slack_us(const Request& request, Clock::time_point now);

  const PolicyConfig& config() const { return config_; }

 private:
  struct Entry {
    Request request;
    std::uint64_t seq = 0;  ///< insertion order (FIFO tie-break)
  };

  PolicyConfig config_;
  std::deque<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace haan::serve
