#include "serve/session.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "mem/topology.hpp"

namespace haan::serve {

std::size_t Session::next_rows(std::size_t prefill_chunk) const {
  HAAN_EXPECTS(!finished());
  if (!prompt_done()) {
    const std::size_t remaining = prompt_len() - fed;
    return prefill_chunk == 0 ? remaining : std::min(prefill_chunk, remaining);
  }
  return 1;
}

SessionTable::SessionTable(const model::ModelConfig& config)
    : n_blocks_(config.n_blocks),
      d_model_(config.d_model),
      max_seq_len_(config.max_seq_len) {}

Session* SessionTable::create(Request request) {
  HAAN_EXPECTS(!request.tokens.empty());
  HAAN_EXPECTS(request.tokens.size() <= max_seq_len_);
  auto session = std::make_unique<Session>();
  // Fed tokens = prompt + (max_new - 1) decode feeds; clamp so the sequence
  // fits the model's positional range.
  const std::size_t decode_cap = max_seq_len_ - request.tokens.size() + 1;
  session->max_new_tokens = std::min(request.max_new_tokens, decode_cap);
  // The cache never stores more rows than prompt + max_new - 1 (the last
  // generated token is returned, never fed), so reserving prompt + max_new
  // rows makes every layer allocate exactly once.
  const std::size_t reserve_rows =
      request.tokens.size() + session->max_new_tokens;
  if (mem::placement_enabled()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!arena_pool_.empty()) {
        session->kv_arena = std::move(arena_pool_.back());
        arena_pool_.pop_back();
      }
    }
    if (!session->kv_arena) {
      mem::ArenaOptions opts;
      // K + V per block, plus headroom for allocator rounding.
      opts.initial_bytes =
          n_blocks_ * 2 * reserve_rows * d_model_ * sizeof(float) + (64 << 10);
      // node stays -1: pages are placed by first touch on the worker that
      // prefills the session, which is where decode steps will read them.
      opts.interleave = mem::numa_mode() == mem::NumaMode::kInterleave;
      session->kv_arena = std::make_unique<mem::Arena>(opts);
    }
  }
  session->cache = model::KvCache(n_blocks_, d_model_, session->kv_arena.get(),
                                  reserve_rows);
  session->request = std::move(request);
  Session* raw = session.get();
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      sessions_.emplace(raw->request.id, std::move(session));
  HAAN_EXPECTS(inserted);
  (void)it;
  return raw;
}

void SessionTable::release(std::uint64_t id) {
  std::unique_ptr<Session> dead;
  std::unique_ptr<mem::Arena> arena;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    HAAN_EXPECTS(it != sessions_.end());
    kv_bytes_ -= it->second->kv_bytes_accounted;
    dead = std::move(it->second);
    sessions_.erase(it);
  }
  // Destroy the session (and its cache) while the arena is still alive, then
  // reset the arena — consolidating it to one slab at its high watermark —
  // and park it for the next create().
  arena = std::move(dead->kv_arena);
  dead.reset();
  if (arena) {
    arena->reset();
    std::lock_guard<std::mutex> lock(mu_);
    arena_pool_.push_back(std::move(arena));
  }
}

std::size_t SessionTable::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionTable::account_kv(Session& session) {
  // Logical bytes (rows stored), not allocator capacity: capacity depends on
  // whether an arena or the heap backs the cache, and the resident gauge must
  // compare across HAAN_NUMA modes.
  const std::size_t bytes = session.cache.logical_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  kv_bytes_ += bytes - session.kv_bytes_accounted;
  session.kv_bytes_accounted = bytes;
  max_kv_bytes_ = std::max(max_kv_bytes_, kv_bytes_);
}

std::size_t SessionTable::kv_bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_bytes_;
}

std::size_t SessionTable::max_kv_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_kv_bytes_;
}

SessionTable::ArenaUsage SessionTable::arena_usage() const {
  ArenaUsage usage;
  const auto add = [&usage](const mem::Arena& arena) {
    const mem::ArenaStats& stats = arena.stats();
    usage.reserved_bytes += stats.reserved_bytes;
    usage.allocations += stats.allocations;
    usage.slab_allocations += stats.slab_allocations;
    usage.resets += stats.resets;
  };
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, session] : sessions_) {
    if (session->kv_arena) add(*session->kv_arena);
  }
  for (const auto& arena : arena_pool_) add(*arena);
  return usage;
}

}  // namespace haan::serve
