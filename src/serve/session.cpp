#include "serve/session.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace haan::serve {

std::size_t Session::next_rows(std::size_t prefill_chunk) const {
  HAAN_EXPECTS(!finished());
  if (!prompt_done()) {
    const std::size_t remaining = prompt_len() - fed;
    return prefill_chunk == 0 ? remaining : std::min(prefill_chunk, remaining);
  }
  return 1;
}

SessionTable::SessionTable(const model::ModelConfig& config)
    : n_blocks_(config.n_blocks),
      d_model_(config.d_model),
      max_seq_len_(config.max_seq_len) {}

Session* SessionTable::create(Request request) {
  HAAN_EXPECTS(!request.tokens.empty());
  HAAN_EXPECTS(request.tokens.size() <= max_seq_len_);
  auto session = std::make_unique<Session>();
  // Fed tokens = prompt + (max_new - 1) decode feeds; clamp so the sequence
  // fits the model's positional range.
  const std::size_t decode_cap = max_seq_len_ - request.tokens.size() + 1;
  session->max_new_tokens = std::min(request.max_new_tokens, decode_cap);
  session->cache = model::KvCache(n_blocks_, d_model_);
  session->request = std::move(request);
  Session* raw = session.get();
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      sessions_.emplace(raw->request.id, std::move(session));
  HAAN_EXPECTS(inserted);
  (void)it;
  return raw;
}

void SessionTable::release(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  HAAN_EXPECTS(it != sessions_.end());
  kv_bytes_ -= it->second->kv_bytes_accounted;
  sessions_.erase(it);
}

std::size_t SessionTable::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionTable::account_kv(Session& session) {
  const std::size_t bytes = session.cache.memory_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  kv_bytes_ += bytes - session.kv_bytes_accounted;
  session.kv_bytes_accounted = bytes;
  max_kv_bytes_ = std::max(max_kv_bytes_, kv_bytes_);
}

std::size_t SessionTable::kv_bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kv_bytes_;
}

std::size_t SessionTable::max_kv_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_kv_bytes_;
}

}  // namespace haan::serve
