#include "serve/server.hpp"

#include <thread>

#include "common/assert.hpp"
#include "serve/queue.hpp"
#include "serve/worker_pool.hpp"
#include "tensor/tensor.hpp"

namespace haan::serve {

Server::Server(ServerConfig config)
    : config_(std::move(config)), model_(config_.model) {
  HAAN_EXPECTS(core::is_norm_provider_name(config_.norm));
  HAAN_EXPECTS(config_.workers > 0);

  provider_options_.width = config_.model.d_model;
  provider_options_.model_name = config_.model.name;
  provider_options_.norm_threads = config_.norm_threads;

  if (config_.norm != "exact") {
    if (config_.calibrate) {
      const auto calibration =
          core::calibrate_skip_plan(model_, config_.calibration);
      provider_options_.plan = calibration.plan;
    } else {
      provider_options_.plan = config_.preset_plan;
    }
  }
}

std::unique_ptr<model::NormProvider> Server::make_provider() const {
  auto provider = core::make_norm_provider(config_.norm, provider_options_);
  HAAN_ASSERT(provider != nullptr);
  return provider;
}

ServeReport Server::run(const std::vector<Request>& workload) {
  RequestQueue queue(config_.queue_capacity);
  BatchScheduler scheduler(queue, config_.scheduler);
  MetricsCollector metrics;
  WorkerPool pool(model_, scheduler, [this] { return make_provider(); }, metrics,
                  {config_.workers, config_.keep_hidden, config_.mega_batch,
                   config_.norm_threads});
  pool.start();

  const Clock::time_point start = Clock::now();
  for (const Request& request : workload) {
    if (config_.paced) {
      const auto arrival =
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(request.arrival_us));
      std::this_thread::sleep_until(arrival);
    }
    Request admitted = request;
    admitted.enqueued_at = Clock::now();
    const bool accepted = queue.push(std::move(admitted));
    HAAN_ASSERT(accepted);  // the server closes the queue only after feeding
    metrics.sample_queue_depth(queue.size());
  }
  queue.close();
  pool.join();
  const double wall_us = elapsed_us(start, Clock::now());

  ServeReport report;
  report.results = pool.take_results();
  report.metrics = metrics.finalize(wall_us);
  // The queue tracks its peak occupancy under its own lock; the feeder's
  // post-push size() samples can miss the true maximum (a worker may pop in
  // between), so they only feed the mean.
  report.metrics.max_queue_depth = queue.high_watermark();
  report.metrics.pack_capacity = config_.scheduler.max_batch;
  return report;
}

ServeReport Server::run_reference(const std::vector<Request>& workload) {
  const std::unique_ptr<model::NormProvider> provider = make_provider();
  MetricsCollector metrics;

  const Clock::time_point start = Clock::now();
  std::vector<RequestResult> results;
  results.reserve(workload.size());
  for (const Request& request : workload) {
    const Clock::time_point begin = Clock::now();
    const tensor::Tensor hidden = model_.forward_hidden(request.tokens, *provider);
    const Clock::time_point done = Clock::now();

    RequestResult result;
    result.id = request.id;
    result.batch_size = 1;
    result.prompt_len = request.tokens.size();
    result.hidden_checksum = checksum_floats(hidden.data());
    if (config_.keep_hidden) {
      result.hidden.assign(hidden.data().begin(), hidden.data().end());
    }
    result.compute_us = elapsed_us(begin, done);
    result.total_us = result.compute_us;
    metrics.record(result);
    metrics.record_batch(1);
    results.push_back(std::move(result));
  }
  const double wall_us = elapsed_us(start, Clock::now());
  if (const core::HaanNormProvider* haan = core::as_haan_provider(provider.get())) {
    metrics.add_norm_counters(haan->counters());
  }

  ServeReport report;
  report.results = std::move(results);
  report.metrics = metrics.finalize(wall_us);
  return report;
}

}  // namespace haan::serve
