#include "serve/server.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "kernels/autotune.hpp"
#include "mem/topology.hpp"
#include "model/row_partition.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "serve/queue.hpp"
#include "serve/session.hpp"
#include "serve/step_scheduler.hpp"
#include "serve/worker_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace haan::serve {

namespace {

/// Builds one live snapshot from the in-flight collectors. `last_completed`
/// carries state between snapshots so per-interval throughput is reported
/// alongside the cumulative rate.
obs::Snapshot live_snapshot(const MetricsCollector& metrics,
                            const RequestQueue& queue,
                            std::size_t pack_capacity,
                            const KernelTuningInfo& kernel,
                            Clock::time_point started,
                            std::uint64_t xnode_rows_base,
                            std::size_t& last_completed) {
  const double elapsed = elapsed_us(started, Clock::now());
  ServeMetrics live = metrics.finalize(elapsed);
  live.pack_capacity = pack_capacity;  // occupancy needs the scheduler bound
  const std::size_t depth = queue.size();
  const std::size_t delta = live.completed - last_completed;
  last_completed = live.completed;

  obs::Snapshot snapshot;
  std::ostringstream human;
  human << "t=" << common::format_double(elapsed / 1e6, 2) << "s completed="
        << live.completed << " (+" << delta << ") rate="
        << common::format_double(live.throughput_rps, 1) << " rps queue="
        << depth << " occupancy="
        << common::format_double(live.pack_occupancy(), 2) << " p50="
        << common::format_double(live.total.p50_us / 1000.0, 2) << "ms p95="
        << common::format_double(live.total.p95_us / 1000.0, 2) << "ms p99="
        << common::format_double(live.total.p99_us / 1000.0, 2) << "ms";
  snapshot.human = human.str();

  common::Json::Object json;
  json["t_us"] = elapsed;
  json["completed"] = live.completed;
  json["interval_completed"] = delta;
  json["throughput_rps"] = live.throughput_rps;
  json["queue_depth"] = depth;
  json["pack_occupancy"] = live.pack_occupancy();
  json["rows_per_pack"] = live.rows_per_pack();
  json["p50_us"] = live.total.p50_us;
  json["p95_us"] = live.total.p95_us;
  json["p99_us"] = live.total.p99_us;
  json["kernel_backend"] = kernel.backend;
  json["autotune_source"] = kernel.source;
  json["autotune_rows_tile"] = kernel.rows_tile;
  // Placement gauges that are live mid-run (worker arena stats only land in
  // the collector at drain; these two are process-global and always current).
  json["numa_mode"] = std::string(mem::to_string(mem::numa_mode()));
  json["numa_nodes"] = mem::topology().nodes();
  json["cross_node_rows"] = static_cast<std::size_t>(
      model::RowPartitionPool::global_cross_node_rows() - xnode_rows_base);
  snapshot.json = json;
  return snapshot;
}

/// HAAN_PREFILL_CHUNK in the environment (any parseable value, including 0 =
/// whole-prompt steps) flips kAuto configs into chunked execution — the CI
/// matrix lever for running whole suites in both execution models.
std::optional<std::size_t> env_prefill_chunk() {
  const char* raw = std::getenv("HAAN_PREFILL_CHUNK");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::size_t>(value);
}

bool workload_has_decode(const std::vector<Request>& workload) {
  return std::any_of(
      workload.begin(), workload.end(),
      [](const Request& request) { return request.max_new_tokens > 0; });
}

/// The kernel decision behind this model's norm layers, rendered for metrics.
/// tuned_for() is memoized, so this is a registry lookup after the server
/// constructor warmed it.
KernelTuningInfo kernel_tuning_info(const model::ModelConfig& model) {
  const kernels::AutotuneChoice& choice = kernels::tuned_for(model.d_model);
  KernelTuningInfo info;
  info.backend = choice.table->name;
  info.dispatch = kernels::active_name();
  info.source = kernels::to_string(choice.source);
  info.cache_hit = choice.cache_hit;
  info.d = choice.d;
  info.rows_tile = choice.rows_tile;
  info.norm_layers = 2 * model.n_blocks + (model.final_norm ? 1 : 0);
  return info;
}

/// One trace instant per norm layer naming the tuned kernel table, so
/// exported traces show which backend served each layer. Table names are
/// string literals in the backend TUs — static storage, as the tracer
/// requires.
void trace_kernel_choice(const KernelTuningInfo& info,
                         const kernels::AutotuneChoice& choice) {
  if (!obs::tracing_enabled()) return;
  for (std::size_t layer = 0; layer < info.norm_layers; ++layer) {
    obs::instant(choice.table->name, "autotune",
                 static_cast<std::uint32_t>(layer),
                 static_cast<std::uint32_t>(choice.rows_tile));
  }
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), model_(config_.model) {
  HAAN_EXPECTS(core::is_norm_provider_name(config_.norm));
  HAAN_EXPECTS(core::is_norm_provider_name(config_.degrade_norm));
  HAAN_EXPECTS(config_.workers > 0);

  if (!config_.numa.empty()) {
    const std::optional<mem::NumaMode> mode = mem::parse_numa_mode(config_.numa);
    HAAN_EXPECTS(mode.has_value());  // "off" | "auto" | "interleave"
    mem::set_numa_mode_override(*mode);
  }

  provider_options_.width = config_.model.d_model;
  provider_options_.model_name = config_.model.name;
  provider_options_.norm_threads = config_.norm_threads;

  // Warm the kernel autotuner for this model's row width at construction —
  // the measurement (and its startup log line) happens once here instead of
  // inside the first worker's first norm layer.
  kernels::tuned_for(config_.model.d_model);

  if (config_.norm != "exact") {
    if (config_.calibrate) {
      const auto calibration =
          core::calibrate_skip_plan(model_, config_.calibration);
      provider_options_.plan = calibration.plan;
    } else {
      provider_options_.plan = config_.preset_plan;
    }
  }
}

std::unique_ptr<model::NormProvider> Server::make_provider() const {
  auto provider = core::make_norm_provider(config_.norm, provider_options_);
  HAAN_ASSERT(provider != nullptr);
  return provider;
}

std::unique_ptr<model::NormProvider> Server::make_degrade_provider() const {
  auto provider =
      core::make_norm_provider(config_.degrade_norm, provider_options_);
  HAAN_ASSERT(provider != nullptr);
  return provider;
}

std::string to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::kAuto: return "auto";
    case ExecMode::kMegaBatch: return "mega-batch";
    case ExecMode::kPerRequest: return "per-request";
    case ExecMode::kChunked: return "chunked";
  }
  return "?";
}

ExecMode Server::resolve_mode(const std::vector<Request>& workload) const {
  if (config_.mode != ExecMode::kAuto) return config_.mode;
  if (env_prefill_chunk().has_value()) return ExecMode::kChunked;
  if (workload_has_decode(workload)) return ExecMode::kChunked;
  return config_.mega_batch ? ExecMode::kMegaBatch : ExecMode::kPerRequest;
}

ServeReport Server::run(const std::vector<Request>& workload) {
  const ExecMode mode = resolve_mode(workload);
  // Whole-request modes would silently drop decode demand.
  HAAN_EXPECTS(mode == ExecMode::kChunked || !workload_has_decode(workload));

  RequestQueue queue(config_.queue_capacity);
  MetricsCollector metrics;
  WorkerPool::Options pool_options;
  pool_options.n_workers = config_.workers;
  pool_options.keep_hidden = config_.keep_hidden;
  pool_options.mega_batch = mode == ExecMode::kMegaBatch;
  pool_options.norm_threads = config_.norm_threads;
  pool_options.degrade_factory = [this] { return make_degrade_provider(); };

  std::unique_ptr<SessionTable> sessions;
  std::unique_ptr<StepScheduler> step_scheduler;
  std::unique_ptr<BatchScheduler> scheduler;
  std::unique_ptr<WorkerPool> pool;
  if (mode == ExecMode::kChunked) {
    StepSchedulerConfig step_config;
    step_config.batching = config_.scheduler;
    step_config.prefill_chunk =
        config_.mode == ExecMode::kAuto
            ? env_prefill_chunk().value_or(config_.prefill_chunk)
            : config_.prefill_chunk;
    sessions = std::make_unique<SessionTable>(config_.model);
    step_scheduler =
        std::make_unique<StepScheduler>(queue, *sessions, step_config);
    pool = std::make_unique<WorkerPool>(
        model_, *step_scheduler, *sessions, [this] { return make_provider(); },
        metrics, pool_options);
  } else {
    scheduler = std::make_unique<BatchScheduler>(queue, config_.scheduler);
    pool = std::make_unique<WorkerPool>(
        model_, *scheduler, [this] { return make_provider(); }, metrics,
        pool_options);
  }
  // Cross-node rows are a process-global counter (pools are created and
  // destroyed with workers); the run's contribution is the delta.
  const std::uint64_t xnode_rows_base =
      model::RowPartitionPool::global_cross_node_rows();
  pool->start();

  const Clock::time_point start = Clock::now();

  std::unique_ptr<obs::SnapshotEmitter> emitter;
  if (config_.stats_interval_ms > 0) {
    obs::SnapshotEmitter::Options options;
    options.interval = std::chrono::milliseconds(config_.stats_interval_ms);
    options.json_path = config_.stats_json_path;
    // Sampling is safe mid-run: the collector and queue are mutex-guarded and
    // finalize() is a constant-cost histogram walk.
    emitter = std::make_unique<obs::SnapshotEmitter>(
        [&metrics, &queue, start, capacity = config_.scheduler.max_batch,
         kernel = kernel_tuning_info(config_.model), xnode_rows_base,
         last = std::size_t{0}]() mutable {
          return live_snapshot(metrics, queue, capacity, kernel, start,
                               xnode_rows_base, last);
        },
        options);
    emitter->start();
  }

  obs::set_thread_name("feeder");
  for (const Request& request : workload) {
    if (config_.paced) {
      const auto arrival =
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(request.arrival_us));
      std::this_thread::sleep_until(arrival);
    }
    Request admitted = request;
    {
      HAAN_TRACE_SPAN("enqueue", "serve",
                      static_cast<std::uint32_t>(request.id));
      // The flow starts here and finishes on whichever worker completes the
      // request — the exported trace draws the cross-thread arrow.
      obs::flow_begin("req", "serve", request.id);
      admitted.enqueued_at = Clock::now();
      const bool accepted = queue.push(std::move(admitted));
      HAAN_ASSERT(accepted);  // the server closes the queue only after feeding
    }
  }
  queue.close();
  pool->join();
  if (emitter != nullptr) emitter->stop();
  const double wall_us = elapsed_us(start, Clock::now());

  ServeReport report;
  report.results = pool->take_results();
  report.metrics = metrics.finalize(wall_us);
  // The queue owns depth accounting under its own lock: the high watermark
  // (a feeder-side post-push sample can miss the true peak) and the
  // event-sampled mean, which covers pops as well so drain-phase decay is
  // represented.
  report.metrics.max_queue_depth = queue.high_watermark();
  report.metrics.mean_queue_depth = queue.mean_depth();
  report.metrics.pack_capacity = config_.scheduler.max_batch;
  report.metrics.kernel = kernel_tuning_info(config_.model);
  trace_kernel_choice(report.metrics.kernel,
                      kernels::tuned_for(config_.model.d_model));

  // Placement accounting: worker scratch-arena stats arrived in the collector
  // before join; KV arena usage lives in the session table, and the topology
  // and cross-node delta are stamped here.
  report.metrics.mem.numa_mode = mem::to_string(mem::numa_mode());
  report.metrics.mem.nodes = static_cast<int>(mem::topology().nodes());
  report.metrics.mem.cross_node_rows =
      model::RowPartitionPool::global_cross_node_rows() - xnode_rows_base;
  report.metrics.mem.cross_node_partition =
      kernels::tuned_for(config_.model.d_model).cross_node_partition;
  if (sessions != nullptr) {
    const SessionTable::ArenaUsage usage = sessions->arena_usage();
    report.metrics.mem.arena_bytes += usage.reserved_bytes;
    report.metrics.mem.arena_allocations += usage.allocations;
    report.metrics.mem.arena_slab_allocations += usage.slab_allocations;
    report.metrics.mem.arena_resets += usage.resets;
  }
  return report;
}

ServeReport Server::run_reference(const std::vector<Request>& workload) {
  const std::unique_ptr<model::NormProvider> provider = make_provider();
  MetricsCollector metrics;

  const Clock::time_point start = Clock::now();
  std::vector<RequestResult> results;
  results.reserve(workload.size());
  for (const Request& request : workload) {
    const Clock::time_point begin = Clock::now();
    // Re-forward oracle: greedy-decode by running a FULL forward over prompt
    // + tokens-so-far for every generated token. The final `hidden` covers
    // exactly the fed rows (the last generated token is returned, never fed),
    // matching incremental execution row for row.
    const std::size_t decode_cap =
        config_.model.max_seq_len - request.tokens.size() + 1;
    const std::size_t max_new = std::min(request.max_new_tokens, decode_cap);
    std::vector<int> tokens = request.tokens;
    std::vector<int> generated;
    tensor::Tensor hidden = model_.forward_hidden(tokens, *provider);
    while (generated.size() < max_new) {
      const auto logits =
          model_.logits_for_hidden_row(hidden.row(hidden.shape().dim(0) - 1));
      generated.push_back(static_cast<int>(tensor::argmax(logits)));
      if (generated.size() == max_new) break;
      tokens.push_back(generated.back());
      hidden = model_.forward_hidden(tokens, *provider);
    }
    const Clock::time_point done = Clock::now();

    RequestResult result;
    result.id = request.id;
    result.batch_size = 1;
    result.prompt_len = request.tokens.size();
    result.hidden_checksum = checksum_floats(hidden.data());
    result.generated = std::move(generated);
    if (config_.keep_hidden) {
      result.hidden.assign(hidden.data().begin(), hidden.data().end());
    }
    result.compute_us = elapsed_us(begin, done);
    result.total_us = result.compute_us;
    metrics.record(result);
    metrics.record_batch(1);
    results.push_back(std::move(result));
  }
  const double wall_us = elapsed_us(start, Clock::now());
  if (const core::HaanNormProvider* haan = core::as_haan_provider(provider.get())) {
    metrics.add_norm_counters(haan->counters());
  }

  ServeReport report;
  report.results = std::move(results);
  report.metrics = metrics.finalize(wall_us);
  report.metrics.kernel = kernel_tuning_info(config_.model);
  report.metrics.mem.numa_mode = mem::to_string(mem::numa_mode());
  report.metrics.mem.nodes = static_cast<int>(mem::topology().nodes());
  return report;
}

}  // namespace haan::serve
