// Request/result types flowing through the serving runtime. A Request is a
// token prompt plus its workload arrival offset; the runtime stamps queue
// timestamps on it as it moves. A RequestResult carries the latency breakdown
// and a checksum of the final hidden states so multi-threaded runs can be
// compared bit-for-bit against a single-threaded reference.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

namespace haan::serve {

using Clock = std::chrono::steady_clock;

/// One inference request.
struct Request {
  std::uint64_t id = 0;
  std::vector<int> tokens;

  /// Tokens to greedily decode after the prompt (0 = prefill-only request,
  /// the pre-decode behavior). Served incrementally: the prompt prefills the
  /// session's KV cache (possibly in chunks), then each generated token feeds
  /// back as a single-row decode step. The runtime clamps this so the fed
  /// sequence never exceeds the model's max_seq_len.
  std::size_t max_new_tokens = 0;

  /// Arrival offset from workload start, microseconds (open-loop pacing).
  double arrival_us = 0.0;

  /// Scheduling class, higher = more urgent. EDF formation orders by
  /// effective priority (priority plus a time-based aging credit, so lower
  /// classes cannot starve) before deadline slack.
  int priority = 0;

  /// Latency budget from enqueue, microseconds (0 = no deadline). Admission
  /// control may shed or degrade a request whose remaining slack crosses the
  /// policy thresholds; requests without a deadline are never shed/degraded.
  double deadline_us = 0.0;

  /// Workload tenant id (multi-tenant mixes; 0 when single-tenant).
  std::uint32_t tenant = 0;

  /// Stamped sticky by admission control: serve on the cheaper degrade
  /// provider. Degraded and normal requests never share a pack (one pack
  /// runs exactly one provider).
  bool degraded = false;

  /// Stamped by the server when the request enters the queue.
  Clock::time_point enqueued_at{};

  /// Stamped by the scheduler when the request leaves the queue into a batch.
  Clock::time_point dequeued_at{};
};

/// Completion record for one request.
struct RequestResult {
  std::uint64_t id = 0;
  std::size_t worker = 0;       ///< worker index that executed the request
  std::uint64_t batch = 0;      ///< batch sequence number it rode in
  std::size_t batch_size = 0;   ///< size of that batch
  std::size_t prompt_len = 0;

  /// FNV-1a over the raw bits of the final hidden states of every FED row, in
  /// position order. For prefill-only requests that is the prompt's (L x
  /// d_model) hidden block, exactly as before; for decode requests the fed
  /// rows are prompt + generated[0..n-2] (the last generated token is
  /// returned but never fed), and incremental execution accumulates the hash
  /// step by step — bit-identical to hashing a one-shot forward over the same
  /// fed tokens.
  std::uint64_t hidden_checksum = 0;

  /// Greedily decoded tokens (argmax over tied-embedding logits), length
  /// max_new_tokens after clamping; empty for prefill-only requests.
  std::vector<int> generated;

  /// Time to first token: enqueue -> completion of the step that consumed the
  /// last prompt token (the first decoded token's step, or the final prefill
  /// chunk for prefill-only requests). Zero in reference mode.
  double ttft_us = 0.0;

  /// Full final hidden states of the fed rows, kept only when the server's
  /// keep_hidden flag is set (tests); empty otherwise to bound memory.
  std::vector<float> hidden;

  double queue_us = 0.0;    ///< enqueue -> dequeue (batch formation)
  double compute_us = 0.0;  ///< forward pass (summed over steps for sessions)
  double total_us = 0.0;    ///< enqueue -> completion

  int priority = 0;           ///< scheduling class (copied from the request)
  std::uint32_t tenant = 0;   ///< workload tenant (copied from the request)
  bool degraded = false;      ///< served on the cheap degrade provider
  bool shed = false;          ///< completed UNSERVED by admission control
                              ///< (no forward ran; checksum/hidden empty)
  bool deadline_missed = false;  ///< had a deadline and finished past it
};

/// FNV-1a seed for checksum_floats (the offset basis); pass a previous
/// checksum as `seed` to continue hashing across row chunks.
inline constexpr std::uint64_t kChecksumSeed = 0xCBF29CE484222325ULL;

/// FNV-1a over the bit patterns of a float span. Bit-exact: two runs agree
/// iff every float is binary-identical. Chaining invariant:
/// checksum_floats(ab) == checksum_floats(b, checksum_floats(a)).
inline std::uint64_t checksum_floats(std::span<const float> values,
                                     std::uint64_t seed = kChecksumSeed) {
  std::uint64_t hash = seed;
  for (const float v : values) {
    std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xFFU;
      hash *= 0x100000001B3ULL;
    }
  }
  return hash;
}

/// Microseconds between two clock points (negative-clamped to 0).
inline double elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
  const double us = static_cast<double>(ns.count()) / 1000.0;
  return us < 0.0 ? 0.0 : us;
}

}  // namespace haan::serve
