// Request/result types flowing through the serving runtime. A Request is a
// token prompt plus its workload arrival offset; the runtime stamps queue
// timestamps on it as it moves. A RequestResult carries the latency breakdown
// and a checksum of the final hidden states so multi-threaded runs can be
// compared bit-for-bit against a single-threaded reference.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

namespace haan::serve {

using Clock = std::chrono::steady_clock;

/// One inference request.
struct Request {
  std::uint64_t id = 0;
  std::vector<int> tokens;

  /// Arrival offset from workload start, microseconds (open-loop pacing).
  double arrival_us = 0.0;

  /// Stamped by the server when the request enters the queue.
  Clock::time_point enqueued_at{};

  /// Stamped by the scheduler when the request leaves the queue into a batch.
  Clock::time_point dequeued_at{};
};

/// Completion record for one request.
struct RequestResult {
  std::uint64_t id = 0;
  std::size_t worker = 0;       ///< worker index that executed the request
  std::uint64_t batch = 0;      ///< batch sequence number it rode in
  std::size_t batch_size = 0;   ///< size of that batch
  std::size_t prompt_len = 0;

  /// FNV-1a over the raw bits of the final hidden states (L x d_model).
  std::uint64_t hidden_checksum = 0;

  /// Full final hidden states, kept only when the server's keep_hidden flag
  /// is set (tests); empty otherwise to bound memory.
  std::vector<float> hidden;

  double queue_us = 0.0;    ///< enqueue -> dequeue (batch formation)
  double compute_us = 0.0;  ///< forward pass
  double total_us = 0.0;    ///< enqueue -> completion
};

/// FNV-1a over the bit patterns of a float span. Bit-exact: two runs agree
/// iff every float is binary-identical.
inline std::uint64_t checksum_floats(std::span<const float> values) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const float v : values) {
    std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xFFU;
      hash *= 0x100000001B3ULL;
    }
  }
  return hash;
}

/// Microseconds between two clock points (negative-clamped to 0).
inline double elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(to - from);
  const double us = static_cast<double>(ns.count()) / 1000.0;
  return us < 0.0 ? 0.0 : us;
}

}  // namespace haan::serve
