// The serving facade: wires queue + scheduler + worker pool + metrics around
// a Transformer. Construction builds the model and (for haan* providers)
// runs offline calibration once so every worker's provider shares the same
// skip plan. run() plays a workload open-loop (honoring arrival offsets) or
// closed-loop (as fast as the queue admits); run_reference() executes the
// same workload single-threaded in arrival order — the determinism oracle
// multi-worker runs are compared against bit-for-bit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/provider_factory.hpp"
#include "model/transformer.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace haan::serve {

/// Full serving configuration.
struct ServerConfig {
  model::ModelConfig model = model::tiny_test_model();

  /// Provider name (core::norm_provider_names()).
  std::string norm = "haan";

  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  SchedulerConfig scheduler;

  /// Honor workload arrival offsets (open-loop). False = closed-loop: feed as
  /// fast as queue backpressure admits.
  bool paced = true;

  /// Keep full hidden states in results (verification; memory-heavy).
  bool keep_hidden = false;

  /// Run Algorithm 1 at startup and attach the plan to haan* providers.
  bool calibrate = true;
  core::CalibrationOptions calibration;
};

/// End-of-run report.
struct ServeReport {
  ServeMetrics metrics;
  std::vector<RequestResult> results;  ///< sorted by request id
};

/// Batched multi-threaded inference server.
class Server {
 public:
  /// Builds the model, validates the provider name (aborts on unknown) and
  /// calibrates the skip plan when configured.
  explicit Server(ServerConfig config);

  const ServerConfig& config() const { return config_; }
  const model::Transformer& model() const { return model_; }

  /// Skip plan attached to haan* providers (disabled for "exact" or when
  /// calibration is off).
  const core::SkipPlan& plan() const { return provider_options_.plan; }

  /// Builds one provider exactly as the workers do (shared with
  /// run_reference and external verification).
  std::unique_ptr<model::NormProvider> make_provider() const;

  /// Serves the workload to completion through the concurrent runtime.
  ServeReport run(const std::vector<Request>& workload);

  /// Single-threaded in-order execution with one provider; no queue, no
  /// batching. Produces bit-identical per-request hidden states (and, summed,
  /// identical norm counters) to run() under any worker count.
  ServeReport run_reference(const std::vector<Request>& workload);

 private:
  ServerConfig config_;
  model::Transformer model_;
  core::ProviderOptions provider_options_;
};

}  // namespace haan::serve
