// The serving facade: wires queue + scheduler + worker pool + metrics around
// a Transformer. Construction builds the model and (for haan* providers)
// runs offline calibration once so every worker's provider shares the same
// skip plan. run() plays a workload open-loop (honoring arrival offsets) or
// closed-loop (as fast as the queue admits), executing each scheduler batch
// as ONE packed cross-request forward by default (mega_batch): the batch's
// sequences concatenate into a (Σ seq_len × d) block and every norm layer is
// a single row-block provider call spanning all of them, optionally split
// across a worker-local row-partition pool. run_reference() executes the
// same workload single-threaded, request-at-a-time, with one provider — the
// determinism oracle. Packed multi-worker runs are compared against it
// bit-for-bit: per-request hidden states are identical for any worker count,
// batch packing, and norm-thread count, because providers key per-position
// state by packed row (unique per row, carrying exactly the per-sequence
// anchor values) and every row kernel is row-wise.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/provider_factory.hpp"
#include "model/transformer.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

namespace haan::serve {

/// How the worker pool executes requests.
enum class ExecMode {
  /// Resolve at run() time: HAAN_PREFILL_CHUNK in the environment or decode
  /// traffic in the workload selects kChunked; otherwise the legacy
  /// mega_batch flag picks kMegaBatch/kPerRequest. The default — existing
  /// configs keep their behavior, and the CI matrix can flip whole test
  /// suites into chunked execution via the environment.
  kAuto,

  /// One whole-request scheduler batch = one packed forward (the PR 4 model).
  kMegaBatch,

  /// One forward per request (the PR 3 model, kept for A/B benchmarking).
  kPerRequest,

  /// Chunked prefill + incremental decode over live sessions: the step
  /// scheduler mixes prefill chunks and single-row decode steps of different
  /// requests into each pack; per-session KV caches carry attention state
  /// across steps. The only mode that serves max_new_tokens > 0.
  kChunked,
};

std::string to_string(ExecMode mode);

/// Full serving configuration.
struct ServerConfig {
  model::ModelConfig model = model::tiny_test_model();

  /// Provider name (core::norm_provider_names()).
  std::string norm = "haan";

  /// Provider for DEGRADED requests (admission control's cheap lane under
  /// overload; see SchedulerConfig.policy). haan-full is the most aggressive
  /// skip configuration — the natural latency/accuracy trade-down.
  std::string degrade_norm = "haan-full";

  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  SchedulerConfig scheduler;

  ExecMode mode = ExecMode::kAuto;

  /// Prompt rows per prefill step in chunked mode (0 = whole remaining
  /// prompt in one step). Overridden by HAAN_PREFILL_CHUNK when mode=kAuto
  /// resolves to chunked via the environment.
  std::size_t prefill_chunk = 0;

  /// Legacy packing flag, honored only when mode == kAuto resolves to a
  /// whole-request mode: true = mega-batch, false = per-request.
  bool mega_batch = true;

  /// Row-partition threads per worker provider (0 = HAAN_NORM_THREADS /
  /// hardware default, 1 = serial). Outputs are bit-identical regardless.
  std::size_t norm_threads = 0;

  /// NUMA/arena placement policy: "off", "auto", "interleave", or empty to
  /// defer to HAAN_NUMA (default auto). Non-empty sets the PROCESS-WIDE mode
  /// override at server construction (placement is global by nature: arenas,
  /// pinning and the topology are shared machinery). Placement moves memory
  /// and threads, never values — results are bit-identical across modes.
  std::string numa;

  /// Honor workload arrival offsets (open-loop). False = closed-loop: feed as
  /// fast as queue backpressure admits.
  bool paced = true;

  /// Emit a live metrics snapshot every this many milliseconds while the run
  /// is in flight (throughput, queue depth, pack occupancy, latency
  /// percentiles): a log line (component "stats") and, when stats_json_path
  /// is set, one appended JSON object per snapshot. 0 disables.
  std::size_t stats_interval_ms = 0;
  std::string stats_json_path;

  /// Keep full hidden states in results (verification; memory-heavy).
  bool keep_hidden = false;

  /// Run Algorithm 1 at startup and attach the plan to haan* providers.
  bool calibrate = true;
  core::CalibrationOptions calibration;

  /// Plan attached to haan* providers when `calibrate` is false
  /// (default-constructed = disabled). Lets benches reuse one calibration
  /// across many server instances instead of re-running Algorithm 1 each.
  core::SkipPlan preset_plan;
};

/// End-of-run report.
struct ServeReport {
  ServeMetrics metrics;
  std::vector<RequestResult> results;  ///< sorted by request id
};

/// Batched multi-threaded inference server.
class Server {
 public:
  /// Builds the model, validates the provider name (aborts on unknown) and
  /// calibrates the skip plan when configured.
  explicit Server(ServerConfig config);

  const ServerConfig& config() const { return config_; }
  const model::Transformer& model() const { return model_; }

  /// Skip plan attached to haan* providers (disabled for "exact" or when
  /// calibration is off).
  const core::SkipPlan& plan() const { return provider_options_.plan; }

  /// Builds one provider exactly as the workers do (shared with
  /// run_reference and external verification).
  std::unique_ptr<model::NormProvider> make_provider() const;

  /// Builds the degrade-lane provider (config.degrade_norm, same options and
  /// skip plan). Used by workers for degraded batches and by the bench's
  /// verify oracle to re-forward degraded requests.
  std::unique_ptr<model::NormProvider> make_degrade_provider() const;

  /// Serves the workload to completion through the concurrent runtime.
  /// Requests with max_new_tokens > 0 require chunked execution (explicit
  /// kChunked, or kAuto which resolves to it when decode traffic is present).
  ServeReport run(const std::vector<Request>& workload);

  /// The execution mode run() will use for `workload` (resolves kAuto
  /// against HAAN_PREFILL_CHUNK and the workload's decode demand).
  ExecMode resolve_mode(const std::vector<Request>& workload) const;

  /// Single-threaded in-order execution with one provider; no queue, no
  /// batching, no cross-request packing — one forward_hidden per request.
  /// Decode requests are served by the re-forward oracle: each generated
  /// token triggers a full forward over prompt + tokens-so-far (no KV cache),
  /// so the final hidden states/checksum cover exactly the fed rows (prompt +
  /// all generated tokens but the last) — the same rows incremental execution
  /// feeds.
  /// Produces bit-identical per-request hidden states (and identical per-row
  /// norm counters for prefill-only workloads: norm_calls / isd_* /
  /// elements_read / fused sums) to run() under any worker count, batch
  /// packing, prefill chunking, pack mix and norm-thread count. Only the
  /// batching-shape counters (batched_norm_calls, packed_*) differ — and,
  /// under decode, the per-row counters too (the oracle re-feeds prompt rows
  /// every step; incremental execution feeds each row once).
  ServeReport run_reference(const std::vector<Request>& workload);

 private:
  ServerConfig config_;
  model::Transformer model_;
  core::ProviderOptions provider_options_;
};

}  // namespace haan::serve
