// Worker thread pool: N threads, each owning a private NormProvider built
// from a shared factory, pulling batches from the scheduler and running
// Transformer forward passes. The Transformer is shared read-only (its
// forward path is const and pure given the provider); per-request outputs are
// therefore bit-identical regardless of which worker executes a request,
// because every provider resets its per-sequence state in begin_sequence().
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "model/norm_provider.hpp"
#include "model/transformer.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"

namespace haan::serve {

/// Pool of inference workers draining a BatchScheduler.
class WorkerPool {
 public:
  using ProviderFactory =
      std::function<std::unique_ptr<model::NormProvider>()>;

  struct Options {
    std::size_t n_workers = 4;
    /// Keep the full final hidden states in each RequestResult (tests /
    /// verification); checksums are always kept.
    bool keep_hidden = false;
  };

  /// Workers are created by start(); the pool must outlive its threads, and
  /// `model`, `scheduler`, `metrics` must outlive the pool.
  WorkerPool(const model::Transformer& model, BatchScheduler& scheduler,
             ProviderFactory provider_factory, MetricsCollector& metrics,
             Options options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches the worker threads.
  void start();

  /// Blocks until every worker has exited (the scheduler's queue was closed
  /// and drained). Each worker's provider counters are folded into the
  /// metrics collector as it exits.
  void join();

  /// Moves out all accumulated results, sorted by request id. Call after
  /// join().
  std::vector<RequestResult> take_results();

  const Options& options() const { return options_; }

 private:
  void worker_main(std::size_t worker_index);

  const model::Transformer& model_;
  BatchScheduler& scheduler_;
  ProviderFactory provider_factory_;
  MetricsCollector& metrics_;
  Options options_;

  std::vector<std::thread> threads_;
  std::mutex results_mu_;
  std::vector<RequestResult> results_;
};

}  // namespace haan::serve
