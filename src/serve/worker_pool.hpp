// Worker thread pool: N threads, each owning a private NormProvider built
// from a shared factory, pulling batches from the scheduler and running
// Transformer forward passes. In mega-batch mode (the default) a worker packs
// its whole batch into one BatchLayout and runs a single
// forward_hidden_batch over the concatenated (Σ seq_len × d) hidden block, so
// every norm layer amortizes across ALL sequences in the batch; per-request
// mode forwards one request at a time (the pre-mega-batch execution model,
// kept for A/B benchmarking). The Transformer is shared read-only (its
// forward path is const and pure given the provider); per-request outputs are
// bit-identical in either mode and regardless of which worker executes a
// request, because every provider resets its per-sequence state in
// begin_sequence() and packed rows carry per-row predictor state.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "model/norm_provider.hpp"
#include "model/transformer.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/step_scheduler.hpp"

namespace haan::serve {

/// Pool of inference workers draining a BatchScheduler (whole-request modes)
/// or a StepScheduler (chunked/session mode, where each pack mixes prefill
/// chunks and decode steps of different live sessions into one packed
/// forward; see step_scheduler.hpp).
class WorkerPool {
 public:
  using ProviderFactory =
      std::function<std::unique_ptr<model::NormProvider>()>;

  struct Options {
    std::size_t n_workers = 4;
    /// Keep the full final hidden states in each RequestResult (tests /
    /// verification); checksums are always kept.
    bool keep_hidden = false;
    /// Pack whole scheduler batches into one cross-request forward (true) or
    /// forward request-at-a-time (false; the PR 3 execution model).
    bool mega_batch = true;
    /// Worker-local span/row parallelism inside a packed forward (0 =
    /// HAAN_NORM_THREADS / hardware default, 1 = serial). Bit-identical for
    /// any value.
    std::size_t norm_threads = 0;
    /// Provider for degraded batches/packs (admission control's cheap lane).
    /// Built lazily per worker on the first degraded batch. Empty = fall
    /// back to the primary factory (degrade becomes a no-op reroute).
    ProviderFactory degrade_factory;
  };

  /// Workers are created by start(); the pool must outlive its threads, and
  /// `model`, `scheduler`, `metrics` must outlive the pool.
  WorkerPool(const model::Transformer& model, BatchScheduler& scheduler,
             ProviderFactory provider_factory, MetricsCollector& metrics,
             Options options);

  /// Session-mode pool: workers pull step packs, execute them as one packed
  /// incremental forward, then requeue or retire each session. `sessions`
  /// must be the table `scheduler` admits into; both must outlive the pool.
  /// `options.mega_batch` is ignored (session packs are always packed).
  WorkerPool(const model::Transformer& model, StepScheduler& scheduler,
             SessionTable& sessions, ProviderFactory provider_factory,
             MetricsCollector& metrics, Options options);

  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches the worker threads.
  void start();

  /// Blocks until every worker has exited (the scheduler's queue was closed
  /// and drained). Each worker's provider counters are folded into the
  /// metrics collector as it exits.
  void join();

  /// Moves out all accumulated results, sorted by request id. Call after
  /// join().
  std::vector<RequestResult> take_results();

  const Options& options() const { return options_; }

 private:
  void worker_main(std::size_t worker_index);

  /// Executes one step pack as a single packed incremental forward, advances
  /// every session aboard (checksum, greedy token, TTFT/inter-token stamps),
  /// then requeues unfinished sessions and retires finished ones.
  void execute_step_pack(std::size_t worker_index, StepPack& pack,
                         model::NormProvider& provider,
                         model::RowPartitionPool& span_pool);

  /// One packed cross-request forward over the whole batch; per-request
  /// results are unpacked from the batch's row spans. compute_us is the
  /// packed forward's duration (requests in a mega-batch complete together).
  void execute_packed(std::size_t worker_index, Batch& batch,
                      model::NormProvider& provider,
                      model::RowPartitionPool& span_pool);

  /// The per-request execution model: one forward_hidden per request.
  void execute_per_request(std::size_t worker_index, Batch& batch,
                           model::NormProvider& provider);

  void push_result(RequestResult result);

  /// Records the requests a formation pass shed as unserved results (no
  /// forward ran: checksum/hidden empty, shed=true, deadline_missed=true).
  void record_shed(std::size_t worker_index, std::uint64_t sequence,
                   std::vector<Request>& shed);

  /// Shared RequestResult population for both execution modes; `hidden` is
  /// the request's final hidden rows (a span of the packed block or the
  /// per-request tensor).
  RequestResult make_result(std::size_t worker_index, const Batch& batch,
                            const Request& request,
                            std::span<const float> hidden, double compute_us,
                            Clock::time_point done) const;

  const model::Transformer& model_;
  BatchScheduler* scheduler_ = nullptr;        ///< whole-request modes
  StepScheduler* step_scheduler_ = nullptr;    ///< session mode
  SessionTable* sessions_ = nullptr;           ///< session mode
  ProviderFactory provider_factory_;
  MetricsCollector& metrics_;
  Options options_;

  std::vector<std::thread> threads_;
  std::mutex results_mu_;
  std::vector<RequestResult> results_;
};

}  // namespace haan::serve
