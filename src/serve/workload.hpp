// Synthetic workload generator: Poisson request arrivals with configurable
// prompt-length distributions and traffic scenarios (steady, bursty, ramp).
// Fully deterministic under a fixed seed — arrivals, lengths and token
// contents draw from independent forked Rng streams, so changing one knob
// does not reshuffle the others.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace haan::serve {

/// Traffic shape over the run.
enum class Scenario {
  kSteady,    ///< constant Poisson rate
  kBursty,    ///< square wave, peak:trough = burst_factor^2, mean = rate_rps
  kRamp,      ///< rate ramps linearly from ramp_start to ramp_end x rate
  kDiurnal,   ///< sinusoidal day/night curve around rate_rps
  kOverload,  ///< saturating spike: overload_factor x rate mid-run
};

/// Prompt-length distribution.
enum class LengthModel {
  kFixed,    ///< every prompt is min_prompt tokens
  kUniform,  ///< uniform in [min_prompt, max_prompt]
  kBimodal,  ///< min_prompt, with probability long_fraction -> max_prompt
};

/// Decode-length (max_new_tokens) distribution.
enum class DecodeModel {
  kNone,       ///< prefill-only: every request has max_new_tokens = 0
  kFixed,      ///< every request decodes decode_tokens tokens
  kGeometric,  ///< geometric on {1, 2, ...} with mean decode_tokens
};

/// Nullopt-returning parsers for CLI validation...
std::optional<Scenario> try_scenario_from_string(const std::string& name);
std::optional<LengthModel> try_length_model_from_string(const std::string& name);
std::optional<DecodeModel> try_decode_model_from_string(const std::string& name);

/// ...and aborting ones for call sites where the name is already trusted.
Scenario scenario_from_string(const std::string& name);
LengthModel length_model_from_string(const std::string& name);
DecodeModel decode_model_from_string(const std::string& name);

std::string to_string(Scenario scenario);
std::string to_string(LengthModel model);
std::string to_string(DecodeModel model);

/// Generator knobs.
struct WorkloadConfig {
  std::size_t n_requests = 1000;

  /// Mean Poisson arrival rate, requests/second.
  double rate_rps = 2000.0;

  Scenario scenario = Scenario::kSteady;

  /// Bursty: the instantaneous rate toggles between a peak and a trough in a
  /// burst_factor^2 ratio every burst_period requests, normalized so the
  /// time-average arrival rate equals rate_rps. Must be >= 1.
  double burst_factor = 4.0;
  std::size_t burst_period = 64;

  /// Ramp: instantaneous rate goes linearly from ramp_start*rate (first
  /// request) to ramp_end*rate (last request).
  double ramp_start = 0.25;
  double ramp_end = 2.0;

  /// Diurnal: rate * (1 + amplitude * sin(2*pi*cycles*t)) over the run, t in
  /// [0, 1], normalized so the empirical mean arrival rate equals rate_rps
  /// over whole cycles. Amplitude must be in [0, 1) (the trough rate stays
  /// positive).
  double diurnal_amplitude = 0.8;
  double diurnal_cycles = 2.0;

  /// Overload: the middle [0.3, 0.7) of the request stream arrives at
  /// overload_factor * rate_rps (a saturating spike between normal phases);
  /// must be >= 1.
  double overload_factor = 4.0;

  LengthModel length_model = LengthModel::kUniform;
  std::size_t min_prompt = 8;
  std::size_t max_prompt = 32;
  double long_fraction = 0.1;  ///< bimodal: probability of a max_prompt prompt

  /// Decode demand. Lengths draw from a fourth forked Rng stream appended
  /// after the existing three, so enabling decode leaves arrivals, prompt
  /// lengths and token contents of a given seed bit-identical to a
  /// prefill-only workload.
  DecodeModel decode_model = DecodeModel::kNone;
  std::size_t decode_tokens = 8;  ///< fixed length / geometric mean (>= 1)
  std::size_t max_decode = 64;    ///< hard per-request cap on sampled lengths

  /// Token ids are uniform in [0, vocab_size).
  std::size_t vocab_size = 512;

  /// SLA mix. Tenants and (single-tenant) priorities draw from a FIFTH
  /// forked Rng stream appended after the decode stream, so enabling any of
  /// these knobs leaves arrivals, prompt lengths, token contents and decode
  /// budgets of a given seed bit-identical to an SLA-free workload.
  ///
  /// tenants > 1 assigns each request a uniform tenant id; with
  /// tenant_rate_rps > 0 each tenant's arrivals are additionally clamped to
  /// that rate by a per-tenant token bucket (the stream is re-sorted by
  /// arrival afterwards and ids reassigned in arrival order, so pacing
  /// honors it like any other trace). The caps shape traffic; they do not
  /// conserve the global mean rate.
  std::size_t tenants = 1;
  double tenant_rate_rps = 0.0;  ///< per-tenant arrival cap (0 = uncapped)

  /// priority_levels > 1 assigns Request.priority in [0, levels): per-tenant
  /// (tenant % levels, a stable class per tenant) under multi-tenancy, else
  /// uniform per request.
  std::size_t priority_levels = 1;

  /// Flat per-request latency budget (0 = no deadlines). Admission control
  /// only ever sheds/degrades requests with a deadline.
  double deadline_us = 0.0;

  std::uint64_t seed = 1;
};

/// Generates the request trace: ids 0..n-1 in arrival order, nondecreasing
/// arrival_us offsets, prompts within [min_prompt, max_prompt].
std::vector<Request> generate_workload(const WorkloadConfig& config);

}  // namespace haan::serve
