#include "serve/step_scheduler.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace haan::serve {

StepScheduler::StepScheduler(RequestQueue& queue, SessionTable& sessions,
                             StepSchedulerConfig config)
    : queue_(queue), sessions_(sessions), config_(config) {
  HAAN_EXPECTS(config_.batching.max_batch > 0);
  HAAN_EXPECTS(config_.poll.count() > 0);
}

StepEntry StepScheduler::make_entry(Session* session) const {
  return {session, session->next_rows(config_.prefill_chunk),
          session->prompt_done()};
}

void StepScheduler::take_ready(std::vector<StepEntry>& entries,
                               std::size_t slots) {
  while (slots > 0 && !ready_.empty()) {
    entries.push_back(make_entry(ready_.front()));
    ready_.pop_front();
    --slots;
  }
}

std::optional<StepPack> StepScheduler::next_pack() {
  std::unique_lock<std::mutex> form(form_mu_);
  StepPack pack;
  std::optional<Clock::time_point> deadline;

  for (;;) {
    const std::size_t max_batch = config_.batching.max_batch;
    {
      std::lock_guard<std::mutex> state(state_mu_);
      take_ready(pack.entries, max_batch - pack.entries.size());
    }
    bool queue_drained = false;
    bool queue_empty = false;
    while (pack.entries.size() < max_batch) {
      Request request;
      const TryPopResult result = queue_.try_pop(request);
      if (result == TryPopResult::kItem) {
        request.dequeued_at = Clock::now();
        pack.entries.push_back(make_entry(sessions_.create(std::move(request))));
        continue;
      }
      queue_drained = result == TryPopResult::kDrained;
      queue_empty = true;
      break;
    }

    if (pack.entries.size() >= max_batch) break;
    if (!pack.entries.empty()) {
      if (!deadline) {
        deadline = Clock::now() + config_.batching.max_wait;
      }
      const Clock::time_point now = Clock::now();
      if (now >= *deadline) break;
      {
        // Close early when no other candidate work exists: nothing ready,
        // nothing queued, and every live session is already in this pack.
        // Waiting out max_wait could only pack future arrivals, and would
        // charge every token of a lone decode stream the full batching delay.
        std::lock_guard<std::mutex> state(state_mu_);
        if (queue_empty && ready_.empty() &&
            sessions_.live() == pack.entries.size()) {
          break;
        }
      }
      std::unique_lock<std::mutex> state(state_mu_);
      work_cv_.wait_for(
          state, std::min<Clock::duration>(config_.poll, *deadline - now));
      continue;
    }

    // Empty-handed: end-of-stream only once the queue is drained AND every
    // session has finished — a closed queue still owes its live decodes.
    if (queue_drained) {
      std::lock_guard<std::mutex> state(state_mu_);
      if (ready_.empty() && sessions_.live() == 0) return std::nullopt;
    }
    std::unique_lock<std::mutex> state(state_mu_);
    work_cv_.wait_for(state, config_.poll);
  }

  pack.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  HAAN_TRACE_SPAN("pack-form", "serve",
                  static_cast<std::uint32_t>(pack.sequence),
                  static_cast<std::uint32_t>(pack.entries.size()));
  return pack;
}

void StepScheduler::requeue(Session* session) {
  HAAN_EXPECTS(session != nullptr && !session->finished());
  {
    std::lock_guard<std::mutex> state(state_mu_);
    ready_.push_back(session);
  }
  work_cv_.notify_all();
}

void StepScheduler::finish(Session* session) {
  // No finished() assert: the worker moves result fields (generated, hidden)
  // out of the session before retiring it.
  HAAN_EXPECTS(session != nullptr);
  sessions_.release(session->request.id);
  work_cv_.notify_all();
}

std::uint64_t StepScheduler::packs_formed() const {
  return next_sequence_.load(std::memory_order_relaxed);
}

}  // namespace haan::serve
