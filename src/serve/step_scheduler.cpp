#include "serve/step_scheduler.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace haan::serve {

namespace {

PolicyConfig resolved_policy_config(const SchedulerConfig& config,
                                    SchedPolicy resolved) {
  PolicyConfig out = config.policy;
  out.policy = resolved;
  return out;
}

}  // namespace

StepScheduler::StepScheduler(RequestQueue& queue, SessionTable& sessions,
                             StepSchedulerConfig config)
    : queue_(queue),
      sessions_(sessions),
      config_(config),
      policy_(resolve_policy(config.batching.policy.policy)),
      pool_(resolved_policy_config(config.batching, policy_)) {
  HAAN_EXPECTS(config_.batching.max_batch > 0);
  HAAN_EXPECTS(config_.poll.count() > 0);
}

StepEntry StepScheduler::make_entry(Session* session) const {
  return {session, session->next_rows(config_.prefill_chunk),
          session->prompt_done()};
}

TryPopResult StepScheduler::drain_queue_into_pool() {
  for (;;) {
    Request request;
    const TryPopResult result = queue_.try_pop(request);
    if (result != TryPopResult::kItem) return result;
    pool_.push(std::move(request));
  }
}

std::optional<StepPack> StepScheduler::next_pack() {
  std::unique_lock<std::mutex> form(form_mu_);
  StepPack pack;
  std::optional<Clock::time_point> deadline;
  std::optional<bool> lane;
  std::optional<std::size_t> bin;
  bool relax_bin = false;
  std::size_t rows = 0;
  const std::size_t max_batch = config_.batching.max_batch;
  const std::size_t max_rows = config_.batching.max_rows;
  const bool binned =
      policy_ == SchedPolicy::kBinned || policy_ == SchedPolicy::kEdf;

  for (;;) {
    const TryPopResult queue_state = drain_queue_into_pool();
    const Clock::time_point now = Clock::now();
    pool_.apply_admission(now, pack.shed);

    // The pack's provider lane is chosen lazily from whichever lane has
    // work, alternating between packs so neither lane starves the other.
    if (!lane.has_value()) {
      std::lock_guard<std::mutex> state(state_mu_);
      for (const bool candidate : {next_lane_, !next_lane_}) {
        if (!ready_[lane_index(candidate)].empty() ||
            pool_.has_lane(candidate)) {
          lane = candidate;
          pack.degraded = candidate;
          break;
        }
      }
    }

    bool budget_blocked = false;
    if (lane.has_value()) {
      // Ready sessions of this lane first (decode steps, continuing
      // prefills): finishing live sessions bounds KV residency and
      // inter-token latency; admission only uses leftover slots.
      {
        std::lock_guard<std::mutex> state(state_mu_);
        std::deque<Session*>& ready = ready_[lane_index(*lane)];
        while (pack.entries.size() < max_batch && !ready.empty()) {
          Session* session = ready.front();
          const std::size_t step_rows =
              session->next_rows(config_.prefill_chunk);
          if (max_rows > 0 && !pack.entries.empty() &&
              rows + step_rows > max_rows) {
            budget_blocked = true;
            break;
          }
          ready.pop_front();
          pack.entries.push_back(make_entry(session));
          rows += step_rows;
        }
      }
      // Admit new arrivals from the reorder pool under the policy order; the
      // first admission fixes the pack's length bin (binned/EDF).
      while (!budget_blocked && pack.entries.size() < max_batch) {
        const std::optional<std::size_t> index =
            pool_.select(now, *lane, bin, relax_bin);
        if (!index.has_value()) break;
        const std::size_t prompt_len = pool_.peek(*index).tokens.size();
        const std::size_t step_rows =
            config_.prefill_chunk == 0
                ? prompt_len
                : std::min(config_.prefill_chunk, prompt_len);
        if (max_rows > 0 && !pack.entries.empty() &&
            rows + step_rows > max_rows) {
          budget_blocked = true;
          break;
        }
        Request request = pool_.extract(*index);
        if (binned && !bin.has_value()) bin = pool_.bin_of(prompt_len);
        request.dequeued_at = now;
        Session* session = sessions_.create(std::move(request));
        {
          std::lock_guard<std::mutex> state(state_mu_);
          ++lane_live_[lane_index(*lane)];
        }
        pack.entries.push_back(make_entry(session));
        rows += step_rows;
      }
    }

    if (pack.entries.size() >= max_batch) break;
    if (budget_blocked) break;
    if (max_rows > 0 && rows >= max_rows) break;

    if (!pack.entries.empty()) {
      if (!deadline.has_value()) {
        deadline = now + config_.batching.max_wait;
      }
      if (now >= *deadline) {
        // Gather window expired: top off once from the nearest bins, then
        // ship whatever the pack holds.
        if (binned && bin.has_value() && !relax_bin) {
          relax_bin = true;
          continue;
        }
        break;
      }
      {
        // Close early when no other candidate work could join this pack:
        // nothing queued, no same-lane pending or ready work, and every
        // same-lane live session already aboard. Waiting out max_wait could
        // only pack future arrivals, and would charge every token of a lone
        // decode stream the full batching delay.
        std::lock_guard<std::mutex> state(state_mu_);
        if (!pool_.has_lane(*lane) && ready_[lane_index(*lane)].empty() &&
            lane_live_[lane_index(*lane)] == pack.entries.size()) {
          break;
        }
      }
      std::unique_lock<std::mutex> state(state_mu_);
      work_cv_.wait_for(
          state, std::min<Clock::duration>(config_.poll, *deadline - now));
      continue;
    }

    // Empty-handed. Shed decisions made while looking for work ride out
    // immediately (a shed-only pack) rather than waiting on a serveable one.
    if (!pack.shed.empty()) {
      pack.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
      return pack;
    }
    // End-of-stream only once the queue is drained, the pool is empty AND
    // every session has finished — a closed queue still owes its live
    // decodes.
    if (queue_state == TryPopResult::kDrained && pool_.empty()) {
      std::lock_guard<std::mutex> state(state_mu_);
      if (ready_[0].empty() && ready_[1].empty() && sessions_.live() == 0) {
        return std::nullopt;
      }
    }
    std::unique_lock<std::mutex> state(state_mu_);
    work_cv_.wait_for(state, config_.poll);
  }

  pack.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  HAAN_TRACE_SPAN("pack-form", "serve",
                  static_cast<std::uint32_t>(pack.sequence),
                  static_cast<std::uint32_t>(pack.entries.size()));
  next_lane_ = !*lane;  // alternate lanes across packs
  return pack;
}

void StepScheduler::requeue(Session* session) {
  HAAN_EXPECTS(session != nullptr && !session->finished());
  {
    std::lock_guard<std::mutex> state(state_mu_);
    ready_[lane_index(session->request.degraded)].push_back(session);
  }
  work_cv_.notify_all();
}

void StepScheduler::finish(Session* session) {
  // No finished() assert: the worker moves result fields (generated, hidden)
  // out of the session before retiring it.
  HAAN_EXPECTS(session != nullptr);
  const bool lane = session->request.degraded;
  sessions_.release(session->request.id);
  {
    std::lock_guard<std::mutex> state(state_mu_);
    HAAN_ASSERT(lane_live_[lane_index(lane)] > 0);
    --lane_live_[lane_index(lane)];
  }
  work_cv_.notify_all();
}

std::uint64_t StepScheduler::packs_formed() const {
  return next_sequence_.load(std::memory_order_relaxed);
}

}  // namespace haan::serve
