// Step scheduler: continuous batching over LIVE SESSIONS instead of whole
// requests. Where BatchScheduler hands a worker a batch of complete prompts,
// the StepScheduler hands it a PACK of per-session steps — prefill chunks of
// some sessions mixed with single-row decode steps of others — so decode
// traffic keeps riding the mega-batch norm amortization instead of degrading
// to one-row forwards. Sessions needing more steps are requeued by the worker
// after each pack; end-of-stream drains them to completion (a closed queue
// never drops a live decode).
//
// Admission order is a policy (serve/policy.hpp): FIFO admits in arrival
// order (legacy); binned/EDF admit from the policy reorder pool, with the
// first admission fixing the pack's prompt-length bin. Admission control may
// shed deadline-missing arrivals (they ride out in StepPack.shed, never
// becoming sessions) or degrade them onto the cheap-provider lane; a pack is
// lane-uniform (one provider per pack) and formation alternates lanes so
// neither starves.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/policy.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace haan::serve {

/// Pack formation knobs.
struct StepSchedulerConfig {
  /// Batching knobs: max sessions per pack, max hold on an open pack, row
  /// budget, and the formation policy (SchedulerConfig.policy).
  SchedulerConfig batching;

  /// Prompt rows a prefill step feeds (0 = the whole remaining prompt in one
  /// step). Smaller chunks interleave long prompts with live decodes at the
  /// cost of more steps per prompt.
  std::size_t prefill_chunk = 0;

  /// Poll quantum while waiting for work that cannot signal the scheduler
  /// directly (new queue arrivals); bounds idle wake-up latency.
  std::chrono::microseconds poll{200};
};

/// One session's contribution to a pack.
struct StepEntry {
  Session* session = nullptr;
  std::size_t rows = 0;  ///< rows this step feeds (1 for decode)
  bool decode = false;   ///< true: single generated-token row; false: prefill
};

/// One formed pack: the unit a worker executes as a single packed forward.
struct StepPack {
  std::uint64_t sequence = 0;  ///< monotone formation order
  std::vector<StepEntry> entries;

  /// True: every session aboard is degraded; the worker runs its degrade
  /// provider. Lanes never mix in one pack.
  bool degraded = false;

  /// Requests shed by admission control during this formation pass (never
  /// admitted as sessions). The worker records them as unserved results. A
  /// pack may carry shed requests and no entries.
  std::vector<Request> shed;
};

/// Pulls step packs from ready sessions + the request queue. Thread-safe:
/// workers call next_pack() concurrently (formation serialized);
/// requeue()/finish() are called by workers after executing a pack.
///
/// Scheduling policy: ready sessions (decode steps, continuing prefills) are
/// taken before new arrivals — finishing live sessions bounds KV residency
/// and inter-token latency; admission only uses leftover pack slots. An open
/// pack closes early when no other candidate work could join it (empty
/// same-lane ready queue and pool, empty request queue, every same-lane live
/// session already aboard), so a lone decode stream is not taxed max_wait
/// per token.
class StepScheduler {
 public:
  /// Resolves policy kAuto against HAAN_SCHED_POLICY at construction.
  StepScheduler(RequestQueue& queue, SessionTable& sessions,
                StepSchedulerConfig config);

  /// Blocks for the next pack. Returns nullopt only at end-of-stream: queue
  /// closed AND drained AND reorder pool empty AND no live session remains
  /// (drain semantics — close() with live decodes keeps packing until they
  /// finish).
  std::optional<StepPack> next_pack();

  /// Returns an unfinished session to its lane's ready queue (worker,
  /// post-step).
  void requeue(Session* session);

  /// Retires a finished session: releases it from the table and wakes
  /// waiters (possibly onto end-of-stream).
  void finish(Session* session);

  std::uint64_t packs_formed() const;

  const StepSchedulerConfig& config() const { return config_; }

  /// The formation order in effect (config policy with kAuto resolved).
  SchedPolicy policy() const { return policy_; }

 private:
  StepEntry make_entry(Session* session) const;

  /// Drains everything currently queued into the pool without blocking;
  /// returns the queue state seen at the end (kEmpty or kDrained).
  TryPopResult drain_queue_into_pool();

  static std::size_t lane_index(bool degraded) { return degraded ? 1 : 0; }

  RequestQueue& queue_;
  SessionTable& sessions_;
  StepSchedulerConfig config_;
  SchedPolicy policy_;  ///< resolved (never kAuto)

  std::mutex form_mu_;  ///< serializes pack formation
  PendingPool pool_;    ///< policy reorder buffer (guarded by form_mu_)
  bool next_lane_ = false;  ///< lane alternation cursor (form_mu_)

  std::mutex state_mu_;
  std::condition_variable work_cv_;
  std::deque<Session*> ready_[2];   ///< per-lane (normal / degraded)
  std::size_t lane_live_[2] = {0, 0};  ///< live sessions per lane

  std::atomic<std::uint64_t> next_sequence_{0};
};

}  // namespace haan::serve
