// Step scheduler: continuous batching over LIVE SESSIONS instead of whole
// requests. Where BatchScheduler hands a worker a batch of complete prompts,
// the StepScheduler hands it a PACK of per-session steps — prefill chunks of
// some sessions mixed with single-row decode steps of others — so decode
// traffic keeps riding the mega-batch norm amortization instead of degrading
// to one-row forwards. Sessions needing more steps are requeued by the worker
// after each pack; end-of-stream drains them to completion (a closed queue
// never drops a live decode).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace haan::serve {

/// Pack formation knobs.
struct StepSchedulerConfig {
  /// Batching knobs: max sessions per pack, max hold on an open pack.
  SchedulerConfig batching;

  /// Prompt rows a prefill step feeds (0 = the whole remaining prompt in one
  /// step). Smaller chunks interleave long prompts with live decodes at the
  /// cost of more steps per prompt.
  std::size_t prefill_chunk = 0;

  /// Poll quantum while waiting for work that cannot signal the scheduler
  /// directly (new queue arrivals); bounds idle wake-up latency.
  std::chrono::microseconds poll{200};
};

/// One session's contribution to a pack.
struct StepEntry {
  Session* session = nullptr;
  std::size_t rows = 0;  ///< rows this step feeds (1 for decode)
  bool decode = false;   ///< true: single generated-token row; false: prefill
};

/// One formed pack: the unit a worker executes as a single packed forward.
struct StepPack {
  std::uint64_t sequence = 0;  ///< monotone formation order
  std::vector<StepEntry> entries;
};

/// Pulls step packs from ready sessions + the request queue. Thread-safe:
/// workers call next_pack() concurrently (formation serialized, FIFO runs);
/// requeue()/finish() are called by workers after executing a pack.
///
/// Scheduling policy: ready sessions (decode steps, continuing prefills) are
/// taken before new arrivals — finishing live sessions bounds KV residency
/// and inter-token latency; admission only uses leftover pack slots. An open
/// pack closes early when no other candidate work exists anywhere (empty
/// ready queue, empty request queue, every live session already aboard), so
/// a lone decode stream is not taxed max_wait per token.
class StepScheduler {
 public:
  StepScheduler(RequestQueue& queue, SessionTable& sessions,
                StepSchedulerConfig config);

  /// Blocks for the next pack. Returns nullopt only at end-of-stream: queue
  /// closed AND drained AND no live session remains (drain semantics — close()
  /// with live decodes keeps packing until they finish).
  std::optional<StepPack> next_pack();

  /// Returns an unfinished session to the ready queue (worker, post-step).
  void requeue(Session* session);

  /// Retires a finished session: releases it from the table and wakes
  /// waiters (possibly onto end-of-stream).
  void finish(Session* session);

  std::uint64_t packs_formed() const;

  const StepSchedulerConfig& config() const { return config_; }

 private:
  /// Claims up to `slots` ready sessions into `entries` (state lock held by
  /// caller).
  void take_ready(std::vector<StepEntry>& entries, std::size_t slots);

  StepEntry make_entry(Session* session) const;

  RequestQueue& queue_;
  SessionTable& sessions_;
  StepSchedulerConfig config_;

  std::mutex form_mu_;  ///< serializes pack formation (FIFO fairness)
  std::mutex state_mu_;
  std::condition_variable work_cv_;
  std::deque<Session*> ready_;

  std::atomic<std::uint64_t> next_sequence_{0};
};

}  // namespace haan::serve
