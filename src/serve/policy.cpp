#include "serve/policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <tuple>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace haan::serve {

std::optional<SchedPolicy> try_policy_from_string(const std::string& name) {
  if (name == "auto") return SchedPolicy::kAuto;
  if (name == "fifo") return SchedPolicy::kFifo;
  if (name == "binned") return SchedPolicy::kBinned;
  if (name == "edf") return SchedPolicy::kEdf;
  return std::nullopt;
}

SchedPolicy policy_from_string(const std::string& name) {
  const auto policy = try_policy_from_string(name);
  HAAN_EXPECTS(policy.has_value() &&
               "unknown policy (expected auto | fifo | binned | edf)");
  return *policy;
}

std::string to_string(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kAuto: return "auto";
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kBinned: return "binned";
    case SchedPolicy::kEdf: return "edf";
  }
  return "?";
}

SchedPolicy resolve_policy(SchedPolicy policy) {
  if (policy != SchedPolicy::kAuto) return policy;
  const char* raw = std::getenv("HAAN_SCHED_POLICY");
  if (raw == nullptr || *raw == '\0') return SchedPolicy::kFifo;
  const auto parsed = try_policy_from_string(raw);
  if (!parsed.has_value() || *parsed == SchedPolicy::kAuto) {
    return SchedPolicy::kFifo;
  }
  return *parsed;
}

OverloadAction decide_admission(double slack_us, bool has_deadline,
                                const PolicyConfig& config) {
  // Requests without a deadline made no latency promise; there is nothing to
  // protect by dropping them, so they always serve (at EDF's lowest urgency).
  if (!has_deadline) return OverloadAction::kServe;
  if (config.allow_shed && slack_us < config.shed_slack_us) {
    return OverloadAction::kShed;
  }
  if (config.allow_degrade && slack_us < config.degrade_slack_us) {
    return OverloadAction::kDegrade;
  }
  return OverloadAction::kServe;
}

PendingPool::PendingPool(PolicyConfig config) : config_(config) {
  HAAN_EXPECTS(config_.policy != SchedPolicy::kAuto);
  HAAN_EXPECTS(config_.bin_width > 0);
  HAAN_EXPECTS(config_.aging_us >= 0.0);
}

void PendingPool::push(Request request) {
  entries_.push_back(Entry{std::move(request), next_seq_++});
}

bool PendingPool::has_lane(bool lane) const {
  return std::any_of(entries_.begin(), entries_.end(), [lane](const Entry& e) {
    return e.request.degraded == lane;
  });
}

double PendingPool::slack_us(const Request& request, Clock::time_point now) {
  if (request.deadline_us <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return request.deadline_us - elapsed_us(request.enqueued_at, now);
}

double PendingPool::effective_priority(const Request& request,
                                       Clock::time_point now) const {
  double priority = static_cast<double>(request.priority);
  if (config_.aging_us > 0.0) {
    priority += std::floor(elapsed_us(request.enqueued_at, now) / config_.aging_us);
  }
  return priority;
}

void PendingPool::apply_admission(Clock::time_point now,
                                  std::vector<Request>& shed) {
  if (!config_.allow_shed && !config_.allow_degrade) return;
  for (std::size_t i = 0; i < entries_.size();) {
    Request& request = entries_[i].request;
    const bool has_deadline = request.deadline_us > 0.0;
    const double slack = slack_us(request, now);
    const OverloadAction action = decide_admission(slack, has_deadline, config_);
    if (action == OverloadAction::kShed) {
      obs::instant("shed", "serve", static_cast<std::uint32_t>(request.id),
                   static_cast<std::uint32_t>(std::min(
                       std::max(-slack, 0.0),
                       static_cast<double>(std::numeric_limits<std::uint32_t>::max()))));
      request.dequeued_at = now;
      shed.push_back(std::move(request));
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (action == OverloadAction::kDegrade && !request.degraded) {
      obs::instant("degrade", "serve", static_cast<std::uint32_t>(request.id),
                   static_cast<std::uint32_t>(std::min(
                       std::max(slack, 0.0),
                       static_cast<double>(std::numeric_limits<std::uint32_t>::max()))));
      request.degraded = true;  // sticky: slack only shrinks from here
    }
    ++i;
  }
}

std::optional<std::size_t> PendingPool::select(Clock::time_point now,
                                               std::optional<bool> lane,
                                               std::optional<std::size_t> bin,
                                               bool relax_bin) const {
  // Lexicographic key, smaller = served earlier: bin distance (0 unless
  // relaxing onto neighbor bins), then the policy order — EDF ranks by
  // effective priority (descending, so negated) then slack then insertion;
  // FIFO/binned rank by insertion alone.
  using Key = std::tuple<std::size_t, double, double, std::uint64_t>;
  std::optional<std::size_t> best;
  Key best_key{};
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (lane.has_value() && entry.request.degraded != *lane) continue;
    std::size_t distance = 0;
    if (bin.has_value()) {
      const std::size_t entry_bin = bin_of(entry.request.tokens.size());
      distance = entry_bin > *bin ? entry_bin - *bin : *bin - entry_bin;
      if (distance != 0 && !relax_bin) continue;
    }
    Key key{distance, 0.0, 0.0, entry.seq};
    if (config_.policy == SchedPolicy::kEdf) {
      key = Key{distance, -effective_priority(entry.request, now),
                slack_us(entry.request, now), entry.seq};
    }
    if (!best.has_value() || key < best_key) {
      best = i;
      best_key = key;
    }
  }
  return best;
}

Request PendingPool::extract(std::size_t index) {
  HAAN_EXPECTS(index < entries_.size());
  Request request = std::move(entries_[index].request);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  return request;
}

}  // namespace haan::serve
