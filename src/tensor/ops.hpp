// Tensor operations for the transformer simulator: matmul, row softmax,
// activations, elementwise arithmetic, reductions. All reference-grade float
// implementations; performance only needs to support width-scaled surrogates.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace haan::tensor {

/// C = A(mxk) * B(kxn). Shapes validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// y = x * W^T + b, where x is (n x in), w is (out x in), b has length out.
/// The (out x in) weight layout matches how the model stores projections.
Tensor linear(const Tensor& x, const Tensor& w, std::span<const float> bias);

/// In-place numerically stable softmax over the last axis of a rank-2 tensor.
void softmax_rows(Tensor& t);

/// In-place scaled masked causal softmax for attention scores (rank-2,
/// square): entry (i, j) with j > i is masked to -inf before softmax.
void causal_softmax(Tensor& scores);

/// Elementwise GELU (tanh approximation, as used by GPT-2 / OPT).
void gelu_inplace(Tensor& t);

/// Elementwise SiLU (x * sigmoid(x), as used by LLaMA).
void silu_inplace(Tensor& t);

/// a += b (shapes must match).
void add_inplace(Tensor& a, const Tensor& b);

/// t *= s.
void scale_inplace(Tensor& t, float s);

/// Elementwise product into a new tensor.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// Mean over rows of a rank-2 tensor -> vector of length cols.
std::vector<float> mean_rows(const Tensor& t);

/// Index of the maximum element of a span (first on ties).
std::size_t argmax(std::span<const float> values);

/// Dot product of equal-length spans.
double dot(std::span<const float> a, std::span<const float> b);

/// L2 norm of a span.
double l2_norm(std::span<const float> values);

/// Normalizes a span to unit L2 norm in place; leaves zero vectors untouched.
void l2_normalize(std::span<float> values);

/// Max |a[i] - b[i]| over equal-length spans.
double max_abs_error(std::span<const float> a, std::span<const float> b);

/// sqrt(mean((a-b)^2)) over equal-length spans.
double rms_error(std::span<const float> a, std::span<const float> b);

}  // namespace haan::tensor
