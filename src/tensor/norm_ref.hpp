// Reference (exact) normalization kernels, double-precision internals.
// Everything HAAN approximates is measured against these.
#pragma once

#include <span>

#include "kernels/kernels.hpp"

namespace haan::tensor {

/// Exact statistics of a vector, double accumulation.
struct VectorStats {
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divide by N)
  double rms = 0.0;       ///< sqrt(mean of squares)
};

/// Computes mean/variance/rms of `z` exactly. The table-explicit overloads
/// let the norm providers thread one autotuned backend through every path
/// (per-row and row-block alike) so in-process bit-identity comparisons see
/// a single consistent reduction order; the plain overloads use the static
/// dispatch.
VectorStats exact_stats(std::span<const float> z);
VectorStats exact_stats(const kernels::KernelTable& k, std::span<const float> z);

/// LayerNorm per the paper's equation (1):
///   s = alpha * (z - mu) / sigma + beta
/// `eps` is added to the variance before the square root, matching framework
/// semantics. alpha/beta must match z's length (or be empty for identity).
void layernorm(std::span<const float> z, std::span<const float> alpha,
               std::span<const float> beta, std::span<float> out, double eps = 1e-5);
void layernorm(const kernels::KernelTable& k, std::span<const float> z,
               std::span<const float> alpha, std::span<const float> beta,
               std::span<float> out, double eps = 1e-5);

/// RMSNorm per the paper's equation (2): s = alpha * z / rms + beta.
void rmsnorm(std::span<const float> z, std::span<const float> alpha,
             std::span<const float> beta, std::span<float> out, double eps = 1e-5);
void rmsnorm(const kernels::KernelTable& k, std::span<const float> z,
             std::span<const float> alpha, std::span<const float> beta,
             std::span<float> out, double eps = 1e-5);

/// LayerNorm where 1/sigma is supplied externally (e.g. the HAAN predictor):
///   s = alpha * (z - mu) * isd + beta.
void layernorm_with_isd(std::span<const float> z, double mean, double isd,
                        std::span<const float> alpha, std::span<const float> beta,
                        std::span<float> out);
void layernorm_with_isd(const kernels::KernelTable& k, std::span<const float> z,
                        double mean, double isd, std::span<const float> alpha,
                        std::span<const float> beta, std::span<float> out);

/// RMSNorm with an externally supplied 1/rms factor.
void rmsnorm_with_isd(std::span<const float> z, double isd,
                      std::span<const float> alpha, std::span<const float> beta,
                      std::span<float> out);
void rmsnorm_with_isd(const kernels::KernelTable& k, std::span<const float> z,
                      double isd, std::span<const float> alpha,
                      std::span<const float> beta, std::span<float> out);

/// Row-block references: the exact per-row norm applied to each row of a
/// contiguous row-major (rows x d) block, d = x.size() / rows. These loop the
/// per-row reference verbatim — the seed semantics every batched
/// normalization path is tested against.
void layernorm_rows(std::size_t rows, std::span<const float> x,
                    std::span<const float> alpha, std::span<const float> beta,
                    std::span<float> out, double eps = 1e-5);
void rmsnorm_rows(std::size_t rows, std::span<const float> x,
                  std::span<const float> alpha, std::span<const float> beta,
                  std::span<float> out, double eps = 1e-5);

}  // namespace haan::tensor
