#include "tensor/norm_ref.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "kernels/kernels.hpp"

namespace haan::tensor {

VectorStats exact_stats(std::span<const float> z) {
  return exact_stats(kernels::active(), z);
}

VectorStats exact_stats(const kernels::KernelTable& k,
                        std::span<const float> z) {
  HAAN_EXPECTS(!z.empty());
  const double n = static_cast<double>(z.size());
  const kernels::SumStats sums = k.stats(z.data(), z.size());
  VectorStats stats;
  stats.mean = sums.sum / n;
  // Two-pass for the variance to avoid E[x^2]-E[x]^2 cancellation in the
  // *reference*; the hardware model deliberately uses the one-pass form.
  stats.variance = k.centered_sum_sq(z.data(), z.size(), stats.mean) / n;
  stats.rms = std::sqrt(sums.sum_sq / n);
  return stats;
}

namespace {

using kernels::data_or_null;

void check_affine_shapes(std::span<const float> z, std::span<const float> alpha,
                         std::span<const float> beta, std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  HAAN_EXPECTS(alpha.empty() || alpha.size() == z.size());
  HAAN_EXPECTS(beta.empty() || beta.size() == z.size());
}

}  // namespace

void layernorm(std::span<const float> z, std::span<const float> alpha,
               std::span<const float> beta, std::span<float> out, double eps) {
  layernorm(kernels::active(), z, alpha, beta, out, eps);
}

void layernorm(const kernels::KernelTable& k, std::span<const float> z,
               std::span<const float> alpha, std::span<const float> beta,
               std::span<float> out, double eps) {
  const VectorStats stats = exact_stats(k, z);
  const double isd = 1.0 / std::sqrt(stats.variance + eps);
  layernorm_with_isd(k, z, stats.mean, isd, alpha, beta, out);
}

void rmsnorm(std::span<const float> z, std::span<const float> alpha,
             std::span<const float> beta, std::span<float> out, double eps) {
  rmsnorm(kernels::active(), z, alpha, beta, out, eps);
}

void rmsnorm(const kernels::KernelTable& k, std::span<const float> z,
             std::span<const float> alpha, std::span<const float> beta,
             std::span<float> out, double eps) {
  const VectorStats stats = exact_stats(k, z);
  const double isd = 1.0 / std::sqrt(stats.rms * stats.rms + eps);
  rmsnorm_with_isd(k, z, isd, alpha, beta, out);
}

void layernorm_with_isd(std::span<const float> z, double mean, double isd,
                        std::span<const float> alpha, std::span<const float> beta,
                        std::span<float> out) {
  layernorm_with_isd(kernels::active(), z, mean, isd, alpha, beta, out);
}

void layernorm_with_isd(const kernels::KernelTable& k, std::span<const float> z,
                        double mean, double isd, std::span<const float> alpha,
                        std::span<const float> beta, std::span<float> out) {
  check_affine_shapes(z, alpha, beta, out);
  k.normalize_affine(z.data(), z.size(), mean, isd, data_or_null(alpha),
                     data_or_null(beta), out.data());
}

void rmsnorm_with_isd(std::span<const float> z, double isd,
                      std::span<const float> alpha, std::span<const float> beta,
                      std::span<float> out) {
  rmsnorm_with_isd(kernels::active(), z, isd, alpha, beta, out);
}

void rmsnorm_with_isd(const kernels::KernelTable& k, std::span<const float> z,
                      double isd, std::span<const float> alpha,
                      std::span<const float> beta, std::span<float> out) {
  check_affine_shapes(z, alpha, beta, out);
  // mean = 0.0: (z - 0.0) * isd rounds identically to z * isd.
  k.normalize_affine(z.data(), z.size(), 0.0, isd, data_or_null(alpha),
                     data_or_null(beta), out.data());
}

void layernorm_rows(std::size_t rows, std::span<const float> x,
                    std::span<const float> alpha, std::span<const float> beta,
                    std::span<float> out, double eps) {
  HAAN_EXPECTS(rows > 0 && x.size() % rows == 0);
  HAAN_EXPECTS(out.size() == x.size());
  const std::size_t d = x.size() / rows;
  for (std::size_t r = 0; r < rows; ++r) {
    layernorm(x.subspan(r * d, d), alpha, beta, out.subspan(r * d, d), eps);
  }
}

void rmsnorm_rows(std::size_t rows, std::span<const float> x,
                  std::span<const float> alpha, std::span<const float> beta,
                  std::span<float> out, double eps) {
  HAAN_EXPECTS(rows > 0 && x.size() % rows == 0);
  HAAN_EXPECTS(out.size() == x.size());
  const std::size_t d = x.size() / rows;
  for (std::size_t r = 0; r < rows; ++r) {
    rmsnorm(x.subspan(r * d, d), alpha, beta, out.subspan(r * d, d), eps);
  }
}

}  // namespace haan::tensor
