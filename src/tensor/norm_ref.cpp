#include "tensor/norm_ref.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace haan::tensor {

VectorStats exact_stats(std::span<const float> z) {
  HAAN_EXPECTS(!z.empty());
  const double n = static_cast<double>(z.size());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const float v : z) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  VectorStats stats;
  stats.mean = sum / n;
  // Two-pass for the variance to avoid E[x^2]-E[x]^2 cancellation in the
  // *reference*; the hardware model deliberately uses the one-pass form.
  double acc = 0.0;
  for (const float v : z) {
    const double d = v - stats.mean;
    acc += d * d;
  }
  stats.variance = acc / n;
  stats.rms = std::sqrt(sum_sq / n);
  return stats;
}

namespace {

void affine(std::span<const float> normalized, std::span<const float> alpha,
            std::span<const float> beta, std::span<float> out) {
  const std::size_t n = normalized.size();
  HAAN_EXPECTS(out.size() == n);
  HAAN_EXPECTS(alpha.empty() || alpha.size() == n);
  HAAN_EXPECTS(beta.empty() || beta.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    float v = normalized[i];
    if (!alpha.empty()) v *= alpha[i];
    if (!beta.empty()) v += beta[i];
    out[i] = v;
  }
}

}  // namespace

void layernorm(std::span<const float> z, std::span<const float> alpha,
               std::span<const float> beta, std::span<float> out, double eps) {
  const VectorStats stats = exact_stats(z);
  const double isd = 1.0 / std::sqrt(stats.variance + eps);
  layernorm_with_isd(z, stats.mean, isd, alpha, beta, out);
}

void rmsnorm(std::span<const float> z, std::span<const float> alpha,
             std::span<const float> beta, std::span<float> out, double eps) {
  const VectorStats stats = exact_stats(z);
  const double isd = 1.0 / std::sqrt(stats.rms * stats.rms + eps);
  rmsnorm_with_isd(z, isd, alpha, beta, out);
}

void layernorm_with_isd(std::span<const float> z, double mean, double isd,
                        std::span<const float> alpha, std::span<const float> beta,
                        std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  std::vector<float> normalized(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    normalized[i] = static_cast<float>((z[i] - mean) * isd);
  }
  affine(normalized, alpha, beta, out);
}

void rmsnorm_with_isd(std::span<const float> z, double isd,
                      std::span<const float> alpha, std::span<const float> beta,
                      std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  std::vector<float> normalized(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    normalized[i] = static_cast<float>(z[i] * isd);
  }
  affine(normalized, alpha, beta, out);
}

}  // namespace haan::tensor
