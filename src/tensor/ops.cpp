#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace haan::tensor {

Tensor matmul(const Tensor& a, const Tensor& b) {
  HAAN_EXPECTS(a.shape().rank() == 2 && b.shape().rank() == 2);
  const std::size_t m = a.shape().dim(0);
  const std::size_t k = a.shape().dim(1);
  HAAN_EXPECTS(b.shape().dim(0) == k);
  const std::size_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const auto a_row = a.row(i);
    const auto c_row = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const auto b_row = b.row(p);
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
    }
  }
  return c;
}

Tensor linear(const Tensor& x, const Tensor& w, std::span<const float> bias) {
  HAAN_EXPECTS(x.shape().rank() == 2 && w.shape().rank() == 2);
  const std::size_t n = x.shape().dim(0);
  const std::size_t in = x.shape().dim(1);
  const std::size_t out = w.shape().dim(0);
  HAAN_EXPECTS(w.shape().dim(1) == in);
  HAAN_EXPECTS(bias.empty() || bias.size() == out);
  Tensor y(Shape{n, out});
  for (std::size_t i = 0; i < n; ++i) {
    const auto x_row = x.row(i);
    const auto y_row = y.row(i);
    for (std::size_t o = 0; o < out; ++o) {
      const auto w_row = w.row(o);
      double acc = bias.empty() ? 0.0 : bias[o];
      for (std::size_t p = 0; p < in; ++p) {
        acc += static_cast<double>(x_row[p]) * static_cast<double>(w_row[p]);
      }
      y_row[o] = static_cast<float>(acc);
    }
  }
  return y;
}

void softmax_rows(Tensor& t) {
  HAAN_EXPECTS(t.shape().rank() == 2);
  const std::size_t rows = t.shape().dim(0);
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = t.row(r);
    float max_v = -std::numeric_limits<float>::infinity();
    for (const float v : row) max_v = std::max(max_v, v);
    double sum = 0.0;
    for (float& v : row) {
      v = std::exp(v - max_v);
      sum += v;
    }
    HAAN_ASSERT(sum > 0.0);
    for (float& v : row) v = static_cast<float>(v / sum);
  }
}

void causal_softmax(Tensor& scores) {
  HAAN_EXPECTS(scores.shape().rank() == 2);
  HAAN_EXPECTS(scores.shape().dim(0) == scores.shape().dim(1));
  const std::size_t n = scores.shape().dim(0);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = scores.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      row[j] = -std::numeric_limits<float>::infinity();
    }
    // Stable softmax over the unmasked prefix [0, i].
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j <= i; ++j) max_v = std::max(max_v, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j <= i; ++j) {
      row[j] = std::exp(row[j] - max_v);
      sum += row[j];
    }
    HAAN_ASSERT(sum > 0.0);
    for (std::size_t j = 0; j <= i; ++j) row[j] = static_cast<float>(row[j] / sum);
    for (std::size_t j = i + 1; j < n; ++j) row[j] = 0.0f;
  }
}

void gelu_inplace(Tensor& t) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (float& v : t.data()) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void silu_inplace(Tensor& t) {
  for (float& v : t.data()) v = v / (1.0f + std::exp(-v));
}

void add_inplace(Tensor& a, const Tensor& b) {
  HAAN_EXPECTS(a.shape() == b.shape());
  const auto bd = b.data();
  auto ad = a.data();
  for (std::size_t i = 0; i < ad.size(); ++i) ad[i] += bd[i];
}

void scale_inplace(Tensor& t, float s) {
  for (float& v : t.data()) v *= s;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  HAAN_EXPECTS(a.shape() == b.shape());
  Tensor c(a.shape());
  const auto ad = a.data();
  const auto bd = b.data();
  auto cd = c.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] = ad[i] * bd[i];
  return c;
}

std::vector<float> mean_rows(const Tensor& t) {
  HAAN_EXPECTS(t.shape().rank() == 2);
  const std::size_t rows = t.shape().dim(0);
  const std::size_t cols = t.shape().dim(1);
  std::vector<float> mean(cols, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = t.row(r);
    for (std::size_t c = 0; c < cols; ++c) mean[c] += row[c];
  }
  for (float& v : mean) v /= static_cast<float>(rows);
  return mean;
}

std::size_t argmax(std::span<const float> values) {
  HAAN_EXPECTS(!values.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

double dot(std::span<const float> a, std::span<const float> b) {
  HAAN_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double l2_norm(std::span<const float> values) {
  double acc = 0.0;
  for (const float v : values) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

void l2_normalize(std::span<float> values) {
  const double norm = l2_norm(values);
  if (norm == 0.0) return;
  for (float& v : values) v = static_cast<float>(v / norm);
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  HAAN_EXPECTS(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return worst;
}

double rms_error(std::span<const float> a, std::span<const float> b) {
  HAAN_EXPECTS(a.size() == b.size());
  HAAN_EXPECTS(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace haan::tensor
