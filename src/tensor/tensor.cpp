#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "mem/scratch.hpp"

namespace haan::tensor {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {
  HAAN_EXPECTS(dims_.size() <= 4);
  for (const std::size_t d : dims_) HAAN_EXPECTS(d > 0);
}

Shape::Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
  HAAN_EXPECTS(dims_.size() <= 4);
  for (const std::size_t d : dims_) HAAN_EXPECTS(d > 0);
}

std::size_t Shape::dim(std::size_t axis) const {
  HAAN_EXPECTS(axis < dims_.size());
  return dims_[axis];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (const std::size_t d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(shape_.numel(), 0.0f, mem::current_resource()) {}

Tensor::Tensor(Shape shape, std::span<const float> data)
    : shape_(std::move(shape)),
      data_(data.begin(), data.end(), mem::current_resource()) {
  HAAN_EXPECTS(data_.size() == shape_.numel());
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    shape_ = std::move(other.shape_);
    mem::steal_assign(data_, std::move(other.data_));
  }
  return *this;
}

Tensor Tensor::randn(Shape shape, common::Rng& rng, double mean, double stddev) {
  Tensor t(std::move(shape));
  rng.fill_gaussian(t.data_, mean, stddev);
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = value;
  return t;
}

float& Tensor::at(std::size_t index) {
  HAAN_EXPECTS(index < data_.size());
  return data_[index];
}

float Tensor::at(std::size_t index) const {
  HAAN_EXPECTS(index < data_.size());
  return data_[index];
}

float& Tensor::at(std::size_t row, std::size_t col) {
  HAAN_EXPECTS(shape_.rank() == 2);
  HAAN_EXPECTS(row < shape_.dim(0) && col < shape_.dim(1));
  return data_[row * shape_.dim(1) + col];
}

float Tensor::at(std::size_t row, std::size_t col) const {
  HAAN_EXPECTS(shape_.rank() == 2);
  HAAN_EXPECTS(row < shape_.dim(0) && col < shape_.dim(1));
  return data_[row * shape_.dim(1) + col];
}

float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  HAAN_EXPECTS(shape_.rank() == 3);
  HAAN_EXPECTS(i < shape_.dim(0) && j < shape_.dim(1) && k < shape_.dim(2));
  return data_[(i * shape_.dim(1) + j) * shape_.dim(2) + k];
}

float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  HAAN_EXPECTS(shape_.rank() == 3);
  HAAN_EXPECTS(i < shape_.dim(0) && j < shape_.dim(1) && k < shape_.dim(2));
  return data_[(i * shape_.dim(1) + j) * shape_.dim(2) + k];
}

std::span<float> Tensor::row(std::size_t r) {
  HAAN_EXPECTS(shape_.rank() == 2);
  HAAN_EXPECTS(r < shape_.dim(0));
  return std::span<float>(data_).subspan(r * shape_.dim(1), shape_.dim(1));
}

std::span<const float> Tensor::row(std::size_t r) const {
  HAAN_EXPECTS(shape_.rank() == 2);
  HAAN_EXPECTS(r < shape_.dim(0));
  return std::span<const float>(data_).subspan(r * shape_.dim(1), shape_.dim(1));
}

std::span<float> Tensor::vector_at(std::size_t i, std::size_t j) {
  HAAN_EXPECTS(shape_.rank() == 3);
  HAAN_EXPECTS(i < shape_.dim(0) && j < shape_.dim(1));
  const std::size_t e = shape_.dim(2);
  return std::span<float>(data_).subspan((i * shape_.dim(1) + j) * e, e);
}

std::span<const float> Tensor::vector_at(std::size_t i, std::size_t j) const {
  HAAN_EXPECTS(shape_.rank() == 3);
  HAAN_EXPECTS(i < shape_.dim(0) && j < shape_.dim(1));
  const std::size_t e = shape_.dim(2);
  return std::span<const float>(data_).subspan((i * shape_.dim(1) + j) * e, e);
}

Tensor Tensor::reshaped(Shape shape) const {
  HAAN_EXPECTS(shape.numel() == numel());
  return Tensor(std::move(shape), std::span<const float>(data_));
}

std::string Tensor::to_string(std::size_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << shape_.to_string() << " {";
  const std::size_t n = std::min(max_elements, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out << ", ";
    out << data_[i];
  }
  if (n < data_.size()) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace haan::tensor
