// Row-major dense float tensor. Deliberately small: the LLM simulator needs
// contiguous 1-3D tensors, row views, and elementwise access — not a full
// n-d library. Shapes are validated eagerly so misuse fails at the call site.
//
// Storage is a std::pmr::vector drawn from mem::current_resource(): the heap
// by default, or the calling thread's scratch arena while a serving worker
// has a mem::ScratchScope open around a packed forward — which makes every
// intermediate block of that forward a node-local bump allocation with zero
// per-pack allocator churn after warmup. Placement never changes values;
// copies always re-derive their resource from the constructing thread (so a
// copy taken outside a scope lands on the heap), and move construction /
// assignment steal the buffer wholesale, allocator included.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory_resource>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace haan::tensor {

/// Tensor shape: up to 4 dimensions, stored smallest-major last (row-major).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::vector<std::size_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::size_t dim(std::size_t axis) const;
  std::size_t numel() const;
  const std::vector<std::size_t>& dims() const { return dims_; }

  friend bool operator==(const Shape&, const Shape&) = default;

  std::string to_string() const;  ///< "[2, 4, 8]"

 private:
  std::vector<std::size_t> dims_;
};

/// Dense row-major float tensor with value semantics.
class Tensor {
 public:
  /// Empty (rank-0, zero elements).
  Tensor() = default;

  /// Zero-filled tensor of the given shape, allocated from the calling
  /// thread's current memory resource (heap unless a ScratchScope is open).
  explicit Tensor(Shape shape);

  /// Tensor copying existing data; data.size() must equal shape.numel().
  Tensor(Shape shape, std::span<const float> data);
  Tensor(Shape shape, std::initializer_list<float> data)
      : Tensor(std::move(shape),
               std::span<const float>(data.begin(), data.size())) {}

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  /// Steals the source buffer (and its allocator) even across memory
  /// resources — pmr's default move *assignment* would deep-copy instead.
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  /// Factory: i.i.d. N(mean, stddev^2) entries from `rng`.
  static Tensor randn(Shape shape, common::Rng& rng, double mean = 0.0,
                      double stddev = 1.0);

  /// Factory: every element = `value`.
  static Tensor full(Shape shape, float value);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }

  /// Flat element access.
  float& at(std::size_t index);
  float at(std::size_t index) const;

  /// 2D access for matrices (rank must be 2).
  float& at(std::size_t row, std::size_t col);
  float at(std::size_t row, std::size_t col) const;

  /// 3D access (rank must be 3).
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;

  /// Mutable / const view of the full buffer.
  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// View of one row of a rank-2 tensor (length = cols).
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

  /// View of the innermost vector at (i, j) of a rank-3 tensor.
  std::span<float> vector_at(std::size_t i, std::size_t j);
  std::span<const float> vector_at(std::size_t i, std::size_t j) const;

  /// Reshape to an equal-numel shape (no data movement).
  Tensor reshaped(Shape shape) const;

  std::string to_string(std::size_t max_elements = 16) const;

 private:
  Shape shape_;
  std::pmr::vector<float> data_;
};

}  // namespace haan::tensor
