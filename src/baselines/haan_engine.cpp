#include "baselines/haan_engine.hpp"

#include "common/assert.hpp"

namespace haan::baselines {

HaanEngine::HaanEngine(accel::AcceleratorConfig config) : accel_(std::move(config)) {}

std::string HaanEngine::name() const { return accel_.config().name; }

accel::NormLayerWork HaanEngine::layer_work(const NormWorkload& work,
                                            bool skipped) const {
  accel::NormLayerWork layer;
  layer.n = work.embedding_dim;
  layer.vectors = work.seq_len;
  layer.nsub = work.nsub;
  layer.isd_skipped = skipped;
  layer.kind = work.kind;
  return layer;
}

double HaanEngine::total_latency_us(const NormWorkload& work) const {
  HAAN_EXPECTS(work.norm_layers > 0);
  const std::size_t computed = work.norm_layers - work.skipped_layers;
  const double lat_computed =
      accel_.time_layer(layer_work(work, false)).latency_us(accel_.config());
  const double lat_skipped =
      accel_.time_layer(layer_work(work, true)).latency_us(accel_.config());
  return static_cast<double>(computed) * lat_computed +
         static_cast<double>(work.skipped_layers) * lat_skipped;
}

double HaanEngine::average_power_w(const NormWorkload& work) const {
  const std::size_t computed = work.norm_layers - work.skipped_layers;
  // Time-weighted average of the per-layer activity-scaled power.
  const auto computed_work = layer_work(work, false);
  const auto skipped_work = layer_work(work, true);
  const double t_computed =
      accel_.time_layer(computed_work).latency_us(accel_.config());
  const double t_skipped =
      accel_.time_layer(skipped_work).latency_us(accel_.config());
  const double total_time = static_cast<double>(computed) * t_computed +
                            static_cast<double>(work.skipped_layers) * t_skipped;
  HAAN_EXPECTS(total_time > 0.0);
  const double energy =
      static_cast<double>(computed) * accel_.layer_power_w(computed_work) * t_computed +
      static_cast<double>(work.skipped_layers) * accel_.layer_power_w(skipped_work) *
          t_skipped;
  return energy / total_time;
}

}  // namespace haan::baselines
