// MHAA model (Lu et al., SOCC 2020): the layer-normalization unit of the
// multi-head-attention accelerator. Classic two-pass LayerNorm (statistics
// pass, then normalize pass) with the passes serialized per vector; vectors
// pipeline across the two passes.
#pragma once

#include "baselines/norm_engine.hpp"

namespace haan::baselines {

/// MHAA LayerNorm unit model.
class MhaaEngine final : public NormEngineModel {
 public:
  struct Params {
    std::size_t lanes = 128;    ///< vector unit width
    double clock_mhz = 100.0;   ///< same board/clock as HAAN for fairness
    std::size_t pass_overhead = 2;  ///< per-pass setup/drain cycles
    double power_w = 5.15;      ///< measured-average model power
  };

  MhaaEngine() : params_{} {}
  explicit MhaaEngine(Params params) : params_(params) {}

  std::string name() const override { return "MHAA"; }

  double total_latency_us(const NormWorkload& work) const override;
  double average_power_w(const NormWorkload& /*work*/) const override { return params_.power_w; }

 private:
  Params params_;
};

}  // namespace haan::baselines
