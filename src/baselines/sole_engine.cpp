#include "baselines/sole_engine.hpp"

namespace haan::baselines {

double SoleEngine::total_latency_us(const NormWorkload& work) const {
  // One compressed-statistics pass per vector, pipelined across vectors:
  // throughput = passes + per-vector bubble.
  const std::size_t passes =
      (work.embedding_dim + params_.lanes - 1) / params_.lanes;
  const double cycles = static_cast<double>(passes + params_.vector_overhead) *
                        static_cast<double>(work.total_vectors());
  return cycles / params_.clock_mhz;
}

}  // namespace haan::baselines
