// Analytic GPU runtime-breakdown model for Fig 1(b): eager-mode (HuggingFace)
// forward-pass latency of GPT-2 / OPT split into matmul, softmax,
// normalization and "others", before and after applying FlashAttention +
// FP8-linear optimizations.
//
// Structure is analytic (FLOPs / bytes / kernel counts from the architecture);
// the efficiency constants are calibrated per model so the *original* column
// reproduces the paper's measured fractions, and the optimization factors
// (FlashAttention cutting softmax ~86%, FP8 + fused epilogues cutting matmul
// ~3.4x) come from the paper's own citations. Normalization is deliberately
// untouched by the optimizations — reproducing the paper's point that it
// becomes the bottleneck (>33% of runtime) once everything else is optimized.
#pragma once

#include <string>

#include "model/config.hpp"

namespace haan::baselines {

/// One forward pass, split by operator class. All values in microseconds.
struct RuntimeBreakdown {
  double matmul_us = 0.0;
  double softmax_us = 0.0;
  double norm_us = 0.0;
  double others_us = 0.0;

  double total_us() const { return matmul_us + softmax_us + norm_us + others_us; }
  double matmul_fraction() const { return matmul_us / total_us(); }
  double softmax_fraction() const { return softmax_us / total_us(); }
  double norm_fraction() const { return norm_us / total_us(); }
  double others_fraction() const { return others_us / total_us(); }
};

/// Per-model calibration of the GPU execution model.
struct GpuRuntimeParams {
  std::string model_name;
  double tensor_tflops = 312.0;      ///< A100 dense FP16 peak
  double matmul_efficiency = 0.25;   ///< measured eager-mode efficiency
  double mem_bw_gbs = 1300.0;        ///< effective HBM bandwidth
  double softmax_passes = 2.0;       ///< effective memory passes over probs
  double softmax_overhead_us = 25.0; ///< per-block kernel overheads
  double norm_overhead_us = 20.0;    ///< per-layer launch/framework overhead
  double norm_ns_per_elem = 0.042;   ///< eager LayerNorm sweep cost
  double others_kernels_per_block = 6.0;
  double others_kernel_overhead_us = 20.0;
  /// Optimization factors for the "after optimization" column.
  double opt_matmul_scale = 0.29;    ///< FP8 + fused epilogues
  double opt_softmax_scale = 0.15;   ///< FlashAttention
  double opt_others_scale = 0.69;    ///< FP8 activations reduce traffic
};

/// Calibrated parameter presets (see header comment).
GpuRuntimeParams gpt2_runtime_params();
GpuRuntimeParams opt_runtime_params();

/// Breakdown of one forward pass of `dims` over `seq_len` tokens.
RuntimeBreakdown gpu_runtime_breakdown(const model::RealDims& dims,
                                       std::size_t seq_len, bool optimized,
                                       const GpuRuntimeParams& params,
                                       std::size_t vocab_size = 50257);

/// §III-A claim support: fraction of a normalization layer's GPU runtime
/// spent on the ISD computation (reduction + sqrt + divide path) versus the
/// elementwise normalize/affine part. Returns a value > 0.9 for eager
/// execution, matching the paper's ">90%" observation.
double isd_share_of_norm_runtime(std::size_t embedding_dim, std::size_t seq_len,
                                 const GpuRuntimeParams& params);

}  // namespace haan::baselines
