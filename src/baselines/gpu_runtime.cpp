#include "baselines/gpu_runtime.hpp"

#include "common/assert.hpp"

namespace haan::baselines {

GpuRuntimeParams gpt2_runtime_params() {
  GpuRuntimeParams params;
  params.model_name = "GPT2";
  params.matmul_efficiency = 0.25;  // small-batch eager GEMMs
  params.softmax_passes = 2.0;
  params.norm_ns_per_elem = 0.042;
  params.others_kernels_per_block = 6.0;
  params.opt_matmul_scale = 0.29;
  params.opt_softmax_scale = 0.15;
  params.opt_others_scale = 0.69;
  return params;
}

GpuRuntimeParams opt_runtime_params() {
  GpuRuntimeParams params;
  params.model_name = "OPT";
  params.matmul_efficiency = 0.45;   // larger GEMMs run closer to peak
  params.softmax_passes = 3.0;       // FP32-upcast probs thrash L2
  params.mem_bw_gbs = 1000.0;
  params.norm_ns_per_elem = 0.064;   // FP32-upcast LayerNorm
  params.others_kernels_per_block = 16.0;  // OPT's eager graph is busier
  params.others_kernel_overhead_us = 35.0;
  params.opt_matmul_scale = 0.28;
  params.opt_softmax_scale = 0.14;
  params.opt_others_scale = 0.48;
  return params;
}

RuntimeBreakdown gpu_runtime_breakdown(const model::RealDims& dims,
                                       std::size_t seq_len, bool optimized,
                                       const GpuRuntimeParams& params,
                                       std::size_t vocab_size) {
  HAAN_EXPECTS(seq_len > 0);
  const double L = static_cast<double>(seq_len);
  const double d = static_cast<double>(dims.d_model);
  const double dff = static_cast<double>(dims.d_ff);
  const double blocks = static_cast<double>(dims.n_blocks);
  const double heads = static_cast<double>(dims.n_heads);
  const double layers = static_cast<double>(dims.norm_layers);

  RuntimeBreakdown run;

  // --- Matmul: QKV/O projections + attention GEMMs + MLP + LM head --------
  const double flops_block = 8.0 * L * d * d       // q, k, v, o projections
                             + 4.0 * L * L * d     // scores + context
                             + 4.0 * L * d * dff;  // MLP up + down
  const double flops = flops_block * blocks +
                       2.0 * L * d * static_cast<double>(vocab_size);  // LM head
  run.matmul_us =
      flops / (params.tensor_tflops * 1e12 * params.matmul_efficiency) * 1e6;

  // --- Softmax: memory passes over the (heads x L x L) probability tensor --
  const double prob_bytes = heads * L * L * 2.0;  // FP16 elements
  run.softmax_us = blocks * (prob_bytes * params.softmax_passes /
                                 (params.mem_bw_gbs * 1e9) * 1e6 +
                             params.softmax_overhead_us);

  // --- Normalization: per-layer launch overhead + elementwise sweep --------
  run.norm_us =
      layers * (params.norm_overhead_us + L * d * params.norm_ns_per_elem * 1e-3);

  // --- Others: GELU, residual adds, biases, reshapes ------------------------
  const double other_bytes_block = L * dff * 4.0   // GELU read+write
                                   + L * d * 8.0;  // residual adds
  run.others_us = blocks * (other_bytes_block / (params.mem_bw_gbs * 1e9) * 1e6 +
                            params.others_kernels_per_block *
                                params.others_kernel_overhead_us);

  if (optimized) {
    run.matmul_us *= params.opt_matmul_scale;
    run.softmax_us *= params.opt_softmax_scale;
    run.others_us *= params.opt_others_scale;
    // Normalization deliberately untouched: no established optimization.
  }
  return run;
}

double isd_share_of_norm_runtime(std::size_t embedding_dim, std::size_t seq_len,
                                 const GpuRuntimeParams& params) {
  // Eager LayerNorm decomposes into: reduction kernels producing mean and
  // variance (two tree reductions, FP32 upcast), the rsqrt/divide, and the
  // elementwise normalize+affine kernel. The reduction path dominates: it is
  // latency-bound (multi-stage trees + kernel round trips) and re-reads the
  // input twice, while the final elementwise kernel is a single fused
  // bandwidth-bound sweep; launch/framework overheads also land almost
  // entirely on the ISD side. Split calibrated to the paper's ">90%"
  // profiling observation (§III-A).
  const double elems = static_cast<double>(embedding_dim) *
                       static_cast<double>(seq_len);
  const double elementwise_us = elems * params.norm_ns_per_elem * 1e-3 * 0.15;
  const double isd_us = params.norm_overhead_us +
                        elems * params.norm_ns_per_elem * 1e-3 * 0.85;
  return isd_us / (isd_us + elementwise_us);
}

}  // namespace haan::baselines
