// HAAN engine adapter: maps a NormWorkload onto the cycle/energy model of a
// HaanAccelerator configuration (skipped layers bypass the SRI and halve the
// statistics activity; subsampling shortens the statistics passes).
#pragma once

#include "accel/accelerator.hpp"
#include "baselines/norm_engine.hpp"

namespace haan::baselines {

/// HAAN performance model over a given accelerator configuration.
class HaanEngine final : public NormEngineModel {
 public:
  explicit HaanEngine(accel::AcceleratorConfig config);

  std::string name() const override;
  double total_latency_us(const NormWorkload& work) const override;
  double average_power_w(const NormWorkload& work) const override;

  const accel::AcceleratorConfig& config() const { return accel_.config(); }

 private:
  accel::NormLayerWork layer_work(const NormWorkload& work, bool skipped) const;

  accel::HaanAccelerator accel_;
};

}  // namespace haan::baselines
