// Common interface for normalization engines compared in the paper's Figs 8-9:
// HAAN (ours), the DFX LayerNorm unit, SOLE, MHAA, and the GPU kernel path.
// Each model maps a normalization workload (all norm layers of a model
// forward over seq_len tokens) to latency and average power.
//
// Baseline models are *mechanistic* (lanes x passes x clock), with their
// structural parameters taken from the respective papers and calibrated so
// the relative factors land in the bands HAAN's evaluation reports. They are
// documented per engine; EXPERIMENTS.md discusses where our mechanistic
// models deviate from the paper's measured points.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "model/config.hpp"

namespace haan::baselines {

/// All normalization work of one model pass.
struct NormWorkload {
  std::size_t embedding_dim = 0;   ///< E (real model width)
  std::size_t norm_layers = 0;     ///< total normalization layers
  std::size_t skipped_layers = 0;  ///< layers with predicted ISD (HAAN only)
  std::size_t seq_len = 0;         ///< token vectors per layer
  std::size_t nsub = 0;            ///< HAAN statistics subsample (0 = full)
  model::NormKind kind = model::NormKind::kLayerNorm;

  /// Total vectors streamed through an engine.
  std::size_t total_vectors() const { return norm_layers * seq_len; }
};

/// Workload builder from a real model's dimensions.
NormWorkload make_workload(const model::RealDims& dims, std::size_t seq_len,
                           std::size_t skipped_layers, std::size_t nsub,
                           model::NormKind kind);

/// A normalization engine's performance model.
class NormEngineModel {
 public:
  virtual ~NormEngineModel() = default;

  virtual std::string name() const = 0;

  /// Latency (us) to complete the workload.
  virtual double total_latency_us(const NormWorkload& work) const = 0;

  /// Average power (W) while processing the workload.
  virtual double average_power_w(const NormWorkload& work) const = 0;

  /// Energy in microjoules.
  double total_energy_uj(const NormWorkload& work) const {
    return total_latency_us(work) * average_power_w(work);
  }
};

}  // namespace haan::baselines
