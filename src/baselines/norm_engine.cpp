#include "baselines/norm_engine.hpp"

#include "common/assert.hpp"

namespace haan::baselines {

NormWorkload make_workload(const model::RealDims& dims, std::size_t seq_len,
                           std::size_t skipped_layers, std::size_t nsub,
                           model::NormKind kind) {
  HAAN_EXPECTS(seq_len > 0);
  HAAN_EXPECTS(skipped_layers <= dims.norm_layers);
  NormWorkload work;
  work.embedding_dim = dims.d_model;
  work.norm_layers = dims.norm_layers;
  work.skipped_layers = skipped_layers;
  work.seq_len = seq_len;
  work.nsub = nsub;
  work.kind = kind;
  return work;
}

}  // namespace haan::baselines
