#include "baselines/mhaa_engine.hpp"

namespace haan::baselines {

double MhaaEngine::total_latency_us(const NormWorkload& work) const {
  // Two dependent full passes per vector; initiation interval is the sum of
  // both passes because the statistics of vector v+1 reuse the same lanes.
  const std::size_t per_pass =
      (work.embedding_dim + params_.lanes - 1) / params_.lanes +
      params_.pass_overhead;
  const double cycles = static_cast<double>(2 * per_pass) *
                        static_cast<double>(work.total_vectors());
  return cycles / params_.clock_mhz;
}

}  // namespace haan::baselines
