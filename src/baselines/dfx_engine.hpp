// DFX LayerNorm engine model (Hong et al., MICRO 2022). DFX is a multi-FPGA
// text-generation appliance; its LayerNorm runs on a narrow vector unit in
// three dependent phases (mean, variance, normalize) that are not pipelined
// across vectors — the structure the HAAN paper's 11.7x latency comparison is
// measured against.
#pragma once

#include "baselines/norm_engine.hpp"

namespace haan::baselines {

/// DFX LayerNorm unit model.
class DfxEngine final : public NormEngineModel {
 public:
  struct Params {
    std::size_t lanes = 16;        ///< vector unit width for the LN path
    double clock_mhz = 200.0;      ///< DFX compute clock
    std::size_t phase_overhead = 10;  ///< per-phase drain/setup cycles
    double power_w = 12.4;         ///< LN-engine share of appliance power
  };

  DfxEngine() : params_{} {}
  explicit DfxEngine(Params params) : params_(params) {}

  std::string name() const override { return "DFX"; }

  double total_latency_us(const NormWorkload& work) const override;
  double average_power_w(const NormWorkload& /*work*/) const override { return params_.power_w; }

 private:
  Params params_;
};

}  // namespace haan::baselines
