#include "baselines/gpu_engine.hpp"

namespace haan::baselines {

double GpuNormEngine::total_latency_us(const NormWorkload& work) const {
  const double per_kernel =
      params_.kernel_overhead_us +
      static_cast<double>(work.embedding_dim) * params_.per_element_ns * 1e-3;
  return static_cast<double>(work.total_vectors()) * per_kernel;
}

}  // namespace haan::baselines
