#include "baselines/dfx_engine.hpp"

namespace haan::baselines {

double DfxEngine::total_latency_us(const NormWorkload& work) const {
  // Three dependent phases per vector, no overlap across vectors.
  const std::size_t per_phase =
      (work.embedding_dim + params_.lanes - 1) / params_.lanes + params_.phase_overhead;
  const std::size_t per_vector = 3 * per_phase;
  const double cycles =
      static_cast<double>(per_vector) * static_cast<double>(work.total_vectors());
  return cycles / params_.clock_mhz;
}

}  // namespace haan::baselines
