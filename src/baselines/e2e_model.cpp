#include "baselines/e2e_model.hpp"

#include "baselines/haan_engine.hpp"
#include "baselines/mhaa_engine.hpp"
#include "common/assert.hpp"

namespace haan::baselines {

E2eResult e2e_speedup(const model::RealDims& dims, std::size_t seq_len,
                      const accel::AcceleratorConfig& haan_config,
                      std::size_t nsub, std::size_t skipped_layers,
                      const SpatialSystemParams& params) {
  HAAN_EXPECTS(seq_len > 0);
  const double L = static_cast<double>(seq_len);
  const double d = static_cast<double>(dims.d_model);
  const double dff = static_cast<double>(dims.d_ff);
  const double blocks = static_cast<double>(dims.n_blocks);

  // Matmul work of the forward pass on the spatial engine.
  const double flops = blocks * (8.0 * L * d * d + 4.0 * L * L * d +
                                 4.0 * L * d * dff) +
                       2.0 * L * d * 50257.0;  // LM head
  const double other_ms = flops / (params.effective_tops * 1e12) * 1e3;

  // The host system's own normalization unit: two-pass vector engine.
  MhaaEngine::Params base_norm_params;
  base_norm_params.lanes = params.norm_lanes;
  base_norm_params.clock_mhz = params.clock_mhz;
  const MhaaEngine base_norm(base_norm_params);

  const NormWorkload base_work =
      make_workload(dims, seq_len, /*skipped=*/0, /*nsub=*/0,
                    model::NormKind::kLayerNorm);
  const NormWorkload haan_work = make_workload(dims, seq_len, skipped_layers, nsub,
                                               model::NormKind::kLayerNorm);

  const double base_norm_ms = base_norm.total_latency_us(base_work) * 1e-3;
  const HaanEngine haan(haan_config);
  const double haan_norm_ms = haan.total_latency_us(haan_work) * 1e-3;

  E2eResult result;
  result.baseline_ms = other_ms + base_norm_ms;
  result.haan_ms = other_ms + haan_norm_ms;
  result.norm_fraction = base_norm_ms / result.baseline_ms;
  result.norm_speedup = base_norm_ms / haan_norm_ms;
  result.e2e_speedup = result.baseline_ms / result.haan_ms;
  return result;
}

}  // namespace haan::baselines
