// End-to-end integration model (paper §V-B-2): GPT-2 355M running on the
// FPGA spatial LLM accelerator of Chen et al. [41], with HAAN replacing that
// system's two-pass normalization unit. The paper reports ~1.11x end-to-end
// speedup at input lengths 128/256/512.
#pragma once

#include "accel/arch_config.hpp"
#include "baselines/norm_engine.hpp"

namespace haan::baselines {

/// End-to-end result for one sequence length.
struct E2eResult {
  double baseline_ms = 0.0;      ///< [41]-style system with its own norm unit
  double haan_ms = 0.0;          ///< same system with HAAN normalization
  double norm_fraction = 0.0;    ///< norm share of baseline runtime
  double norm_speedup = 0.0;     ///< HAAN vs the system's norm unit
  double e2e_speedup = 0.0;      ///< baseline_ms / haan_ms
};

/// Parameters of the host spatial accelerator.
struct SpatialSystemParams {
  /// Effective matmul throughput of the [41] spatial design on a U280 (their
  /// reported utilization corresponds to single-digit effective TOPS).
  double effective_tops = 9.4;
  /// The host system's own normalization unit: classic two-pass vector unit
  /// (same structure as MHAA's LN path).
  std::size_t norm_lanes = 96;
  double clock_mhz = 100.0;
};

/// Computes the end-to-end speedup for GPT2-355M-like dims at `seq_len`.
E2eResult e2e_speedup(const model::RealDims& dims, std::size_t seq_len,
                      const accel::AcceleratorConfig& haan_config,
                      std::size_t nsub, std::size_t skipped_layers,
                      const SpatialSystemParams& params = {});

}  // namespace haan::baselines
