// GPU normalization path model. The paper's Figs 8-9 GPU baseline measures
// the eager-mode (HuggingFace / PyTorch) normalization path during token
// generation: every (layer, token) issues a small LayerNorm kernel whose cost
// is dominated by launch + framework overhead, plus a memory-bound sweep of
// the (1 x E) vector. That granularity — not a fused prefill kernel — is what
// makes a 100 MHz FPGA pipeline ~10x faster, and matches DFX's
// text-generation setting which the paper compares against.
#pragma once

#include "baselines/norm_engine.hpp"

namespace haan::baselines {

/// Eager GPU normalization model.
class GpuNormEngine final : public NormEngineModel {
 public:
  /// Knobs, defaulted to the calibration described above.
  struct Params {
    double kernel_overhead_us = 0.9;  ///< launch + framework per kernel
    double per_element_ns = 0.3;      ///< unfused FP32-upcast sweep cost
    double power_w = 78.0;            ///< GPU board power share during norm
  };

  GpuNormEngine() : params_{} {}
  explicit GpuNormEngine(Params params) : params_(params) {}

  std::string name() const override { return "GPU"; }

  double total_latency_us(const NormWorkload& work) const override;
  double average_power_w(const NormWorkload& /*work*/) const override { return params_.power_w; }

 private:
  Params params_;
};

}  // namespace haan::baselines
