// SOLE model (Wang et al., ICCAD 2023): hardware-software co-designed
// LayerNorm with dynamically compressed intermediate statistics
// (AILayerNorm). The compression collapses the two statistics passes into a
// single streamed pass, pipelined across vectors, but without HAAN's ISD
// skipping or subsampling and with a narrower lane budget at the same
// frequency.
#pragma once

#include "baselines/norm_engine.hpp"

namespace haan::baselines {

/// SOLE LayerNorm unit model.
class SoleEngine final : public NormEngineModel {
 public:
  struct Params {
    std::size_t lanes = 96;      ///< streamed lanes (compressed statistics)
    double clock_mhz = 100.0;    ///< same board/clock as HAAN for fairness
    std::size_t vector_overhead = 1;  ///< per-vector re-init bubble
    double power_w = 4.95;       ///< measured-average model power
  };

  SoleEngine() : params_{} {}
  explicit SoleEngine(Params params) : params_(params) {}

  std::string name() const override { return "SOLE"; }

  double total_latency_us(const NormWorkload& work) const override;
  double average_power_w(const NormWorkload& /*work*/) const override { return params_.power_w; }

 private:
  Params params_;
};

}  // namespace haan::baselines
