#include "numerics/bfloat16.hpp"

#include <cstdio>
#include <cstring>

namespace haan::numerics {

std::uint16_t BFloat16::from_float(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0) {
    // NaN: keep a quiet NaN, preserving the sign.
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the truncated 16 bits.
  const std::uint32_t lsb = (bits >> 16) & 1u;
  const std::uint32_t rounding = 0x7FFFu + lsb;
  return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

float BFloat16::to_float() const {
  const std::uint32_t bits = static_cast<std::uint32_t>(bits_) << 16;
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

bool BFloat16::is_nan() const {
  return (bits_ & 0x7F80u) == 0x7F80u && (bits_ & 0x007Fu) != 0;
}

std::string BFloat16::to_string() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%gbf(0x%04x)", static_cast<double>(to_float()),
                bits_);
  return buffer;
}

}  // namespace haan::numerics
