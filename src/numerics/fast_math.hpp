// Fast transcendental approximations used by the HAAN square-root inverter
// (paper §IV-B): the 0x5F3759DF inverse-square-root bit hack with Newton
// refinement, and the log2 approximation with the sigma = 0.450465 correction
// constant (Lomont / Blinn) that the paper uses to derive the magic constant.
#pragma once

#include <cstdint>

namespace haan::numerics {

/// The classic magic constant from the paper's equation (8).
inline constexpr std::uint32_t kInvSqrtMagic = 0x5F3759DFu;

/// The mantissa-linearization correction constant sigma (Lomont's optimal
/// value 0.0450465; the paper's text prints it as "0.450465", dropping the
/// leading zero — the derived magic constant 0x5F3759DF confirms the value).
inline constexpr double kSigma = 0.0450465;

/// Initial inverse-square-root guess: bit-level `magic - (x >> 1)`.
/// Precondition: x > 0 and finite.
float inv_sqrt_initial_guess(float x, std::uint32_t magic = kInvSqrtMagic);

/// One Newton step for f(y) = 1/y^2 - x:  y <- y * (1.5 - 0.5 * x * y * y).
float inv_sqrt_newton_step(float x, float y);

/// Fast inverse square root: bit hack + `iterations` Newton steps in float.
/// Precondition: x > 0 and finite; iterations >= 0.
float fast_inv_sqrt(float x, int iterations = 1, std::uint32_t magic = kInvSqrtMagic);

/// log2(x) via the exponent/mantissa linearization used to derive the magic
/// constant: log2(x) ~= E - bias + M/2^L + sigma. Precondition: x > 0, finite.
double fast_log2(float x, double sigma = kSigma);

/// Exact reference 1/sqrt(x) in double precision.
double exact_inv_sqrt(double x);

/// Relative error |approx - exact| / exact of an inverse-sqrt approximation.
double inv_sqrt_rel_error(float x, float approx);

/// Worst-case relative error of fast_inv_sqrt over a logarithmic sweep of
/// `samples` points in [lo, hi]. Used by tests and the magic-constant
/// ablation bench.
double worst_inv_sqrt_error(double lo, double hi, int samples, int iterations,
                            std::uint32_t magic = kInvSqrtMagic);

}  // namespace haan::numerics
