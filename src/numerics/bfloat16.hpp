// Software bfloat16 (top 16 bits of binary32, round-to-nearest-even). Not used
// by the paper's shipped configurations but supported by the accelerator's
// configurable datapath, and exercised by the design-space-exploration example.
#pragma once

#include <cstdint>
#include <string>

namespace haan::numerics {

/// bfloat16 value type: 1 sign, 8 exponent, 7 mantissa bits.
class BFloat16 {
 public:
  BFloat16() = default;

  /// Rounds a float to the nearest bfloat16 (ties to even).
  explicit BFloat16(float value) : bits_(from_float(value)) {}

  /// Reinterprets raw bits.
  static BFloat16 from_bits(std::uint16_t bits) {
    BFloat16 b;
    b.bits_ = bits;
    return b;
  }

  std::uint16_t bits() const { return bits_; }

  /// Widens to float (exact).
  float to_float() const;

  bool is_nan() const;

  friend BFloat16 operator+(BFloat16 a, BFloat16 b) {
    return BFloat16(a.to_float() + b.to_float());
  }
  friend BFloat16 operator-(BFloat16 a, BFloat16 b) {
    return BFloat16(a.to_float() - b.to_float());
  }
  friend BFloat16 operator*(BFloat16 a, BFloat16 b) {
    return BFloat16(a.to_float() * b.to_float());
  }
  friend BFloat16 operator/(BFloat16 a, BFloat16 b) {
    return BFloat16(a.to_float() / b.to_float());
  }
  friend bool operator==(BFloat16 a, BFloat16 b) { return a.to_float() == b.to_float(); }

  std::string to_string() const;

 private:
  static std::uint16_t from_float(float value);
  std::uint16_t bits_ = 0;
};

}  // namespace haan::numerics
