#include "numerics/formats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "numerics/bfloat16.hpp"
#include "numerics/float16.hpp"

namespace haan::numerics {

std::string to_string(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return "FP32";
    case NumericFormat::kFP16:
      return "FP16";
    case NumericFormat::kBF16:
      return "BF16";
    case NumericFormat::kINT8:
      return "INT8";
  }
  return "?";
}

NumericFormat format_from_string(const std::string& name) {
  if (name == "FP32" || name == "fp32") return NumericFormat::kFP32;
  if (name == "FP16" || name == "fp16") return NumericFormat::kFP16;
  if (name == "BF16" || name == "bf16") return NumericFormat::kBF16;
  if (name == "INT8" || name == "int8") return NumericFormat::kINT8;
  HAAN_EXPECTS(false && "unknown numeric format name");
  return NumericFormat::kFP32;
}

int bits_of(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return 32;
    case NumericFormat::kFP16:
    case NumericFormat::kBF16:
      return 16;
    case NumericFormat::kINT8:
      return 8;
  }
  return 0;
}

bool is_float(NumericFormat format) { return format != NumericFormat::kINT8; }

float quantize_dequantize(float value, NumericFormat format, float scale) {
  switch (format) {
    case NumericFormat::kFP32:
      return value;
    case NumericFormat::kFP16:
      return Float16(value).to_float();
    case NumericFormat::kBF16:
      return BFloat16(value).to_float();
    case NumericFormat::kINT8: {
      HAAN_EXPECTS(scale > 0.0f);
      const float q = std::nearbyint(value / scale);
      const float clamped = std::clamp(q, -128.0f, 127.0f);
      return clamped * scale;
    }
  }
  return value;
}

void quantize_dequantize_span(std::span<float> values, NumericFormat format,
                              float scale) {
  for (float& v : values) v = quantize_dequantize(v, format, scale);
}

float choose_int8_scale(std::span<const float> values) {
  float max_abs = 0.0f;
  for (const float v : values) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0f) return 1.0f;
  return max_abs / 127.0f;
}

}  // namespace haan::numerics
