// Numeric format descriptors shared by the HAAN algorithm configuration and
// the accelerator model. The accelerator accepts FP32/FP16/INT8 input; INT8 is
// symmetric per-tensor quantization with a power-of-two-friendly scale.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace haan::numerics {

/// Input/output element formats the accelerator supports (paper §IV).
enum class NumericFormat : std::uint8_t {
  kFP32,
  kFP16,
  kBF16,  ///< datapath extension exercised by the DSE example, not the paper
  kINT8,
};

/// Human-readable name ("FP32", "INT8", ...).
std::string to_string(NumericFormat format);

/// Parses the name back; aborts on unknown names (bench flag inputs).
NumericFormat format_from_string(const std::string& name);

/// Storage bits per element.
int bits_of(NumericFormat format);

/// True for floating-point formats.
bool is_float(NumericFormat format);

/// Quantizes `value` to the format and returns the dequantized result — i.e.
/// the exact value the accelerator datapath would see. For INT8, `scale` maps
/// real value v to round(v / scale) clamped to [-128, 127].
float quantize_dequantize(float value, NumericFormat format, float scale = 1.0f);

/// Applies quantize_dequantize elementwise. Scalar reference loop — hot
/// paths should call kernels::quantize_dequantize_span (SIMD-dispatched,
/// bit-identical under the kernels.hpp tolerance contract).
void quantize_dequantize_span(std::span<float> values, NumericFormat format,
                              float scale = 1.0f);

/// Chooses a symmetric INT8 scale covering max|v| of the span (per-tensor).
/// Returns 1.0 for an all-zero span.
float choose_int8_scale(std::span<const float> values);

}  // namespace haan::numerics
