#include "numerics/fast_math.hpp"

#include <cmath>
#include <cstring>

#include "common/assert.hpp"

namespace haan::numerics {

float inv_sqrt_initial_guess(float x, std::uint32_t magic) {
  HAAN_EXPECTS(x > 0.0f && std::isfinite(x));
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  bits = magic - (bits >> 1);
  float guess;
  std::memcpy(&guess, &bits, sizeof(guess));
  return guess;
}

float inv_sqrt_newton_step(float x, float y) {
  return y * (1.5f - 0.5f * x * y * y);
}

float fast_inv_sqrt(float x, int iterations, std::uint32_t magic) {
  HAAN_EXPECTS(iterations >= 0);
  float y = inv_sqrt_initial_guess(x, magic);
  for (int i = 0; i < iterations; ++i) y = inv_sqrt_newton_step(x, y);
  return y;
}

double fast_log2(float x, double sigma) {
  HAAN_EXPECTS(x > 0.0f && std::isfinite(x));
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const int exponent = static_cast<int>((bits >> 23) & 0xFFu);
  const double mantissa_frac =
      static_cast<double>(bits & 0x7FFFFFu) / static_cast<double>(1u << 23);
  if (exponent == 0) {
    // Subnormal input: fall back to the exact value; the hardware never sees
    // subnormal variances (they are flushed upstream).
    return std::log2(static_cast<double>(x));
  }
  return (exponent - 127) + mantissa_frac + sigma;
  // log2(1+m) ~= m + sigma balances the approximation error over m in [0,1);
  // the paper folds the same constant into the magic number (eq. 8).
}

double exact_inv_sqrt(double x) {
  HAAN_EXPECTS(x > 0.0);
  return 1.0 / std::sqrt(x);
}

double inv_sqrt_rel_error(float x, float approx) {
  const double exact = exact_inv_sqrt(static_cast<double>(x));
  return std::abs(static_cast<double>(approx) - exact) / exact;
}

double worst_inv_sqrt_error(double lo, double hi, int samples, int iterations,
                            std::uint32_t magic) {
  HAAN_EXPECTS(lo > 0.0 && hi > lo && samples >= 2);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(samples - 1);
    const float x = static_cast<float>(std::exp(log_lo + t * (log_hi - log_lo)));
    if (!(x > 0.0f) || !std::isfinite(x)) continue;
    const float approx = fast_inv_sqrt(x, iterations, magic);
    worst = std::max(worst, inv_sqrt_rel_error(x, approx));
  }
  return worst;
}

}  // namespace haan::numerics
