// Software IEEE 754 binary16 ("half"). The HAAN accelerator accepts FP16 input
// and the ISD predictor runs on an FP16 scalar unit, so the library needs a
// bit-exact half type that works on hosts without native _Float16 semantics.
// Conversions implement round-to-nearest-even; arithmetic is performed by
// converting to float, operating, and rounding back — the same behaviour as a
// hardware FP16 FMA-less ALU with one rounding per operation.
#pragma once

#include <cstdint>
#include <string>

namespace haan::numerics {

/// IEEE binary16 value type.
class Float16 {
 public:
  /// Zero-initialized (+0.0).
  Float16() = default;

  /// Rounds a float to the nearest representable half (ties to even).
  explicit Float16(float value) : bits_(from_float(value)) {}

  /// Reinterprets raw bits as a half.
  static Float16 from_bits(std::uint16_t bits) {
    Float16 h;
    h.bits_ = bits;
    return h;
  }

  /// Raw bit pattern (sign[15] | exponent[14:10] | mantissa[9:0]).
  std::uint16_t bits() const { return bits_; }

  /// Widens to float (exact: every half is representable as a float).
  float to_float() const { return to_float_impl(bits_); }

  /// Classification helpers.
  bool is_nan() const;
  bool is_inf() const;
  bool is_zero() const;
  bool sign() const { return (bits_ & 0x8000u) != 0; }

  /// Arithmetic with one FP16 rounding per operation.
  friend Float16 operator+(Float16 a, Float16 b) {
    return Float16(a.to_float() + b.to_float());
  }
  friend Float16 operator-(Float16 a, Float16 b) {
    return Float16(a.to_float() - b.to_float());
  }
  friend Float16 operator*(Float16 a, Float16 b) {
    return Float16(a.to_float() * b.to_float());
  }
  friend Float16 operator/(Float16 a, Float16 b) {
    return Float16(a.to_float() / b.to_float());
  }
  friend bool operator==(Float16 a, Float16 b) {
    return a.to_float() == b.to_float();  // IEEE semantics: -0 == +0, NaN != NaN
  }
  friend bool operator<(Float16 a, Float16 b) { return a.to_float() < b.to_float(); }

  /// Debug rendering like "1.5h(0x3e00)".
  std::string to_string() const;

  /// Largest finite half: 65504.
  static Float16 max();
  /// Smallest positive normal half: 2^-14.
  static Float16 min_normal();
  /// Smallest positive subnormal half: 2^-24.
  static Float16 min_subnormal();
  /// Positive infinity.
  static Float16 infinity();
  /// Quiet NaN.
  static Float16 quiet_nan();

 private:
  static std::uint16_t from_float(float value);
  static float to_float_impl(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

/// Number of half-precision ULPs separating two finite halves.
int ulp_distance(Float16 a, Float16 b);

}  // namespace haan::numerics
