#include "numerics/fixed_point.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace haan::numerics {

double FixedFormat::resolution() const { return std::ldexp(1.0, -frac_bits); }

double FixedFormat::max_value() const {
  return static_cast<double>(raw_max()) * resolution();
}

double FixedFormat::min_value() const {
  return static_cast<double>(raw_min()) * resolution();
}

std::int64_t FixedFormat::raw_max() const {
  return (static_cast<std::int64_t>(1) << (total_bits - 1)) - 1;
}

std::int64_t FixedFormat::raw_min() const {
  return -(static_cast<std::int64_t>(1) << (total_bits - 1));
}

bool FixedFormat::valid() const {
  return total_bits >= 2 && total_bits <= 48 && frac_bits >= 0 &&
         frac_bits <= total_bits - 1;
}

std::string FixedFormat::to_string() const {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "Q%d.%d", int_bits(), frac_bits);
  return buffer;
}

std::int64_t clamp_raw(std::int64_t raw, FixedFormat format, OverflowMode overflow) {
  const std::int64_t lo = format.raw_min();
  const std::int64_t hi = format.raw_max();
  if (raw >= lo && raw <= hi) return raw;
  if (overflow == OverflowMode::kSaturate) return raw < lo ? lo : hi;
  // Two's-complement wrap within total_bits.
  const std::uint64_t mask = (format.total_bits == 64)
                                 ? ~0ULL
                                 : ((1ULL << format.total_bits) - 1);
  std::uint64_t wrapped = static_cast<std::uint64_t>(raw) & mask;
  // Sign-extend.
  const std::uint64_t sign_bit = 1ULL << (format.total_bits - 1);
  if (wrapped & sign_bit) wrapped |= ~mask;
  return static_cast<std::int64_t>(wrapped);
}

std::int64_t round_scaled(double scaled, RoundingMode rounding) {
  switch (rounding) {
    case RoundingMode::kTruncate:
      return static_cast<std::int64_t>(std::floor(scaled));
    case RoundingMode::kNearestUp:
      return static_cast<std::int64_t>(std::floor(scaled + 0.5));
    case RoundingMode::kNearestEven: {
      const double floor_value = std::floor(scaled);
      const double frac = scaled - floor_value;
      auto base = static_cast<std::int64_t>(floor_value);
      if (frac > 0.5) return base + 1;
      if (frac < 0.5) return base;
      return (base % 2 == 0) ? base : base + 1;
    }
  }
  return 0;
}

Fixed Fixed::from_double(double value, FixedFormat format, RoundingMode rounding,
                         OverflowMode overflow) {
  HAAN_EXPECTS(format.valid());
  Fixed out(format);
  if (std::isnan(value)) {
    out.raw_ = 0;  // hardware converters flush NaN to zero
    return out;
  }
  const double scaled = std::ldexp(value, format.frac_bits);
  // Values beyond the int64 intermediate saturate before rounding to avoid
  // UB; within it, the overflow policy (saturate or two's-complement wrap)
  // decides how out-of-format values resolve.
  constexpr double kInt64Limit = 9.2e18;
  if (scaled >= kInt64Limit) {
    out.raw_ = format.raw_max();
    return out;
  }
  if (scaled <= -kInt64Limit) {
    out.raw_ = format.raw_min();
    return out;
  }
  out.raw_ = clamp_raw(round_scaled(scaled, rounding), format, overflow);
  return out;
}

Fixed Fixed::from_raw(std::int64_t raw, FixedFormat format) {
  HAAN_EXPECTS(format.valid());
  HAAN_EXPECTS(raw >= format.raw_min() && raw <= format.raw_max());
  Fixed out(format);
  out.raw_ = raw;
  return out;
}

double Fixed::to_double() const {
  return std::ldexp(static_cast<double>(raw_), -format_.frac_bits);
}

Fixed Fixed::convert_to(FixedFormat format, RoundingMode rounding,
                        OverflowMode overflow) const {
  HAAN_EXPECTS(format.valid());
  const int shift = format.frac_bits - format_.frac_bits;
  std::int64_t raw;
  if (shift >= 0) {
    // Gaining fraction bits: exact left shift (guard for overflow via clamp).
    if (shift >= 63) {
      raw = raw_ > 0 ? format.raw_max() : (raw_ < 0 ? format.raw_min() : 0);
    } else {
      // Detect shift overflow on the 64-bit intermediate.
      const std::int64_t shifted = raw_ << shift;
      raw = (shifted >> shift) == raw_
                ? shifted
                : (raw_ > 0 ? format.raw_max() : format.raw_min());
    }
  } else {
    // Losing fraction bits: round.
    const double scaled = std::ldexp(static_cast<double>(raw_), shift);
    raw = round_scaled(scaled, rounding);
  }
  Fixed out(format);
  out.raw_ = clamp_raw(raw, format, overflow);
  return out;
}

Fixed add(Fixed a, Fixed b, OverflowMode overflow) {
  HAAN_EXPECTS(a.format() == b.format());
  return Fixed::from_raw(clamp_raw(a.raw() + b.raw(), a.format(), overflow), a.format());
}

Fixed sub(Fixed a, Fixed b, OverflowMode overflow) {
  HAAN_EXPECTS(a.format() == b.format());
  return Fixed::from_raw(clamp_raw(a.raw() - b.raw(), a.format(), overflow), a.format());
}

Fixed mul(Fixed a, Fixed b, FixedFormat out_format, RoundingMode rounding,
          OverflowMode overflow) {
  HAAN_EXPECTS(out_format.valid());
  // Full-precision product has frac bits = fa + fb. Guard against int64
  // overflow by routing wide products through long double (64-bit mantissa on
  // x86), which is exact for all supported operand widths (<= 48+48 bits is
  // not exact, but operands in this library are <= 32 bits each in practice;
  // the contract below keeps it honest).
  const __int128 wide = static_cast<__int128>(a.raw()) * static_cast<__int128>(b.raw());
  const int wide_frac = a.format().frac_bits + b.format().frac_bits;
  const int shift = wide_frac - out_format.frac_bits;
  std::int64_t raw;
  if (shift <= 0) {
    const __int128 shifted = wide << (-shift);
    // Saturate if the widened value exceeds int64.
    if (shifted > static_cast<__int128>(INT64_MAX)) {
      raw = out_format.raw_max();
    } else if (shifted < static_cast<__int128>(INT64_MIN)) {
      raw = out_format.raw_min();
    } else {
      raw = static_cast<std::int64_t>(shifted);
    }
  } else {
    // Round the discarded low bits.
    const __int128 one = 1;
    const __int128 floor_shifted = wide >> shift;
    const __int128 remainder = wide - (floor_shifted << shift);
    const __int128 half = one << (shift - 1);
    __int128 rounded = floor_shifted;
    switch (rounding) {
      case RoundingMode::kTruncate:
        break;
      case RoundingMode::kNearestUp:
        if (remainder >= half) ++rounded;
        break;
      case RoundingMode::kNearestEven:
        if (remainder > half || (remainder == half && (floor_shifted & 1))) ++rounded;
        break;
    }
    if (rounded > static_cast<__int128>(INT64_MAX)) {
      raw = out_format.raw_max();
    } else if (rounded < static_cast<__int128>(INT64_MIN)) {
      raw = out_format.raw_min();
    } else {
      raw = static_cast<std::int64_t>(rounded);
    }
  }
  return Fixed::from_raw(clamp_raw(raw, out_format, overflow), out_format);
}

Fixed Fixed::shifted_left(int amount, OverflowMode overflow) const {
  HAAN_EXPECTS(amount >= 0 && amount < 63);
  Fixed out(format_);
  const std::int64_t shifted = raw_ << amount;
  out.raw_ = (shifted >> amount) == raw_
                 ? clamp_raw(shifted, format_, overflow)
                 : (raw_ > 0 ? format_.raw_max() : format_.raw_min());
  return out;
}

Fixed Fixed::shifted_right(int amount) const {
  HAAN_EXPECTS(amount >= 0 && amount < 63);
  Fixed out(format_);
  out.raw_ = raw_ >> amount;
  return out;
}

std::string Fixed::to_string() const {
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%g (raw %lld %s)", to_double(),
                static_cast<long long>(raw_), format_.to_string().c_str());
  return buffer;
}

}  // namespace haan::numerics
