// Runtime-parameterized Q-format fixed point. The HAAN accelerator keeps all
// intermediate statistics (sums, mean, variance, Newton refinement) in fixed
// point; the format (total bits, fraction bits) is a synthesis-time knob, so
// the software model carries the format at runtime rather than in the type.
//
// Raw values are stored sign-extended in int64_t, which comfortably holds every
// format up to 48 total bits plus the headroom the adder trees need.
#pragma once

#include <cstdint>
#include <string>

namespace haan::numerics {

/// How quantization resolves values that fall between two representable points.
enum class RoundingMode {
  kNearestEven,  ///< IEEE-style round half to even (hardware default).
  kNearestUp,    ///< round half away from zero (cheap adder-based rounding).
  kTruncate,     ///< drop fraction bits (free in hardware, biased toward -inf).
};

/// How out-of-range values are resolved.
enum class OverflowMode {
  kSaturate,  ///< clamp to the representable extremes (hardware default).
  kWrap,      ///< two's-complement wraparound (models an unguarded adder).
};

/// A Q-format description: `total_bits` two's-complement bits, of which
/// `frac_bits` sit right of the binary point. E.g. Q4.12 = {16, 12}.
struct FixedFormat {
  int total_bits = 32;
  int frac_bits = 16;

  /// Integer bits left of the point (sign bit included in total, not here).
  int int_bits() const { return total_bits - frac_bits - 1; }

  /// Smallest representable step = 2^-frac_bits.
  double resolution() const;

  /// Largest representable value.
  double max_value() const;

  /// Smallest (most negative) representable value.
  double min_value() const;

  /// Raw-integer bounds.
  std::int64_t raw_max() const;
  std::int64_t raw_min() const;

  /// True if the format is usable (1..48 total bits, 0..frac<=total-1).
  bool valid() const;

  friend bool operator==(const FixedFormat&, const FixedFormat&) = default;

  std::string to_string() const;  ///< "Q3.12" style rendering.
};

/// A fixed-point number: raw integer + its format. Value = raw * 2^-frac_bits.
class Fixed {
 public:
  /// Zero in Q15.16.
  Fixed() = default;

  /// Zero in the given format.
  explicit Fixed(FixedFormat format) : format_(format) {}

  /// Quantizes `value` into `format` with the given rounding/overflow policy.
  static Fixed from_double(double value, FixedFormat format,
                           RoundingMode rounding = RoundingMode::kNearestEven,
                           OverflowMode overflow = OverflowMode::kSaturate);

  /// Wraps a raw integer already scaled by 2^frac_bits.
  static Fixed from_raw(std::int64_t raw, FixedFormat format);

  /// Exact value as double (all supported formats fit in a double mantissa).
  double to_double() const;

  std::int64_t raw() const { return raw_; }
  FixedFormat format() const { return format_; }

  /// Re-quantizes into a different format (shift + round + saturate) — models
  /// the width adapters between hardware pipeline stages.
  Fixed convert_to(FixedFormat format,
                   RoundingMode rounding = RoundingMode::kNearestEven,
                   OverflowMode overflow = OverflowMode::kSaturate) const;

  /// Arithmetic shift left/right on the raw value (free hardware ops).
  Fixed shifted_left(int amount, OverflowMode overflow = OverflowMode::kSaturate) const;
  Fixed shifted_right(int amount) const;

  friend bool operator==(const Fixed& a, const Fixed& b) = default;

  std::string to_string() const;  ///< "1.25 (raw 0x14000 Q15.16)" style.

 private:
  std::int64_t raw_ = 0;
  FixedFormat format_{};
};

/// Fixed-point add: operands must share a format; result saturates into it.
Fixed add(Fixed a, Fixed b, OverflowMode overflow = OverflowMode::kSaturate);

/// Fixed-point subtract, same contract as add.
Fixed sub(Fixed a, Fixed b, OverflowMode overflow = OverflowMode::kSaturate);

/// Fixed-point multiply: full-precision product rounded back into `out`.
Fixed mul(Fixed a, Fixed b, FixedFormat out,
          RoundingMode rounding = RoundingMode::kNearestEven,
          OverflowMode overflow = OverflowMode::kSaturate);

/// Saturates (or wraps) `raw` into `format`'s representable raw range.
std::int64_t clamp_raw(std::int64_t raw, FixedFormat format, OverflowMode overflow);

/// Rounds `value` (a real number scaled by 2^frac, i.e. in raw units) to an
/// integer per the rounding mode. Exposed for the converter unit models.
std::int64_t round_scaled(double scaled, RoundingMode rounding);

}  // namespace haan::numerics
