#include "numerics/float16.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace haan::numerics {

namespace {

std::uint32_t float_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float bits_float(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::uint16_t Float16::from_float(float value) {
  const std::uint32_t f = float_bits(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
    const std::uint32_t mantissa = abs & 0x007FFFFFu;
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa != 0 ? 0x0200u : 0u));
  }
  if (abs >= 0x477FF000u) {
    // Rounds to a value >= 2^16 - ulp/2: overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x33000000u) {
    // Below half the smallest subnormal (2^-25): underflow to zero.
    return static_cast<std::uint16_t>(sign);
  }

  std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;
  std::uint32_t mantissa = (abs & 0x007FFFFFu) | 0x00800000u;  // implicit leading 1

  // Shift so the half mantissa (10 bits + implicit bit) sits at bits [10+shift).
  int shift = 13;  // float has 23 mantissa bits, half has 10
  if (exp < -14) {
    // Subnormal half: shift further right to denormalize.
    shift += (-14 - exp);
    exp = -15;  // encoded exponent field becomes 0
  }
  const std::uint32_t round_bit = 1u << (shift - 1);
  const std::uint32_t sticky_mask = round_bit - 1;
  std::uint32_t half_mantissa = mantissa >> shift;
  const bool round_up = (mantissa & round_bit) &&
                        ((mantissa & sticky_mask) || (half_mantissa & 1u));
  if (round_up) ++half_mantissa;

  std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15);
  if (half_mantissa & 0x0800u) {
    // Mantissa overflowed into the implicit bit position: bump exponent.
    half_mantissa >>= 1;
    ++half_exp;
  }
  if (exp == -15) {
    // Subnormal encoding: exponent field 0, mantissa carries everything.
    // half_mantissa may have carried into bit 10, which correctly produces the
    // smallest normal number.
    return static_cast<std::uint16_t>(sign | half_mantissa);
  }
  if (half_exp >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);
  return static_cast<std::uint16_t>(sign | (half_exp << 10) | (half_mantissa & 0x03FFu));
}

float Float16::to_float_impl(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mantissa = bits & 0x03FFu;

  if (exp == 0x1Fu) {
    // Inf / NaN.
    return bits_float(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exp == 0) {
    if (mantissa == 0) return bits_float(sign);  // +/- 0
    // Subnormal: value = mantissa * 2^-24 = 1.f * 2^(-14 - k) after
    // normalizing with k left shifts.
    int k = 0;
    std::uint32_t m = mantissa;
    while ((m & 0x0400u) == 0) {
      m <<= 1;
      ++k;
    }
    m &= 0x03FFu;
    const std::uint32_t fexp = static_cast<std::uint32_t>(-14 - k + 127);
    return bits_float(sign | (fexp << 23) | (m << 13));
  }
  return bits_float(sign | ((exp - 15 + 127) << 23) | (mantissa << 13));
}

bool Float16::is_nan() const {
  return ((bits_ >> 10) & 0x1Fu) == 0x1Fu && (bits_ & 0x03FFu) != 0;
}

bool Float16::is_inf() const {
  return ((bits_ >> 10) & 0x1Fu) == 0x1Fu && (bits_ & 0x03FFu) == 0;
}

bool Float16::is_zero() const { return (bits_ & 0x7FFFu) == 0; }

std::string Float16::to_string() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%gh(0x%04x)", static_cast<double>(to_float()),
                bits_);
  return buffer;
}

Float16 Float16::max() { return from_bits(0x7BFFu); }
Float16 Float16::min_normal() { return from_bits(0x0400u); }
Float16 Float16::min_subnormal() { return from_bits(0x0001u); }
Float16 Float16::infinity() { return from_bits(0x7C00u); }
Float16 Float16::quiet_nan() { return from_bits(0x7E00u); }

int ulp_distance(Float16 a, Float16 b) {
  // Map the sign-magnitude bit pattern onto a monotone integer line.
  const auto monotone = [](std::uint16_t bits) -> int {
    const int magnitude = bits & 0x7FFF;
    return (bits & 0x8000) ? -magnitude : magnitude;
  };
  return std::abs(monotone(a.bits()) - monotone(b.bits()));
}

}  // namespace haan::numerics
