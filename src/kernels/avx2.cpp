// AVX2 backend. This translation unit is compiled with -mavx2 -mfma -mf16c on
// x86 targets (see CMakeLists); the dispatcher verifies CPU support via
// __builtin_cpu_supports before handing out this table, so no code here runs
// on machines without the ISA.
//
// Reductions widen to double lanes (two accumulators per moment) and so
// reassociate relative to the scalar reference; elementwise kernels perform
// the same rounding steps as scalar and are bit-identical except where the
// header's tolerance contract says otherwise (FP16 NaN payloads).
#include "kernels/backends.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace haan::kernels {
namespace {

/// Software-prefetch lookahead for the kPF row-block variants, in floats
/// (1 KiB ahead of the streaming read).
constexpr std::size_t kPrefetchAhead = 256;

double hsum_pd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

/// Accumulates sum and sum-of-squares of the 8 floats in `v`.
void accumulate8(__m256 v, __m256d& sum0, __m256d& sum1, __m256d& sq0,
                 __m256d& sq1) {
  const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
  sum0 = _mm256_add_pd(sum0, lo);
  sum1 = _mm256_add_pd(sum1, hi);
  sq0 = _mm256_fmadd_pd(lo, lo, sq0);
  sq1 = _mm256_fmadd_pd(hi, hi, sq1);
}

template <bool kPF>
SumStats stats_body(const float* z, std::size_t n) {
  __m256d sum0 = _mm256_setzero_pd(), sum1 = _mm256_setzero_pd();
  __m256d sq0 = _mm256_setzero_pd(), sq1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if constexpr (kPF) {
      _mm_prefetch(reinterpret_cast<const char*>(z + i + kPrefetchAhead),
                   _MM_HINT_T0);
    }
    accumulate8(_mm256_loadu_ps(z + i), sum0, sum1, sq0, sq1);
  }
  SumStats out;
  out.sum = hsum_pd(_mm256_add_pd(sum0, sum1));
  out.sum_sq = hsum_pd(_mm256_add_pd(sq0, sq1));
  for (; i < n; ++i) {
    const float v = z[i];
    out.sum += v;
    out.sum_sq += static_cast<double>(v) * v;
  }
  return out;
}

SumStats stats_avx2(const float* z, std::size_t n) {
  return stats_body<false>(z, n);
}

template <bool kPF>
double centered_sum_sq_body(const float* z, std::size_t n, double mean) {
  const __m256d mean_v = _mm256_set1_pd(mean);
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if constexpr (kPF) {
      _mm_prefetch(reinterpret_cast<const char*>(z + i + kPrefetchAhead),
                   _MM_HINT_T0);
    }
    const __m256 v = _mm256_loadu_ps(z + i);
    const __m256d lo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), mean_v);
    const __m256d hi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), mean_v);
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  double acc = hsum_pd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = z[i] - mean;
    acc += d * d;
  }
  return acc;
}

double centered_sum_sq_avx2(const float* z, std::size_t n, double mean) {
  return centered_sum_sq_body<false>(z, n, mean);
}

void residual_add_avx2(float* h, const float* residual, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sum =
        _mm256_add_ps(_mm256_loadu_ps(h + i), _mm256_loadu_ps(residual + i));
    _mm256_storeu_ps(h + i, sum);
  }
  for (; i < n; ++i) h[i] += residual[i];
}

void residual_add_copy_avx2(float* h, const float* residual, float* dst,
                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sum =
        _mm256_add_ps(_mm256_loadu_ps(h + i), _mm256_loadu_ps(residual + i));
    _mm256_storeu_ps(h + i, sum);
    _mm256_storeu_ps(dst + i, sum);
  }
  for (; i < n; ++i) {
    h[i] += residual[i];
    dst[i] = h[i];
  }
}

template <bool kPF>
SumStats residual_add_stats_body(float* h, const float* residual,
                                 std::size_t n) {
  __m256d sum0 = _mm256_setzero_pd(), sum1 = _mm256_setzero_pd();
  __m256d sq0 = _mm256_setzero_pd(), sq1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if constexpr (kPF) {
      _mm_prefetch(reinterpret_cast<const char*>(h + i + kPrefetchAhead),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(residual + i + kPrefetchAhead),
                   _MM_HINT_T0);
    }
    const __m256 sum =
        _mm256_add_ps(_mm256_loadu_ps(h + i), _mm256_loadu_ps(residual + i));
    _mm256_storeu_ps(h + i, sum);
    accumulate8(sum, sum0, sum1, sq0, sq1);
  }
  SumStats out;
  out.sum = hsum_pd(_mm256_add_pd(sum0, sum1));
  out.sum_sq = hsum_pd(_mm256_add_pd(sq0, sq1));
  for (; i < n; ++i) {
    h[i] += residual[i];
    const float v = h[i];
    out.sum += v;
    out.sum_sq += static_cast<double>(v) * v;
  }
  return out;
}

SumStats residual_add_stats_avx2(float* h, const float* residual,
                                 std::size_t n) {
  return residual_add_stats_body<false>(h, residual, n);
}

void normalize_affine_avx2(const float* z, std::size_t n, double mean,
                           double isd, const float* alpha, const float* beta,
                           float* out) {
  const __m256d mean_v = _mm256_set1_pd(mean);
  const __m256d isd_v = _mm256_set1_pd(isd);
  // alpha == nullptr multiplies by 1.0f, which is exact for every value; a
  // missing beta must genuinely skip the add (0.0f + -0.0f would flip signs).
  const __m256 ones = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 zv = _mm256_loadu_ps(z + i);
    const __m256d lo = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(zv)), mean_v),
        isd_v);
    const __m256d hi = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(zv, 1)), mean_v),
        isd_v);
    __m256 v = _mm256_set_m128(_mm256_cvtpd_ps(hi), _mm256_cvtpd_ps(lo));
    const __m256 a = alpha != nullptr ? _mm256_loadu_ps(alpha + i) : ones;
    v = _mm256_mul_ps(v, a);
    if (beta != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(beta + i));
    _mm256_storeu_ps(out + i, v);
  }
  for (; i < n; ++i) {
    float v = static_cast<float>((z[i] - mean) * isd);
    if (alpha != nullptr) v *= alpha[i];
    if (beta != nullptr) v += beta[i];
    out[i] = v;
  }
}

void quantize_int8_avx2(float* values, std::size_t n, float scale) {
  const __m256 scale_v = _mm256_set1_ps(scale);
  const __m256 lo_v = _mm256_set1_ps(-128.0f);
  const __m256 hi_v = _mm256_set1_ps(127.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(values + i);
    const __m256 q = _mm256_round_ps(_mm256_div_ps(v, scale_v),
                                     _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
    // Keep q as the second operand so min/max propagate NaN like std::clamp.
    const __m256 clamped = _mm256_min_ps(hi_v, _mm256_max_ps(lo_v, q));
    _mm256_storeu_ps(values + i, _mm256_mul_ps(clamped, scale_v));
  }
  for (; i < n; ++i) {
    values[i] =
        numerics::quantize_dequantize(values[i], numerics::NumericFormat::kINT8,
                                      scale);
  }
}

void quantize_fp16_avx2(float* values, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i half =
        _mm256_cvtps_ph(_mm256_loadu_ps(values + i), _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_ps(values + i, _mm256_cvtph_ps(half));
  }
  for (; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(
        values[i], numerics::NumericFormat::kFP16, 1.0f);
  }
}

void quantize_bf16_avx2(float* values, std::size_t n) {
  // Integer replica of BFloat16::from_float/to_float: round-to-nearest-even
  // on the truncated 16 bits, quiet-NaN preservation. Bit-exact vs scalar.
  const __m256i inf_bits = _mm256_set1_epi32(0x7F800000);
  const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i round_base = _mm256_set1_epi32(0x7FFF);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i quiet_bit = _mm256_set1_epi32(0x40);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_castps_si256(_mm256_loadu_ps(values + i));
    const __m256i abs = _mm256_and_si256(bits, abs_mask);
    const __m256i is_nan = _mm256_cmpgt_epi32(abs, inf_bits);
    const __m256i top = _mm256_srli_epi32(bits, 16);
    const __m256i nan_res =
        _mm256_slli_epi32(_mm256_or_si256(top, quiet_bit), 16);
    const __m256i lsb = _mm256_and_si256(top, one);
    const __m256i rounded =
        _mm256_add_epi32(bits, _mm256_add_epi32(round_base, lsb));
    const __m256i rne_res =
        _mm256_slli_epi32(_mm256_srli_epi32(rounded, 16), 16);
    const __m256i res = _mm256_blendv_epi8(rne_res, nan_res, is_nan);
    _mm256_storeu_ps(values + i, _mm256_castsi256_ps(res));
  }
  for (; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(
        values[i], numerics::NumericFormat::kBF16, 1.0f);
  }
}

void quantize_dequantize_avx2(float* values, std::size_t n,
                              numerics::NumericFormat format, float scale) {
  switch (format) {
    case numerics::NumericFormat::kFP32:
      return;
    case numerics::NumericFormat::kFP16:
      quantize_fp16_avx2(values, n);
      return;
    case numerics::NumericFormat::kBF16:
      quantize_bf16_avx2(values, n);
      return;
    case numerics::NumericFormat::kINT8:
      quantize_int8_avx2(values, n, scale);
      return;
  }
}

// Row-block kernels: loop the per-row bodies above inside this TU, so every
// row runs the same vector/tail split as the per-row entry points (bit-
// identical per backend) with no per-row dispatch.

template <bool kPF>
void stats_rows_t(const float* x, std::size_t rows, std::size_t stride,
                  std::size_t n, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = stats_body<kPF>(x + r * stride, n);
  }
}

template <bool kPF>
void centered_sum_sq_rows_t(const float* x, std::size_t rows,
                            std::size_t stride, std::size_t n,
                            const double* mean, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = centered_sum_sq_body<kPF>(x + r * stride, n, mean[r]);
  }
}

template <bool kPF>
void residual_add_stats_rows_t(float* h, const float* residual,
                               std::size_t rows, std::size_t d,
                               std::size_t nstats, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* hr = h + r * d;
    const float* rr = residual + r * d;
    out[r] = residual_add_stats_body<kPF>(hr, rr, nstats);
    residual_add_avx2(hr + nstats, rr + nstats, d - nstats);
  }
}

constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format

/// NaN -> 0, clamp to +/-65504; elementwise, matching the scalar backend's
/// std::isnan/std::clamp sequence bit for bit.
inline __m256 saturate_lanes(__m256 x) {
  const __m256 nan_mask = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
  const __m256 clamped = _mm256_min_ps(_mm256_set1_ps(kSaturation),
                                       _mm256_max_ps(_mm256_set1_ps(-kSaturation), x));
  return _mm256_blendv_ps(clamped, _mm256_setzero_ps(), nan_mask);
}

void saturate_avx2(float* v, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(v + i, saturate_lanes(_mm256_loadu_ps(v + i)));
  }
  for (; i < n; ++i) {
    const float x = v[i];
    v[i] = std::isnan(x) ? 0.0f : std::clamp(x, -kSaturation, kSaturation);
  }
}

inline float normalize_one(const float* z, std::size_t i, double mean,
                           double isd, const float* alpha, const float* beta) {
  float v = static_cast<float>((z[i] - mean) * isd);
  if (alpha != nullptr) v *= alpha[i];
  if (beta != nullptr) v += beta[i];
  return v;
}

inline float saturate_one(float x) {
  return std::isnan(x) ? 0.0f : std::clamp(x, -kSaturation, kSaturation);
}

/// Streaming-store normalize row: a scalar head peels to 32-byte alignment of
/// the output (scalar and vector lanes round identically, so the head is
/// value-identical), the body streams cache-bypassing stores, and the tail
/// finishes scalar. The saturation clamp is fused in-register — clamping
/// before the store equals clamping a stored value elementwise.
void normalize_affine_nt_avx2(const float* z, std::size_t n, double mean,
                              double isd, const float* alpha, const float* beta,
                              float* out, bool saturate) {
  const __m256d mean_v = _mm256_set1_pd(mean);
  const __m256d isd_v = _mm256_set1_pd(isd);
  const __m256 ones = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(out + i) & 31u) != 0) {
    const float v = normalize_one(z, i, mean, isd, alpha, beta);
    out[i] = saturate ? saturate_one(v) : v;
    ++i;
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 zv = _mm256_loadu_ps(z + i);
    const __m256d lo = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(zv)), mean_v),
        isd_v);
    const __m256d hi = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(zv, 1)), mean_v),
        isd_v);
    __m256 v = _mm256_set_m128(_mm256_cvtpd_ps(hi), _mm256_cvtpd_ps(lo));
    const __m256 a = alpha != nullptr ? _mm256_loadu_ps(alpha + i) : ones;
    v = _mm256_mul_ps(v, a);
    if (beta != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(beta + i));
    if (saturate) v = saturate_lanes(v);
    _mm256_stream_ps(out + i, v);
  }
  for (; i < n; ++i) {
    const float v = normalize_one(z, i, mean, isd, alpha, beta);
    out[i] = saturate ? saturate_one(v) : v;
  }
}

template <bool kNT>
void normalize_affine_rows_t(const float* x, std::size_t rows, std::size_t d,
                             const double* mean, const double* isd,
                             const float* alpha, const float* beta, float* out,
                             bool saturate) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* out_r = out + r * d;
    if constexpr (kNT) {
      normalize_affine_nt_avx2(x + r * d, d, mean[r], isd[r], alpha, beta,
                               out_r, saturate);
    } else {
      normalize_affine_avx2(x + r * d, d, mean[r], isd[r], alpha, beta, out_r);
      if (saturate) saturate_avx2(out_r, d);
    }
  }
  // Streaming stores are weakly ordered; fence once per block so readers on
  // other pool threads observe the rows.
  if constexpr (kNT) _mm_sfence();
}

void quantize_dequantize_rows_avx2(float* x, std::size_t rows, std::size_t d,
                                   numerics::NumericFormat format,
                                   const float* scales) {
  for (std::size_t r = 0; r < rows; ++r) {
    quantize_dequantize_avx2(x + r * d, d, format, scales[r]);
  }
}

constexpr KernelTable kAvx2Table = {
    "avx2",
    stats_avx2,
    centered_sum_sq_avx2,
    residual_add_avx2,
    residual_add_copy_avx2,
    residual_add_stats_avx2,
    normalize_affine_avx2,
    quantize_dequantize_avx2,
    stats_rows_t<false>,
    centered_sum_sq_rows_t<false>,
    residual_add_stats_rows_t<false>,
    normalize_affine_rows_t<false>,
    quantize_dequantize_rows_avx2,
};

// Variant tables share every per-row kernel with the base; only the
// row-block entries the autotuner's fused-norm harness actually measures
// differ (prefetch on the streaming reductions, nontemporal on the
// normalize output stream).
constexpr KernelTable kAvx2PfTable = {
    "avx2-pf",
    stats_avx2,
    centered_sum_sq_avx2,
    residual_add_avx2,
    residual_add_copy_avx2,
    residual_add_stats_avx2,
    normalize_affine_avx2,
    quantize_dequantize_avx2,
    stats_rows_t<true>,
    centered_sum_sq_rows_t<true>,
    residual_add_stats_rows_t<true>,
    normalize_affine_rows_t<false>,
    quantize_dequantize_rows_avx2,
};

constexpr KernelTable kAvx2NtTable = {
    "avx2-nt",
    stats_avx2,
    centered_sum_sq_avx2,
    residual_add_avx2,
    residual_add_copy_avx2,
    residual_add_stats_avx2,
    normalize_affine_avx2,
    quantize_dequantize_avx2,
    stats_rows_t<false>,
    centered_sum_sq_rows_t<false>,
    residual_add_stats_rows_t<false>,
    normalize_affine_rows_t<true>,
    quantize_dequantize_rows_avx2,
};

constexpr KernelTable kAvx2NtPfTable = {
    "avx2-ntpf",
    stats_avx2,
    centered_sum_sq_avx2,
    residual_add_avx2,
    residual_add_copy_avx2,
    residual_add_stats_avx2,
    normalize_affine_avx2,
    quantize_dequantize_avx2,
    stats_rows_t<true>,
    centered_sum_sq_rows_t<true>,
    residual_add_stats_rows_t<true>,
    normalize_affine_rows_t<true>,
    quantize_dequantize_rows_avx2,
};

constexpr const KernelTable* kAvx2Variants[] = {&kAvx2PfTable, &kAvx2NtTable,
                                                &kAvx2NtPfTable};

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &kAvx2Table; }
std::span<const KernelTable* const> avx2_variant_tables() {
  return kAvx2Variants;
}
}  // namespace detail

}  // namespace haan::kernels

#else  // !x86

namespace haan::kernels::detail {
const KernelTable* avx2_table() { return nullptr; }
std::span<const KernelTable* const> avx2_variant_tables() { return {}; }
}  // namespace haan::kernels::detail

#endif
