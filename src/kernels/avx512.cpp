// AVX-512 backend. This translation unit is compiled with
// -mavx512f/dq/bw/vl (plus the AVX2 baseline flags) when the compiler
// supports them (see CMakeLists); the dispatcher verifies CPU support via
// __builtin_cpu_supports before handing out this table, so no code here runs
// on machines without the ISA. When the compiler cannot target AVX-512 the
// TU still compiles — to the null stubs at the bottom — and runtime dispatch
// falls back to AVX2.
//
// Lanes are 16-wide with masked tails: a prime or odd `d` is handled by one
// masked iteration instead of a scalar remainder loop, so the vector/tail
// split never changes the per-element arithmetic. Reductions widen to double
// lanes (two accumulators per moment, mirroring the AVX2 structure) and so
// reassociate relative to the scalar reference; elementwise kernels perform
// the same rounding steps as scalar and are bit-identical except where the
// header's tolerance contract says otherwise (FP16 NaN payloads).
//
// The row-block kernels come in prefetch (template kPF) and nontemporal
// (template kNT) flavours exported as the "avx512-pf"/"-nt"/"-ntpf" variant
// tables: candidates for the startup autotuner in the large rows x d regime
// where a pack blows out L2. Both flavours are value-identical to the base
// table — prefetch has no architectural effect, and streaming stores change
// where the result lands, not what it is.
#include "kernels/backends.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX512F__) && \
    defined(__AVX512DQ__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace haan::kernels {
namespace {

/// Software-prefetch lookahead for the kPF row-block variants, in floats
/// (1 KiB = 16 cache lines ahead of the streaming read).
constexpr std::size_t kPrefetchAhead = 256;

/// Active-lane mask for a tail of `rem` elements, 1 <= rem <= 15.
inline __mmask16 tail_mask16(std::size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

double hsum_pd512(__m512d v) {
  const __m256d q = _mm256_add_pd(_mm512_castpd512_pd256(v),
                                  _mm512_extractf64x4_pd(v, 1));
  const __m128d pair =
      _mm_add_pd(_mm256_castpd256_pd128(q), _mm256_extractf128_pd(q, 1));
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

inline __m512d cvt_lo_pd(__m512 v) {
  return _mm512_cvtps_pd(_mm512_castps512_ps256(v));
}

inline __m512d cvt_hi_pd(__m512 v) {
  return _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1));
}

/// Accumulates sum and sum-of-squares of the 16 floats in `v`. Masked-out
/// tail lanes arrive as +0.0 from the maskz load and contribute exactly
/// nothing to either moment.
inline void accumulate16(__m512 v, __m512d& sum0, __m512d& sum1, __m512d& sq0,
                         __m512d& sq1) {
  const __m512d lo = cvt_lo_pd(v);
  const __m512d hi = cvt_hi_pd(v);
  sum0 = _mm512_add_pd(sum0, lo);
  sum1 = _mm512_add_pd(sum1, hi);
  sq0 = _mm512_fmadd_pd(lo, lo, sq0);
  sq1 = _mm512_fmadd_pd(hi, hi, sq1);
}

template <bool kPF>
SumStats stats_body(const float* z, std::size_t n) {
  __m512d sum0 = _mm512_setzero_pd(), sum1 = _mm512_setzero_pd();
  __m512d sq0 = _mm512_setzero_pd(), sq1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    if constexpr (kPF) {
      _mm_prefetch(reinterpret_cast<const char*>(z + i + kPrefetchAhead),
                   _MM_HINT_T0);
    }
    accumulate16(_mm512_loadu_ps(z + i), sum0, sum1, sq0, sq1);
  }
  if (i < n) {
    accumulate16(_mm512_maskz_loadu_ps(tail_mask16(n - i), z + i), sum0, sum1,
                 sq0, sq1);
  }
  SumStats out;
  out.sum = hsum_pd512(_mm512_add_pd(sum0, sum1));
  out.sum_sq = hsum_pd512(_mm512_add_pd(sq0, sq1));
  return out;
}

SumStats stats_avx512(const float* z, std::size_t n) {
  return stats_body<false>(z, n);
}

template <bool kPF>
double centered_sum_sq_body(const float* z, std::size_t n, double mean) {
  const __m512d mean_v = _mm512_set1_pd(mean);
  __m512d acc0 = _mm512_setzero_pd(), acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    if constexpr (kPF) {
      _mm_prefetch(reinterpret_cast<const char*>(z + i + kPrefetchAhead),
                   _MM_HINT_T0);
    }
    const __m512 v = _mm512_loadu_ps(z + i);
    const __m512d lo = _mm512_sub_pd(cvt_lo_pd(v), mean_v);
    const __m512d hi = _mm512_sub_pd(cvt_hi_pd(v), mean_v);
    acc0 = _mm512_fmadd_pd(lo, lo, acc0);
    acc1 = _mm512_fmadd_pd(hi, hi, acc1);
  }
  if (i < n) {
    // The subtraction itself must be masked: a zero-filled tail lane would
    // otherwise contribute mean^2 to the accumulator.
    const __mmask16 m = tail_mask16(n - i);
    const __mmask8 mlo = static_cast<__mmask8>(m & 0xFF);
    const __mmask8 mhi = static_cast<__mmask8>(m >> 8);
    const __m512 v = _mm512_maskz_loadu_ps(m, z + i);
    const __m512d lo = _mm512_maskz_sub_pd(mlo, cvt_lo_pd(v), mean_v);
    const __m512d hi = _mm512_maskz_sub_pd(mhi, cvt_hi_pd(v), mean_v);
    acc0 = _mm512_fmadd_pd(lo, lo, acc0);
    acc1 = _mm512_fmadd_pd(hi, hi, acc1);
  }
  return hsum_pd512(_mm512_add_pd(acc0, acc1));
}

double centered_sum_sq_avx512(const float* z, std::size_t n, double mean) {
  return centered_sum_sq_body<false>(z, n, mean);
}

void residual_add_avx512(float* h, const float* residual, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 sum =
        _mm512_add_ps(_mm512_loadu_ps(h + i), _mm512_loadu_ps(residual + i));
    _mm512_storeu_ps(h + i, sum);
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m512 sum = _mm512_add_ps(_mm512_maskz_loadu_ps(m, h + i),
                                     _mm512_maskz_loadu_ps(m, residual + i));
    _mm512_mask_storeu_ps(h + i, m, sum);
  }
}

void residual_add_copy_avx512(float* h, const float* residual, float* dst,
                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 sum =
        _mm512_add_ps(_mm512_loadu_ps(h + i), _mm512_loadu_ps(residual + i));
    _mm512_storeu_ps(h + i, sum);
    _mm512_storeu_ps(dst + i, sum);
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m512 sum = _mm512_add_ps(_mm512_maskz_loadu_ps(m, h + i),
                                     _mm512_maskz_loadu_ps(m, residual + i));
    _mm512_mask_storeu_ps(h + i, m, sum);
    _mm512_mask_storeu_ps(dst + i, m, sum);
  }
}

template <bool kPF>
SumStats residual_add_stats_body(float* h, const float* residual,
                                 std::size_t n) {
  __m512d sum0 = _mm512_setzero_pd(), sum1 = _mm512_setzero_pd();
  __m512d sq0 = _mm512_setzero_pd(), sq1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    if constexpr (kPF) {
      _mm_prefetch(reinterpret_cast<const char*>(h + i + kPrefetchAhead),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(residual + i + kPrefetchAhead),
                   _MM_HINT_T0);
    }
    const __m512 sum =
        _mm512_add_ps(_mm512_loadu_ps(h + i), _mm512_loadu_ps(residual + i));
    _mm512_storeu_ps(h + i, sum);
    accumulate16(sum, sum0, sum1, sq0, sq1);
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m512 sum = _mm512_add_ps(_mm512_maskz_loadu_ps(m, h + i),
                                     _mm512_maskz_loadu_ps(m, residual + i));
    _mm512_mask_storeu_ps(h + i, m, sum);
    accumulate16(sum, sum0, sum1, sq0, sq1);  // dead lanes are 0 + 0
  }
  SumStats out;
  out.sum = hsum_pd512(_mm512_add_pd(sum0, sum1));
  out.sum_sq = hsum_pd512(_mm512_add_pd(sq0, sq1));
  return out;
}

SumStats residual_add_stats_avx512(float* h, const float* residual,
                                   std::size_t n) {
  return residual_add_stats_body<false>(h, residual, n);
}

/// One normalized lane vector: (float)((z - mean) * isd) * alpha + beta, the
/// exact rounding sequence of the scalar reference.
inline __m512 normalize_lanes(__m512 zv, __m512d mean_v, __m512d isd_v,
                              const float* alpha, const float* beta,
                              std::size_t i, __mmask16 m, bool masked) {
  const __m512d lo = _mm512_mul_pd(_mm512_sub_pd(cvt_lo_pd(zv), mean_v), isd_v);
  const __m512d hi = _mm512_mul_pd(_mm512_sub_pd(cvt_hi_pd(zv), mean_v), isd_v);
  __m512 v = _mm512_insertf32x8(_mm512_castps256_ps512(_mm512_cvtpd_ps(lo)),
                                _mm512_cvtpd_ps(hi), 1);
  // alpha == nullptr multiplies by 1.0f, which is exact for every value; a
  // missing beta must genuinely skip the add (0.0f + -0.0f would flip signs).
  if (alpha != nullptr) {
    v = _mm512_mul_ps(v, masked ? _mm512_maskz_loadu_ps(m, alpha + i)
                                : _mm512_loadu_ps(alpha + i));
  }
  if (beta != nullptr) {
    v = _mm512_add_ps(v, masked ? _mm512_maskz_loadu_ps(m, beta + i)
                                : _mm512_loadu_ps(beta + i));
  }
  return v;
}

void normalize_affine_avx512(const float* z, std::size_t n, double mean,
                             double isd, const float* alpha, const float* beta,
                             float* out) {
  const __m512d mean_v = _mm512_set1_pd(mean);
  const __m512d isd_v = _mm512_set1_pd(isd);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = normalize_lanes(_mm512_loadu_ps(z + i), mean_v, isd_v,
                                     alpha, beta, i, 0, /*masked=*/false);
    _mm512_storeu_ps(out + i, v);
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m512 v = normalize_lanes(_mm512_maskz_loadu_ps(m, z + i), mean_v,
                                     isd_v, alpha, beta, i, m, /*masked=*/true);
    _mm512_mask_storeu_ps(out + i, m, v);
  }
}

void quantize_int8_avx512(float* values, std::size_t n, float scale) {
  const __m512 scale_v = _mm512_set1_ps(scale);
  const __m512 lo_v = _mm512_set1_ps(-128.0f);
  const __m512 hi_v = _mm512_set1_ps(127.0f);
  // 0x0C = round to integer per MXCSR + suppress precision exceptions, the
  // VRNDSCALE encoding of _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC.
  constexpr int kRound = _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(values + i);
    const __m512 q = _mm512_roundscale_ps(_mm512_div_ps(v, scale_v), kRound);
    // Keep q as the second operand so min/max propagate NaN like std::clamp.
    const __m512 clamped = _mm512_min_ps(hi_v, _mm512_max_ps(lo_v, q));
    _mm512_storeu_ps(values + i, _mm512_mul_ps(clamped, scale_v));
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m512 v = _mm512_maskz_loadu_ps(m, values + i);
    const __m512 q = _mm512_roundscale_ps(_mm512_div_ps(v, scale_v), kRound);
    const __m512 clamped = _mm512_min_ps(hi_v, _mm512_max_ps(lo_v, q));
    _mm512_mask_storeu_ps(values + i, m, _mm512_mul_ps(clamped, scale_v));
  }
}

void quantize_fp16_avx512(float* values, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i half = _mm512_cvtps_ph(_mm512_loadu_ps(values + i),
                                         _MM_FROUND_TO_NEAREST_INT);
    _mm512_storeu_ps(values + i, _mm512_cvtph_ps(half));
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m256i half = _mm512_cvtps_ph(_mm512_maskz_loadu_ps(m, values + i),
                                         _MM_FROUND_TO_NEAREST_INT);
    _mm512_mask_storeu_ps(values + i, m, _mm512_cvtph_ps(half));
  }
}

/// Integer replica of BFloat16::from_float/to_float: round-to-nearest-even
/// on the truncated 16 bits, quiet-NaN preservation. Bit-exact vs scalar.
inline __m512i bf16_round_lanes(__m512i bits) {
  const __m512i inf_bits = _mm512_set1_epi32(0x7F800000);
  const __m512i abs_mask = _mm512_set1_epi32(0x7FFFFFFF);
  const __m512i round_base = _mm512_set1_epi32(0x7FFF);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i quiet_bit = _mm512_set1_epi32(0x40);
  const __m512i abs = _mm512_and_si512(bits, abs_mask);
  const __mmask16 is_nan = _mm512_cmpgt_epi32_mask(abs, inf_bits);
  const __m512i top = _mm512_srli_epi32(bits, 16);
  const __m512i nan_res =
      _mm512_slli_epi32(_mm512_or_si512(top, quiet_bit), 16);
  const __m512i lsb = _mm512_and_si512(top, one);
  const __m512i rounded =
      _mm512_add_epi32(bits, _mm512_add_epi32(round_base, lsb));
  const __m512i rne_res = _mm512_slli_epi32(_mm512_srli_epi32(rounded, 16), 16);
  return _mm512_mask_blend_epi32(is_nan, rne_res, nan_res);
}

void quantize_bf16_avx512(float* values, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i bits = _mm512_castps_si512(_mm512_loadu_ps(values + i));
    _mm512_storeu_ps(values + i, _mm512_castsi512_ps(bf16_round_lanes(bits)));
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    const __m512i bits =
        _mm512_castps_si512(_mm512_maskz_loadu_ps(m, values + i));
    _mm512_mask_storeu_ps(values + i, m,
                          _mm512_castsi512_ps(bf16_round_lanes(bits)));
  }
}

void quantize_dequantize_avx512(float* values, std::size_t n,
                                numerics::NumericFormat format, float scale) {
  switch (format) {
    case numerics::NumericFormat::kFP32:
      return;
    case numerics::NumericFormat::kFP16:
      quantize_fp16_avx512(values, n);
      return;
    case numerics::NumericFormat::kBF16:
      quantize_bf16_avx512(values, n);
      return;
    case numerics::NumericFormat::kINT8:
      quantize_int8_avx512(values, n, scale);
      return;
  }
}

// Row-block kernels: loop the per-row bodies above inside this TU, so every
// row runs the same vector/tail split as the per-row entry points (bit-
// identical per backend) with no per-row dispatch.

template <bool kPF>
void stats_rows_t(const float* x, std::size_t rows, std::size_t stride,
                  std::size_t n, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = stats_body<kPF>(x + r * stride, n);
  }
}

template <bool kPF>
void centered_sum_sq_rows_t(const float* x, std::size_t rows,
                            std::size_t stride, std::size_t n,
                            const double* mean, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = centered_sum_sq_body<kPF>(x + r * stride, n, mean[r]);
  }
}

template <bool kPF>
void residual_add_stats_rows_t(float* h, const float* residual,
                               std::size_t rows, std::size_t d,
                               std::size_t nstats, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* hr = h + r * d;
    const float* rr = residual + r * d;
    out[r] = residual_add_stats_body<kPF>(hr, rr, nstats);
    residual_add_avx512(hr + nstats, rr + nstats, d - nstats);
  }
}

constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format

/// NaN -> 0, clamp to +/-65504; elementwise, matching the scalar backend's
/// std::isnan/std::clamp sequence bit for bit.
inline __m512 saturate_lanes(__m512 x) {
  const __mmask16 nan_mask = _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q);
  const __m512 clamped = _mm512_min_ps(_mm512_set1_ps(kSaturation),
                                       _mm512_max_ps(_mm512_set1_ps(-kSaturation), x));
  return _mm512_mask_blend_ps(nan_mask, clamped, _mm512_setzero_ps());
}

void saturate_avx512(float* v, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(v + i, saturate_lanes(_mm512_loadu_ps(v + i)));
  }
  if (i < n) {
    const __mmask16 m = tail_mask16(n - i);
    _mm512_mask_storeu_ps(v + i, m,
                          saturate_lanes(_mm512_maskz_loadu_ps(m, v + i)));
  }
}

inline float normalize_one(const float* z, std::size_t i, double mean,
                           double isd, const float* alpha, const float* beta) {
  float v = static_cast<float>((z[i] - mean) * isd);
  if (alpha != nullptr) v *= alpha[i];
  if (beta != nullptr) v += beta[i];
  return v;
}

inline float saturate_one(float x) {
  return std::isnan(x) ? 0.0f : std::clamp(x, -kSaturation, kSaturation);
}

/// Streaming-store normalize row: a scalar head peels to 64-byte alignment of
/// the output (scalar and vector lanes round identically, so the head is
/// value-identical), the body streams cache-bypassing stores, and the tail
/// finishes scalar. The saturation clamp is fused in-register — clamping
/// before the store equals clamping a stored value elementwise.
void normalize_affine_nt_avx512(const float* z, std::size_t n, double mean,
                                double isd, const float* alpha,
                                const float* beta, float* out, bool saturate) {
  const __m512d mean_v = _mm512_set1_pd(mean);
  const __m512d isd_v = _mm512_set1_pd(isd);
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(out + i) & 63u) != 0) {
    const float v = normalize_one(z, i, mean, isd, alpha, beta);
    out[i] = saturate ? saturate_one(v) : v;
    ++i;
  }
  for (; i + 16 <= n; i += 16) {
    __m512 v = normalize_lanes(_mm512_loadu_ps(z + i), mean_v, isd_v, alpha,
                               beta, i, 0, /*masked=*/false);
    if (saturate) v = saturate_lanes(v);
    _mm512_stream_ps(out + i, v);
  }
  for (; i < n; ++i) {
    const float v = normalize_one(z, i, mean, isd, alpha, beta);
    out[i] = saturate ? saturate_one(v) : v;
  }
}

template <bool kNT>
void normalize_affine_rows_t(const float* x, std::size_t rows, std::size_t d,
                             const double* mean, const double* isd,
                             const float* alpha, const float* beta, float* out,
                             bool saturate) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* out_r = out + r * d;
    if constexpr (kNT) {
      normalize_affine_nt_avx512(x + r * d, d, mean[r], isd[r], alpha, beta,
                                 out_r, saturate);
    } else {
      normalize_affine_avx512(x + r * d, d, mean[r], isd[r], alpha, beta,
                              out_r);
      if (saturate) saturate_avx512(out_r, d);
    }
  }
  // Streaming stores are weakly ordered; fence once per block so readers on
  // other pool threads observe the rows.
  if constexpr (kNT) _mm_sfence();
}

void quantize_dequantize_rows_avx512(float* x, std::size_t rows, std::size_t d,
                                     numerics::NumericFormat format,
                                     const float* scales) {
  for (std::size_t r = 0; r < rows; ++r) {
    quantize_dequantize_avx512(x + r * d, d, format, scales[r]);
  }
}

constexpr KernelTable kAvx512Table = {
    "avx512",
    stats_avx512,
    centered_sum_sq_avx512,
    residual_add_avx512,
    residual_add_copy_avx512,
    residual_add_stats_avx512,
    normalize_affine_avx512,
    quantize_dequantize_avx512,
    stats_rows_t<false>,
    centered_sum_sq_rows_t<false>,
    residual_add_stats_rows_t<false>,
    normalize_affine_rows_t<false>,
    quantize_dequantize_rows_avx512,
};

// Variant tables share every per-row kernel with the base; only the
// row-block entries the autotuner's fused-norm harness actually measures
// differ (prefetch on the streaming reductions, nontemporal on the
// normalize output stream).
constexpr KernelTable kAvx512PfTable = {
    "avx512-pf",
    stats_avx512,
    centered_sum_sq_avx512,
    residual_add_avx512,
    residual_add_copy_avx512,
    residual_add_stats_avx512,
    normalize_affine_avx512,
    quantize_dequantize_avx512,
    stats_rows_t<true>,
    centered_sum_sq_rows_t<true>,
    residual_add_stats_rows_t<true>,
    normalize_affine_rows_t<false>,
    quantize_dequantize_rows_avx512,
};

constexpr KernelTable kAvx512NtTable = {
    "avx512-nt",
    stats_avx512,
    centered_sum_sq_avx512,
    residual_add_avx512,
    residual_add_copy_avx512,
    residual_add_stats_avx512,
    normalize_affine_avx512,
    quantize_dequantize_avx512,
    stats_rows_t<false>,
    centered_sum_sq_rows_t<false>,
    residual_add_stats_rows_t<false>,
    normalize_affine_rows_t<true>,
    quantize_dequantize_rows_avx512,
};

constexpr KernelTable kAvx512NtPfTable = {
    "avx512-ntpf",
    stats_avx512,
    centered_sum_sq_avx512,
    residual_add_avx512,
    residual_add_copy_avx512,
    residual_add_stats_avx512,
    normalize_affine_avx512,
    quantize_dequantize_avx512,
    stats_rows_t<true>,
    centered_sum_sq_rows_t<true>,
    residual_add_stats_rows_t<true>,
    normalize_affine_rows_t<true>,
    quantize_dequantize_rows_avx512,
};

constexpr const KernelTable* kAvx512Variants[] = {
    &kAvx512PfTable, &kAvx512NtTable, &kAvx512NtPfTable};

}  // namespace

namespace detail {
const KernelTable* avx512_table() { return &kAvx512Table; }
std::span<const KernelTable* const> avx512_variant_tables() {
  return kAvx512Variants;
}
}  // namespace detail

}  // namespace haan::kernels

#else  // compiler cannot target AVX-512 (or not x86)

namespace haan::kernels::detail {
const KernelTable* avx512_table() { return nullptr; }
std::span<const KernelTable* const> avx512_variant_tables() { return {}; }
}  // namespace haan::kernels::detail

#endif
