// Startup kernel autotuner. At provider construction the serving stack asks
// for the best row-block kernel table for its model width d: the tuner
// micro-benchmarks every candidate backend/variant over a few row-block tiles
// (the fused residual-add + RMSNorm path that dominates serve time), picks one
// winner per d, and memoizes the decision for the process lifetime. Decisions
// can be persisted to a JSON cache keyed by CPU + mode so repeat launches skip
// the measurement entirely.
//
// Bit-identity: the tuner returns ONE table per d and callers thread it
// through every norm path (per-row and row-block alike), so any in-process
// comparison — chunked vs one-shot decode, rows vs per-row parity — sees a
// single consistent backend. In the default "safe" mode the candidate set is
// restricted to the active family's own variants, which are value-identical
// to the static dispatch; cross-family tuning (reassociated reductions, still
// within the kernels.hpp tolerance contract) requires the explicit
// HAAN_AUTOTUNE=1 opt-in.
//
// Environment:
//   HAAN_AUTOTUNE        unset/empty -> safe mode; "1" -> full (cross-family)
//                        mode; "0" -> off (static dispatch, no measurement).
//   HAAN_AUTOTUNE_CACHE  path of the JSON decision cache (optional). A
//                        programmatic set_autotune_cache_path() overrides it.
//   HAAN_FORCE_SCALAR    wins over everything: the tuner returns scalar.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"

namespace haan::kernels {

/// How aggressive the candidate set is. kSafe keeps every candidate
/// value-identical to the static dispatch; kFull also tries other backend
/// families (different reduction order, same tolerance contract).
enum class AutotuneMode { kOff, kSafe, kFull };

/// Reads HAAN_AUTOTUNE afresh: "0" -> kOff, "1" -> kFull, else kSafe.
AutotuneMode autotune_mode();

/// True when tuned_for() may measure (mode != kOff and the scalar override is
/// not in force).
bool autotune_enabled();

/// One micro-benchmark cell: ns/row of the fused RMSNorm row block at `rows`
/// rows, for the static dispatch and for the chosen table.
struct AutotuneTile {
  std::size_t rows = 0;
  double static_ns_per_row = 0.0;
  double tuned_ns_per_row = 0.0;
};

/// The tuner's decision for one row width d.
struct AutotuneChoice {
  /// Where the decision came from: static dispatch (tuning off or no winner
  /// measured), a fresh measurement, or the JSON cache.
  enum class Source { kStatic, kMeasured, kCache };

  const KernelTable* table = nullptr;  ///< Never null once returned.
  std::size_t d = 0;
  std::size_t rows_tile = 0;   ///< Tile where the winner's advantage peaks (0 = static).
  double ns_per_row = 0.0;     ///< Winner's ns/row at rows_tile (0 = unmeasured).
  Source source = Source::kStatic;
  bool cache_hit = false;      ///< A usable cache entry was found for this d.
  std::vector<AutotuneTile> tiles;  ///< Per-tile measurements (empty unless kMeasured).

  /// NUMA nodes visible when the decision was made (1 on single-node hosts).
  int nodes = 1;

  /// Whether row partitions for this width may span NUMA nodes. Always true
  /// on single-node hosts or with placement off; on multi-node hosts the
  /// tuner measures whether a remote node's CPU can stream a node-resident
  /// block fast enough that cross-socket chunks still pay, and providers cap
  /// for_rows chunk counts to one node's CPUs when it cannot. The cap changes
  /// scheduling only — chunk results are row-wise, so values are identical.
  bool cross_node_partition = true;
};

/// "static" | "measured" | "cache" — for logs and metrics JSON.
const char* to_string(AutotuneChoice::Source source);

/// The decision for width d. Memoized per process (thread-safe): the first
/// call per d consults the cache file, measures if needed, persists the
/// result, and logs the choice; later calls return the stored decision.
/// With autotuning off this is the static active() table.
const AutotuneChoice& tuned_for(std::size_t d);

/// tuned_for(d).table — the common case.
const KernelTable& tuned_table(std::size_t d);

/// The candidate tables the current mode would consider for tuning, static
/// dispatch first. Exposed for the bench sweep.
std::vector<const KernelTable*> autotune_candidates();

/// Micro-benchmarks `table` on the fused row-block RMSNorm (residual add +
/// stats + normalize) over a (rows x d) block, plus a read-back pass over the
/// output so streaming stores pay their true reload cost. Returns the best
/// (minimum) ns/row over `reps` repetitions. Shared by the tuner and the
/// bench `--tune` sweep so both gate on the same measurement.
double measure_rows_ns_per_row(const KernelTable& table, std::size_t d,
                               std::size_t rows, int reps = 3);

/// Overrides the cache file path (takes precedence over HAAN_AUTOTUNE_CACHE).
/// Empty string restores the environment lookup.
void set_autotune_cache_path(std::string path);

/// The effective cache path: the programmatic override if set, else
/// HAAN_AUTOTUNE_CACHE, else empty (no persistence).
std::string autotune_cache_path();

/// Test hook: drops every memoized decision and the programmatic cache-path
/// override so environment changes take effect on the next tuned_for() call.
void reset_autotune_for_testing();

}  // namespace haan::kernels
