// Portable scalar backend: the bit-exact reference every SIMD backend is
// tested against. The loop bodies reproduce the seed's `tensor::norm_ref` and
// `core::subsample` arithmetic exactly — same accumulation order, same double
// intermediates, same float rounding points — so HAAN_FORCE_SCALAR=1 runs are
// bit-identical to the pre-kernel-layer implementation.
#include "kernels/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace haan::kernels {
namespace {

SumStats stats_scalar(const float* z, std::size_t n) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = z[i];
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  return {sum, sum_sq};
}

double centered_sum_sq_scalar(const float* z, std::size_t n, double mean) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = z[i] - mean;
    acc += d * d;
  }
  return acc;
}

void residual_add_scalar(float* h, const float* residual, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h[i] += residual[i];
}

void residual_add_copy_scalar(float* h, const float* residual, float* dst,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h[i] += residual[i];
    dst[i] = h[i];
  }
}

SumStats residual_add_stats_scalar(float* h, const float* residual,
                                   std::size_t n) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    h[i] += residual[i];
    const float v = h[i];
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  return {sum, sum_sq};
}

void normalize_affine_scalar(const float* z, std::size_t n, double mean,
                             double isd, const float* alpha, const float* beta,
                             float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    float v = static_cast<float>((z[i] - mean) * isd);
    if (alpha != nullptr) v *= alpha[i];
    if (beta != nullptr) v += beta[i];
    out[i] = v;
  }
}

void quantize_dequantize_scalar(float* values, std::size_t n,
                                numerics::NumericFormat format, float scale) {
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(values[i], format, scale);
  }
}

// Row-block kernels: plain loops over the per-row bodies above, so each row
// rounds exactly like the per-row entry points.

void stats_rows_scalar(const float* x, std::size_t rows, std::size_t stride,
                       std::size_t n, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = stats_scalar(x + r * stride, n);
  }
}

void centered_sum_sq_rows_scalar(const float* x, std::size_t rows,
                                 std::size_t stride, std::size_t n,
                                 const double* mean, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = centered_sum_sq_scalar(x + r * stride, n, mean[r]);
  }
}

void residual_add_stats_rows_scalar(float* h, const float* residual,
                                    std::size_t rows, std::size_t d,
                                    std::size_t nstats, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* hr = h + r * d;
    const float* rr = residual + r * d;
    // Fused add+stats over the statistics prefix, plain add over the rest.
    // The float adds are elementwise, so the updated h and the prefix stats
    // round identically to a full-row add followed by a prefix stats pass.
    out[r] = residual_add_stats_scalar(hr, rr, nstats);
    residual_add_scalar(hr + nstats, rr + nstats, d - nstats);
  }
}

void normalize_affine_rows_scalar(const float* x, std::size_t rows,
                                  std::size_t d, const double* mean,
                                  const double* isd, const float* alpha,
                                  const float* beta, float* out, bool saturate) {
  constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format
  for (std::size_t r = 0; r < rows; ++r) {
    float* out_r = out + r * d;
    normalize_affine_scalar(x + r * d, d, mean[r], isd[r], alpha, beta, out_r);
    if (!saturate) continue;
    for (std::size_t i = 0; i < d; ++i) {
      const float v = out_r[i];
      out_r[i] = std::isnan(v) ? 0.0f : std::clamp(v, -kSaturation, kSaturation);
    }
  }
}

void quantize_dequantize_rows_scalar(float* x, std::size_t rows, std::size_t d,
                                     numerics::NumericFormat format,
                                     const float* scales) {
  for (std::size_t r = 0; r < rows; ++r) {
    quantize_dequantize_scalar(x + r * d, d, format, scales[r]);
  }
}

constexpr KernelTable kScalarTable = {
    "scalar",
    stats_scalar,
    centered_sum_sq_scalar,
    residual_add_scalar,
    residual_add_copy_scalar,
    residual_add_stats_scalar,
    normalize_affine_scalar,
    quantize_dequantize_scalar,
    stats_rows_scalar,
    centered_sum_sq_rows_scalar,
    residual_add_stats_rows_scalar,
    normalize_affine_rows_scalar,
    quantize_dequantize_rows_scalar,
};

}  // namespace

const KernelTable& scalar_kernels() { return kScalarTable; }

}  // namespace haan::kernels
