// Portable scalar backend: the bit-exact reference every SIMD backend is
// tested against. The loop bodies reproduce the seed's `tensor::norm_ref` and
// `core::subsample` arithmetic exactly — same accumulation order, same double
// intermediates, same float rounding points — so HAAN_FORCE_SCALAR=1 runs are
// bit-identical to the pre-kernel-layer implementation.
#include "kernels/kernels.hpp"

namespace haan::kernels {
namespace {

SumStats stats_scalar(const float* z, std::size_t n) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = z[i];
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  return {sum, sum_sq};
}

double centered_sum_sq_scalar(const float* z, std::size_t n, double mean) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = z[i] - mean;
    acc += d * d;
  }
  return acc;
}

void residual_add_scalar(float* h, const float* residual, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h[i] += residual[i];
}

void residual_add_copy_scalar(float* h, const float* residual, float* dst,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h[i] += residual[i];
    dst[i] = h[i];
  }
}

SumStats residual_add_stats_scalar(float* h, const float* residual,
                                   std::size_t n) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    h[i] += residual[i];
    const float v = h[i];
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  return {sum, sum_sq};
}

void normalize_affine_scalar(const float* z, std::size_t n, double mean,
                             double isd, const float* alpha, const float* beta,
                             float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    float v = static_cast<float>((z[i] - mean) * isd);
    if (alpha != nullptr) v *= alpha[i];
    if (beta != nullptr) v += beta[i];
    out[i] = v;
  }
}

void quantize_dequantize_scalar(float* values, std::size_t n,
                                numerics::NumericFormat format, float scale) {
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(values[i], format, scale);
  }
}

constexpr KernelTable kScalarTable = {
    "scalar",
    stats_scalar,
    centered_sum_sq_scalar,
    residual_add_scalar,
    residual_add_copy_scalar,
    residual_add_stats_scalar,
    normalize_affine_scalar,
    quantize_dequantize_scalar,
};

}  // namespace

const KernelTable& scalar_kernels() { return kScalarTable; }

}  // namespace haan::kernels
