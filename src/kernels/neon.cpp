// NEON (AArch64) backend. AdvSIMD is mandatory on AArch64, so no runtime
// feature check is needed; the dispatcher uses this table whenever the build
// targets aarch64 and scalar is not forced. Mirrors the AVX2 backend: double
// accumulators for reductions, elementwise kernels bit-identical to scalar
// under the header's tolerance contract.
#include "kernels/backends.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>

namespace haan::kernels {
namespace {

/// Accumulates sum and sum-of-squares of the 4 floats in `v`.
void accumulate4(float32x4_t v, float64x2_t& sum0, float64x2_t& sum1,
                 float64x2_t& sq0, float64x2_t& sq1) {
  const float64x2_t lo = vcvt_f64_f32(vget_low_f32(v));
  const float64x2_t hi = vcvt_high_f64_f32(v);
  sum0 = vaddq_f64(sum0, lo);
  sum1 = vaddq_f64(sum1, hi);
  sq0 = vfmaq_f64(sq0, lo, lo);
  sq1 = vfmaq_f64(sq1, hi, hi);
}

SumStats stats_neon(const float* z, std::size_t n) {
  float64x2_t sum0 = vdupq_n_f64(0.0), sum1 = vdupq_n_f64(0.0);
  float64x2_t sq0 = vdupq_n_f64(0.0), sq1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    accumulate4(vld1q_f32(z + i), sum0, sum1, sq0, sq1);
  }
  SumStats out;
  out.sum = vaddvq_f64(vaddq_f64(sum0, sum1));
  out.sum_sq = vaddvq_f64(vaddq_f64(sq0, sq1));
  for (; i < n; ++i) {
    const float v = z[i];
    out.sum += v;
    out.sum_sq += static_cast<double>(v) * v;
  }
  return out;
}

double centered_sum_sq_neon(const float* z, std::size_t n, double mean) {
  const float64x2_t mean_v = vdupq_n_f64(mean);
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(z + i);
    const float64x2_t lo = vsubq_f64(vcvt_f64_f32(vget_low_f32(v)), mean_v);
    const float64x2_t hi = vsubq_f64(vcvt_high_f64_f32(v), mean_v);
    acc0 = vfmaq_f64(acc0, lo, lo);
    acc1 = vfmaq_f64(acc1, hi, hi);
  }
  double acc = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = z[i] - mean;
    acc += d * d;
  }
  return acc;
}

void residual_add_neon(float* h, const float* residual, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(h + i, vaddq_f32(vld1q_f32(h + i), vld1q_f32(residual + i)));
  }
  for (; i < n; ++i) h[i] += residual[i];
}

void residual_add_copy_neon(float* h, const float* residual, float* dst,
                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t sum =
        vaddq_f32(vld1q_f32(h + i), vld1q_f32(residual + i));
    vst1q_f32(h + i, sum);
    vst1q_f32(dst + i, sum);
  }
  for (; i < n; ++i) {
    h[i] += residual[i];
    dst[i] = h[i];
  }
}

SumStats residual_add_stats_neon(float* h, const float* residual,
                                 std::size_t n) {
  float64x2_t sum0 = vdupq_n_f64(0.0), sum1 = vdupq_n_f64(0.0);
  float64x2_t sq0 = vdupq_n_f64(0.0), sq1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t sum =
        vaddq_f32(vld1q_f32(h + i), vld1q_f32(residual + i));
    vst1q_f32(h + i, sum);
    accumulate4(sum, sum0, sum1, sq0, sq1);
  }
  SumStats out;
  out.sum = vaddvq_f64(vaddq_f64(sum0, sum1));
  out.sum_sq = vaddvq_f64(vaddq_f64(sq0, sq1));
  for (; i < n; ++i) {
    h[i] += residual[i];
    const float v = h[i];
    out.sum += v;
    out.sum_sq += static_cast<double>(v) * v;
  }
  return out;
}

void normalize_affine_neon(const float* z, std::size_t n, double mean,
                           double isd, const float* alpha, const float* beta,
                           float* out) {
  const float64x2_t mean_v = vdupq_n_f64(mean);
  const float64x2_t isd_v = vdupq_n_f64(isd);
  const float32x4_t ones = vdupq_n_f32(1.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t zv = vld1q_f32(z + i);
    const float64x2_t lo =
        vmulq_f64(vsubq_f64(vcvt_f64_f32(vget_low_f32(zv)), mean_v), isd_v);
    const float64x2_t hi =
        vmulq_f64(vsubq_f64(vcvt_high_f64_f32(zv), mean_v), isd_v);
    float32x4_t v = vcombine_f32(vcvt_f32_f64(lo), vcvt_f32_f64(hi));
    const float32x4_t a = alpha != nullptr ? vld1q_f32(alpha + i) : ones;
    v = vmulq_f32(v, a);
    if (beta != nullptr) v = vaddq_f32(v, vld1q_f32(beta + i));
    vst1q_f32(out + i, v);
  }
  for (; i < n; ++i) {
    float v = static_cast<float>((z[i] - mean) * isd);
    if (alpha != nullptr) v *= alpha[i];
    if (beta != nullptr) v += beta[i];
    out[i] = v;
  }
}

void quantize_int8_neon(float* values, std::size_t n, float scale) {
  const float32x4_t scale_v = vdupq_n_f32(scale);
  const float32x4_t lo_v = vdupq_n_f32(-128.0f);
  const float32x4_t hi_v = vdupq_n_f32(127.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(values + i);
    const float32x4_t q = vrndnq_f32(vdivq_f32(v, scale_v));
    const float32x4_t clamped = vminq_f32(hi_v, vmaxq_f32(lo_v, q));
    vst1q_f32(values + i, vmulq_f32(clamped, scale_v));
  }
  for (; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(
        values[i], numerics::NumericFormat::kINT8, scale);
  }
}

void quantize_fp16_neon(float* values, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float16x4_t half = vcvt_f16_f32(vld1q_f32(values + i));
    vst1q_f32(values + i, vcvt_f32_f16(half));
  }
  for (; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(
        values[i], numerics::NumericFormat::kFP16, 1.0f);
  }
}

void quantize_bf16_neon(float* values, std::size_t n) {
  const uint32x4_t inf_bits = vdupq_n_u32(0x7F800000u);
  const uint32x4_t abs_mask = vdupq_n_u32(0x7FFFFFFFu);
  const uint32x4_t round_base = vdupq_n_u32(0x7FFFu);
  const uint32x4_t one = vdupq_n_u32(1u);
  const uint32x4_t quiet_bit = vdupq_n_u32(0x40u);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t bits = vreinterpretq_u32_f32(vld1q_f32(values + i));
    const uint32x4_t abs = vandq_u32(bits, abs_mask);
    const uint32x4_t is_nan = vcgtq_u32(abs, inf_bits);
    const uint32x4_t top = vshrq_n_u32(bits, 16);
    const uint32x4_t nan_res = vshlq_n_u32(vorrq_u32(top, quiet_bit), 16);
    const uint32x4_t lsb = vandq_u32(top, one);
    const uint32x4_t rounded = vaddq_u32(bits, vaddq_u32(round_base, lsb));
    const uint32x4_t rne_res = vshlq_n_u32(vshrq_n_u32(rounded, 16), 16);
    const uint32x4_t res = vbslq_u32(is_nan, nan_res, rne_res);
    vst1q_f32(values + i, vreinterpretq_f32_u32(res));
  }
  for (; i < n; ++i) {
    values[i] = numerics::quantize_dequantize(
        values[i], numerics::NumericFormat::kBF16, 1.0f);
  }
}

void quantize_dequantize_neon(float* values, std::size_t n,
                              numerics::NumericFormat format, float scale) {
  switch (format) {
    case numerics::NumericFormat::kFP32:
      return;
    case numerics::NumericFormat::kFP16:
      quantize_fp16_neon(values, n);
      return;
    case numerics::NumericFormat::kBF16:
      quantize_bf16_neon(values, n);
      return;
    case numerics::NumericFormat::kINT8:
      quantize_int8_neon(values, n, scale);
      return;
  }
}

// Row-block kernels: loop the per-row bodies above inside this TU, so every
// row runs the same vector/tail split as the per-row entry points (bit-
// identical per backend) with no per-row dispatch.

void stats_rows_neon(const float* x, std::size_t rows, std::size_t stride,
                     std::size_t n, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = stats_neon(x + r * stride, n);
  }
}

void centered_sum_sq_rows_neon(const float* x, std::size_t rows,
                               std::size_t stride, std::size_t n,
                               const double* mean, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = centered_sum_sq_neon(x + r * stride, n, mean[r]);
  }
}

void residual_add_stats_rows_neon(float* h, const float* residual,
                                  std::size_t rows, std::size_t d,
                                  std::size_t nstats, SumStats* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* hr = h + r * d;
    const float* rr = residual + r * d;
    out[r] = residual_add_stats_neon(hr, rr, nstats);
    residual_add_neon(hr + nstats, rr + nstats, d - nstats);
  }
}

/// NaN -> 0, clamp to +/-65504; elementwise, matching the scalar backend's
/// std::isnan/std::clamp sequence bit for bit (vmin/vmax propagate NaN).
void saturate_neon(float* v, std::size_t n) {
  constexpr float kSaturation = 65504.0f;
  const float32x4_t hi = vdupq_n_f32(kSaturation);
  const float32x4_t lo = vdupq_n_f32(-kSaturation);
  const float32x4_t zero = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t x = vld1q_f32(v + i);
    const uint32x4_t ordered = vceqq_f32(x, x);  // false lanes are NaN
    const float32x4_t clamped = vminq_f32(hi, vmaxq_f32(lo, x));
    vst1q_f32(v + i, vbslq_f32(ordered, clamped, zero));
  }
  for (; i < n; ++i) {
    const float x = v[i];
    v[i] = std::isnan(x) ? 0.0f : std::clamp(x, -kSaturation, kSaturation);
  }
}

void normalize_affine_rows_neon(const float* x, std::size_t rows, std::size_t d,
                                const double* mean, const double* isd,
                                const float* alpha, const float* beta,
                                float* out, bool saturate) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* out_r = out + r * d;
    normalize_affine_neon(x + r * d, d, mean[r], isd[r], alpha, beta, out_r);
    if (saturate) saturate_neon(out_r, d);
  }
}

void quantize_dequantize_rows_neon(float* x, std::size_t rows, std::size_t d,
                                   numerics::NumericFormat format,
                                   const float* scales) {
  for (std::size_t r = 0; r < rows; ++r) {
    quantize_dequantize_neon(x + r * d, d, format, scales[r]);
  }
}

constexpr KernelTable kNeonTable = {
    "neon",
    stats_neon,
    centered_sum_sq_neon,
    residual_add_neon,
    residual_add_copy_neon,
    residual_add_stats_neon,
    normalize_affine_neon,
    quantize_dequantize_neon,
    stats_rows_neon,
    centered_sum_sq_rows_neon,
    residual_add_stats_rows_neon,
    normalize_affine_rows_neon,
    quantize_dequantize_rows_neon,
};

}  // namespace

namespace detail {
const KernelTable* neon_table() { return &kNeonTable; }
}  // namespace detail

}  // namespace haan::kernels

#else  // !aarch64

namespace haan::kernels::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace haan::kernels::detail

#endif
