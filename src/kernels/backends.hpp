// Internal backend registry. Each SIMD backend translation unit is compiled
// with its ISA flags and exports a raw table getter; the dispatcher (compiled
// with baseline flags) performs the CPU feature check before ever calling
// into backend code.
#pragma once

#include "kernels/kernels.hpp"

namespace haan::kernels::detail {

/// The AVX2+FMA+F16C table. Null when this build does not target x86.
/// Callers must verify CPU support (see kernels.cpp) before using the table.
const KernelTable* avx2_table();

/// The NEON (AArch64) table. Null when this build does not target AArch64.
const KernelTable* neon_table();

}  // namespace haan::kernels::detail
