// Internal backend registry. Each SIMD backend translation unit is compiled
// with its ISA flags and exports a raw table getter; the dispatcher (compiled
// with baseline flags) performs the CPU feature check before ever calling
// into backend code.
#pragma once

#include <span>

#include "kernels/kernels.hpp"

namespace haan::kernels::detail {

/// The AVX2+FMA+F16C table. Null when this build does not target x86.
/// Callers must verify CPU support (see kernels.cpp) before using the table.
const KernelTable* avx2_table();

/// The AVX-512 (F+DQ+BW+VL) table: 16-wide lanes with masked tails, so prime
/// or odd row widths never fall back to scalar remainder loops. Null when the
/// build does not target x86 or the compiler cannot emit AVX-512 (the TU is
/// always compiled; CMake only adds the ISA flags when the compiler supports
/// them). Callers must verify CPU support before using the table.
const KernelTable* avx512_table();

/// Streaming-store ("-nt") and software-prefetch ("-pf", "-ntpf") variants of
/// a family's row-block kernels. Value-identical to the family's base table —
/// nontemporal stores change cache placement, prefetch changes latency, and
/// the arithmetic sequence is untouched — so they are safe autotuner
/// candidates under every bit-identity guarantee. Empty when the family is
/// unavailable in this build.
std::span<const KernelTable* const> avx2_variant_tables();
std::span<const KernelTable* const> avx512_variant_tables();

/// The NEON (AArch64) table. Null when this build does not target AArch64.
const KernelTable* neon_table();

}  // namespace haan::kernels::detail
