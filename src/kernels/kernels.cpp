// Dispatcher and fused span-level entry points. This translation unit is
// compiled with baseline flags only: the CPU feature check happens here,
// before any backend code (compiled with ISA flags) can execute.
#include "kernels/kernels.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"
#include "kernels/backends.hpp"

namespace haan::kernels {
namespace {

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

const KernelTable* best_simd_table() {
  if (cpu_supports_avx2()) return detail::avx2_table();
  return detail::neon_table();  // null off-aarch64
}

const KernelTable& dispatch_once() {
  if (force_scalar_requested()) return scalar_kernels();
  if (const KernelTable* simd = best_simd_table()) return *simd;
  return scalar_kernels();
}

/// Shared by both fused entry points: shape checks + the pass-1 residual
/// add + sums.
SumStats add_and_sum(const KernelTable& kernels, std::span<float> h,
                     std::span<const float> residual,
                     std::span<const float> alpha, std::span<const float> beta,
                     std::span<const float> out) {
  HAAN_EXPECTS(!h.empty());
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(alpha.empty() || alpha.size() == h.size());
  HAAN_EXPECTS(beta.empty() || beta.size() == h.size());
  if (residual.empty()) return kernels.stats(h.data(), h.size());
  HAAN_EXPECTS(residual.size() == h.size());
  return kernels.residual_add_stats(h.data(), residual.data(), h.size());
}

const float* data_or_null(std::span<const float> s) {
  return s.empty() ? nullptr : s.data();
}

}  // namespace

bool force_scalar_requested() {
  const char* env = std::getenv("HAAN_FORCE_SCALAR");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const KernelTable& active() {
  static const KernelTable& table = dispatch_once();
  return table;
}

const char* active_name() { return active().name; }

std::vector<const KernelTable*> supported_kernels() {
  std::vector<const KernelTable*> tables{&scalar_kernels()};
  if (const KernelTable* simd = best_simd_table()) tables.push_back(simd);
  return tables;
}

void residual_add_rmsnorm(const KernelTable& kernels, std::span<float> h,
                          std::span<const float> residual,
                          std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out,
                          double eps) {
  const SumStats sums = add_and_sum(kernels, h, residual, alpha, beta, out);
  const double n = static_cast<double>(h.size());
  // Matches tensor::rmsnorm: rms is materialized before being squared again,
  // so the scalar path rounds identically to the seed reference.
  const double rms = std::sqrt(sums.sum_sq / n);
  const double isd = 1.0 / std::sqrt(rms * rms + eps);
  kernels.normalize_affine(h.data(), h.size(), 0.0, isd, data_or_null(alpha),
                           data_or_null(beta), out.data());
}

void residual_add_rmsnorm(std::span<float> h, std::span<const float> residual,
                          std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out,
                          double eps) {
  residual_add_rmsnorm(active(), h, residual, alpha, beta, out, eps);
}

void residual_add_layernorm(const KernelTable& kernels, std::span<float> h,
                            std::span<const float> residual,
                            std::span<const float> alpha,
                            std::span<const float> beta, std::span<float> out,
                            double eps) {
  const SumStats sums = add_and_sum(kernels, h, residual, alpha, beta, out);
  const double n = static_cast<double>(h.size());
  const double mean = sums.sum / n;
  // Two-pass variance, like tensor::exact_stats, to avoid E[x^2] - E[x]^2
  // cancellation in the reference path.
  const double variance =
      kernels.centered_sum_sq(h.data(), h.size(), mean) / n;
  const double isd = 1.0 / std::sqrt(variance + eps);
  kernels.normalize_affine(h.data(), h.size(), mean, isd, data_or_null(alpha),
                           data_or_null(beta), out.data());
}

void residual_add_layernorm(std::span<float> h, std::span<const float> residual,
                            std::span<const float> alpha,
                            std::span<const float> beta, std::span<float> out,
                            double eps) {
  residual_add_layernorm(active(), h, residual, alpha, beta, out, eps);
}

SumStats stats(std::span<const float> z) {
  HAAN_EXPECTS(!z.empty());
  return active().stats(z.data(), z.size());
}

void residual_add(std::span<float> h, std::span<const float> residual) {
  HAAN_EXPECTS(residual.size() == h.size());
  if (h.empty()) return;
  active().residual_add(h.data(), residual.data(), h.size());
}

void quantize_dequantize_span(std::span<float> values,
                              numerics::NumericFormat format, float scale) {
  if (values.empty() || format == numerics::NumericFormat::kFP32) return;
  if (format == numerics::NumericFormat::kINT8) HAAN_EXPECTS(scale > 0.0f);
  active().quantize_dequantize(values.data(), values.size(), format, scale);
}

}  // namespace haan::kernels
