// Dispatcher and fused span-level entry points. This translation unit is
// compiled with baseline flags only: the CPU feature check happens here,
// before any backend code (compiled with ISA flags) can execute.
#include "kernels/kernels.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "kernels/backends.hpp"

namespace haan::kernels {
namespace {

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

/// The AVX-512 table when both the build and the CPU can run it (the TU
/// compiles to a null stub when the compiler lacks the ISA flags).
const KernelTable* runnable_avx512_table() {
  const KernelTable* table = detail::avx512_table();
  return table != nullptr && cpu_supports_avx512() ? table : nullptr;
}

const KernelTable* runnable_avx2_table() {
  return cpu_supports_avx2() ? detail::avx2_table() : nullptr;
}

const KernelTable* best_simd_table() {
  if (const KernelTable* avx512 = runnable_avx512_table()) return avx512;
  if (const KernelTable* avx2 = runnable_avx2_table()) return avx2;
  return detail::neon_table();  // null off-aarch64
}

const KernelTable& dispatch_once() {
  const KernelTable* chosen = nullptr;
  if (force_scalar_requested()) {
    chosen = &scalar_kernels();
  } else if (const KernelTable* simd = best_simd_table()) {
    chosen = simd;
  } else {
    chosen = &scalar_kernels();
  }
  HAAN_LOG_INFO_C("kernels")
      << "dispatch: " << chosen->name << " backend selected"
      << (force_scalar_requested() ? " (HAAN_FORCE_SCALAR)" : "");
  return *chosen;
}

/// Shared by both fused entry points: shape checks + the pass-1 residual
/// add + sums.
SumStats add_and_sum(const KernelTable& kernels, std::span<float> h,
                     std::span<const float> residual,
                     std::span<const float> alpha, std::span<const float> beta,
                     std::span<const float> out) {
  HAAN_EXPECTS(!h.empty());
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(alpha.empty() || alpha.size() == h.size());
  HAAN_EXPECTS(beta.empty() || beta.size() == h.size());
  if (residual.empty()) return kernels.stats(h.data(), h.size());
  HAAN_EXPECTS(residual.size() == h.size());
  return kernels.residual_add_stats(h.data(), residual.data(), h.size());
}

}  // namespace

bool force_scalar_requested() {
  const char* env = std::getenv("HAAN_FORCE_SCALAR");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const KernelTable& active() {
  static const KernelTable& table = dispatch_once();
  return table;
}

const char* active_name() { return active().name; }

std::vector<const KernelTable*> supported_kernels() {
  std::vector<const KernelTable*> tables{&scalar_kernels()};
  // Both x86 families when runnable (not just the widest): parity tests keep
  // covering AVX2 on AVX-512 machines, and the autotuner may legitimately
  // prefer the narrower family on downclock-prone parts.
  if (const KernelTable* avx2 = runnable_avx2_table()) tables.push_back(avx2);
  if (const KernelTable* avx512 = runnable_avx512_table()) {
    tables.push_back(avx512);
  }
  if (const KernelTable* neon = detail::neon_table()) tables.push_back(neon);
  return tables;
}

std::vector<const KernelTable*> supported_kernel_variants() {
  std::vector<const KernelTable*> tables = supported_kernels();
  if (runnable_avx2_table() != nullptr) {
    for (const KernelTable* t : detail::avx2_variant_tables()) {
      tables.push_back(t);
    }
  }
  if (runnable_avx512_table() != nullptr) {
    for (const KernelTable* t : detail::avx512_variant_tables()) {
      tables.push_back(t);
    }
  }
  return tables;
}

const KernelTable* find_kernel_table(std::string_view name) {
  for (const KernelTable* table : supported_kernel_variants()) {
    if (name == table->name) return table;
  }
  return nullptr;
}

void residual_add_rmsnorm(const KernelTable& kernels, std::span<float> h,
                          std::span<const float> residual,
                          std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out,
                          double eps) {
  const SumStats sums = add_and_sum(kernels, h, residual, alpha, beta, out);
  const double n = static_cast<double>(h.size());
  // Matches tensor::rmsnorm: rms is materialized before being squared again,
  // so the scalar path rounds identically to the seed reference.
  const double rms = std::sqrt(sums.sum_sq / n);
  const double isd = 1.0 / std::sqrt(rms * rms + eps);
  kernels.normalize_affine(h.data(), h.size(), 0.0, isd, data_or_null(alpha),
                           data_or_null(beta), out.data());
}

void residual_add_rmsnorm(std::span<float> h, std::span<const float> residual,
                          std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out,
                          double eps) {
  residual_add_rmsnorm(active(), h, residual, alpha, beta, out, eps);
}

void residual_add_layernorm(const KernelTable& kernels, std::span<float> h,
                            std::span<const float> residual,
                            std::span<const float> alpha,
                            std::span<const float> beta, std::span<float> out,
                            double eps) {
  const SumStats sums = add_and_sum(kernels, h, residual, alpha, beta, out);
  const double n = static_cast<double>(h.size());
  const double mean = sums.sum / n;
  // Two-pass variance, like tensor::exact_stats, to avoid E[x^2] - E[x]^2
  // cancellation in the reference path.
  const double variance =
      kernels.centered_sum_sq(h.data(), h.size(), mean) / n;
  const double isd = 1.0 / std::sqrt(variance + eps);
  kernels.normalize_affine(h.data(), h.size(), mean, isd, data_or_null(alpha),
                           data_or_null(beta), out.data());
}

void residual_add_layernorm(std::span<float> h, std::span<const float> residual,
                            std::span<const float> alpha,
                            std::span<const float> beta, std::span<float> out,
                            double eps) {
  residual_add_layernorm(active(), h, residual, alpha, beta, out, eps);
}

namespace {

/// Shared by the row-block fused entry points: shape checks, scratch sizing,
/// and the pass-1 residual add + per-row sums (full-row statistics).
void add_and_sum_rows(const KernelTable& kernels, std::size_t rows,
                      std::span<float> h, std::span<const float> residual,
                      std::span<const float> alpha, std::span<const float> beta,
                      std::span<const float> out, RowNormWorkspace& ws) {
  HAAN_EXPECTS(rows > 0);
  HAAN_EXPECTS(!h.empty() && h.size() % rows == 0);
  const std::size_t d = h.size() / rows;
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(alpha.empty() || alpha.size() == d);
  HAAN_EXPECTS(beta.empty() || beta.size() == d);
  ws.stats.resize(rows);
  ws.mean.resize(rows);
  ws.isd.resize(rows);
  if (residual.empty()) {
    kernels.stats_rows(h.data(), rows, d, d, ws.stats.data());
    return;
  }
  HAAN_EXPECTS(residual.size() == h.size());
  kernels.residual_add_stats_rows(h.data(), residual.data(), rows, d, d,
                                  ws.stats.data());
}

}  // namespace

void residual_add_rmsnorm_rows(const KernelTable& kernels, std::size_t rows,
                               std::span<float> h,
                               std::span<const float> residual,
                               std::span<const float> alpha,
                               std::span<const float> beta, std::span<float> out,
                               double eps, RowNormWorkspace& ws) {
  add_and_sum_rows(kernels, rows, h, residual, alpha, beta, out, ws);
  const std::size_t d = h.size() / rows;
  const double n = static_cast<double>(d);
  for (std::size_t r = 0; r < rows; ++r) {
    // Same rounding points as the per-row entry point: rms is materialized
    // before being squared again.
    const double rms = std::sqrt(ws.stats[r].sum_sq / n);
    ws.mean[r] = 0.0;
    ws.isd[r] = 1.0 / std::sqrt(rms * rms + eps);
  }
  kernels.normalize_affine_rows(h.data(), rows, d, ws.mean.data(),
                                ws.isd.data(), data_or_null(alpha),
                                data_or_null(beta), out.data(),
                                /*saturate=*/false);
}

void residual_add_rmsnorm_rows(std::size_t rows, std::span<float> h,
                               std::span<const float> residual,
                               std::span<const float> alpha,
                               std::span<const float> beta, std::span<float> out,
                               double eps, RowNormWorkspace& ws) {
  residual_add_rmsnorm_rows(active(), rows, h, residual, alpha, beta, out, eps,
                            ws);
}

void residual_add_layernorm_rows(const KernelTable& kernels, std::size_t rows,
                                 std::span<float> h,
                                 std::span<const float> residual,
                                 std::span<const float> alpha,
                                 std::span<const float> beta,
                                 std::span<float> out, double eps,
                                 RowNormWorkspace& ws) {
  add_and_sum_rows(kernels, rows, h, residual, alpha, beta, out, ws);
  const std::size_t d = h.size() / rows;
  const double n = static_cast<double>(d);
  for (std::size_t r = 0; r < rows; ++r) {
    ws.mean[r] = ws.stats[r].sum / n;
  }
  // Two-pass variance per row, reusing ws.isd as the centered-moment scratch.
  kernels.centered_sum_sq_rows(h.data(), rows, d, d, ws.mean.data(),
                               ws.isd.data());
  for (std::size_t r = 0; r < rows; ++r) {
    const double variance = ws.isd[r] / n;
    ws.isd[r] = 1.0 / std::sqrt(variance + eps);
  }
  kernels.normalize_affine_rows(h.data(), rows, d, ws.mean.data(),
                                ws.isd.data(), data_or_null(alpha),
                                data_or_null(beta), out.data(),
                                /*saturate=*/false);
}

void residual_add_layernorm_rows(std::size_t rows, std::span<float> h,
                                 std::span<const float> residual,
                                 std::span<const float> alpha,
                                 std::span<const float> beta,
                                 std::span<float> out, double eps,
                                 RowNormWorkspace& ws) {
  residual_add_layernorm_rows(active(), rows, h, residual, alpha, beta, out,
                              eps, ws);
}

SumStats stats(std::span<const float> z) {
  HAAN_EXPECTS(!z.empty());
  return active().stats(z.data(), z.size());
}

void residual_add(std::span<float> h, std::span<const float> residual) {
  HAAN_EXPECTS(residual.size() == h.size());
  if (h.empty()) return;
  active().residual_add(h.data(), residual.data(), h.size());
}

void quantize_dequantize_span(std::span<float> values,
                              numerics::NumericFormat format, float scale) {
  quantize_dequantize_span(active(), values, format, scale);
}

void quantize_dequantize_span(const KernelTable& kernels,
                              std::span<float> values,
                              numerics::NumericFormat format, float scale) {
  if (values.empty() || format == numerics::NumericFormat::kFP32) return;
  if (format == numerics::NumericFormat::kINT8) HAAN_EXPECTS(scale > 0.0f);
  kernels.quantize_dequantize(values.data(), values.size(), format, scale);
}

}  // namespace haan::kernels
