// Runtime-dispatched normalization kernels: the vectorized hot loops behind
// every norm in the repo. One KernelTable per backend (portable scalar, AVX2,
// NEON); dispatch picks the widest backend the CPU supports once at first use,
// with `HAAN_FORCE_SCALAR=1` forcing the scalar reference.
//
// The scalar backend is the semantic reference: it reproduces the seed
// `tensor::norm_ref` / `core::subsample` arithmetic bit for bit (same
// accumulation order, same double intermediates, same float rounding points).
// SIMD backends are tested against it under the per-kernel tolerance contract
// documented on each KernelTable entry.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <span>
#include <string_view>
#include <vector>

#include "numerics/formats.hpp"

namespace haan::kernels {

/// Raw sums from one pass over the data, double accumulators:
///   sum = Σ z[i],  sum_sq = Σ z[i]^2.
struct SumStats {
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// One backend's kernel set. All pointers are non-null; alpha/beta may be
/// null (identity). Spans must not alias except where noted.
///
/// Tolerance contract (SIMD vs the scalar reference, per kernel):
///   stats / residual_add_stats / centered_sum_sq
///     Reassociated accumulation: |Δsum| <= 1e-12 * Σ|z|, |Δsum_sq| <=
///     1e-12 * Σ z^2 (and likewise for the centered moment). The updated `h`
///     of residual_add_stats is bit-identical (the float adds are elementwise).
///   residual_add / residual_add_copy
///     Bit-identical: elementwise float adds in both backends.
///   normalize_affine
///     Elementwise with double intermediates; results within 1 ulp of scalar.
///     All kernel TUs are built with -ffp-contract=off (see CMakeLists) so
///     the affine multiply-add rounds identically everywhere; without it, a
///     backend whose ISA has FMA could contract its tail loops and diverge
///     arbitrarily under cancellation.
///   quantize_dequantize
///     FP32/INT8/BF16: bit-identical for every input including NaN. FP16:
///     bit-identical for all non-NaN inputs; NaN stays NaN but the payload
///     bits may differ (both backends produce a quiet NaN).
struct KernelTable {
  /// Backend family ("scalar", "avx2", "avx512", "neon") or a row-block
  /// variant of one ("avx512-nt", "avx2-pf", ...; see
  /// supported_kernel_variants()).
  const char* name;

  /// Sum and sum of squares of z[0..n).
  SumStats (*stats)(const float* z, std::size_t n);

  /// Σ (z[i] - mean)^2 over z[0..n), double accumulation.
  double (*centered_sum_sq)(const float* z, std::size_t n, double mean);

  /// h[i] += residual[i].
  void (*residual_add)(float* h, const float* residual, std::size_t n);

  /// h[i] += residual[i]; dst[i] = h[i] — one pass feeding a scratch buffer.
  void (*residual_add_copy)(float* h, const float* residual, float* dst,
                            std::size_t n);

  /// Fused residual add + statistics: h[i] += residual[i], returning the
  /// SumStats of the updated h in the same pass.
  SumStats (*residual_add_stats)(float* h, const float* residual, std::size_t n);

  /// out[i] = (float)((z[i] - mean) * isd), then out[i] *= alpha[i] (when
  /// alpha != nullptr) and out[i] += beta[i] (when beta != nullptr), all in
  /// float. Pass mean = 0.0 for the RMSNorm flavour. out may alias z.
  void (*normalize_affine)(const float* z, std::size_t n, double mean,
                           double isd, const float* alpha, const float* beta,
                           float* out);

  /// Elementwise numerics::quantize_dequantize over values[0..n).
  void (*quantize_dequantize)(float* values, std::size_t n,
                              numerics::NumericFormat format, float scale);

  // --- Row-block kernels -----------------------------------------------
  // One call per norm *layer* instead of one per token row: the backend loops
  // the rows internally (no per-row dispatch), reading a contiguous row-major
  // block. Each row is processed with exactly the per-row kernel's arithmetic,
  // so for a given backend the row-block kernels are bit-identical to looping
  // the per-row entries; the scalar/SIMD tolerance contract above carries
  // over per row unchanged.

  /// out[r] = stats of x[r*stride .. r*stride + n) for r in [0, rows).
  /// n <= stride selects a subsampled prefix of each row (HAAN Nsub).
  void (*stats_rows)(const float* x, std::size_t rows, std::size_t stride,
                     std::size_t n, SumStats* out);

  /// out[r] = Σ (x[r*stride + i] - mean[r])^2 over i in [0, n).
  void (*centered_sum_sq_rows)(const float* x, std::size_t rows,
                               std::size_t stride, std::size_t n,
                               const double* mean, double* out);

  /// h[r][i] += residual[r][i] for every element of the (rows x d) block;
  /// out[r] = stats of the first `nstats` updated elements of row r. The
  /// updated h is bit-identical to residual_add; the per-row stats are
  /// bit-identical to stats() over the updated prefix.
  void (*residual_add_stats_rows)(float* h, const float* residual,
                                  std::size_t rows, std::size_t d,
                                  std::size_t nstats, SumStats* out);

  /// Per-row normalize+affine with per-row mean/isd:
  ///   out[r][i] = (float)((x[r][i] - mean[r]) * isd[r]) (*alpha[i], +beta[i]).
  /// When `saturate` is set, each element is then clamped to the HAAN
  /// datapath's FP16 I/O range (NaN -> 0, clamp to +/-65504) — bit-identical
  /// to a separate clamp pass over the same values.
  void (*normalize_affine_rows)(const float* x, std::size_t rows, std::size_t d,
                                const double* mean, const double* isd,
                                const float* alpha, const float* beta,
                                float* out, bool saturate);

  /// Per-row quantize-dequantize over a (rows x d) block; scales[r] is the
  /// INT8 scale of row r (ignored by the float formats).
  void (*quantize_dequantize_rows)(float* x, std::size_t rows, std::size_t d,
                                   numerics::NumericFormat format,
                                   const float* scales);
};

/// Maps an empty span to the nullptr the kernel tables use for "no affine
/// parameter"; shared by every layer that bridges spans to raw kernels.
inline const float* data_or_null(std::span<const float> s) {
  return s.empty() ? nullptr : s.data();
}

/// The portable scalar backend (always available; the bit-exact reference).
const KernelTable& scalar_kernels();

/// The backend selected for this process: the widest SIMD backend the CPU
/// supports, or scalar when HAAN_FORCE_SCALAR=1 is set in the environment.
/// The choice is made once, at the first call, and cached.
const KernelTable& active();

/// active().name — for logs, bench reports and serve configs.
const char* active_name();

/// Every backend *family* this build + CPU can run (scalar first, then
/// ascending SIMD width). Parity tests and benches iterate this list; it
/// ignores HAAN_FORCE_SCALAR.
std::vector<const KernelTable*> supported_kernels();

/// Every runnable kernel table including the row-block variants
/// ("avx2-pf", "avx512-nt", ...): the families of supported_kernels() plus
/// each family's streaming-store / prefetch variants. Variants are
/// value-identical to their base family (cache placement and latency hints
/// only); they are the autotuner's candidate set and the variant parity
/// tests' iteration list.
std::vector<const KernelTable*> supported_kernel_variants();

/// Looks a table up by exact name among supported_kernel_variants(); null
/// when the name is unknown or not runnable on this CPU. Used to resolve
/// autotune cache entries.
const KernelTable* find_kernel_table(std::string_view name);

/// True when the HAAN_FORCE_SCALAR environment variable requests the scalar
/// backend (set, non-empty, and not "0"). Read afresh on every call; note
/// active() caches its first answer.
bool force_scalar_requested();

// ---------------------------------------------------------------------------
// Span-level fused entry points. Each takes the backend explicitly (for tests
// and benches) and has an active()-dispatched overload (for production code).
// ---------------------------------------------------------------------------

/// Fused residual-add + RMSNorm: h[i] += residual[i] (in place; skipped when
/// `residual` is empty), then out = alpha * (h * isd) + beta with
/// isd = 1 / sqrt(rms^2 + eps), rms = sqrt(mean(h^2)). Scalar dispatch is
/// bit-identical to tensor::add_inplace + tensor::rmsnorm on the same data.
void residual_add_rmsnorm(const KernelTable& kernels, std::span<float> h,
                          std::span<const float> residual,
                          std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out,
                          double eps);
void residual_add_rmsnorm(std::span<float> h, std::span<const float> residual,
                          std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out,
                          double eps);

/// Fused residual-add + LayerNorm, two-pass variance like the seed reference:
/// pass 1 adds the residual and accumulates the sums, pass 2 computes the
/// centered second moment, pass 3 normalizes with the affine parameters.
void residual_add_layernorm(const KernelTable& kernels, std::span<float> h,
                            std::span<const float> residual,
                            std::span<const float> alpha,
                            std::span<const float> beta, std::span<float> out,
                            double eps);
void residual_add_layernorm(std::span<float> h, std::span<const float> residual,
                            std::span<const float> alpha,
                            std::span<const float> beta, std::span<float> out,
                            double eps);

// ---------------------------------------------------------------------------
// Row-block fused entry points: one call normalizes a whole contiguous
// (rows x d) block, hoisting the per-layer bookkeeping (shape checks, eps
// math, scratch sizing) out of the row loop. For a given backend the results
// are bit-identical to calling the per-row fused entry point on each row.
// ---------------------------------------------------------------------------

/// Reusable scratch for the row-block fused norms; hold one per thread and
/// pass it to every call so no allocation happens on the hot path. Construct
/// with a memory resource (e.g. a provider's node-local mem::Arena) to place
/// the scratch explicitly; default-constructed workspaces use the heap, whose
/// pages land on the first-touching thread's node anyway when that thread is
/// pinned.
struct RowNormWorkspace {
  RowNormWorkspace() = default;
  explicit RowNormWorkspace(std::pmr::memory_resource* resource)
      : stats(resource), mean(resource), isd(resource) {}

  std::pmr::vector<SumStats> stats;
  std::pmr::vector<double> mean;
  std::pmr::vector<double> isd;
};

/// Row-block fused residual-add + RMSNorm over a contiguous (rows x d) block:
/// h[r] += residual[r] in place (skipped when `residual` is empty), then
/// out[r] = alpha * (h[r] * isd_r) + beta per row. Bit-identical to calling
/// residual_add_rmsnorm(kernels, ...) on each row.
void residual_add_rmsnorm_rows(const KernelTable& kernels, std::size_t rows,
                               std::span<float> h,
                               std::span<const float> residual,
                               std::span<const float> alpha,
                               std::span<const float> beta, std::span<float> out,
                               double eps, RowNormWorkspace& ws);
void residual_add_rmsnorm_rows(std::size_t rows, std::span<float> h,
                               std::span<const float> residual,
                               std::span<const float> alpha,
                               std::span<const float> beta, std::span<float> out,
                               double eps, RowNormWorkspace& ws);

/// Row-block fused residual-add + LayerNorm (two-pass per-row variance, like
/// the per-row entry point). Bit-identical to the per-row loop.
void residual_add_layernorm_rows(const KernelTable& kernels, std::size_t rows,
                                 std::span<float> h,
                                 std::span<const float> residual,
                                 std::span<const float> alpha,
                                 std::span<const float> beta,
                                 std::span<float> out, double eps,
                                 RowNormWorkspace& ws);
void residual_add_layernorm_rows(std::size_t rows, std::span<float> h,
                                 std::span<const float> residual,
                                 std::span<const float> alpha,
                                 std::span<const float> beta,
                                 std::span<float> out, double eps,
                                 RowNormWorkspace& ws);

/// Vectorized sum / sum-of-squares reduction over the active backend.
SumStats stats(std::span<const float> z);

/// h += residual over the active backend.
void residual_add(std::span<float> h, std::span<const float> residual);

/// Elementwise quantize-dequantize over the active backend (or an explicit
/// table, for providers threading an autotuned backend).
void quantize_dequantize_span(std::span<float> values,
                              numerics::NumericFormat format,
                              float scale = 1.0f);
void quantize_dequantize_span(const KernelTable& kernels,
                              std::span<float> values,
                              numerics::NumericFormat format,
                              float scale = 1.0f);

}  // namespace haan::kernels
