// Autotuner implementation. Compiled with baseline flags: candidate tables
// come from the dispatcher's runnable set, so no ISA-specific code executes
// here beyond indirect calls through already-vetted function pointers.
#include "kernels/autotune.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "common/json_lite.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace haan::kernels {
namespace {

/// Row-block sizes the tuner scores each candidate on: a decode-sized block,
/// a mid prefill chunk, and a large prefill/packed batch. The winner must not
/// regress the static dispatch on ANY tile (max-min rule below), so the one
/// table chosen per d is safe across the serve stack's block sizes.
constexpr std::size_t kTileRows[] = {8, 64, 256};

/// A candidate must beat static dispatch by this factor on its WORST tile to
/// displace it — guards against single-core timer noise flipping the choice.
constexpr double kWinMargin = 1.02;

constexpr int kCacheVersion = 1;

std::mutex& mutex() {
  static std::mutex m;
  return m;
}

std::map<std::size_t, AutotuneChoice>& choices() {
  static std::map<std::size_t, AutotuneChoice> c;
  return c;
}

std::string& cache_path_override() {
  static std::string path;
  return path;
}

/// The CPU identity the cache is keyed on: the runnable backend families.
/// A cache produced on an AVX-512 machine is invalid on an AVX2-only one
/// (the tuned table may not exist there) and vice versa (a wider machine
/// should re-tune with the extra candidates).
std::string cpu_key() {
  std::string key;
  for (const KernelTable* table : supported_kernels()) {
    if (!key.empty()) key += '+';
    key += table->name;
  }
  return key;
}

const char* mode_name(AutotuneMode mode) {
  switch (mode) {
    case AutotuneMode::kOff: return "off";
    case AutotuneMode::kFull: return "full";
    case AutotuneMode::kSafe: break;
  }
  return "safe";
}

AutotuneChoice static_choice(std::size_t d) {
  AutotuneChoice choice;
  // Re-check the scalar override here rather than relying on active():
  // active() caches its first answer, so a HAAN_FORCE_SCALAR set after some
  // earlier dispatch (tests, embedding hosts) would otherwise be ignored by
  // the tuner even though the contract says it wins over everything.
  choice.table = force_scalar_requested() ? &scalar_kernels() : &active();
  choice.d = d;
  choice.source = AutotuneChoice::Source::kStatic;
  return choice;
}

/// True when `name` is `family` itself or a variant of it ("avx2-pf" is a
/// variant of "avx2" but not of "avx512").
bool in_family(std::string_view name, std::string_view family) {
  if (name == family) return true;
  return name.size() > family.size() + 1 &&
         name.substr(0, family.size()) == family &&
         name[family.size()] == '-';
}

// ---------------------------------------------------------------------------
// Cache file I/O. The cache is one JSON object:
//   {"version": 1, "cpu": "scalar+avx2+avx512", "mode": "safe",
//    "entries": [{"d": 4096, "table": "avx512-pf", "rows_tile": 256,
//                 "ns_per_row": 118.2}, ...]}
// Any mismatch (version, cpu, mode, unknown table name, parse failure) makes
// the affected entry — or the whole file — silently unusable: the tuner
// re-measures and rewrites. A stale or corrupt cache can cost a re-tune but
// never an error or a wrong-ISA table.
// ---------------------------------------------------------------------------

/// Parses the cache file if it matches this process (version/cpu/mode).
std::optional<common::Json> load_matching_cache(const std::string& path,
                                                AutotuneMode mode) {
  const std::optional<std::string> text = common::read_file(path);
  if (!text) return std::nullopt;
  std::optional<common::Json> doc = common::Json::parse(*text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const common::Json* version = doc->find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kCacheVersion) {
    return std::nullopt;
  }
  const common::Json* cpu = doc->find("cpu");
  if (cpu == nullptr || !cpu->is_string() || cpu->as_string() != cpu_key()) {
    return std::nullopt;
  }
  const common::Json* cache_mode = doc->find("mode");
  if (cache_mode == nullptr || !cache_mode->is_string() ||
      cache_mode->as_string() != mode_name(mode)) {
    return std::nullopt;
  }
  if (const common::Json* entries = doc->find("entries");
      entries == nullptr || !entries->is_array()) {
    return std::nullopt;
  }
  return doc;
}

/// Looks up the entry for width d; returns a usable choice or nullopt. The
/// table name must resolve among the candidates the current mode would have
/// considered — a "full"-mode table never leaks into a "safe"-mode run.
std::optional<AutotuneChoice> choice_from_cache(const common::Json& doc,
                                                std::size_t d) {
  for (const common::Json& entry : doc.find("entries")->as_array()) {
    const common::Json* entry_d = entry.find("d");
    if (entry_d == nullptr || !entry_d->is_number() ||
        static_cast<std::size_t>(entry_d->as_number()) != d) {
      continue;
    }
    const common::Json* name = entry.find("table");
    if (name == nullptr || !name->is_string()) return std::nullopt;
    const std::vector<const KernelTable*> candidates = autotune_candidates();
    const auto it = std::find_if(
        candidates.begin(), candidates.end(),
        [&](const KernelTable* t) { return name->as_string() == t->name; });
    if (it == candidates.end()) return std::nullopt;
    AutotuneChoice choice;
    choice.table = *it;
    choice.d = d;
    choice.source = AutotuneChoice::Source::kCache;
    choice.cache_hit = true;
    if (const common::Json* rows = entry.find("rows_tile");
        rows != nullptr && rows->is_number()) {
      choice.rows_tile = static_cast<std::size_t>(rows->as_number());
    }
    if (const common::Json* ns = entry.find("ns_per_row");
        ns != nullptr && ns->is_number()) {
      choice.ns_per_row = ns->as_number();
    }
    return choice;
  }
  return std::nullopt;
}

/// Merges `choice` into the cache file (read-modify-write; creates the file
/// when absent or unusable). Write failures are logged and otherwise ignored.
void persist_choice(const std::string& path, AutotuneMode mode,
                    const AutotuneChoice& choice) {
  common::Json::Array entries;
  if (std::optional<common::Json> doc = load_matching_cache(path, mode)) {
    for (const common::Json& entry : doc->find("entries")->as_array()) {
      const common::Json* entry_d = entry.find("d");
      if (entry_d != nullptr && entry_d->is_number() &&
          static_cast<std::size_t>(entry_d->as_number()) == choice.d) {
        continue;  // replaced below
      }
      entries.push_back(entry);
    }
  }
  common::Json::Object entry;
  entry["d"] = choice.d;
  entry["table"] = std::string(choice.table->name);
  entry["rows_tile"] = choice.rows_tile;
  entry["ns_per_row"] = choice.ns_per_row;
  entries.push_back(common::Json(std::move(entry)));

  common::Json::Object doc;
  doc["version"] = kCacheVersion;
  doc["cpu"] = cpu_key();
  doc["mode"] = std::string(mode_name(mode));
  doc["entries"] = common::Json(std::move(entries));
  if (!common::write_file(path, common::Json(std::move(doc)).dump_pretty())) {
    HAAN_LOG_WARN_C("kernels")
        << "autotune: failed to write cache " << path;
  }
}

// ---------------------------------------------------------------------------
// Measurement + selection.
// ---------------------------------------------------------------------------

/// Measures every candidate over every tile and applies the max-min rule:
/// score(candidate) = min over tiles of static_ns / candidate_ns, winner =
/// argmax score, and the winner must clear kWinMargin — so the chosen table
/// is at least as fast as static dispatch on EVERY tile (the bench --tune
/// gate relies on this invariant).
AutotuneChoice measure_choice(std::size_t d) {
  const std::vector<const KernelTable*> candidates = autotune_candidates();
  HAAN_EXPECTS(!candidates.empty() && candidates.front() == &active());

  std::vector<std::vector<double>> ns(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    for (const std::size_t rows : kTileRows) {
      ns[c].push_back(measure_rows_ns_per_row(*candidates[c], d, rows));
    }
  }

  std::size_t best = 0;  // index 0 is static dispatch (score 1.0)
  double best_score = 1.0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    double score = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < std::size(kTileRows); ++t) {
      score = std::min(score, ns[0][t] / ns[c][t]);
    }
    if (score > best_score && score > kWinMargin) {
      best_score = score;
      best = c;
    }
  }

  AutotuneChoice choice;
  choice.table = candidates[best];
  choice.d = d;
  choice.source = AutotuneChoice::Source::kMeasured;
  double best_ratio = 0.0;
  for (std::size_t t = 0; t < std::size(kTileRows); ++t) {
    AutotuneTile tile;
    tile.rows = kTileRows[t];
    tile.static_ns_per_row = ns[0][t];
    tile.tuned_ns_per_row = ns[best][t];
    choice.tiles.push_back(tile);
    const double ratio = ns[0][t] / ns[best][t];
    if (ratio > best_ratio) {
      best_ratio = ratio;
      choice.rows_tile = kTileRows[t];
      choice.ns_per_row = ns[best][t];
    }
  }
  return choice;
}

AutotuneChoice decide(std::size_t d) {
  if (!autotune_enabled()) return static_choice(d);
  const AutotuneMode mode = autotune_mode();
  const std::string path = autotune_cache_path();
  if (!path.empty()) {
    if (std::optional<common::Json> doc = load_matching_cache(path, mode)) {
      if (std::optional<AutotuneChoice> cached = choice_from_cache(*doc, d)) {
        return *std::move(cached);
      }
    }
  }
  AutotuneChoice choice = measure_choice(d);
  if (!path.empty()) persist_choice(path, mode, choice);
  return choice;
}

}  // namespace

const char* to_string(AutotuneChoice::Source source) {
  switch (source) {
    case AutotuneChoice::Source::kMeasured: return "measured";
    case AutotuneChoice::Source::kCache: return "cache";
    case AutotuneChoice::Source::kStatic: break;
  }
  return "static";
}

AutotuneMode autotune_mode() {
  const char* env = std::getenv("HAAN_AUTOTUNE");
  if (env == nullptr || env[0] == '\0') return AutotuneMode::kSafe;
  if (env[0] == '0' && env[1] == '\0') return AutotuneMode::kOff;
  if (env[0] == '1' && env[1] == '\0') return AutotuneMode::kFull;
  return AutotuneMode::kSafe;
}

bool autotune_enabled() {
  return autotune_mode() != AutotuneMode::kOff && !force_scalar_requested();
}

std::vector<const KernelTable*> autotune_candidates() {
  std::vector<const KernelTable*> candidates{&active()};
  if (!autotune_enabled()) return candidates;
  const AutotuneMode mode = autotune_mode();
  for (const KernelTable* table : supported_kernel_variants()) {
    if (table == &active()) continue;
    if (std::string_view(table->name) == "scalar") continue;
    if (mode == AutotuneMode::kSafe &&
        !in_family(table->name, active().name)) {
      continue;
    }
    candidates.push_back(table);
  }
  return candidates;
}

double measure_rows_ns_per_row(const KernelTable& table, std::size_t d,
                               std::size_t rows, int reps) {
  HAAN_EXPECTS(d > 0 && rows > 0 && reps > 0);
  const std::size_t n = rows * d;
  std::vector<float> h(n), residual(n), out(n);
  std::vector<float> alpha(d), beta(d);
  common::Rng rng(0x7a11e5);
  rng.fill_gaussian(h, 0.0, 1.0);
  rng.fill_gaussian(residual, 0.0, 1.0);
  rng.fill_gaussian(alpha, 1.0, 0.05);
  rng.fill_gaussian(beta, 0.0, 0.05);
  RowNormWorkspace ws;
  std::vector<SumStats> consume(rows);

  // Scale iterations so each repetition covers ~2M elements: long enough to
  // swamp clock granularity, short enough that startup tuning of a handful of
  // candidates stays in the low milliseconds per (d, rows) cell.
  const int iters = static_cast<int>(
      std::clamp<std::size_t>(2'000'000 / n, std::size_t{1}, std::size_t{64}));

  auto one_pass = [&] {
    residual_add_rmsnorm_rows(table, rows, std::span<float>(h),
                              std::span<const float>(residual),
                              std::span<const float>(alpha),
                              std::span<const float>(beta),
                              std::span<float>(out), 1e-5, ws);
    // Read the output back through the static backend (identical work for
    // every candidate): nontemporal stores bypass the cache, so a variant
    // only wins if its writeback saving beats the cost of re-reading from
    // memory — the serve pipeline always consumes what it normalizes.
    active().stats_rows(out.data(), rows, d, d, consume.data());
  };

  one_pass();  // warm-up: page faults, table init, branch history
  double best_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t start = common::monotonic_ns();
    for (int i = 0; i < iters; ++i) one_pass();
    const std::uint64_t stop = common::monotonic_ns();
    best_ns = std::min(best_ns, static_cast<double>(stop - start) /
                                    (static_cast<double>(iters) *
                                     static_cast<double>(rows)));
  }
  return best_ns;
}

void set_autotune_cache_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex());
  cache_path_override() = std::move(path);
}

std::string autotune_cache_path() {
  {
    const std::lock_guard<std::mutex> lock(mutex());
    if (!cache_path_override().empty()) return cache_path_override();
  }
  const char* env = std::getenv("HAAN_AUTOTUNE_CACHE");
  return env != nullptr ? std::string(env) : std::string();
}

const AutotuneChoice& tuned_for(std::size_t d) {
  HAAN_EXPECTS(d > 0);
  {
    const std::lock_guard<std::mutex> lock(mutex());
    if (const auto it = choices().find(d); it != choices().end()) {
      return it->second;
    }
  }
  // Decide outside the lock: measurement takes milliseconds and decide() never
  // touches choices(). Concurrent first calls for the same d race benignly —
  // the first insert wins and both measured the same candidates. The cache
  // path is resolved out here too: autotune_cache_path() takes the registry
  // mutex itself.
  AutotuneChoice choice = decide(d);
  const bool has_cache = !autotune_cache_path().empty();
  const std::lock_guard<std::mutex> lock(mutex());
  const auto [it, inserted] = choices().emplace(d, std::move(choice));
  if (inserted) {
    HAAN_LOG_INFO_C("kernels")
        << "autotune: d=" << d << " -> " << it->second.table->name
        << " (mode=" << mode_name(autotune_mode())
        << ", source=" << to_string(it->second.source)
        << (!has_cache ? ""
                       : (it->second.cache_hit ? ", cache hit" : ", cache miss"))
        << (it->second.rows_tile != 0
                ? ", rows_tile=" + std::to_string(it->second.rows_tile)
                : std::string())
        << ")";
  }
  return it->second;
}

const KernelTable& tuned_table(std::size_t d) { return *tuned_for(d).table; }

void reset_autotune_for_testing() {
  const std::lock_guard<std::mutex> lock(mutex());
  choices().clear();
  cache_path_override().clear();
}

}  // namespace haan::kernels
