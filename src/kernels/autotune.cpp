// Autotuner implementation. Compiled with baseline flags: candidate tables
// come from the dispatcher's runnable set, so no ISA-specific code executes
// here beyond indirect calls through already-vetted function pointers.
#include "kernels/autotune.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "common/json_lite.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "mem/arena.hpp"
#include "mem/topology.hpp"

namespace haan::kernels {
namespace {

/// Row-block sizes the tuner scores each candidate on: a decode-sized block,
/// a mid prefill chunk, and a large prefill/packed batch. The winner must not
/// regress the static dispatch on ANY tile (max-min rule below), so the one
/// table chosen per d is safe across the serve stack's block sizes.
constexpr std::size_t kTileRows[] = {8, 64, 256};

/// A candidate must beat static dispatch by this factor on its WORST tile to
/// displace it — guards against single-core timer noise flipping the choice.
constexpr double kWinMargin = 1.02;

constexpr int kCacheVersion = 1;

/// A remote node's CPU may stream a node-resident block up to this much
/// slower than a local CPU before cross-socket row chunks are judged a loss:
/// past ~25% the remote chunk becomes the partition's critical path and the
/// pool is better off staying within one node.
constexpr double kCrossNodeSlack = 1.25;

std::mutex& mutex() {
  static std::mutex m;
  return m;
}

std::map<std::size_t, AutotuneChoice>& choices() {
  static std::map<std::size_t, AutotuneChoice> c;
  return c;
}

std::string& cache_path_override() {
  static std::string path;
  return path;
}

/// The CPU identity the cache is keyed on: the runnable backend families.
/// A cache produced on an AVX-512 machine is invalid on an AVX2-only one
/// (the tuned table may not exist there) and vice versa (a wider machine
/// should re-tune with the extra candidates).
std::string cpu_key() {
  std::string key;
  for (const KernelTable* table : supported_kernels()) {
    if (!key.empty()) key += '+';
    key += table->name;
  }
  return key;
}

const char* mode_name(AutotuneMode mode) {
  switch (mode) {
    case AutotuneMode::kOff: return "off";
    case AutotuneMode::kFull: return "full";
    case AutotuneMode::kSafe: break;
  }
  return "safe";
}

AutotuneChoice static_choice(std::size_t d) {
  AutotuneChoice choice;
  // Re-check the scalar override here rather than relying on active():
  // active() caches its first answer, so a HAAN_FORCE_SCALAR set after some
  // earlier dispatch (tests, embedding hosts) would otherwise be ignored by
  // the tuner even though the contract says it wins over everything.
  choice.table = force_scalar_requested() ? &scalar_kernels() : &active();
  choice.d = d;
  choice.source = AutotuneChoice::Source::kStatic;
  return choice;
}

/// True when `name` is `family` itself or a variant of it ("avx2-pf" is a
/// variant of "avx2" but not of "avx512").
bool in_family(std::string_view name, std::string_view family) {
  if (name == family) return true;
  return name.size() > family.size() + 1 &&
         name.substr(0, family.size()) == family &&
         name[family.size()] == '-';
}

// ---------------------------------------------------------------------------
// Cache file I/O. The cache is one JSON object:
//   {"version": 1, "cpu": "scalar+avx2+avx512", "mode": "safe",
//    "entries": [{"d": 4096, "table": "avx512-pf", "rows_tile": 256,
//                 "ns_per_row": 118.2}, ...]}
// Any mismatch (version, cpu, mode, unknown table name, parse failure) makes
// the affected entry — or the whole file — silently unusable: the tuner
// re-measures and rewrites. A stale or corrupt cache can cost a re-tune but
// never an error or a wrong-ISA table.
// ---------------------------------------------------------------------------

/// Parses the cache file if it matches this process (version/cpu/mode).
std::optional<common::Json> load_matching_cache(const std::string& path,
                                                AutotuneMode mode) {
  const std::optional<std::string> text = common::read_file(path);
  if (!text) return std::nullopt;
  std::optional<common::Json> doc = common::Json::parse(*text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const common::Json* version = doc->find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kCacheVersion) {
    return std::nullopt;
  }
  const common::Json* cpu = doc->find("cpu");
  if (cpu == nullptr || !cpu->is_string() || cpu->as_string() != cpu_key()) {
    return std::nullopt;
  }
  const common::Json* cache_mode = doc->find("mode");
  if (cache_mode == nullptr || !cache_mode->is_string() ||
      cache_mode->as_string() != mode_name(mode)) {
    return std::nullopt;
  }
  if (const common::Json* entries = doc->find("entries");
      entries == nullptr || !entries->is_array()) {
    return std::nullopt;
  }
  return doc;
}

/// Looks up the entry for width d; returns a usable choice or nullopt. The
/// table name must resolve among the candidates the current mode would have
/// considered — a "full"-mode table never leaks into a "safe"-mode run.
std::optional<AutotuneChoice> choice_from_cache(const common::Json& doc,
                                                std::size_t d) {
  for (const common::Json& entry : doc.find("entries")->as_array()) {
    const common::Json* entry_d = entry.find("d");
    if (entry_d == nullptr || !entry_d->is_number() ||
        static_cast<std::size_t>(entry_d->as_number()) != d) {
      continue;
    }
    const common::Json* name = entry.find("table");
    if (name == nullptr || !name->is_string()) return std::nullopt;
    const std::vector<const KernelTable*> candidates = autotune_candidates();
    const auto it = std::find_if(
        candidates.begin(), candidates.end(),
        [&](const KernelTable* t) { return name->as_string() == t->name; });
    if (it == candidates.end()) return std::nullopt;
    AutotuneChoice choice;
    choice.table = *it;
    choice.d = d;
    choice.source = AutotuneChoice::Source::kCache;
    choice.cache_hit = true;
    if (const common::Json* rows = entry.find("rows_tile");
        rows != nullptr && rows->is_number()) {
      choice.rows_tile = static_cast<std::size_t>(rows->as_number());
    }
    if (const common::Json* ns = entry.find("ns_per_row");
        ns != nullptr && ns->is_number()) {
      choice.ns_per_row = ns->as_number();
    }
    // NUMA fields are optional (caches predate them): missing fields leave the
    // defaults (nodes=1, cross-node allowed), and decide() re-measures when
    // the cached node count disagrees with the live topology.
    if (const common::Json* nodes = entry.find("nodes");
        nodes != nullptr && nodes->is_number()) {
      choice.nodes = static_cast<int>(nodes->as_number());
    }
    if (const common::Json* xnode = entry.find("xnode");
        xnode != nullptr && xnode->is_bool()) {
      choice.cross_node_partition = xnode->as_bool();
    }
    return choice;
  }
  return std::nullopt;
}

/// Merges `choice` into the cache file (read-modify-write; creates the file
/// when absent or unusable). Write failures are logged and otherwise ignored.
void persist_choice(const std::string& path, AutotuneMode mode,
                    const AutotuneChoice& choice) {
  common::Json::Array entries;
  if (std::optional<common::Json> doc = load_matching_cache(path, mode)) {
    for (const common::Json& entry : doc->find("entries")->as_array()) {
      const common::Json* entry_d = entry.find("d");
      if (entry_d != nullptr && entry_d->is_number() &&
          static_cast<std::size_t>(entry_d->as_number()) == choice.d) {
        continue;  // replaced below
      }
      entries.push_back(entry);
    }
  }
  common::Json::Object entry;
  entry["d"] = choice.d;
  entry["table"] = std::string(choice.table->name);
  entry["rows_tile"] = choice.rows_tile;
  entry["ns_per_row"] = choice.ns_per_row;
  entry["nodes"] = choice.nodes;
  entry["xnode"] = choice.cross_node_partition;
  entries.push_back(common::Json(std::move(entry)));

  common::Json::Object doc;
  doc["version"] = kCacheVersion;
  doc["cpu"] = cpu_key();
  doc["mode"] = std::string(mode_name(mode));
  doc["entries"] = common::Json(std::move(entries));
  if (!common::write_file(path, common::Json(std::move(doc)).dump_pretty())) {
    HAAN_LOG_WARN_C("kernels")
        << "autotune: failed to write cache " << path;
  }
}

// ---------------------------------------------------------------------------
// Measurement + selection.
// ---------------------------------------------------------------------------

/// Measures every candidate over every tile and applies the max-min rule:
/// score(candidate) = min over tiles of static_ns / candidate_ns, winner =
/// argmax score, and the winner must clear kWinMargin — so the chosen table
/// is at least as fast as static dispatch on EVERY tile (the bench --tune
/// gate relies on this invariant).
AutotuneChoice measure_choice(std::size_t d) {
  const std::vector<const KernelTable*> candidates = autotune_candidates();
  HAAN_EXPECTS(!candidates.empty() && candidates.front() == &active());

  std::vector<std::vector<double>> ns(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    for (const std::size_t rows : kTileRows) {
      ns[c].push_back(measure_rows_ns_per_row(*candidates[c], d, rows));
    }
  }

  std::size_t best = 0;  // index 0 is static dispatch (score 1.0)
  double best_score = 1.0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    double score = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < std::size(kTileRows); ++t) {
      score = std::min(score, ns[0][t] / ns[c][t]);
    }
    if (score > best_score && score > kWinMargin) {
      best_score = score;
      best = c;
    }
  }

  AutotuneChoice choice;
  choice.table = candidates[best];
  choice.d = d;
  choice.source = AutotuneChoice::Source::kMeasured;
  double best_ratio = 0.0;
  for (std::size_t t = 0; t < std::size(kTileRows); ++t) {
    AutotuneTile tile;
    tile.rows = kTileRows[t];
    tile.static_ns_per_row = ns[0][t];
    tile.tuned_ns_per_row = ns[best][t];
    choice.tiles.push_back(tile);
    const double ratio = ns[0][t] / ns[best][t];
    if (ratio > best_ratio) {
      best_ratio = ratio;
      choice.rows_tile = kTileRows[t];
      choice.ns_per_row = ns[best][t];
    }
  }
  return choice;
}

/// Times the fused row-block pass over a block BOUND to node 0, run by a
/// fresh thread pinned to `cpu` — models a pack resident on its home node
/// being read by a (possibly remote) pool chunk. The arena's mbind forces the
/// block's pages onto node 0 no matter which thread first touches them, which
/// is the whole point: plain vectors would first-touch local in both runs and
/// measure nothing.
double node_bound_ns_per_row(const KernelTable& table, std::size_t d,
                             std::size_t rows, int cpu) {
  const std::size_t n = rows * d;
  mem::ArenaOptions opts;
  opts.initial_bytes = (3 * n + 2 * d) * sizeof(float) + (std::size_t{1} << 16);
  opts.node = 0;
  mem::Arena arena(opts);
  const std::span<float> h = arena.allocate_span<float>(n);
  const std::span<float> residual = arena.allocate_span<float>(n);
  const std::span<float> out = arena.allocate_span<float>(n);
  const std::span<float> alpha = arena.allocate_span<float>(d);
  const std::span<float> beta = arena.allocate_span<float>(d);
  common::Rng rng(0x5ca1ab1e);
  rng.fill_gaussian(h, 0.0, 1.0);
  rng.fill_gaussian(residual, 0.0, 1.0);
  rng.fill_gaussian(alpha, 1.0, 0.05);
  rng.fill_gaussian(beta, 0.0, 0.05);

  double best_ns = std::numeric_limits<double>::infinity();
  std::thread worker([&] {
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
    RowNormWorkspace ws;
    std::vector<SumStats> consume(rows);
    const int iters = static_cast<int>(std::clamp<std::size_t>(
        2'000'000 / n, std::size_t{1}, std::size_t{32}));
    const auto one_pass = [&] {
      residual_add_rmsnorm_rows(table, rows, h, residual,
                                std::span<const float>(alpha),
                                std::span<const float>(beta), out, 1e-5, ws);
      active().stats_rows(out.data(), rows, d, d, consume.data());
    };
    one_pass();  // warm-up: faults the bound pages, primes the table
    for (int rep = 0; rep < 3; ++rep) {
      const std::uint64_t start = common::monotonic_ns();
      for (int i = 0; i < iters; ++i) one_pass();
      const std::uint64_t stop = common::monotonic_ns();
      best_ns = std::min(best_ns, static_cast<double>(stop - start) /
                                      (static_cast<double>(iters) *
                                       static_cast<double>(rows)));
    }
  });
  worker.join();
  return best_ns;
}

/// Stamps the live node count and, on multi-node hosts with placement on,
/// measures whether a node-1 CPU streams a node-0-resident block within
/// kCrossNodeSlack of a node-0 CPU. Skipped entirely (cross-node allowed)
/// everywhere the question cannot matter.
void stamp_cross_node(AutotuneChoice& choice) {
  const mem::Topology& topo = mem::topology();
  choice.nodes = static_cast<int>(topo.nodes());
  choice.cross_node_partition = true;
  if (topo.nodes() < 2 || !mem::placement_enabled()) return;
  const std::size_t rows = 256;
  const double local_ns =
      node_bound_ns_per_row(*choice.table, choice.d, rows, topo.cpu_for_slot(0, 0));
  const double remote_ns =
      node_bound_ns_per_row(*choice.table, choice.d, rows, topo.cpu_for_slot(1, 0));
  choice.cross_node_partition = remote_ns <= local_ns * kCrossNodeSlack;
  HAAN_LOG_INFO_C("kernels")
      << "autotune: d=" << choice.d << " cross-node "
      << (choice.cross_node_partition ? "allowed" : "capped")
      << " (local=" << local_ns << "ns/row remote=" << remote_ns << "ns/row)";
}

AutotuneChoice decide(std::size_t d) {
  if (!autotune_enabled()) {
    AutotuneChoice choice = static_choice(d);
    choice.nodes = static_cast<int>(mem::topology().nodes());
    return choice;
  }
  const AutotuneMode mode = autotune_mode();
  const std::string path = autotune_cache_path();
  if (!path.empty()) {
    if (std::optional<common::Json> doc = load_matching_cache(path, mode)) {
      if (std::optional<AutotuneChoice> cached = choice_from_cache(*doc, d)) {
        // A cache written on a host with a different node count (or before
        // the NUMA fields existed) can't answer the cross-node question for
        // THIS host — re-measure just that axis, keep the table choice.
        if (cached->nodes != static_cast<int>(mem::topology().nodes())) {
          stamp_cross_node(*cached);
        }
        return *std::move(cached);
      }
    }
  }
  AutotuneChoice choice = measure_choice(d);
  stamp_cross_node(choice);
  if (!path.empty()) persist_choice(path, mode, choice);
  return choice;
}

}  // namespace

const char* to_string(AutotuneChoice::Source source) {
  switch (source) {
    case AutotuneChoice::Source::kMeasured: return "measured";
    case AutotuneChoice::Source::kCache: return "cache";
    case AutotuneChoice::Source::kStatic: break;
  }
  return "static";
}

AutotuneMode autotune_mode() {
  const char* env = std::getenv("HAAN_AUTOTUNE");
  if (env == nullptr || env[0] == '\0') return AutotuneMode::kSafe;
  if (env[0] == '0' && env[1] == '\0') return AutotuneMode::kOff;
  if (env[0] == '1' && env[1] == '\0') return AutotuneMode::kFull;
  return AutotuneMode::kSafe;
}

bool autotune_enabled() {
  return autotune_mode() != AutotuneMode::kOff && !force_scalar_requested();
}

std::vector<const KernelTable*> autotune_candidates() {
  std::vector<const KernelTable*> candidates{&active()};
  if (!autotune_enabled()) return candidates;
  const AutotuneMode mode = autotune_mode();
  for (const KernelTable* table : supported_kernel_variants()) {
    if (table == &active()) continue;
    if (std::string_view(table->name) == "scalar") continue;
    if (mode == AutotuneMode::kSafe &&
        !in_family(table->name, active().name)) {
      continue;
    }
    candidates.push_back(table);
  }
  return candidates;
}

double measure_rows_ns_per_row(const KernelTable& table, std::size_t d,
                               std::size_t rows, int reps) {
  HAAN_EXPECTS(d > 0 && rows > 0 && reps > 0);
  const std::size_t n = rows * d;
  std::vector<float> h(n), residual(n), out(n);
  std::vector<float> alpha(d), beta(d);
  common::Rng rng(0x7a11e5);
  rng.fill_gaussian(h, 0.0, 1.0);
  rng.fill_gaussian(residual, 0.0, 1.0);
  rng.fill_gaussian(alpha, 1.0, 0.05);
  rng.fill_gaussian(beta, 0.0, 0.05);
  RowNormWorkspace ws;
  std::vector<SumStats> consume(rows);

  // Scale iterations so each repetition covers ~2M elements: long enough to
  // swamp clock granularity, short enough that startup tuning of a handful of
  // candidates stays in the low milliseconds per (d, rows) cell.
  const int iters = static_cast<int>(
      std::clamp<std::size_t>(2'000'000 / n, std::size_t{1}, std::size_t{64}));

  auto one_pass = [&] {
    residual_add_rmsnorm_rows(table, rows, std::span<float>(h),
                              std::span<const float>(residual),
                              std::span<const float>(alpha),
                              std::span<const float>(beta),
                              std::span<float>(out), 1e-5, ws);
    // Read the output back through the static backend (identical work for
    // every candidate): nontemporal stores bypass the cache, so a variant
    // only wins if its writeback saving beats the cost of re-reading from
    // memory — the serve pipeline always consumes what it normalizes.
    active().stats_rows(out.data(), rows, d, d, consume.data());
  };

  one_pass();  // warm-up: page faults, table init, branch history
  double best_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t start = common::monotonic_ns();
    for (int i = 0; i < iters; ++i) one_pass();
    const std::uint64_t stop = common::monotonic_ns();
    best_ns = std::min(best_ns, static_cast<double>(stop - start) /
                                    (static_cast<double>(iters) *
                                     static_cast<double>(rows)));
  }
  return best_ns;
}

void set_autotune_cache_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex());
  cache_path_override() = std::move(path);
}

std::string autotune_cache_path() {
  {
    const std::lock_guard<std::mutex> lock(mutex());
    if (!cache_path_override().empty()) return cache_path_override();
  }
  const char* env = std::getenv("HAAN_AUTOTUNE_CACHE");
  return env != nullptr ? std::string(env) : std::string();
}

const AutotuneChoice& tuned_for(std::size_t d) {
  HAAN_EXPECTS(d > 0);
  {
    const std::lock_guard<std::mutex> lock(mutex());
    if (const auto it = choices().find(d); it != choices().end()) {
      return it->second;
    }
  }
  // Decide outside the lock: measurement takes milliseconds and decide() never
  // touches choices(). Concurrent first calls for the same d race benignly —
  // the first insert wins and both measured the same candidates. The cache
  // path is resolved out here too: autotune_cache_path() takes the registry
  // mutex itself.
  AutotuneChoice choice = decide(d);
  const bool has_cache = !autotune_cache_path().empty();
  const std::lock_guard<std::mutex> lock(mutex());
  const auto [it, inserted] = choices().emplace(d, std::move(choice));
  if (inserted) {
    HAAN_LOG_INFO_C("kernels")
        << "autotune: d=" << d << " -> " << it->second.table->name
        << " (mode=" << mode_name(autotune_mode())
        << ", source=" << to_string(it->second.source)
        << (!has_cache ? ""
                       : (it->second.cache_hit ? ", cache hit" : ", cache miss"))
        << (it->second.rows_tile != 0
                ? ", rows_tile=" + std::to_string(it->second.rows_tile)
                : std::string())
        << ")";
  }
  return it->second;
}

const KernelTable& tuned_table(std::size_t d) { return *tuned_for(d).table; }

void reset_autotune_for_testing() {
  const std::lock_guard<std::mutex> lock(mutex());
  choices().clear();
  cache_path_override().clear();
}

}  // namespace haan::kernels
