#include "common/json_lite.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

// GCC 12 emits false-positive -Wrestrict diagnostics for inlined
// std::string copies at -O3 (GCC bug 105651); the code below performs no
// overlapping copies.
#pragma GCC diagnostic ignored "-Wrestrict"

namespace haan::common {

bool Json::as_bool() const {
  HAAN_EXPECTS(is_bool());
  return bool_;
}

double Json::as_number() const {
  HAAN_EXPECTS(is_number());
  return number_;
}

const std::string& Json::as_string() const {
  HAAN_EXPECTS(is_string());
  return string_;
}

const Json::Array& Json::as_array() const {
  HAAN_EXPECTS(is_array());
  return array_;
}

const Json::Object& Json::as_object() const {
  HAAN_EXPECTS(is_object());
  return object_;
}

Json::Array& Json::as_array() {
  HAAN_EXPECTS(is_array());
  return array_;
}

Json::Object& Json::as_object() {
  HAAN_EXPECTS(is_object());
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

void escape_string(const std::string& in, std::string& out) {
  out += '"';
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_number(double value, std::string& out) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
    out += buffer;
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  std::string pad_inner;
  std::string pad_close;
  if (indent > 0) {
    pad_inner = "\n";
    pad_inner.append(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    pad_close = "\n";
    pad_close.append(static_cast<std::size_t>(indent * depth), ' ');
  }
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      format_number(number_, out);
      break;
    case Type::kString:
      escape_string(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& item : array_) {
        if (!first) out += ',';
        first = false;
        out += pad_inner;
        item.dump_to(out, indent, depth + 1);
      }
      out += pad_close;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        out += pad_inner;
        escape_string(key, out);
        out += indent > 0 ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
      }
      out += pad_close;
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string view with an index cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> parse() {
    skip_ws();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Json(*s);
    }
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return parse_number();
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json::Object object;
    skip_ws();
    if (consume('}')) return Json(std::move(object));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      object[*key] = std::move(*value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(object));
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json::Array array;
    skip_ws();
    if (consume(']')) return Json(std::move(array));
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(array));
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (sufficient for our artifacts).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated string
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any_digits = false;
    const auto eat_digits = [&]() {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any_digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!any_digits) return std::nullopt;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) { return Parser(text).parse(); }

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace haan::common
