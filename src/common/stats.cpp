#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace haan::common {

void RunningMoments::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  HAAN_EXPECTS(xs.size() == ys.size());
  HAAN_EXPECTS(!xs.empty());
  const std::size_t n = xs.size();
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x == 0.0 || var_y == 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double pearson_vs_index(std::span<const double> ys) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return pearson(xs, ys);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  HAAN_EXPECTS(xs.size() == ys.size());
  HAAN_EXPECTS(xs.size() >= 2);
  const std::size_t n = xs.size();
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  LineFit fit;
  if (var_x == 0.0) {
    fit.slope = 0.0;
    fit.intercept = mean_y;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = cov / var_x;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (var_y == 0.0) {
    fit.r_squared = 1.0;  // perfectly flat data, perfectly fit by a flat line
  } else {
    fit.r_squared = (cov * cov) / (var_x * var_y);
  }
  return fit;
}

LineFit fit_line_vs_index(std::span<const double> ys) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return fit_line(xs, ys);
}

double mean_of(std::span<const double> xs) {
  HAAN_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance_of(std::span<const double> xs) {
  HAAN_EXPECTS(!xs.empty());
  const double mu = mean_of(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - mu) * (x - mu);
  return sum / static_cast<double>(xs.size());
}

double rms_of(std::span<const double> xs) {
  HAAN_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (const double x : xs) sum += x * x;
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

double geometric_mean_of(std::span<const double> xs) {
  HAAN_EXPECTS(!xs.empty());
  double log_sum = 0.0;
  for (const double x : xs) {
    HAAN_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double max_abs_diff(std::span<const double> xs, std::span<const double> ys) {
  HAAN_EXPECTS(xs.size() == ys.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    worst = std::max(worst, std::abs(xs[i] - ys[i]));
  }
  return worst;
}

double median_of(std::vector<double> xs) {
  HAAN_EXPECTS(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  if (xs.size() % 2 == 1) return xs[mid];
  const double hi = xs[mid];
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1, xs.end());
  return 0.5 * (xs[mid - 1] + hi);
}

}  // namespace haan::common
