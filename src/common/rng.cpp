#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace haan::common {

std::uint64_t Rng::next_u64() {
  state_ += kGolden;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1) with full double grid.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HAAN_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HAAN_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return value % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  HAAN_EXPECTS(stddev >= 0.0);
  return mean + stddev * gaussian();
}

void Rng::fill_gaussian(std::span<float> out, double mean, double stddev) {
  for (auto& value : out) value = static_cast<float>(gaussian(mean, stddev));
}

Rng Rng::fork() { return Rng(next_u64()); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(indices[i - 1], indices[j]);
  }
  return indices;
}

}  // namespace haan::common
