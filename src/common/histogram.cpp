#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace haan::common {

LogHistogram::LogHistogram(const Config& config) : config_(config) {
  HAAN_EXPECTS(config.min_value > 0.0);
  HAAN_EXPECTS(config.max_value > config.min_value);
  HAAN_EXPECTS(config.buckets_per_decade > 0);
  scale_ = static_cast<double>(config.buckets_per_decade);
  ratio_ = std::pow(10.0, 1.0 / scale_);
  log10_min_ = std::log10(config.min_value);
  const double decades = std::log10(config.max_value) - log10_min_;
  const auto regular =
      static_cast<std::size_t>(std::ceil(decades * scale_));
  // +1: a top overflow bucket for values >= max_value.
  buckets_.assign(regular + 1, 0);
}

std::size_t LogHistogram::bucket_index(double value) const {
  if (!(value > config_.min_value)) return 0;  // also catches NaN, <= 0
  const double position = (std::log10(value) - log10_min_) * scale_;
  const auto index = static_cast<std::size_t>(position);
  return std::min(index, buckets_.size() - 1);
}

double LogHistogram::bucket_lower(std::size_t index) const {
  return config_.min_value *
         std::pow(10.0, static_cast<double>(index) / scale_);
}

void LogHistogram::record(double value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    max_seen_ = value;
    min_seen_ = value;
  } else {
    max_seen_ = std::max(max_seen_, value);
    min_seen_ = std::min(min_seen_, value);
  }
  ++count_;
  sum_ += value;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest value with at least ceil(q*n) samples <= it.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  // The top rank is the exact maximum — tracked outside the buckets.
  if (rank >= count_) return max_seen_;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      // The top rank lives in this bucket. Clamp the representative into the
      // exact sample range so q=1 returns max() and degenerate single-bucket
      // distributions stay tight.
      const double mid =
          bucket_lower(b) * std::sqrt(ratio_);  // geometric midpoint
      return std::clamp(mid, min_seen_, max_seen_);
    }
  }
  return max_seen_;  // unreachable: cumulative == count_ by the last bucket
}

void LogHistogram::merge(const LogHistogram& other) {
  HAAN_EXPECTS(other.buckets_.size() == buckets_.size());
  HAAN_EXPECTS(other.config_.min_value == config_.min_value);
  HAAN_EXPECTS(other.config_.buckets_per_decade == config_.buckets_per_decade);
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0) {
    max_seen_ = other.max_seen_;
    min_seen_ = other.min_seen_;
  } else {
    max_seen_ = std::max(max_seen_, other.max_seen_);
    min_seen_ = std::min(min_seen_, other.min_seen_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_seen_ = 0.0;
  min_seen_ = 0.0;
}

}  // namespace haan::common
