// Descriptive statistics used throughout the HAAN algorithm: running moments,
// Pearson correlation (the heart of Algorithm 1's skip-range scan), and
// ordinary least-squares line fitting (the `calDecay` slope estimator).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace haan::common {

/// Single-pass accumulator for mean/variance (Welford's algorithm).
///
/// Welford is used (rather than the accelerator's E[x²]−E[x]² formulation)
/// because this is the *reference* software path; the hardware formulation
/// lives in `haan::accel` and is tested against this one.
class RunningMoments {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations added.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Population variance (divide by n); 0 when fewer than 1 observation.
  double variance() const;

  /// Population standard deviation.
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Pearson correlation coefficient of paired samples. Returns 0 when either
/// series is constant (degenerate correlation). Requires equal, nonzero sizes.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation of `ys` against their indices 0..n-1 — the exact
/// quantity Algorithm 1 computes for a layer window.
double pearson_vs_index(std::span<const double> ys);

/// Result of an ordinary least-squares fit y ≈ intercept + slope * x.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 for a perfect fit.
  double r_squared = 0.0;
};

/// Least-squares line through (xs, ys). Requires >= 2 points.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Least-squares line through (0, ys[0]), (1, ys[1]), ...
LineFit fit_line_vs_index(std::span<const double> ys);

/// Mean of a span; requires nonempty input.
double mean_of(std::span<const double> xs);

/// Population variance of a span; requires nonempty input.
double variance_of(std::span<const double> xs);

/// Root-mean-square of a span; requires nonempty input.
double rms_of(std::span<const double> xs);

/// Elementwise geometric mean of positive values; requires nonempty input.
double geometric_mean_of(std::span<const double> xs);

/// Maximum absolute difference between two equally sized spans.
double max_abs_diff(std::span<const double> xs, std::span<const double> ys);

/// Median (by copy + nth_element); requires nonempty input.
double median_of(std::vector<double> xs);

}  // namespace haan::common
