// Contract-checking macros in the spirit of the C++ Core Guidelines (I.6/I.8):
// preconditions via HAAN_EXPECTS, postconditions via HAAN_ENSURES, internal
// invariants via HAAN_ASSERT. All three abort with a source location so that
// violations surface immediately in tests and benches; they are kept enabled in
// release builds because this library's correctness claims are part of the
// reproduction.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace haan::common {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[haan] %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace haan::common

#define HAAN_EXPECTS(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::haan::common::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define HAAN_ENSURES(cond)                                                        \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::haan::common::contract_failure("postcondition", #cond, __FILE__, __LINE__))

#define HAAN_ASSERT(cond)                                                         \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::haan::common::contract_failure("assertion", #cond, __FILE__, __LINE__))
