// Monotonic nanosecond clock shared by the tracing and metrics layers. One
// definition so every span, histogram sample and snapshot timestamp is taken
// from the same timebase (steady_clock) and trace durations are directly
// comparable to the serve runtime's latency accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace haan::common {

/// Nanoseconds on the process-wide monotonic clock. Only differences are
/// meaningful; the epoch is the steady_clock epoch (usually boot).
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Microseconds between two monotonic_ns() stamps as a double (trace export
/// and human-readable reporting both speak microseconds).
inline double ns_to_us(std::uint64_t ns) {
  return static_cast<double>(ns) / 1000.0;
}

}  // namespace haan::common
