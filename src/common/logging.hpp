// Minimal leveled logger. Single global sink (stderr by default) with a
// runtime-settable threshold; printf-style formatting is deliberately avoided
// in favour of pre-formatted strings so call sites stay type-safe. Two output
// formats: the default human-readable "[haan LEVEL] message" lines, and an
// opt-in JSON-lines format ({"ts_us", "level", "component", "msg"} per line)
// so serve logs are machine-parseable. The sink itself can be redirected
// (tests capture lines; services can forward them).
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace haan::common {

/// Severity levels in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Output format of the global sink.
enum class LogFormat {
  kHuman,  ///< "[haan LEVEL] message" (default)
  kJson,   ///< one JSON object per line: ts_us, level, component, msg
};

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Returns the current global threshold.
LogLevel log_level();

/// Sets the global output format (thread-safe; applies to subsequent lines).
void set_log_format(LogFormat format);

/// Returns the current output format.
LogFormat log_format();

/// Redirects formatted log lines to `sink` instead of stderr; pass nullptr to
/// restore stderr. The sink receives one fully formatted line (no trailing
/// newline) per log call and must be callable from any thread.
void set_log_sink(std::function<void(std::string_view)> sink);

/// Emits `message` at `level` if it passes the threshold. Thread-safe.
/// `component` tags the originating subsystem ("serve", "obs", ...) — shown
/// as a field in JSON format, as a "component:" prefix in human format when
/// nonempty.
void log(LogLevel level, std::string_view component, const std::string& message);
inline void log(LogLevel level, const std::string& message) {
  log(level, {}, message);
}

namespace detail {

/// Stream-style builder: collects one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level, std::string_view component = {})
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace haan::common

#define HAAN_LOG_DEBUG ::haan::common::detail::LogLine(::haan::common::LogLevel::kDebug)
#define HAAN_LOG_INFO ::haan::common::detail::LogLine(::haan::common::LogLevel::kInfo)
#define HAAN_LOG_WARN ::haan::common::detail::LogLine(::haan::common::LogLevel::kWarn)
#define HAAN_LOG_ERROR ::haan::common::detail::LogLine(::haan::common::LogLevel::kError)

/// Component-tagged variants: HAAN_LOG_INFO_C("serve") << "...";
#define HAAN_LOG_DEBUG_C(component) \
  ::haan::common::detail::LogLine(::haan::common::LogLevel::kDebug, component)
#define HAAN_LOG_INFO_C(component) \
  ::haan::common::detail::LogLine(::haan::common::LogLevel::kInfo, component)
#define HAAN_LOG_WARN_C(component) \
  ::haan::common::detail::LogLine(::haan::common::LogLevel::kWarn, component)
#define HAAN_LOG_ERROR_C(component) \
  ::haan::common::detail::LogLine(::haan::common::LogLevel::kError, component)
