// Minimal leveled logger. Single global sink (stderr) with a runtime-settable
// threshold; printf-style formatting is deliberately avoided in favour of
// pre-formatted strings so call sites stay type-safe.
#pragma once

#include <sstream>
#include <string>

namespace haan::common {

/// Severity levels in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Returns the current global threshold.
LogLevel log_level();

/// Emits `message` at `level` if it passes the threshold. Thread-safe.
void log(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style builder: collects one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace haan::common

#define HAAN_LOG_DEBUG ::haan::common::detail::LogLine(::haan::common::LogLevel::kDebug)
#define HAAN_LOG_INFO ::haan::common::detail::LogLine(::haan::common::LogLevel::kInfo)
#define HAAN_LOG_WARN ::haan::common::detail::LogLine(::haan::common::LogLevel::kWarn)
#define HAAN_LOG_ERROR ::haan::common::detail::LogLine(::haan::common::LogLevel::kError)
