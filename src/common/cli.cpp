#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"

namespace haan::common {

CliParser::CliParser(std::string program_summary) : summary_(std::move(program_summary)) {}

void CliParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  HAAN_EXPECTS(!name.empty());
  HAAN_EXPECTS(flags_.find(name) == flags_.end());
  order_.push_back(name);
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      error_ = true;
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        error_ = true;
        return false;
      }
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      error_ = true;
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  HAAN_EXPECTS(it != flags_.end());
  return it->second.value.value_or(it->second.default_value);
}

long long CliParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  HAAN_EXPECTS(end != nullptr && *end == '\0');
  return value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  HAAN_EXPECTS(end != nullptr && *end == '\0');
  return value;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string text = get(name);
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  HAAN_EXPECTS(false && "boolean flag must be true/false/1/0/yes/no");
  return false;
}

std::string CliParser::help() const {
  std::ostringstream out;
  out << summary_ << "\n\nflags:\n";
  for (const auto& name : order_) {
    const auto& flag = flags_.at(name);
    out << "  --" << name << " (default: " << flag.default_value << ")\n      "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace haan::common
