#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace haan::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HAAN_EXPECTS(!header_.empty());
  aligns_.assign(header_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> row) {
  HAAN_EXPECTS(row.size() == header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::set_align(std::size_t column, Align align) {
  HAAN_EXPECTS(column < aligns_.size());
  aligns_[column] = align;
}

std::size_t Table::row_count() const {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (!row.separator) ++n;
  }
  return n;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& text, std::size_t width, Align align) {
    std::string out;
    const std::size_t fill = width - std::min(width, text.size());
    if (align == Align::kRight) out.append(fill, ' ');
    out += text;
    if (align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  const auto rule = [&]() {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line.append(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };

  std::ostringstream out;
  out << rule();
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << " " << pad(header_[c], widths[c], Align::kLeft) << " |";
  }
  out << "\n" << rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      out << rule();
      continue;
    }
    out << "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out << " " << pad(row.cells[c], widths[c], aligns_[c]) << " |";
    }
    out << "\n";
  }
  out << rule();
  return out.str();
}

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_ratio(double value, int digits) {
  return format_double(value, digits) + "x";
}

std::string format_percent(double fraction, int digits) {
  return format_double(fraction * 100.0, digits) + "%";
}

std::string format_count(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out += ',';
      run = 0;
    }
    out += *it;
    ++run;
  }
  if (negative) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace haan::common
