// Minimal JSON value type + parser/serializer. Used to persist calibration
// artifacts (skip plans, difficulty tables) so experiments can split the
// expensive calibration pass from evaluation. Supports the full JSON grammar
// except \uXXXX escapes beyond the BMP surrogate pairs (not needed here).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace haan::common {

/// A JSON document node: null, bool, number, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}           // NOLINT(google-explicit-constructor)
  Json(double value) : type_(Type::kNumber), number_(value) {}     // NOLINT(google-explicit-constructor)
  Json(int value) : Json(static_cast<double>(value)) {}            // NOLINT(google-explicit-constructor)
  Json(long long value) : Json(static_cast<double>(value)) {}      // NOLINT(google-explicit-constructor)
  Json(std::size_t value) : Json(static_cast<double>(value)) {}    // NOLINT(google-explicit-constructor)
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT(google-explicit-constructor)
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; precondition: the node has the matching type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup; returns nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Serializes to compact JSON (no insignificant whitespace).
  std::string dump() const;

  /// Serializes with 2-space indentation.
  std::string dump_pretty() const;

  /// Parses a JSON document. Returns nullopt (with no partial state) on error.
  static std::optional<Json> parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Reads an entire file into a string; nullopt when the file cannot be read.
std::optional<std::string> read_file(const std::string& path);

/// Writes a string to a file, truncating; returns false on failure.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace haan::common
