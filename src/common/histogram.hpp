// Log-bucketed streaming histogram (HDR-histogram style): fixed memory
// regardless of sample count, with a guaranteed relative-accuracy bound on
// quantiles. Bucket boundaries form a geometric progression, so every
// recorded value lands in a bucket whose bounds are within one bucket ratio
// (10^(1/buckets_per_decade), ~4.9% at the default 48/decade) of the value.
// Quantiles are nearest-rank over bucket counts and return the bucket's
// geometric midpoint — within one bucket width of the exact nearest-rank
// sample, which is the accuracy contract the serving metrics rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace haan::common {

/// Streaming histogram over positive values with log-spaced buckets.
/// count/sum/mean/max/min are exact; quantiles are bucket-resolution.
class LogHistogram {
 public:
  struct Config {
    /// Lower edge of the first regular bucket. Values below (including 0 and
    /// negatives) clamp into bucket 0, so min doubles as the resolution floor.
    double min_value = 1.0;
    /// Values >= max_value clamp into the last bucket.
    double max_value = 1e9;
    /// Buckets per decade; the per-bucket ratio is 10^(1/buckets_per_decade).
    std::size_t buckets_per_decade = 48;
  };

  LogHistogram() : LogHistogram(Config{}) {}
  explicit LogHistogram(const Config& config);

  /// Records one observation. O(1), no allocation.
  void record(double value);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Exact extremes of the recorded samples (not bucket-quantized).
  double max() const { return count_ == 0 ? 0.0 : max_seen_; }
  double min() const { return count_ == 0 ? 0.0 : min_seen_; }

  /// Nearest-rank quantile (q in [0, 1]) at bucket resolution: the geometric
  /// midpoint of the bucket holding the rank-ceil(q*count) sample. Guaranteed
  /// within one bucket_ratio() of the exact nearest-rank value for samples
  /// inside [min_value, max_value); 0 when empty. q=1 returns the exact max.
  double quantile(double q) const;

  /// The geometric ratio between adjacent bucket bounds — the relative
  /// accuracy bound of quantile().
  double bucket_ratio() const { return ratio_; }

  /// Number of buckets (fixed at construction; the memory bound).
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Bytes held by the bucket array — constant for the histogram's lifetime,
  /// independent of how many samples were recorded.
  std::size_t memory_bytes() const {
    return buckets_.capacity() * sizeof(std::uint64_t);
  }

  /// Folds `other` (same config) into this histogram.
  void merge(const LogHistogram& other);

  /// Drops all samples; keeps the bucket layout.
  void reset();

  const Config& config() const { return config_; }

 private:
  std::size_t bucket_index(double value) const;
  /// [lower, upper) bounds of bucket `index`.
  double bucket_lower(std::size_t index) const;

  Config config_;
  double ratio_ = 0.0;       ///< 10^(1/buckets_per_decade)
  double log10_min_ = 0.0;   ///< log10(min_value), hoisted
  double scale_ = 0.0;       ///< buckets_per_decade as double
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
  double min_seen_ = 0.0;
};

}  // namespace haan::common
