// Tiny command-line parser for bench and example binaries. Flags are
// `--name=value` or `--name value`; `--help` prints registered options.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace haan::common {

/// Declarative flag registry + parser.
///
/// Benches register their knobs (seed, sequence length, ...) then call
/// `parse`. Unknown flags are an error so typos fail loudly.
class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers a string flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing help) if --help was given or a
  /// parse error occurred; callers should exit(0)/exit(1) accordingly.
  bool parse(int argc, const char* const* argv);

  /// Value of a registered flag (post-parse; default if not supplied).
  std::string get(const std::string& name) const;

  /// Typed accessors; abort on conversion failure (bad user input is fatal for
  /// a bench binary — silent fallback would corrupt the experiment).
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if a parse error happened (message already printed).
  bool error() const { return error_; }

  /// Renders the help text.
  std::string help() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  std::string summary_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  bool error_ = false;
};

}  // namespace haan::common
