#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace haan::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[haan %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace haan::common
