#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "common/json_lite.hpp"

namespace haan::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogFormat> g_format{LogFormat::kHuman};
std::mutex g_sink_mutex;
std::function<void(std::string_view)> g_sink;  // guarded by g_sink_mutex

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

std::string format_line(LogLevel level, std::string_view component,
                        const std::string& message) {
  if (g_format.load(std::memory_order_relaxed) == LogFormat::kJson) {
    const auto ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
    Json::Object line;
    line["ts_us"] = static_cast<double>(ts_us);
    line["level"] = level_name(level);
    if (!component.empty()) line["component"] = std::string(component);
    line["msg"] = message;
    return Json(std::move(line)).dump();
  }
  std::string out = "[haan ";
  out += level_tag(level);
  out += "] ";
  if (!component.empty()) {
    out += component;
    out += ": ";
  }
  out += message;
  return out;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_format(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

LogFormat log_format() { return g_format.load(std::memory_order_relaxed); }

void set_log_sink(std::function<void(std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log(LogLevel level, std::string_view component, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::string line = format_line(level, component, message);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace haan::common
