// Deterministic random number generation. Every stochastic component in the
// library draws from an explicitly seeded Rng so that experiments, tests and
// benches are bit-reproducible across runs and platforms. The core generator is
// SplitMix64 (Steele et al.), which is tiny, fast, and passes BigCrush when used
// as a 64-bit stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace haan::common {

/// Deterministic 64-bit PRNG with convenience distributions.
///
/// Copyable value type: forking a child stream for a subcomponent is done via
/// `fork()`, which derives an independent stream from the parent state so that
/// adding draws to one component does not perturb another.
class Rng {
 public:
  /// Seeds the stream. Two Rngs with the same seed produce identical draws.
  explicit Rng(std::uint64_t seed) : state_(seed ^ kGolden) {}

  /// Next raw 64-bit value (SplitMix64 output function).
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (uses two uniforms per pair, caches one).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Fills `out` with i.i.d. N(mean, stddev^2) floats. Spans let callers fill
  /// any contiguous storage (std::vector, pmr arena-backed buffers) alike.
  void fill_gaussian(std::span<float> out, double mean, double stddev);

  /// Derives an independent child stream; the parent advances by one draw.
  Rng fork();

  /// Fisher–Yates shuffle of indices [0, n). Returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  static constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  std::uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace haan::common
