// ASCII table renderer for the bench binaries. Every table/figure bench prints
// its rows through this class so that outputs share one format and the
// EXPERIMENTS.md transcription step is mechanical.
#pragma once

#include <string>
#include <vector>

namespace haan::common {

/// Column alignment inside a rendered cell.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column ASCII table.
///
/// Usage:
///   Table t({"model", "latency (us)"});
///   t.add_row({"GPT-2", format_double(12.3, 2)});
///   std::cout << t.render();
class Table {
 public:
  /// Creates a table with the given header row. All later rows must match its
  /// arity.
  explicit Table(std::vector<std::string> header);

  /// Appends one data row; size must equal the header size.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line between row groups.
  void add_separator();

  /// Sets alignment for one column (default: left for col 0, right otherwise).
  void set_align(std::size_t column, Align align);

  /// Renders the table, headers, separators and all, as a single string.
  std::string render() const;

  /// Number of data rows added so far (separators excluded).
  std::size_t row_count() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
};

/// Formats a double with fixed `digits` decimals (locale-independent).
std::string format_double(double value, int digits);

/// Formats a ratio like "11.73x".
std::string format_ratio(double value, int digits = 2);

/// Formats a percentage like "61.2%".
std::string format_percent(double fraction, int digits = 1);

/// Formats an integer with thousands separators: 1536 -> "1,536".
std::string format_count(long long value);

}  // namespace haan::common
