#include "core/skip_planner.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"

namespace haan::core {

std::string SkipPlan::to_string() const {
  if (!enabled) return "SkipPlan{disabled}";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "SkipPlan{(%zu, %zu), e=%.5f, pearson=%.4f, skips %zu ISD}", start,
                end, decay, pearson, skipped_count());
  return buffer;
}

double cal_decay(std::span<const double> window_log_isd) {
  HAAN_EXPECTS(window_log_isd.size() >= 2);
  return common::fit_line_vs_index(window_log_isd).slope;
}

namespace {

/// Mean |log prediction error| of eq. (3) over the trace's observations for
/// window (i, j) with slope `decay`, anchored per observation at layer i.
double mean_prediction_error(const IsdTrace& trace, std::size_t i, std::size_t j,
                             double decay) {
  double err_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t obs = 0; obs < trace.observation_count(); ++obs) {
    const double anchor = trace.log_isd(obs, i);
    if (std::isnan(anchor)) continue;
    for (std::size_t k = i + 1; k <= j; ++k) {
      const double actual = trace.log_isd(obs, k);
      if (std::isnan(actual)) continue;
      const double predicted = anchor + decay * static_cast<double>(k - i);
      err_sum += std::abs(predicted - actual);
      ++count;
    }
  }
  return count == 0 ? std::numeric_limits<double>::infinity()
                    : err_sum / static_cast<double>(count);
}

}  // namespace

SkipPlan plan_skip(const IsdTrace& trace, const SkipPlannerOptions& options) {
  const std::vector<double> series = trace.mean_log_isd();
  const std::size_t n_layers = series.size();
  HAAN_EXPECTS(options.min_gap >= 2);
  HAAN_EXPECTS(n_layers > options.min_gap);

  SkipPlan best;           // validated winner
  SkipPlan best_anycase;   // raw Algorithm 1 winner (fallback)
  best.pearson = 1.0;      // Algorithm 1: minCor <- 1
  best_anycase.pearson = 1.0;
  const std::size_t max_gap =
      options.max_gap == 0 ? n_layers - 1 : options.max_gap;

  for (std::size_t i = 0; i + options.min_gap < n_layers; ++i) {
    for (std::size_t j = i + options.min_gap; j < n_layers && j - i <= max_gap; ++j) {
      const std::span<const double> window(series.data() + i, j - i + 1);
      const double corr = common::pearson_vs_index(window);
      const bool improves_anycase = corr < best_anycase.pearson;
      const bool improves_validated = corr < best.pearson;
      if (!improves_anycase && !improves_validated) continue;
      const common::LineFit fit = common::fit_line_vs_index(window);
      if (fit.r_squared < options.min_r_squared) continue;
      if (improves_anycase) {
        best_anycase.pearson = corr;
        best_anycase.start = i;
        best_anycase.end = j;
        best_anycase.decay = fit.slope;
        best_anycase.enabled = true;
      }
      if (improves_validated &&
          mean_prediction_error(trace, i, j, fit.slope) <=
              options.max_prediction_error) {
        best.pearson = corr;
        best.start = i;
        best.end = j;
        best.decay = fit.slope;  // calDecay on the winning window
        best.enabled = true;
      }
    }
  }
  if (!best.enabled) {
    HAAN_LOG_WARN << "skip planner: no window passed prediction-error "
                     "validation; falling back to the raw Algorithm 1 winner";
    best = best_anycase;
  }
  HAAN_ENSURES(best.enabled);  // some window always wins with min_r_squared=0
  return best;
}

SkipPlan fixed_range_plan(const IsdTrace& trace, std::size_t start, std::size_t end) {
  HAAN_EXPECTS(end > start);
  const std::vector<double> series = trace.mean_log_isd();
  HAAN_EXPECTS(end < series.size());
  SkipPlan plan;
  plan.start = start;
  plan.end = end;
  const std::span<const double> window(series.data() + start, end - start + 1);
  plan.decay = cal_decay(window);
  plan.pearson = common::pearson_vs_index(window);
  plan.enabled = true;
  return plan;
}

}  // namespace haan::core
