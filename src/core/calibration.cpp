#include "core/calibration.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace haan::core {

std::vector<std::vector<int>> random_token_corpus(std::size_t vocab_size,
                                                  std::size_t n_samples,
                                                  std::size_t seq_len,
                                                  std::uint64_t seed) {
  HAAN_EXPECTS(vocab_size > 0 && n_samples > 0 && seq_len > 0);
  common::Rng rng(seed);
  std::vector<std::vector<int>> corpus(n_samples);
  for (auto& sample : corpus) {
    sample.resize(seq_len);
    for (auto& token : sample) {
      token = static_cast<int>(rng.uniform_index(vocab_size));
    }
  }
  return corpus;
}

CalibrationResult calibrate_skip_plan(model::Transformer& model,
                                      const CalibrationOptions& options) {
  const auto corpus = random_token_corpus(model.config().vocab_size,
                                          options.n_samples, options.seq_len,
                                          options.seed);
  TraceCollectorOptions trace_options;
  trace_options.position_stride = options.position_stride;
  IsdTrace trace = collect_isd_trace(model, corpus, trace_options);
  SkipPlan plan = plan_skip(trace, options.planner);
  HAAN_LOG_INFO << model.config().name << ": " << plan.to_string();
  return CalibrationResult{plan, std::move(trace)};
}

common::Json skip_plan_to_json(const SkipPlan& plan) {
  common::Json::Object object;
  object["start"] = common::Json(plan.start);
  object["end"] = common::Json(plan.end);
  object["decay"] = common::Json(plan.decay);
  object["pearson"] = common::Json(plan.pearson);
  object["enabled"] = common::Json(plan.enabled);
  return common::Json(std::move(object));
}

SkipPlan skip_plan_from_json(const common::Json& json) {
  HAAN_EXPECTS(json.is_object());
  SkipPlan plan;
  const auto* start = json.find("start");
  const auto* end = json.find("end");
  const auto* decay = json.find("decay");
  const auto* pearson = json.find("pearson");
  const auto* enabled = json.find("enabled");
  HAAN_EXPECTS(start && end && decay && pearson && enabled);
  plan.start = static_cast<std::size_t>(start->as_number());
  plan.end = static_cast<std::size_t>(end->as_number());
  plan.decay = decay->as_number();
  plan.pearson = pearson->as_number();
  plan.enabled = enabled->as_bool();
  return plan;
}

bool save_skip_plan(const SkipPlan& plan, const std::string& path) {
  return common::write_file(path, skip_plan_to_json(plan).dump_pretty());
}

SkipPlan load_skip_plan(const std::string& path) {
  const auto text = common::read_file(path);
  HAAN_EXPECTS(text.has_value());
  const auto json = common::Json::parse(*text);
  HAAN_EXPECTS(json.has_value());
  return skip_plan_from_json(*json);
}

}  // namespace haan::core
