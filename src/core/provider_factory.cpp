#include "core/provider_factory.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/assert.hpp"

namespace haan::core {

namespace {

constexpr std::array<const char*, 6> kNames = {
    "exact", "haan", "haan-int8", "haan-fp16", "haan-full", "haan-noskip",
};

/// Paper per-model configuration by case-insensitive model-name prefix
/// (surrogate names are capitalized: "LLaMA-7B", "GPT2-1.5B", ...).
HaanConfig model_default_config(const std::string& model_name, std::size_t width) {
  std::string lower(model_name.size(), '\0');
  std::transform(model_name.begin(), model_name.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower.rfind("llama", 0) == 0) return llama7b_algorithm_config(width);
  if (lower.rfind("gpt2", 0) == 0) return gpt2_1p5b_algorithm_config(width);
  // OPT and everything else (incl. tiny test models): Nsub = E/2, FP16.
  return opt2p7b_algorithm_config(width);
}

}  // namespace

std::vector<std::string> norm_provider_names() {
  return {kNames.begin(), kNames.end()};
}

bool is_norm_provider_name(const std::string& name) {
  for (const char* candidate : kNames) {
    if (name == candidate) return true;
  }
  return false;
}

std::string norm_provider_help() {
  std::string out;
  for (const char* name : kNames) {
    if (!out.empty()) out += " | ";
    out += name;
  }
  return out;
}

HaanConfig resolve_haan_config(const std::string& name,
                               const ProviderOptions& options) {
  HAAN_EXPECTS(options.width > 0);
  HaanConfig config;
  if (name == "haan" || name == "haan-noskip") {
    config = model_default_config(options.model_name, options.width);
  } else if (name == "haan-int8") {
    config = llama7b_algorithm_config(options.width);
  } else if (name == "haan-fp16") {
    config = opt2p7b_algorithm_config(options.width);
  } else if (name == "haan-full") {
    config.nsub = 0;  // full-vector statistics
    config.format = numerics::NumericFormat::kFP32;
  } else {
    HAAN_EXPECTS(false && "resolve_haan_config: not a haan variant");
  }
  config.eps = options.eps;
  config.plan = options.plan;
  if (name == "haan-noskip") config.plan.enabled = false;
  return config;
}

std::unique_ptr<model::NormProvider> make_norm_provider(
    const std::string& name, const ProviderOptions& options) {
  if (name == "exact") {
    return std::make_unique<model::ExactNormProvider>(options.eps,
                                                      options.norm_threads);
  }
  if (!is_norm_provider_name(name)) return nullptr;
  return std::make_unique<HaanNormProvider>(resolve_haan_config(name, options),
                                            options.norm_threads);
}

const HaanNormProvider* as_haan_provider(const model::NormProvider* provider) {
  return dynamic_cast<const HaanNormProvider*>(provider);
}

}  // namespace haan::core
