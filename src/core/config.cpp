#include "core/config.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace haan::core {

std::string HaanConfig::to_string() const {
  std::ostringstream out;
  out << "HaanConfig{nsub=" << nsub << ", format=" << numerics::to_string(format)
      << ", fast_invsqrt=" << (use_fast_invsqrt ? "on" : "off")
      << ", newton=" << newton_iterations << ", plan=" << plan.to_string() << "}";
  return out.str();
}

namespace {

std::size_t scaled_nsub(std::size_t width, std::size_t paper_nsub,
                        std::size_t paper_width) {
  // Prefix-subsampling noise is 0.5 * sqrt(2 * (1/nsub - 1/E)). The floor of
  // 3/4 * width keeps the surrogate's noise (2.6% at 96/128) at a level the
  // width-scaled random-feature model tolerates the way the trained LLM
  // tolerates the paper's 4.3% (256/4096) — trained features are more
  // redundant than random ones. See EXPERIMENTS.md "subsample scaling".
  const std::size_t scaled = width * paper_nsub / paper_width;
  return std::clamp(scaled, width * 3 / 4, width);
}

}  // namespace

double subsample_noise(std::size_t nsub, std::size_t full_length) {
  if (nsub == 0 || nsub >= full_length) return 0.0;
  const double inv_n = 1.0 / static_cast<double>(nsub);
  const double inv_full = 1.0 / static_cast<double>(full_length);
  return 0.5 * std::sqrt(2.0 * (inv_n - inv_full));
}

HaanConfig llama7b_algorithm_config(std::size_t width) {
  HaanConfig config;
  config.nsub = scaled_nsub(width, 256, 4096);
  config.format = numerics::NumericFormat::kINT8;
  return config;
}

HaanConfig opt2p7b_algorithm_config(std::size_t width) {
  HaanConfig config;
  config.nsub = scaled_nsub(width, 1280, 2560);
  config.format = numerics::NumericFormat::kFP16;
  return config;
}

HaanConfig gpt2_1p5b_algorithm_config(std::size_t width) {
  HaanConfig config;
  config.nsub = scaled_nsub(width, 800, 1600);
  config.format = numerics::NumericFormat::kFP16;
  return config;
}

}  // namespace haan::core
