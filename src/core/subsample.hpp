// Subsampled input statistics (paper §III-C, eq. 4): estimate mean and ISD
// from the first Nsub elements of the input vector — the accelerator simply
// stops reading memory entries early (Fig 7), so "first Nsub" is the exact
// hardware semantics, not a simplification.
#pragma once

#include <cstddef>
#include <span>

#include "kernels/kernels.hpp"
#include "model/config.hpp"

namespace haan::model {}  // forward-include convenience

namespace haan::core {

/// Statistics estimated from a subsampled prefix.
struct SubsampledStats {
  double mean = 0.0;           ///< prefix mean (LayerNorm re-centering)
  double second_moment = 0.0;  ///< prefix variance (LN) or mean-square (RMS)
  double isd = 0.0;            ///< 1/sqrt(second_moment + eps)
  std::size_t used = 0;        ///< number of elements actually used
};

/// Estimates normalization statistics from the first `nsub` elements of `z`
/// (nsub = 0 or >= z.size() uses the full vector). For LayerNorm the second
/// moment is the prefix variance; for RMSNorm it is the prefix mean square
/// (paper eq. 4).
SubsampledStats subsampled_stats(std::span<const float> z, std::size_t nsub,
                                 model::NormKind kind, double eps = 1e-5);

/// Same, over an explicit kernel table — providers pass the autotuned backend
/// so the subsampled reduction matches their row-block paths bit for bit.
SubsampledStats subsampled_stats(const kernels::KernelTable& k,
                                 std::span<const float> z, std::size_t nsub,
                                 model::NormKind kind, double eps = 1e-5);

/// Relative ISD estimation error of the subsampled estimate vs. the full
/// vector, |est - exact| / exact. Used by tests and the Nsub ablation.
double subsample_isd_rel_error(std::span<const float> z, std::size_t nsub,
                               model::NormKind kind, double eps = 1e-5);

}  // namespace haan::core
