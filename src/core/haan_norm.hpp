// The HAAN normalization operator: a NormProvider that applies the paper's
// three optimizations — ISD skipping (§III-B), input subsampling (§III-C) and
// operand quantization (§III-C) — with the square-root inverter's fast
// inverse-sqrt numerics (§IV-B). This is the bit-level software twin of the
// accelerator datapath; `haan::accel` adds cycle timing on top.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/isd_predictor.hpp"
#include "model/norm_provider.hpp"

namespace haan::core {

/// Drop-in HAAN normalization.
class HaanNormProvider final : public model::NormProvider {
 public:
  explicit HaanNormProvider(HaanConfig config);

  const HaanConfig& config() const { return config_; }

  void begin_sequence() override;

  void normalize(std::size_t layer_index, std::size_t position, model::NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override;

  /// Fused path: the residual add shares a pass with the operand-buffer fill,
  /// so the datapath reads the hidden vector once less per norm layer.
  void residual_add_normalize(std::size_t layer_index, std::size_t position,
                              model::NormKind kind, std::span<float> h,
                              std::span<const float> residual,
                              std::span<const float> alpha,
                              std::span<const float> beta,
                              std::span<float> out) override;

  /// Execution counters for verifying skip behaviour end to end.
  struct Counters {
    std::size_t norm_calls = 0;
    std::size_t isd_computed = 0;   ///< square-root inverter invocations
    std::size_t isd_predicted = 0;  ///< predictor invocations (skipped ISD)
    std::size_t elements_read = 0;  ///< statistics-path memory reads
    std::size_t fused_residual_norms = 0;  ///< fused residual+norm calls
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// The ISD value used for the most recent normalize() call (test hook).
  double last_isd_used() const { return last_isd_; }

 private:
  double compute_isd(double second_moment) const;

  /// Statistics + normalization over the already-filled (pre-quantization)
  /// operand buffer; shared by the plain and fused entry points.
  void normalize_prepared(std::size_t layer_index, std::size_t position,
                          model::NormKind kind, std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out);

  HaanConfig config_;
  IsdPredictor predictor_;
  Counters counters_;
  std::vector<float> buffer_;
  double last_isd_ = 0.0;
};

}  // namespace haan::core
