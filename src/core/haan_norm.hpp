// The HAAN normalization operator: a NormProvider that applies the paper's
// three optimizations — ISD skipping (§III-B), input subsampling (§III-C) and
// operand quantization (§III-C) — with the square-root inverter's fast
// inverse-sqrt numerics (§IV-B). This is the bit-level software twin of the
// accelerator datapath; `haan::accel` adds cycle timing on top.
#pragma once

#include <memory>
#include <memory_resource>
#include <vector>

#include "core/config.hpp"
#include "core/isd_predictor.hpp"
#include "mem/arena.hpp"
#include "model/norm_provider.hpp"

namespace haan::core {

/// Drop-in HAAN normalization.
class HaanNormProvider final : public model::NormProvider {
 public:
  /// `norm_threads` sizes the worker-local RowPartitionPool that splits large
  /// row blocks across threads (0 = HAAN_NORM_THREADS / hardware default,
  /// 1 = fully serial). Row kernels are row-wise and the ISD predictor's
  /// record/predict bookkeeping stays serial, so results are bit-identical
  /// for any thread count.
  explicit HaanNormProvider(HaanConfig config, std::size_t norm_threads = 0);

  const HaanConfig& config() const { return config_; }

  void begin_sequence() override;

  const char* trace_label() const override { return "norm/haan"; }

  void normalize(std::size_t layer_index, std::size_t position, model::NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override;

  /// Fused path: the residual add shares a pass with the operand-buffer fill,
  /// so the datapath reads the hidden vector once less per norm layer.
  void residual_add_normalize(std::size_t layer_index, std::size_t position,
                              model::NormKind kind, std::span<float> h,
                              std::span<const float> residual,
                              std::span<const float> alpha,
                              std::span<const float> beta,
                              std::span<float> out) override;

  /// Row-block overrides: per-layer work (skip-plan lookup, kernel backend
  /// resolution, alpha/beta prep, scratch sizing) is hoisted out of the row
  /// loop and the kernels run once over the whole (rows x d) block. In FP32
  /// the operand-buffer copy disappears entirely (statistics read the hidden
  /// block in place). Bit-identical to the per-row loop for a given backend.
  void normalize_rows(std::size_t layer_index, std::size_t start_position,
                      model::NormKind kind, std::size_t rows,
                      std::span<const float> x, std::span<const float> alpha,
                      std::span<const float> beta, std::span<float> out) override;

  void residual_add_normalize_rows(std::size_t layer_index,
                                   std::size_t start_position,
                                   model::NormKind kind, std::size_t rows,
                                   std::span<float> h,
                                   std::span<const float> residual,
                                   std::span<const float> alpha,
                                   std::span<const float> beta,
                                   std::span<float> out) override;

  /// Execution counters for verifying skip behaviour end to end. The per-row
  /// counters (norm_calls, isd_*, elements_read, fused_residual_norms) count
  /// rows regardless of entry point, so per-row and row-block execution report
  /// identical values; batched_* record how well callers batch the seam.
  struct Counters {
    std::size_t norm_calls = 0;
    std::size_t isd_computed = 0;   ///< square-root inverter invocations
    std::size_t isd_predicted = 0;  ///< predictor invocations (skipped ISD)
    std::size_t elements_read = 0;  ///< statistics-path memory reads
    std::size_t fused_residual_norms = 0;  ///< fused residual+norm rows
    std::size_t batched_norm_calls = 0;    ///< row-block layer invocations
    std::size_t batched_rows = 0;          ///< rows through the row-block path
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// The ISD value used for the most recent normalize() call (test hook).
  double last_isd_used() const { return last_isd_; }

 private:
  /// The autotuned kernel table for width d, memoized per provider (one
  /// registry lookup, then a pointer compare per call). Every datapath pass —
  /// operand copy, statistics, quantization, normalize — goes through this
  /// ONE table so per-row and row-block execution stay bit-identical under
  /// autotuning.
  const kernels::KernelTable& tuned(std::size_t d);

  /// scratch_arena_ when placement is on, the default heap resource otherwise.
  std::pmr::memory_resource* scratch_resource() const;

  double compute_isd(double second_moment) const;

  /// Statistics + normalization over the already-filled (pre-quantization)
  /// operand buffer; shared by the plain and fused entry points.
  void normalize_prepared(std::size_t layer_index, std::size_t position,
                          model::NormKind kind, std::span<const float> alpha,
                          std::span<const float> beta, std::span<float> out);

  /// Quantizes a (rows x d) operand block in place with per-row scales.
  void quantize_rows(float* block, std::size_t rows, std::size_t d);

  /// Shared tail of the row-block entry points: per-row statistics over
  /// `src` (the quantized operand block, or the hidden block itself in FP32),
  /// ISD compute/predict per row, then one normalize+saturate kernel call.
  void finish_rows(std::size_t layer_index, std::size_t start_position,
                   model::NormKind kind, std::size_t rows, std::size_t d,
                   const float* src, bool stats_done,
                   std::span<const float> alpha, std::span<const float> beta,
                   std::span<float> out);

  HaanConfig config_;
  const kernels::KernelTable* tuned_table_ = nullptr;
  std::size_t tuned_d_ = 0;
  /// for_rows chunk cap from the autotuner's cross-node decision (memoized
  /// with tuned_table_; see ExactNormProvider::chunk_cap_).
  std::size_t chunk_cap_ = 0;
  IsdPredictor predictor_;
  model::RowPartitionPool pool_;  ///< worker-local row parallelism
  Counters counters_;
  /// Backs every scratch vector below under HAAN_NUMA=auto/interleave: all of
  /// them are resized only on the owning worker thread (pool chunks write
  /// into pre-sized slots), so the arena stays single-owner. Declared before
  /// the vectors it backs. Null with placement off (vectors use the heap).
  std::unique_ptr<mem::Arena> scratch_arena_;
  std::pmr::vector<float> buffer_;
  double last_isd_ = 0.0;

  // Row-block scratch, reused across layers (no hot-path allocation).
  std::pmr::vector<kernels::SumStats> row_stats_;
  std::pmr::vector<double> row_mean_;
  std::pmr::vector<double> row_isd_;
  std::pmr::vector<float> row_scale_;
};

}  // namespace haan::core
