#include "core/isd_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "numerics/float16.hpp"

namespace haan::core {

IsdPredictor::IsdPredictor(SkipPlan plan, bool fp16_arithmetic)
    : plan_(plan), fp16_(fp16_arithmetic) {}

void IsdPredictor::begin_sequence() { anchor_log_isd_.clear(); }

void IsdPredictor::record_anchor(std::size_t position, double isd) {
  HAAN_EXPECTS(isd > 0.0);
  if (anchor_log_isd_.size() <= position) anchor_log_isd_.resize(position + 1);
  anchor_log_isd_[position] = std::log(isd);
}

std::size_t IsdPredictor::anchor_count() const {
  std::size_t n = 0;
  for (const auto& a : anchor_log_isd_) {
    if (a.has_value()) ++n;
  }
  return n;
}

double IsdPredictor::extrapolate(double anchor_log_isd, std::size_t layer) const {
  HAAN_EXPECTS(plan_.skips(layer));
  const double offset = static_cast<double>(layer - plan_.start);
  // The hardware ISD register saturates; clamp so a badly misfitted plan
  // degrades accuracy (paper Table II) instead of producing inf/NaN.
  constexpr double kIsdMin = 1e-6;
  constexpr double kIsdMax = 1e6;
  if (!fp16_) {
    return std::clamp(std::exp(anchor_log_isd + plan_.decay * offset), kIsdMin,
                      kIsdMax);
  }
  // Scalar FP16 unit: each intermediate rounds to half precision.
  using numerics::Float16;
  const Float16 log_anchor(static_cast<float>(anchor_log_isd));
  const Float16 slope(static_cast<float>(plan_.decay));
  const Float16 step(static_cast<float>(offset));
  const Float16 log_pred = log_anchor + slope * step;
  return std::clamp(
      static_cast<double>(Float16(std::exp(log_pred.to_float())).to_float()),
      kIsdMin, kIsdMax);
}

double IsdPredictor::predict(std::size_t layer, std::size_t position) const {
  HAAN_EXPECTS(plan_.skips(layer));
  if (position < anchor_log_isd_.size() && anchor_log_isd_[position].has_value()) {
    return extrapolate(*anchor_log_isd_[position], layer);
  }
  // Fallback: average anchor over the sequence.
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& a : anchor_log_isd_) {
    if (a.has_value()) {
      sum += *a;
      ++n;
    }
  }
  HAAN_EXPECTS(n > 0);
  return extrapolate(sum / static_cast<double>(n), layer);
}

}  // namespace haan::core
