// Algorithm 1 from the paper: find the layer window whose log-ISD series is
// most negatively linear (smallest Pearson correlation vs. layer index) and
// fit the per-layer decay slope `e` used by the runtime predictor.
#pragma once

#include <string>

#include "core/isd.hpp"

namespace haan::core {

/// The output of Algorithm 1. Layers k with start < k <= end have their ISD
/// computation skipped at runtime; layer `start` is the anchor whose ISD is
/// still computed and extrapolated from (paper eq. 3).
struct SkipPlan {
  std::size_t start = 0;       ///< i_f: anchor layer (ISD computed)
  std::size_t end = 0;         ///< j_f: last skipped layer (inclusive)
  double decay = 0.0;          ///< e: per-layer log-ISD slope from calDecay
  double pearson = 1.0;        ///< the winning (most negative) correlation
  bool enabled = false;        ///< false = no skipping (plan disabled)

  /// True if `layer` is one whose ISD is predicted rather than computed.
  bool skips(std::size_t layer) const {
    return enabled && layer > start && layer <= end;
  }

  /// Number of skipped ISD computations.
  std::size_t skipped_count() const { return enabled ? end - start : 0; }

  std::string to_string() const;
};

/// Planner knobs. `min_gap` is the paper's M: candidate windows (i, j) must
/// satisfy j - i >= M. `max_gap` bounds the window so the linear model stays
/// local (0 = unbounded, the paper's formulation).
struct SkipPlannerOptions {
  std::size_t min_gap = 8;
  std::size_t max_gap = 0;
  /// Windows whose mean log-ISD fit has r^2 below this are rejected even if
  /// their Pearson is the most negative (guards degenerate flat windows).
  double min_r_squared = 0.0;
  /// Prediction-error validation (the paper validates candidate ranges
  /// against accuracy, Table II; this is the calibration-set equivalent):
  /// a window qualifies only if the mean |log ISD prediction error| of
  /// eq. (3), anchored per observation, stays below this bound. Smoothly
  /// *curved* monotone regions have Pearson ~ -1 but fail this check, which
  /// is what pushes the plan into the genuinely linear deep-layer tail.
  /// Set to infinity for the raw Algorithm 1 objective.
  double max_prediction_error = 0.05;
};

/// Algorithm 1: scans all (i, j) windows over the trace's mean log-ISD series,
/// returns the plan with the most negative Pearson correlation and the
/// calDecay slope fitted on the same window. Aborts if the trace has fewer
/// than min_gap + 1 layers.
SkipPlan plan_skip(const IsdTrace& trace, const SkipPlannerOptions& options = {});

/// calDecay (paper Algorithm 1, line 10): least-squares slope of the window's
/// mean log-ISD against the layer offset.
double cal_decay(std::span<const double> window_log_isd);

/// Convenience: builds a fixed plan (paper Table II sweeps hand-picked
/// ranges); decay is fitted from the trace over that window.
SkipPlan fixed_range_plan(const IsdTrace& trace, std::size_t start, std::size_t end);

}  // namespace haan::core
