#include "core/isd.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::core {

double exact_isd(std::span<const float> z, model::NormKind kind, double eps) {
  const tensor::VectorStats stats = tensor::exact_stats(z);
  const double second_moment =
      kind == model::NormKind::kLayerNorm ? stats.variance : stats.rms * stats.rms;
  return 1.0 / std::sqrt(second_moment + eps);
}

IsdTrace::IsdTrace(std::size_t n_layers) : n_layers_(n_layers) {
  HAAN_EXPECTS(n_layers > 0);
}

void IsdTrace::begin_observation() {
  observations_.emplace_back(n_layers_, std::numeric_limits<double>::quiet_NaN());
}

void IsdTrace::record(std::size_t layer, double log_isd) {
  HAAN_EXPECTS(!observations_.empty());
  record_at(observations_.size() - 1, layer, log_isd);
}

void IsdTrace::record_at(std::size_t obs, std::size_t layer, double log_isd) {
  HAAN_EXPECTS(obs < observations_.size());
  HAAN_EXPECTS(layer < n_layers_);
  observations_[obs][layer] = log_isd;
}

double IsdTrace::log_isd(std::size_t obs, std::size_t layer) const {
  HAAN_EXPECTS(obs < observations_.size());
  HAAN_EXPECTS(layer < n_layers_);
  return observations_[obs][layer];
}

std::vector<double> IsdTrace::mean_log_isd() const {
  std::vector<double> mean(n_layers_, 0.0);
  std::vector<std::size_t> counts(n_layers_, 0);
  for (const auto& obs : observations_) {
    for (std::size_t l = 0; l < n_layers_; ++l) {
      if (!std::isnan(obs[l])) {
        mean[l] += obs[l];
        ++counts[l];
      }
    }
  }
  for (std::size_t l = 0; l < n_layers_; ++l) {
    HAAN_ENSURES(counts[l] > 0);  // every layer must have been observed
    mean[l] /= static_cast<double>(counts[l]);
  }
  return mean;
}

std::span<const double> IsdTrace::observation(std::size_t obs) const {
  HAAN_EXPECTS(obs < observations_.size());
  return observations_[obs];
}

IsdTrace collect_isd_trace(model::Transformer& model,
                           std::span<const std::vector<int>> samples,
                           const TraceCollectorOptions& options) {
  HAAN_EXPECTS(!samples.empty());
  HAAN_EXPECTS(options.position_stride >= 1);
  const auto& config = model.config();
  IsdTrace trace(config.norm_layer_count());

  // Observations are (sample, position) pairs. forward_hidden sweeps all
  // positions of layer 0, then layer 1, ...; observation rows are created
  // lazily per position on first sight and filled layer by layer.
  model::ExactNormProvider exact;
  for (const auto& tokens : samples) {
    std::vector<std::ptrdiff_t> obs_of_position(tokens.size(), -1);
    model.set_norm_observer(
        [&](std::size_t layer, std::size_t position, std::span<const float> z) {
          if (position % options.position_stride != 0) return;
          if (obs_of_position[position] < 0) {
            trace.begin_observation();
            obs_of_position[position] =
                static_cast<std::ptrdiff_t>(trace.observation_count()) - 1;
          }
          trace.record_at(static_cast<std::size_t>(obs_of_position[position]), layer,
                          std::log(exact_isd(z, config.norm_kind, options.eps)));
        });
    model.forward_hidden(tokens, exact);
  }
  model.set_norm_observer({});
  return trace;
}

}  // namespace haan::core
