// Offline calibration driver (paper §V-A: "100 samples from Wikitext"): run a
// calibration corpus through the model with exact normalization, collect the
// ISD trace, and run Algorithm 1. Plans serialize to JSON so the expensive
// pass is separable from evaluation.
#pragma once

#include <string>
#include <vector>

#include "common/json_lite.hpp"
#include "core/isd.hpp"
#include "core/skip_planner.hpp"

namespace haan::core {

/// Calibration knobs.
struct CalibrationOptions {
  std::size_t n_samples = 32;       ///< calibration sequences
  std::size_t seq_len = 32;         ///< tokens per sequence
  std::size_t position_stride = 8;  ///< record every k-th position's ISD
  std::uint64_t seed = 7;
  SkipPlannerOptions planner;
};

/// Calibration output: the winning plan plus the raw trace (kept for the
/// Fig 2 bench and for fitting fixed ranges in the Table II ablation).
struct CalibrationResult {
  SkipPlan plan;
  IsdTrace trace;
};

/// Deterministic synthetic token corpus (the Wikitext substitute).
std::vector<std::vector<int>> random_token_corpus(std::size_t vocab_size,
                                                  std::size_t n_samples,
                                                  std::size_t seq_len,
                                                  std::uint64_t seed);

/// Full calibration: corpus -> exact forwards -> ISD trace -> Algorithm 1.
CalibrationResult calibrate_skip_plan(model::Transformer& model,
                                      const CalibrationOptions& options = {});

/// JSON (de)serialization for persisting plans.
common::Json skip_plan_to_json(const SkipPlan& plan);
SkipPlan skip_plan_from_json(const common::Json& json);

/// Saves/loads a plan to/from a file. Load aborts on malformed content.
bool save_skip_plan(const SkipPlan& plan, const std::string& path);
SkipPlan load_skip_plan(const std::string& path);

}  // namespace haan::core
