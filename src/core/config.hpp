// The HAAN algorithm configuration: which of the three optimizations (ISD
// skipping, input subsampling, operand quantization) are active and how.
// Paper §V-A fixes one configuration per model; Table II sweeps them.
#pragma once

#include <cstddef>
#include <string>

#include "core/skip_planner.hpp"
#include "numerics/formats.hpp"

namespace haan::core {

/// Full algorithm configuration for a HaanNormProvider.
struct HaanConfig {
  /// Subsample length Nsub; 0 means "use the full vector".
  std::size_t nsub = 0;

  /// Input/operand numeric format (paper: INT8 for LLaMA, FP16 for OPT/GPT2).
  numerics::NumericFormat format = numerics::NumericFormat::kFP32;

  /// Use the bit-hack + Newton square-root inverter (vs exact 1/sqrt).
  bool use_fast_invsqrt = true;

  /// Newton refinement iterations after the initial guess (paper: 1).
  int newton_iterations = 1;

  /// Emulate the scalar FP16 prediction unit for skipped-layer ISD.
  bool predictor_fp16 = false;

  /// Variance epsilon, matching framework LayerNorm semantics.
  double eps = 1e-5;

  /// ISD skip plan from Algorithm 1 (disabled by default).
  SkipPlan plan;

  std::string to_string() const;
};

/// Paper §V-A per-model algorithm settings, translated to a surrogate of
/// embedding width `width`. The paper's Nsub is expressed for the real
/// embedding width; surrogates preserve the *fraction* of the vector used,
/// floored so estimator noise stays representative (see EXPERIMENTS.md):
///   LLaMA-7B : Nsub 256/4096, INT8, skip (50, 60)   -> fraction 1/16
///   OPT-2.7B : Nsub 1280/2560, FP16, skip (55, 62)  -> fraction 1/2
///   GPT2-1.5B: Nsub 800/1600, FP16, skip (85, 92)   -> fraction 1/2
/// Plans are attached separately after calibration.
HaanConfig llama7b_algorithm_config(std::size_t width);
HaanConfig opt2p7b_algorithm_config(std::size_t width);
HaanConfig gpt2_1p5b_algorithm_config(std::size_t width);

/// Relative ISD estimation noise of prefix subsampling: the standard
/// deviation of (isd_est / isd_exact - 1) for near-Gaussian inputs. Used to
/// map paper Nsub values onto surrogate widths at equal noise.
double subsample_noise(std::size_t nsub, std::size_t full_length);

}  // namespace haan::core
