// Shared NormProvider factory: maps a `--norm=<name>` string to a constructed
// provider so the serving runtime, benches and examples all select
// normalization backends the same way. "haan" resolves to the paper's §V-A
// per-model algorithm configuration (subsample fraction + operand format) for
// the model named in the options; explicit variants pin a configuration
// regardless of model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/haan_norm.hpp"
#include "model/norm_provider.hpp"

namespace haan::core {

/// Construction context shared by every provider the factory can build.
struct ProviderOptions {
  /// Model embedding width; required by the haan* variants (sizes Nsub).
  std::size_t width = 0;

  /// Variance epsilon for all providers.
  double eps = 1e-5;

  /// Skip plan attached to haan* variants (default-constructed = disabled).
  SkipPlan plan;

  /// Model name ("llama7b*", "opt*", "gpt2*"); selects the paper per-model
  /// configuration for the plain "haan" variant. Unknown/empty names fall
  /// back to the OPT-style config (Nsub = width/2, FP16).
  std::string model_name;

  /// Worker-local RowPartitionPool size for the row-block entry points
  /// (0 = HAAN_NORM_THREADS / hardware default, 1 = fully serial). Outputs
  /// are bit-identical for any value.
  std::size_t norm_threads = 0;
};

/// Registered provider names, in help order.
std::vector<std::string> norm_provider_names();

/// True if `name` is a registered provider name.
bool is_norm_provider_name(const std::string& name);

/// "exact | haan | ..." — for --help strings.
std::string norm_provider_help();

/// Builds the provider named `name`. Returns nullptr for unknown names so CLI
/// drivers can report the error; haan* variants require options.width > 0.
std::unique_ptr<model::NormProvider> make_norm_provider(
    const std::string& name, const ProviderOptions& options);

/// The HaanConfig the factory would attach to `name` (haan* variants only;
/// aborts otherwise). Exposed so benches can print the resolved settings.
HaanConfig resolve_haan_config(const std::string& name,
                               const ProviderOptions& options);

/// Counters hook: the HAAN execution counters when `provider` is a
/// HaanNormProvider, nullptr otherwise (e.g. exact).
const HaanNormProvider* as_haan_provider(const model::NormProvider* provider);

}  // namespace haan::core
