// ISD (inverse standard deviation, 1/sigma) utilities and the trace container
// Algorithm 1 consumes. The paper's statistical study (§III-A) plots log(ISD)
// per normalization layer for individual tokens; IsdTrace stores exactly that:
// one log-ISD observation per (calibration observation, layer).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/config.hpp"
#include "model/transformer.hpp"

namespace haan::core {

/// Exact ISD of a vector under the given normalization semantics:
/// LayerNorm: 1/sqrt(Var(z) + eps); RMSNorm: 1/sqrt(RMS(z)^2 + eps).
double exact_isd(std::span<const float> z, model::NormKind kind, double eps = 1e-5);

/// Log-ISD observations across normalization layers.
///
/// Layout: observation-major. Each observation is one (calibration sample,
/// token position) pair, holding log(ISD) for every norm layer in execution
/// order — i.e. one poly-line of the paper's Fig 2.
class IsdTrace {
 public:
  /// Creates an empty trace for a model with `n_layers` normalization layers.
  explicit IsdTrace(std::size_t n_layers);

  std::size_t layer_count() const { return n_layers_; }
  std::size_t observation_count() const { return observations_.size(); }

  /// Starts a new observation (all layers NaN until recorded).
  void begin_observation();

  /// Records log(ISD) for `layer` in the current observation.
  void record(std::size_t layer, double log_isd);

  /// Records log(ISD) for `layer` in observation `obs` (used when several
  /// observations fill concurrently, e.g. one per token position).
  void record_at(std::size_t obs, std::size_t layer, double log_isd);

  /// Log-ISD of observation `obs` at `layer`. NaN when never recorded.
  double log_isd(std::size_t obs, std::size_t layer) const;

  /// Mean log-ISD per layer across observations (ignoring NaN gaps).
  /// This is the series Algorithm 1 scans.
  std::vector<double> mean_log_isd() const;

  /// The full series of one observation (length layer_count).
  std::span<const double> observation(std::size_t obs) const;

 private:
  std::size_t n_layers_;
  std::vector<std::vector<double>> observations_;
};

/// Options controlling trace collection.
struct TraceCollectorOptions {
  /// Record every `position_stride`-th token position (1 = all).
  std::size_t position_stride = 1;
  double eps = 1e-5;
};

/// Runs `samples` through `model` with exact normalization, recording the
/// log-ISD of every norm-layer input. One observation per (sample, recorded
/// position). This is the calibration data-gathering loop of Algorithm 1
/// (lines 2-4). Temporarily installs (and afterwards clears) the model's norm
/// observer, hence the non-const reference.
IsdTrace collect_isd_trace(model::Transformer& model,
                           std::span<const std::vector<int>> samples,
                           const TraceCollectorOptions& options = {});

}  // namespace haan::core
