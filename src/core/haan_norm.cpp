#include "core/haan_norm.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/subsample.hpp"
#include "numerics/fast_math.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::core {

HaanNormProvider::HaanNormProvider(HaanConfig config)
    : config_(config), predictor_(config.plan, config.predictor_fp16) {}

void HaanNormProvider::begin_sequence() { predictor_.begin_sequence(); }

double HaanNormProvider::compute_isd(double second_moment) const {
  const double x = second_moment + config_.eps;
  if (!config_.use_fast_invsqrt) return 1.0 / std::sqrt(x);
  return static_cast<double>(numerics::fast_inv_sqrt(static_cast<float>(x),
                                                     config_.newton_iterations));
}

void HaanNormProvider::normalize(std::size_t layer_index, std::size_t position,
                                 model::NormKind kind, std::span<const float> z,
                                 std::span<const float> alpha,
                                 std::span<const float> beta, std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  ++counters_.norm_calls;

  // Operand quantization: the datapath sees the quantized input both in the
  // statistics path and the normalization path (paper §III-C / §IV-A).
  buffer_.assign(z.begin(), z.end());
  if (config_.format != numerics::NumericFormat::kFP32) {
    const float scale = config_.format == numerics::NumericFormat::kINT8
                            ? numerics::choose_int8_scale(buffer_)
                            : 1.0f;
    numerics::quantize_dequantize_span(buffer_, config_.format, scale);
  }

  double mean = 0.0;
  double isd;
  if (predictor_.should_skip(layer_index)) {
    // ISD skipped: predicted from the anchor layer (paper eq. 3). LayerNorm
    // still needs the mean, which the subsampled adder tree provides cheaply.
    isd = predictor_.predict(layer_index, position);
    ++counters_.isd_predicted;
    if (kind == model::NormKind::kLayerNorm) {
      const SubsampledStats stats =
          subsampled_stats(buffer_, config_.nsub, kind, config_.eps);
      mean = stats.mean;
      counters_.elements_read += stats.used;
    }
  } else {
    const SubsampledStats stats =
        subsampled_stats(buffer_, config_.nsub, kind, config_.eps);
    counters_.elements_read += stats.used;
    mean = stats.mean;
    isd = compute_isd(stats.second_moment);
    ++counters_.isd_computed;
    if (predictor_.is_anchor(layer_index)) predictor_.record_anchor(position, isd);
  }
  last_isd_ = isd;

  if (kind == model::NormKind::kLayerNorm) {
    tensor::layernorm_with_isd(buffer_, mean, isd, alpha, beta, out);
  } else {
    tensor::rmsnorm_with_isd(buffer_, isd, alpha, beta, out);
  }
  // The hardware datapath saturates instead of producing inf/NaN; clamp the
  // output so badly misconfigured plans (paper Table II's failing rows)
  // degrade accuracy gracefully rather than poisoning downstream layers.
  constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format
  for (float& v : out) {
    if (std::isnan(v)) {
      v = 0.0f;
    } else {
      v = std::clamp(v, -kSaturation, kSaturation);
    }
  }
}

}  // namespace haan::core
