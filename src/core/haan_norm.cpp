#include "core/haan_norm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "core/subsample.hpp"
#include "kernels/autotune.hpp"
#include "kernels/kernels.hpp"
#include "mem/topology.hpp"
#include "numerics/fast_math.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::core {

HaanNormProvider::HaanNormProvider(HaanConfig config, std::size_t norm_threads)
    : config_(config),
      predictor_(config.plan, config.predictor_fp16),
      pool_(norm_threads),
      scratch_arena_(mem::placement_enabled()
                         ? std::make_unique<mem::Arena>(mem::ArenaOptions{
                               /*initial_bytes=*/std::size_t{1} << 18})
                         : nullptr),
      buffer_(scratch_resource()),
      row_stats_(scratch_resource()),
      row_mean_(scratch_resource()),
      row_isd_(scratch_resource()),
      row_scale_(scratch_resource()) {}

std::pmr::memory_resource* HaanNormProvider::scratch_resource() const {
  return scratch_arena_ ? scratch_arena_.get()
                        : std::pmr::get_default_resource();
}

void HaanNormProvider::begin_sequence() { predictor_.begin_sequence(); }

const kernels::KernelTable& HaanNormProvider::tuned(std::size_t d) {
  if (tuned_table_ == nullptr || tuned_d_ != d) {
    const kernels::AutotuneChoice& choice = kernels::tuned_for(d);
    tuned_table_ = choice.table;
    tuned_d_ = d;
    chunk_cap_ = choice.cross_node_partition
                     ? pool_.threads()
                     : std::max<std::size_t>(
                           1, std::min(pool_.threads(),
                                       mem::topology().max_node_cpus()));
  }
  return *tuned_table_;
}

double HaanNormProvider::compute_isd(double second_moment) const {
  const double x = second_moment + config_.eps;
  if (!config_.use_fast_invsqrt) return 1.0 / std::sqrt(x);
  // The float cast of a tiny second moment (all-zero / constant / denormal-
  // scale activations with a small eps) can land in the denormal range or
  // round to zero, violating the bit hack's documented precondition (x > 0,
  // finite, *normal*). Clamp to the smallest normal float, like the hardware
  // square-root inverter's flush-to-smallest-input does.
  const float xf = std::max(static_cast<float>(x),
                            std::numeric_limits<float>::min());
  return static_cast<double>(numerics::fast_inv_sqrt(xf,
                                                     config_.newton_iterations));
}

void HaanNormProvider::normalize(std::size_t layer_index, std::size_t position,
                                 model::NormKind kind, std::span<const float> z,
                                 std::span<const float> alpha,
                                 std::span<const float> beta, std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  buffer_.assign(z.begin(), z.end());
  normalize_prepared(layer_index, position, kind, alpha, beta, out);
}

void HaanNormProvider::residual_add_normalize(
    std::size_t layer_index, std::size_t position, model::NormKind kind,
    std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(residual.size() == h.size());
  // One pass updates the residual stream and fills the operand buffer.
  buffer_.resize(h.size());
  tuned(h.size()).residual_add_copy(h.data(), residual.data(), buffer_.data(),
                                    h.size());
  ++counters_.fused_residual_norms;
  normalize_prepared(layer_index, position, kind, alpha, beta, out);
}

void HaanNormProvider::normalize_rows(std::size_t layer_index,
                                      std::size_t start_position,
                                      model::NormKind kind, std::size_t rows,
                                      std::span<const float> x,
                                      std::span<const float> alpha,
                                      std::span<const float> beta,
                                      std::span<float> out) {
  const std::size_t d = check_row_block(rows, x.size(), alpha, beta, out.size());
  counters_.norm_calls += rows;
  ++counters_.batched_norm_calls;
  counters_.batched_rows += rows;

  const float* src = x.data();
  if (config_.format != numerics::NumericFormat::kFP32) {
    buffer_.assign(x.begin(), x.end());
    quantize_rows(buffer_.data(), rows, d);
    src = buffer_.data();
  }
  // FP32: no operand copy at all — statistics and normalization read the
  // input block in place (the per-row path pays a full buffer fill per row).
  finish_rows(layer_index, start_position, kind, rows, d, src,
              /*stats_done=*/false, alpha, beta, out);
}

void HaanNormProvider::residual_add_normalize_rows(
    std::size_t layer_index, std::size_t start_position, model::NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  const std::size_t d = check_row_block(rows, h.size(), alpha, beta, out.size());
  HAAN_EXPECTS(residual.size() == h.size());
  counters_.norm_calls += rows;
  counters_.fused_residual_norms += rows;
  ++counters_.batched_norm_calls;
  counters_.batched_rows += rows;

  const kernels::KernelTable& k = tuned(d);
  const std::size_t min_rows = model::min_partition_rows(d);
  const float* src;
  bool stats_done = false;
  if (config_.format != numerics::NumericFormat::kFP32) {
    // One pass updates the residual stream and fills the operand block.
    buffer_.resize(h.size());
    pool_.for_rows(rows, min_rows, chunk_cap_,
                   [&](std::size_t, std::size_t r0, std::size_t nr) {
      k.residual_add_copy(h.data() + r0 * d, residual.data() + r0 * d,
                          buffer_.data() + r0 * d, nr * d);
    });
    quantize_rows(buffer_.data(), rows, d);
    src = buffer_.data();
  } else {
    // FP32: fuse the residual add with the per-row statistics sweep and feed
    // the normalization directly from the updated hidden block.
    const bool skip = predictor_.should_skip(layer_index);
    if (!skip || kind == model::NormKind::kLayerNorm) {
      const std::size_t nstat =
          config_.nsub == 0 ? d : std::min(config_.nsub, d);
      row_stats_.resize(rows);
      pool_.for_rows(rows, min_rows, chunk_cap_,
                     [&](std::size_t, std::size_t r0, std::size_t nr) {
        k.residual_add_stats_rows(h.data() + r0 * d, residual.data() + r0 * d,
                                  nr, d, nstat, row_stats_.data() + r0);
      });
      stats_done = true;
    } else {
      // Skipped RMSNorm layers never read statistics: plain add only.
      pool_.for_rows(rows, min_rows, chunk_cap_,
                     [&](std::size_t, std::size_t r0, std::size_t nr) {
        k.residual_add(h.data() + r0 * d, residual.data() + r0 * d, nr * d);
      });
    }
    src = h.data();
  }
  finish_rows(layer_index, start_position, kind, rows, d, src, stats_done,
              alpha, beta, out);
}

void HaanNormProvider::quantize_rows(float* block, std::size_t rows,
                                     std::size_t d) {
  row_scale_.resize(rows);
  const kernels::KernelTable& k = tuned(d);
  // Scale selection and quantization are per-row; chunks write disjoint
  // row_scale_ slots and block rows.
  pool_.for_rows(rows, model::min_partition_rows(d), chunk_cap_,
                 [&](std::size_t, std::size_t r0, std::size_t nr) {
    for (std::size_t r = r0; r < r0 + nr; ++r) {
      row_scale_[r] =
          config_.format == numerics::NumericFormat::kINT8
              ? numerics::choose_int8_scale(std::span(block + r * d, d))
              : 1.0f;
    }
    k.quantize_dequantize_rows(block + r0 * d, nr, d, config_.format,
                               row_scale_.data() + r0);
  });
}

void HaanNormProvider::finish_rows(std::size_t layer_index,
                                   std::size_t start_position,
                                   model::NormKind kind, std::size_t rows,
                                   std::size_t d, const float* src,
                                   bool stats_done, std::span<const float> alpha,
                                   std::span<const float> beta,
                                   std::span<float> out) {
  const kernels::KernelTable& k = tuned(d);
  // Per-layer resolution, hoisted out of the row loop: one skip-plan lookup,
  // one anchor check, one statistics width.
  const bool skip = predictor_.should_skip(layer_index);
  const bool anchor = predictor_.is_anchor(layer_index);
  const bool need_stats = !skip || kind == model::NormKind::kLayerNorm;
  const std::size_t nstat = config_.nsub == 0 ? d : std::min(config_.nsub, d);

  if (need_stats && !stats_done) row_stats_.resize(rows);
  row_mean_.resize(rows);
  row_isd_.resize(rows);
  const double inv_n = 1.0 / static_cast<double>(nstat);

  // Rows partition across the worker-local pool. Within one layer call every
  // row either computes its ISD or predicts it (skip is per layer), so pool
  // chunks only *read* predictor state (predict() is const); anchor recording
  // — the lone predictor write — happens serially below from row_isd_.
  // Counters accumulate serially too, so totals and results are bit-identical
  // to the serial loop for any thread count.
  pool_.for_rows(rows, model::min_partition_rows(d), chunk_cap_,
                 [&](std::size_t, std::size_t r0, std::size_t nr) {
    if (need_stats && !stats_done) {
      k.stats_rows(src + r0 * d, nr, d, nstat, row_stats_.data() + r0);
    }
    for (std::size_t r = r0; r < r0 + nr; ++r) {
      double mean = 0.0;
      double second_moment = 0.0;
      if (need_stats) {
        // Same arithmetic as subsampled_stats over the row's prefix.
        mean = row_stats_[r].sum * inv_n;
        const double sm = kind == model::NormKind::kLayerNorm
                              ? row_stats_[r].sum_sq * inv_n - mean * mean
                              : row_stats_[r].sum_sq * inv_n;
        second_moment = std::max(sm, 0.0);
      }
      row_mean_[r] = kind == model::NormKind::kLayerNorm ? mean : 0.0;
      row_isd_[r] = skip ? predictor_.predict(layer_index, start_position + r)
                         : compute_isd(second_moment);
    }
    // One normalize+affine kernel call per chunk; the saturation clamp
    // (hardware FP16 I/O range) is fused into the same pass.
    k.normalize_affine_rows(src + r0 * d, nr, d, row_mean_.data() + r0,
                            row_isd_.data() + r0, kernels::data_or_null(alpha),
                            kernels::data_or_null(beta), out.data() + r0 * d,
                            /*saturate=*/true);
  });

  if (need_stats) counters_.elements_read += rows * nstat;
  if (skip) {
    counters_.isd_predicted += rows;
  } else {
    counters_.isd_computed += rows;
    if (anchor) {
      for (std::size_t r = 0; r < rows; ++r) {
        predictor_.record_anchor(start_position + r, row_isd_[r]);
      }
    }
  }
  last_isd_ = row_isd_[rows - 1];
}

void HaanNormProvider::normalize_prepared(std::size_t layer_index,
                                          std::size_t position,
                                          model::NormKind kind,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::span<float> out) {
  ++counters_.norm_calls;
  const kernels::KernelTable& k = tuned(buffer_.size());

  // Operand quantization: the datapath sees the quantized input both in the
  // statistics path and the normalization path (paper §III-C / §IV-A).
  if (config_.format != numerics::NumericFormat::kFP32) {
    const float scale = config_.format == numerics::NumericFormat::kINT8
                            ? numerics::choose_int8_scale(buffer_)
                            : 1.0f;
    kernels::quantize_dequantize_span(k, buffer_, config_.format, scale);
  }

  double mean = 0.0;
  double isd;
  if (predictor_.should_skip(layer_index)) {
    // ISD skipped: predicted from the anchor layer (paper eq. 3). LayerNorm
    // still needs the mean, which the subsampled adder tree provides cheaply.
    isd = predictor_.predict(layer_index, position);
    ++counters_.isd_predicted;
    if (kind == model::NormKind::kLayerNorm) {
      const SubsampledStats stats =
          subsampled_stats(k, buffer_, config_.nsub, kind, config_.eps);
      mean = stats.mean;
      counters_.elements_read += stats.used;
    }
  } else {
    const SubsampledStats stats =
        subsampled_stats(k, buffer_, config_.nsub, kind, config_.eps);
    counters_.elements_read += stats.used;
    mean = stats.mean;
    isd = compute_isd(stats.second_moment);
    ++counters_.isd_computed;
    if (predictor_.is_anchor(layer_index)) predictor_.record_anchor(position, isd);
  }
  last_isd_ = isd;

  if (kind == model::NormKind::kLayerNorm) {
    tensor::layernorm_with_isd(k, buffer_, mean, isd, alpha, beta, out);
  } else {
    tensor::rmsnorm_with_isd(k, buffer_, isd, alpha, beta, out);
  }
  // The hardware datapath saturates instead of producing inf/NaN; clamp the
  // output so badly misconfigured plans (paper Table II's failing rows)
  // degrade accuracy gracefully rather than poisoning downstream layers.
  constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format
  for (float& v : out) {
    if (std::isnan(v)) {
      v = 0.0f;
    } else {
      v = std::clamp(v, -kSaturation, kSaturation);
    }
  }
}

}  // namespace haan::core
