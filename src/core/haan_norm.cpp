#include "core/haan_norm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "core/subsample.hpp"
#include "kernels/kernels.hpp"
#include "numerics/fast_math.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::core {

HaanNormProvider::HaanNormProvider(HaanConfig config)
    : config_(config), predictor_(config.plan, config.predictor_fp16) {}

void HaanNormProvider::begin_sequence() { predictor_.begin_sequence(); }

double HaanNormProvider::compute_isd(double second_moment) const {
  const double x = second_moment + config_.eps;
  if (!config_.use_fast_invsqrt) return 1.0 / std::sqrt(x);
  // The float cast of a tiny second moment (all-zero / constant / denormal-
  // scale activations with a small eps) can land in the denormal range or
  // round to zero, violating the bit hack's documented precondition (x > 0,
  // finite, *normal*). Clamp to the smallest normal float, like the hardware
  // square-root inverter's flush-to-smallest-input does.
  const float xf = std::max(static_cast<float>(x),
                            std::numeric_limits<float>::min());
  return static_cast<double>(numerics::fast_inv_sqrt(xf,
                                                     config_.newton_iterations));
}

void HaanNormProvider::normalize(std::size_t layer_index, std::size_t position,
                                 model::NormKind kind, std::span<const float> z,
                                 std::span<const float> alpha,
                                 std::span<const float> beta, std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  buffer_.assign(z.begin(), z.end());
  normalize_prepared(layer_index, position, kind, alpha, beta, out);
}

void HaanNormProvider::residual_add_normalize(
    std::size_t layer_index, std::size_t position, model::NormKind kind,
    std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(residual.size() == h.size());
  // One pass updates the residual stream and fills the operand buffer.
  buffer_.resize(h.size());
  kernels::active().residual_add_copy(h.data(), residual.data(), buffer_.data(),
                                      h.size());
  ++counters_.fused_residual_norms;
  normalize_prepared(layer_index, position, kind, alpha, beta, out);
}

void HaanNormProvider::normalize_prepared(std::size_t layer_index,
                                          std::size_t position,
                                          model::NormKind kind,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::span<float> out) {
  ++counters_.norm_calls;

  // Operand quantization: the datapath sees the quantized input both in the
  // statistics path and the normalization path (paper §III-C / §IV-A).
  if (config_.format != numerics::NumericFormat::kFP32) {
    const float scale = config_.format == numerics::NumericFormat::kINT8
                            ? numerics::choose_int8_scale(buffer_)
                            : 1.0f;
    kernels::quantize_dequantize_span(buffer_, config_.format, scale);
  }

  double mean = 0.0;
  double isd;
  if (predictor_.should_skip(layer_index)) {
    // ISD skipped: predicted from the anchor layer (paper eq. 3). LayerNorm
    // still needs the mean, which the subsampled adder tree provides cheaply.
    isd = predictor_.predict(layer_index, position);
    ++counters_.isd_predicted;
    if (kind == model::NormKind::kLayerNorm) {
      const SubsampledStats stats =
          subsampled_stats(buffer_, config_.nsub, kind, config_.eps);
      mean = stats.mean;
      counters_.elements_read += stats.used;
    }
  } else {
    const SubsampledStats stats =
        subsampled_stats(buffer_, config_.nsub, kind, config_.eps);
    counters_.elements_read += stats.used;
    mean = stats.mean;
    isd = compute_isd(stats.second_moment);
    ++counters_.isd_computed;
    if (predictor_.is_anchor(layer_index)) predictor_.record_anchor(position, isd);
  }
  last_isd_ = isd;

  if (kind == model::NormKind::kLayerNorm) {
    tensor::layernorm_with_isd(buffer_, mean, isd, alpha, beta, out);
  } else {
    tensor::rmsnorm_with_isd(buffer_, isd, alpha, beta, out);
  }
  // The hardware datapath saturates instead of producing inf/NaN; clamp the
  // output so badly misconfigured plans (paper Table II's failing rows)
  // degrade accuracy gracefully rather than poisoning downstream layers.
  constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format
  for (float& v : out) {
    if (std::isnan(v)) {
      v = 0.0f;
    } else {
      v = std::clamp(v, -kSaturation, kSaturation);
    }
  }
}

}  // namespace haan::core
