#include "core/haan_norm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "core/subsample.hpp"
#include "kernels/kernels.hpp"
#include "numerics/fast_math.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::core {

HaanNormProvider::HaanNormProvider(HaanConfig config)
    : config_(config), predictor_(config.plan, config.predictor_fp16) {}

void HaanNormProvider::begin_sequence() { predictor_.begin_sequence(); }

double HaanNormProvider::compute_isd(double second_moment) const {
  const double x = second_moment + config_.eps;
  if (!config_.use_fast_invsqrt) return 1.0 / std::sqrt(x);
  // The float cast of a tiny second moment (all-zero / constant / denormal-
  // scale activations with a small eps) can land in the denormal range or
  // round to zero, violating the bit hack's documented precondition (x > 0,
  // finite, *normal*). Clamp to the smallest normal float, like the hardware
  // square-root inverter's flush-to-smallest-input does.
  const float xf = std::max(static_cast<float>(x),
                            std::numeric_limits<float>::min());
  return static_cast<double>(numerics::fast_inv_sqrt(xf,
                                                     config_.newton_iterations));
}

void HaanNormProvider::normalize(std::size_t layer_index, std::size_t position,
                                 model::NormKind kind, std::span<const float> z,
                                 std::span<const float> alpha,
                                 std::span<const float> beta, std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  buffer_.assign(z.begin(), z.end());
  normalize_prepared(layer_index, position, kind, alpha, beta, out);
}

void HaanNormProvider::residual_add_normalize(
    std::size_t layer_index, std::size_t position, model::NormKind kind,
    std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(residual.size() == h.size());
  // One pass updates the residual stream and fills the operand buffer.
  buffer_.resize(h.size());
  kernels::active().residual_add_copy(h.data(), residual.data(), buffer_.data(),
                                      h.size());
  ++counters_.fused_residual_norms;
  normalize_prepared(layer_index, position, kind, alpha, beta, out);
}

void HaanNormProvider::normalize_rows(std::size_t layer_index,
                                      std::size_t start_position,
                                      model::NormKind kind, std::size_t rows,
                                      std::span<const float> x,
                                      std::span<const float> alpha,
                                      std::span<const float> beta,
                                      std::span<float> out) {
  HAAN_EXPECTS(rows > 0 && !x.empty() && x.size() % rows == 0);
  HAAN_EXPECTS(out.size() == x.size());
  const std::size_t d = x.size() / rows;
  HAAN_EXPECTS(alpha.empty() || alpha.size() == d);
  HAAN_EXPECTS(beta.empty() || beta.size() == d);
  counters_.norm_calls += rows;
  ++counters_.batched_norm_calls;
  counters_.batched_rows += rows;

  const float* src = x.data();
  if (config_.format != numerics::NumericFormat::kFP32) {
    buffer_.assign(x.begin(), x.end());
    quantize_rows(buffer_.data(), rows, d);
    src = buffer_.data();
  }
  // FP32: no operand copy at all — statistics and normalization read the
  // input block in place (the per-row path pays a full buffer fill per row).
  finish_rows(layer_index, start_position, kind, rows, d, src,
              /*stats_done=*/false, alpha, beta, out);
}

void HaanNormProvider::residual_add_normalize_rows(
    std::size_t layer_index, std::size_t start_position, model::NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  HAAN_EXPECTS(rows > 0 && !h.empty() && h.size() % rows == 0);
  HAAN_EXPECTS(out.size() == h.size());
  HAAN_EXPECTS(residual.size() == h.size());
  const std::size_t d = h.size() / rows;
  HAAN_EXPECTS(alpha.empty() || alpha.size() == d);
  HAAN_EXPECTS(beta.empty() || beta.size() == d);
  counters_.norm_calls += rows;
  counters_.fused_residual_norms += rows;
  ++counters_.batched_norm_calls;
  counters_.batched_rows += rows;

  const kernels::KernelTable& k = kernels::active();
  const float* src;
  bool stats_done = false;
  if (config_.format != numerics::NumericFormat::kFP32) {
    // One pass updates the residual stream and fills the operand block.
    buffer_.resize(h.size());
    k.residual_add_copy(h.data(), residual.data(), buffer_.data(), h.size());
    quantize_rows(buffer_.data(), rows, d);
    src = buffer_.data();
  } else {
    // FP32: fuse the residual add with the per-row statistics sweep and feed
    // the normalization directly from the updated hidden block.
    const bool skip = predictor_.should_skip(layer_index);
    if (!skip || kind == model::NormKind::kLayerNorm) {
      const std::size_t nstat =
          config_.nsub == 0 ? d : std::min(config_.nsub, d);
      row_stats_.resize(rows);
      k.residual_add_stats_rows(h.data(), residual.data(), rows, d, nstat,
                                row_stats_.data());
      stats_done = true;
    } else {
      // Skipped RMSNorm layers never read statistics: plain add only.
      k.residual_add(h.data(), residual.data(), h.size());
    }
    src = h.data();
  }
  finish_rows(layer_index, start_position, kind, rows, d, src, stats_done,
              alpha, beta, out);
}

void HaanNormProvider::quantize_rows(float* block, std::size_t rows,
                                     std::size_t d) {
  row_scale_.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    row_scale_[r] =
        config_.format == numerics::NumericFormat::kINT8
            ? numerics::choose_int8_scale(std::span(block + r * d, d))
            : 1.0f;
  }
  kernels::active().quantize_dequantize_rows(block, rows, d, config_.format,
                                             row_scale_.data());
}

void HaanNormProvider::finish_rows(std::size_t layer_index,
                                   std::size_t start_position,
                                   model::NormKind kind, std::size_t rows,
                                   std::size_t d, const float* src,
                                   bool stats_done, std::span<const float> alpha,
                                   std::span<const float> beta,
                                   std::span<float> out) {
  const kernels::KernelTable& k = kernels::active();
  // Per-layer resolution, hoisted out of the row loop: one skip-plan lookup,
  // one anchor check, one statistics width.
  const bool skip = predictor_.should_skip(layer_index);
  const bool anchor = predictor_.is_anchor(layer_index);
  const bool need_stats = !skip || kind == model::NormKind::kLayerNorm;
  const std::size_t nstat = config_.nsub == 0 ? d : std::min(config_.nsub, d);

  if (need_stats && !stats_done) {
    row_stats_.resize(rows);
    k.stats_rows(src, rows, d, nstat, row_stats_.data());
  }

  row_mean_.resize(rows);
  row_isd_.resize(rows);
  const double inv_n = 1.0 / static_cast<double>(nstat);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t position = start_position + r;
    double mean = 0.0;
    double second_moment = 0.0;
    if (need_stats) {
      // Same arithmetic as subsampled_stats over the row's prefix.
      mean = row_stats_[r].sum * inv_n;
      const double sm = kind == model::NormKind::kLayerNorm
                            ? row_stats_[r].sum_sq * inv_n - mean * mean
                            : row_stats_[r].sum_sq * inv_n;
      second_moment = std::max(sm, 0.0);
      counters_.elements_read += nstat;
    }
    double isd;
    if (skip) {
      isd = predictor_.predict(layer_index, position);
      ++counters_.isd_predicted;
    } else {
      isd = compute_isd(second_moment);
      ++counters_.isd_computed;
      if (anchor) predictor_.record_anchor(position, isd);
    }
    row_mean_[r] = kind == model::NormKind::kLayerNorm ? mean : 0.0;
    row_isd_[r] = isd;
  }
  last_isd_ = row_isd_[rows - 1];

  // One normalize+affine kernel call over the whole block; the saturation
  // clamp (hardware FP16 I/O range) is fused into the same pass.
  k.normalize_affine_rows(src, rows, d, row_mean_.data(), row_isd_.data(),
                          kernels::data_or_null(alpha),
                          kernels::data_or_null(beta), out.data(),
                          /*saturate=*/true);
}

void HaanNormProvider::normalize_prepared(std::size_t layer_index,
                                          std::size_t position,
                                          model::NormKind kind,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::span<float> out) {
  ++counters_.norm_calls;

  // Operand quantization: the datapath sees the quantized input both in the
  // statistics path and the normalization path (paper §III-C / §IV-A).
  if (config_.format != numerics::NumericFormat::kFP32) {
    const float scale = config_.format == numerics::NumericFormat::kINT8
                            ? numerics::choose_int8_scale(buffer_)
                            : 1.0f;
    kernels::quantize_dequantize_span(buffer_, config_.format, scale);
  }

  double mean = 0.0;
  double isd;
  if (predictor_.should_skip(layer_index)) {
    // ISD skipped: predicted from the anchor layer (paper eq. 3). LayerNorm
    // still needs the mean, which the subsampled adder tree provides cheaply.
    isd = predictor_.predict(layer_index, position);
    ++counters_.isd_predicted;
    if (kind == model::NormKind::kLayerNorm) {
      const SubsampledStats stats =
          subsampled_stats(buffer_, config_.nsub, kind, config_.eps);
      mean = stats.mean;
      counters_.elements_read += stats.used;
    }
  } else {
    const SubsampledStats stats =
        subsampled_stats(buffer_, config_.nsub, kind, config_.eps);
    counters_.elements_read += stats.used;
    mean = stats.mean;
    isd = compute_isd(stats.second_moment);
    ++counters_.isd_computed;
    if (predictor_.is_anchor(layer_index)) predictor_.record_anchor(position, isd);
  }
  last_isd_ = isd;

  if (kind == model::NormKind::kLayerNorm) {
    tensor::layernorm_with_isd(buffer_, mean, isd, alpha, beta, out);
  } else {
    tensor::rmsnorm_with_isd(buffer_, isd, alpha, beta, out);
  }
  // The hardware datapath saturates instead of producing inf/NaN; clamp the
  // output so badly misconfigured plans (paper Table II's failing rows)
  // degrade accuracy gracefully rather than poisoning downstream layers.
  constexpr float kSaturation = 65504.0f;  // FP16 max, the widest I/O format
  for (float& v : out) {
    if (std::isnan(v)) {
      v = 0.0f;
    } else {
      v = std::clamp(v, -kSaturation, kSaturation);
    }
  }
}

}  // namespace haan::core
