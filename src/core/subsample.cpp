#include "core/subsample.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/isd.hpp"
#include "kernels/kernels.hpp"

namespace haan::core {

SubsampledStats subsampled_stats(std::span<const float> z, std::size_t nsub,
                                 model::NormKind kind, double eps) {
  return subsampled_stats(kernels::active(), z, nsub, kind, eps);
}

SubsampledStats subsampled_stats(const kernels::KernelTable& k,
                                 std::span<const float> z, std::size_t nsub,
                                 model::NormKind kind, double eps) {
  HAAN_EXPECTS(!z.empty());
  const std::size_t n = (nsub == 0) ? z.size() : std::min(nsub, z.size());
  SubsampledStats stats;
  stats.used = n;

  // Vectorized adder-tree pass over the subsampled prefix.
  const kernels::SumStats sums = k.stats(z.data(), n);
  const double inv_n = 1.0 / static_cast<double>(n);
  stats.mean = sums.sum * inv_n;

  const double second_moment =
      kind == model::NormKind::kLayerNorm
          ? sums.sum_sq * inv_n - stats.mean * stats.mean
          : sums.sum_sq * inv_n;
  // The E[x^2] - E[x]^2 form can go fractionally negative in floating point;
  // clamp like the hardware subtractor does.
  stats.second_moment = std::max(second_moment, 0.0);
  stats.isd = 1.0 / std::sqrt(stats.second_moment + eps);
  return stats;
}

double subsample_isd_rel_error(std::span<const float> z, std::size_t nsub,
                               model::NormKind kind, double eps) {
  const double exact = exact_isd(z, kind, eps);
  const double est = subsampled_stats(z, nsub, kind, eps).isd;
  return std::abs(est - exact) / exact;
}

}  // namespace haan::core
