// Runtime ISD predictor (paper eq. 3): for a layer k inside the skip window,
//   log(ISD_k) = log(ISD_anchor) + e * (k - anchor)
// anchored on the ISD actually computed at the window's start layer for the
// same token position. The hardware realizes this as a tiny scalar FP unit;
// an optional FP16 emulation reproduces that unit's rounding.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/skip_planner.hpp"

namespace haan::core {

/// Per-sequence predictor state. begin_sequence() clears anchors; the caller
/// records the anchor-layer ISD per position and queries predictions for
/// skipped layers.
class IsdPredictor {
 public:
  /// `fp16_arithmetic` emulates the scalar FP16 prediction unit.
  explicit IsdPredictor(SkipPlan plan, bool fp16_arithmetic = false);

  const SkipPlan& plan() const { return plan_; }

  /// Clears all anchors (call at sequence start).
  void begin_sequence();

  /// True if the ISD of `layer` should be predicted, not computed.
  bool should_skip(std::size_t layer) const { return plan_.skips(layer); }

  /// True if `layer` is the anchor whose computed ISD must be recorded.
  bool is_anchor(std::size_t layer) const {
    return plan_.enabled && layer == plan_.start;
  }

  /// Records the computed ISD of the anchor layer for `position`.
  void record_anchor(std::size_t position, double isd);

  /// Predicted ISD for a skipped layer at `position`. Falls back to the mean
  /// anchor seen this sequence if the position has no anchor (should not
  /// happen in normal execution); aborts if no anchor at all was recorded.
  double predict(std::size_t layer, std::size_t position) const;

  /// Number of anchors currently recorded.
  std::size_t anchor_count() const;

 private:
  double extrapolate(double anchor_log_isd, std::size_t layer) const;

  SkipPlan plan_;
  bool fp16_;
  std::vector<std::optional<double>> anchor_log_isd_;  // indexed by position
};

}  // namespace haan::core
