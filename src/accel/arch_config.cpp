#include "accel/arch_config.hpp"

#include <sstream>

namespace haan::accel {

std::string AcceleratorConfig::to_string() const {
  std::ostringstream out;
  out << name << "{(" << pd << ", " << pn << "), "
      << numerics::to_string(io_format) << ", " << pipelines << " pipeline(s), "
      << clock_mhz << " MHz}";
  return out.str();
}

AcceleratorConfig haan_v1() {
  AcceleratorConfig config;
  config.name = "HAAN-v1";
  config.pd = 128;
  config.pn = 128;
  config.io_format = numerics::NumericFormat::kFP16;
  return config;
}

AcceleratorConfig haan_v2() {
  AcceleratorConfig config;
  config.name = "HAAN-v2";
  config.pd = 80;
  config.pn = 160;
  config.io_format = numerics::NumericFormat::kFP16;
  return config;
}

AcceleratorConfig haan_v3() {
  AcceleratorConfig config;
  config.name = "HAAN-v3";
  config.pd = 64;
  config.pn = 128;
  config.io_format = numerics::NumericFormat::kFP16;
  return config;
}

AcceleratorConfig haan_int8_256() {
  AcceleratorConfig config;
  config.name = "HAAN-int8";
  config.pd = 256;
  config.pn = 256;
  config.io_format = numerics::NumericFormat::kINT8;
  return config;
}

}  // namespace haan::accel
