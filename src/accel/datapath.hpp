// Bit-accurate functional models of the three HAAN datapath units
// (paper Figs 4-6):
//   * Input Statistics Calculator — FP2FX conversion, twin adder trees
//     accumulating E[x^2] and E[x] in parallel, variance by subtraction.
//   * Square Root Inverter — FX2FP, 0x5F3759DF initial guess, fixed-point
//     Newton refinement with the 1.5 constant (0x00C00000), FP2FX.
//   * Normalization Unit — (x - mean) * isd * alpha + beta in fixed point,
//     optional FX2FP output conversion.
// These compute the exact values the cycle model (pipeline.hpp) charges
// time for.
#pragma once

#include <span>

#include "accel/arch_config.hpp"
#include "model/config.hpp"
#include "numerics/fixed_point.hpp"

namespace haan::accel {

/// Output of the input statistics calculator.
struct IscResult {
  numerics::Fixed mean;      ///< E[x], acc_fixed format (0 for RMSNorm)
  numerics::Fixed variance;  ///< E[x^2] - E[x]^2 (or E[x^2] for RMSNorm)
  std::size_t elements_used = 0;
};

/// Runs the ISC over the first `nsub` elements of `z` (0 = all). `z` values
/// are the already-quantized element values (FP16/INT8 quantization happens
/// upstream of the FP2FX units, see HaanNormProvider).
IscResult input_statistics_calculator(std::span<const float> z, std::size_t nsub,
                                      model::NormKind kind,
                                      const AcceleratorConfig& config);

/// Output of the square root inverter.
struct SriResult {
  numerics::Fixed isd;       ///< refined 1/sqrt(variance + eps), isd_fixed
  float initial_guess = 0;   ///< the bit-hack seed before Newton refinement
};

/// Runs the SRI on a variance produced by the ISC.
SriResult square_root_inverter(const numerics::Fixed& variance,
                               const AcceleratorConfig& config);

/// Runs the normalization unit: out[i] = (z[i] - mean) * isd * alpha[i] +
/// beta[i] through the fixed-point datapath, converting the result back to
/// float (FX2FP). alpha/beta may be empty.
void normalization_unit(std::span<const float> z, const numerics::Fixed& mean,
                        const numerics::Fixed& isd, std::span<const float> alpha,
                        std::span<const float> beta, model::NormKind kind,
                        const AcceleratorConfig& config, std::span<float> out);

/// Encodes an externally predicted ISD (skipped layers) into the datapath's
/// fixed-point ISD format, as the predictor's output register would hold it.
numerics::Fixed encode_predicted_isd(double isd, const AcceleratorConfig& config);

}  // namespace haan::accel
