// HAAN memory layout (paper Fig 7): the input tensor is flattened row-major
// into memory entries of `bandwidth` elements; the accelerator fetches one
// entry per cycle. In subsampling mode only the leading entries of each
// vector are touched by the statistics path — this model checks that
// property explicitly (tests assert untouched entries stay cold).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace haan::accel {

/// A flattened tensor image with entry-granular access tracking.
class MemoryImage {
 public:
  /// Flattens `rows x cols` data into entries of `bandwidth` elements.
  /// The last entry of each vector may be partially filled (zero padded),
  /// matching the hardware's aligned vector starts.
  MemoryImage(const tensor::Tensor& t, std::size_t bandwidth);

  std::size_t bandwidth() const { return bandwidth_; }
  std::size_t entries_per_vector() const { return entries_per_vector_; }
  std::size_t vector_count() const { return vectors_; }
  std::size_t total_entries() const { return entries_per_vector_ * vectors_; }

  /// Reads entry `entry` of vector `vector` (marks it accessed).
  std::span<const float> read_entry(std::size_t vector, std::size_t entry);

  /// Entries needed to stream the first `nsub` elements of a vector
  /// (0 = full vector).
  std::size_t entries_needed(std::size_t nsub) const;

  /// Number of entries of `vector` read so far.
  std::size_t accessed_entries(std::size_t vector) const;

  /// Reconstructs the first `count` elements of `vector` by streaming entries
  /// (the ISC's view of the data).
  std::vector<float> stream_prefix(std::size_t vector, std::size_t count);

 private:
  std::size_t bandwidth_;
  std::size_t vectors_;
  std::size_t vector_len_;
  std::size_t entries_per_vector_;
  std::vector<float> storage_;              // padded, entry-aligned
  std::vector<std::vector<bool>> accessed_; // [vector][entry]
};

}  // namespace haan::accel
