// Accelerator architecture configuration (paper §IV / §V-B). The two
// parallelism knobs are pd (input-statistics-calculator lanes) and pn
// (normalization-unit lanes); the paper's shipped configurations are
//   HAAN-v1: (128, 128) FP16, single pipeline
//   HAAN-v2: (80, 160)  FP16, single pipeline
//   HAAN-v3: (64, 128)  FP16, single pipeline
// all at a 100 MHz clock on a Xilinx Alveo U280.
#pragma once

#include <cstddef>
#include <string>

#include "numerics/fixed_point.hpp"
#include "numerics/formats.hpp"

namespace haan::accel {

/// Synthesis-time configuration of the HAAN accelerator.
struct AcceleratorConfig {
  std::string name = "HAAN";
  std::size_t pd = 128;  ///< statistics-calculator lanes (elements/cycle)
  std::size_t pn = 128;  ///< normalization-unit lanes (elements/cycle)
  numerics::NumericFormat io_format = numerics::NumericFormat::kFP16;
  std::size_t pipelines = 1;  ///< independent vector pipelines
  double clock_mhz = 100.0;

  /// Fixed-point formats of the intermediate datapath.
  numerics::FixedFormat input_fixed{18, 12};  ///< FP2FX output / element format
  numerics::FixedFormat acc_fixed{40, 16};    ///< adder-tree accumulators
  numerics::FixedFormat isd_fixed{26, 20};    ///< refined ISD (Newton domain)
  numerics::FixedFormat norm_fixed{24, 12};   ///< normalization-unit datapath

  int newton_iterations = 1;  ///< square-root inverter refinement steps
  double eps = 1e-5;          ///< variance epsilon folded into the SRI input

  /// Memory port width in bytes per cycle (one memory entry, Fig 7). A
  /// platform property of the board, not a function of (pd, pn): wider lane
  /// counts than the port can feed do not raise steady-state throughput.
  std::size_t memory_port_bytes = 256;

  /// Elements the memory port delivers per cycle for the configured format.
  std::size_t memory_elems_per_cycle() const {
    return memory_port_bytes / static_cast<std::size_t>(numerics::bits_of(io_format) / 8);
  }

  /// Pipeline levels of the normalization unit: when pd shrinks below pn the
  /// freed resources become extra NU pipeline stages (paper §V-B).
  std::size_t nu_pipeline_levels() const { return pn >= pd ? pn / pd : 1; }

  /// Cycle time in microseconds.
  double cycle_us() const { return 1.0 / clock_mhz; }

  std::string to_string() const;
};

/// Paper configuration presets.
AcceleratorConfig haan_v1();
AcceleratorConfig haan_v2();
AcceleratorConfig haan_v3();

/// A throughput-matched INT8 variant (Table III rows).
AcceleratorConfig haan_int8_256();

}  // namespace haan::accel
