#include "accel/resource_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace haan::accel {

namespace {

/// Per-format unit costs (see header: calibrated to Table III anchors).
struct UnitCosts {
  double dsp_isc, dsp_nu;      // DSP per ISC / NU lane
  double lut_base, lut_isc, lut_nu;
  double ff_base, ff_isc, ff_nu;
  double pw_isc, pw_nu;        // W per lane
};

UnitCosts costs_for(numerics::NumericFormat format) {
  using numerics::NumericFormat;
  switch (format) {
    case NumericFormat::kFP32:
      return {5.206, 6.700, 37600, 62.5, 300, 9218, 20.8, 40.0, 0.01017, 0.03016};
    case NumericFormat::kFP16:
      return {5.206, 6.700, 26840, 0.0, 220, 5138, 20.8, 25.0, 0.008625, 0.020031};
    case NumericFormat::kBF16:
      return {4.8, 5.9, 24000, 10.0, 180, 5000, 20.0, 22.0, 0.0078, 0.0175};
    case NumericFormat::kINT8:
      return {4.237, 1.713, 16628, 71.6, 90, 13400, 20.0, 9.7, 0.0001747, 0.0086453};
  }
  return {};
}

constexpr double kSriDsp = 12.0;
constexpr double kLutPerLevel = 7000.0;
constexpr double kFfPerLevel = 2000.0;
constexpr double kStaticPowerW = 1.2;
constexpr double kPowerPerLevelW = 0.25;

// Device totals implied by Table III's percentage columns.
constexpr double kDeviceLut = 84000.0 / 0.049;
constexpr double kDeviceFf = 17000.0 / 0.005;
constexpr double kDeviceDsp = 1536.0 / 0.125;

double pipeline_levels(const AcceleratorConfig& config) {
  const double ratio =
      static_cast<double>(config.pn) / static_cast<double>(config.pd);
  return std::clamp(ratio, 1.0, 4.0);
}

}  // namespace

double ResourceEstimate::lut_fraction() const { return lut / kDeviceLut; }
double ResourceEstimate::ff_fraction() const { return ff / kDeviceFf; }
double ResourceEstimate::dsp_fraction() const { return dsp / kDeviceDsp; }

std::string ResourceEstimate::to_string() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "LUT %.0f, FF %.0f, DSP %.0f, %.3f W", lut,
                ff, dsp, power_w);
  return buffer;
}

ResourceEstimate estimate_resources(const AcceleratorConfig& config) {
  HAAN_EXPECTS(config.pd >= 1 && config.pn >= 1);
  const UnitCosts costs = costs_for(config.io_format);
  const double pd = static_cast<double>(config.pd);
  const double pn = static_cast<double>(config.pn);
  const double levels = pipeline_levels(config);
  const double p = static_cast<double>(config.pipelines);

  ResourceEstimate estimate;
  estimate.dsp = p * (kSriDsp + pd * costs.dsp_isc + pn * costs.dsp_nu);
  estimate.lut = p * (costs.lut_base + pd * costs.lut_isc + pn * costs.lut_nu +
                      (levels - 1.0) * kLutPerLevel);
  estimate.ff = p * (costs.ff_base + pd * costs.ff_isc + pn * costs.ff_nu +
                     (levels - 1.0) * kFfPerLevel);
  estimate.power_w = effective_power_w(config, 1.0, 1.0);
  return estimate;
}

double effective_power_w(const AcceleratorConfig& config, double isc_utilization,
                         double nu_utilization) {
  HAAN_EXPECTS(isc_utilization >= 0.0 && isc_utilization <= 1.0);
  HAAN_EXPECTS(nu_utilization >= 0.0 && nu_utilization <= 1.0);
  const UnitCosts costs = costs_for(config.io_format);
  const double pd = static_cast<double>(config.pd);
  const double pn = static_cast<double>(config.pn);
  const double levels = pipeline_levels(config);
  const double p = static_cast<double>(config.pipelines);
  return kStaticPowerW +
         p * (pd * costs.pw_isc * isc_utilization +
              pn * costs.pw_nu * nu_utilization +
              (levels - 1.0) * kPowerPerLevelW);
}

}  // namespace haan::accel
