// Cycle-level timing model of the HAAN accelerator. The three units (ISC,
// SRI, NU) form a pipeline over input vectors (paper §IV-C: "the input
// statistics calculator, square root inverter, and normalization unit operate
// in a pipelined manner across multiple input samples"); throughput is set by
// the slowest stage, and (pd, pn) are chosen so stage times are balanced.
#pragma once

#include <cstddef>
#include <string>

#include "accel/arch_config.hpp"
#include "model/config.hpp"

namespace haan::accel {

/// Per-vector timing of the three pipeline stages. Each stage has an
/// *initiation interval* (II: a new vector can enter every II cycles in
/// steady state — for the pipelined ISC/NU this is just their pass count)
/// and a *latency* (cycles for one vector to traverse the stage, including
/// conversion and tree/pipe depth — this only shows up in the pipeline fill).
struct StageCycles {
  std::size_t mem = 0;  ///< II: memory entries streamed (shared port, Fig 7)
  std::size_t isc = 0;  ///< II: statistics passes
  std::size_t sri = 0;  ///< II: the scalar SRI is not internally pipelined
  std::size_t nu = 0;   ///< II: normalization passes

  std::size_t isc_latency = 0;  ///< FP2FX + passes + tree depth + post ops
  std::size_t sri_latency = 0;  ///< conversions + guess + Newton chain
  std::size_t nu_latency = 0;   ///< passes + pipe depth + extra levels

  /// Steady-state initiation interval: one new vector per `bottleneck()`
  /// cycles. Memory streaming overlaps the compute stages but its entry rate
  /// (one per cycle) bounds throughput like any stage.
  std::size_t bottleneck() const;

  /// Latency of the first vector through the pipe (memory overlaps ISC/NU).
  std::size_t fill() const { return isc_latency + sri_latency + nu_latency; }

  std::string to_string() const;
};

/// Workload description of one normalization layer.
struct NormLayerWork {
  std::size_t n = 0;        ///< vector length (embedding dim E)
  std::size_t vectors = 1;  ///< number of vectors (batch x tokens)
  std::size_t nsub = 0;     ///< statistics subsample length (0 = full)
  bool isd_skipped = false; ///< ISD predicted, SRI bypassed
  model::NormKind kind = model::NormKind::kLayerNorm;
};

/// Aggregate timing result.
struct CycleStats {
  std::size_t cycles = 0;
  StageCycles per_vector;

  double latency_us(const AcceleratorConfig& config) const {
    return static_cast<double>(cycles) * config.cycle_us();
  }
};

/// Per-vector stage cycles for `work` on `config`.
StageCycles stage_cycles(const NormLayerWork& work, const AcceleratorConfig& config);

/// Timing of a whole normalization layer: pipeline fill + steady-state
/// bottleneck cycles across `work.vectors` vectors, divided over
/// `config.pipelines` independent pipelines.
CycleStats simulate_norm_layer(const NormLayerWork& work,
                               const AcceleratorConfig& config);

/// Energy-relevant activity of a layer: how many element-slots each unit was
/// busy for (drives the power model's dynamic component).
struct ActivityStats {
  double isc_lane_cycles = 0.0;  ///< active ISC lane-cycles
  double sri_ops = 0.0;          ///< SRI invocations
  double nu_lane_cycles = 0.0;   ///< active NU lane-cycles
};

/// Activity for one layer of `work`.
ActivityStats layer_activity(const NormLayerWork& work,
                             const AcceleratorConfig& config);

}  // namespace haan::accel
