// Accelerator-backed normalization provider: plugs the bit-accurate HAAN
// datapath into the transformer's NormProvider seam, so an entire model
// forward runs on the *hardware numerics* (FP2FX, fixed-point adder trees,
// SRI with fixed-point Newton, NU) while accumulating the cycle and energy
// cost of every normalization layer. This is the "what would the silicon
// actually compute and cost" view; core::HaanNormProvider is the
// algorithm-level float twin.
#pragma once

#include "accel/accelerator.hpp"
#include "core/config.hpp"
#include "core/isd_predictor.hpp"
#include "model/norm_provider.hpp"

namespace haan::accel {

/// NormProvider executing through the accelerator datapath.
///
/// Deliberately per-row: the cycle/energy model prices one vector through the
/// pipeline at a time, so this provider does not override the row-block entry
/// points — batched callers fall back to NormProvider's default per-row loop
/// and the hardware cost accounting stays exact per normalize() call.
class AcceleratorNormProvider final : public model::NormProvider {
 public:
  /// `arch` fixes the hardware configuration; `algorithm` carries the HAAN
  /// knobs (nsub, skip plan — the io format is taken from `arch`).
  AcceleratorNormProvider(AcceleratorConfig arch, core::HaanConfig algorithm);

  void begin_sequence() override;

  void normalize(std::size_t layer_index, std::size_t position, model::NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override;

  /// Cumulative hardware cost since construction (or reset).
  struct HardwareCost {
    std::size_t cycles = 0;
    double energy_uj = 0.0;
    std::size_t norm_calls = 0;
    std::size_t skipped = 0;
  };
  const HardwareCost& cost() const { return cost_; }
  void reset_cost() { cost_ = {}; }

  const HaanAccelerator& accelerator() const { return accel_; }

 private:
  HaanAccelerator accel_;
  core::HaanConfig algorithm_;
  core::IsdPredictor predictor_;
  HardwareCost cost_;
};

}  // namespace haan::accel
