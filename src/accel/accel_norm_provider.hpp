// Accelerator-backed normalization provider: plugs the bit-accurate HAAN
// datapath into the transformer's NormProvider seam, so an entire model
// forward runs on the *hardware numerics* (FP2FX, fixed-point adder trees,
// SRI with fixed-point Newton, NU) while accumulating the cycle and energy
// cost of every normalization layer. This is the "what would the silicon
// actually compute and cost" view; core::HaanNormProvider is the
// algorithm-level float twin.
#pragma once

#include "accel/accelerator.hpp"
#include "core/config.hpp"
#include "core/isd_predictor.hpp"
#include "model/norm_provider.hpp"

namespace haan::accel {

/// NormProvider executing through the accelerator datapath.
///
/// Each row is computed per-vector (the datapath prices one vector through
/// the pipeline at a time), but the row-block entry points are overridden
/// with a BATCHED cycle model: a whole (rows x d) block is priced as one
/// pipelined burst (`NormLayerWork{vectors = rows}`), so the DMA stream and
/// pipeline fill amortize across all packed rows instead of being paid once
/// per row as the per-row virtuals would. The numerics are unchanged — the
/// same per-row datapath runs either way, so outputs are bit-identical to
/// the default per-row loop (and to per-request execution when rows span a
/// packed mega-batch); only the cycle/energy accounting differs.
class AcceleratorNormProvider final : public model::NormProvider {
 public:
  /// `arch` fixes the hardware configuration; `algorithm` carries the HAAN
  /// knobs (nsub, skip plan — the io format is taken from `arch`).
  AcceleratorNormProvider(AcceleratorConfig arch, core::HaanConfig algorithm);

  void begin_sequence() override;

  const char* trace_label() const override { return "norm/accel"; }

  void normalize(std::size_t layer_index, std::size_t position, model::NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override;

  /// Batched row-block execution: every row runs the full datapath
  /// (bit-identical to the per-row loop), and the layer is charged ONE
  /// pipelined cost of `rows` vectors — fill + DMA burst paid once.
  void normalize_rows(std::size_t layer_index, std::size_t start_position,
                      model::NormKind kind, std::size_t rows,
                      std::span<const float> x, std::span<const float> alpha,
                      std::span<const float> beta, std::span<float> out) override;

  void residual_add_normalize_rows(std::size_t layer_index,
                                   std::size_t start_position,
                                   model::NormKind kind, std::size_t rows,
                                   std::span<float> h,
                                   std::span<const float> residual,
                                   std::span<const float> alpha,
                                   std::span<const float> beta,
                                   std::span<float> out) override;

  /// Cumulative hardware cost since construction (or reset). The per-row
  /// counters (norm_calls, skipped) count vectors regardless of entry point;
  /// batched_layers/batched_rows record how often the burst-amortized pricing
  /// ran (one "layer" = one row-block invocation = one DMA burst).
  struct HardwareCost {
    std::size_t cycles = 0;
    double energy_uj = 0.0;
    std::size_t norm_calls = 0;
    std::size_t skipped = 0;
    std::size_t batched_layers = 0;  ///< row-block invocations (DMA bursts)
    std::size_t batched_rows = 0;    ///< vectors priced inside those bursts
  };
  const HardwareCost& cost() const { return cost_; }
  void reset_cost() { cost_ = {}; }

  const HaanAccelerator& accelerator() const { return accel_; }

 private:
  /// Bit-accurate datapath execution of one vector; charges no cost.
  /// Returns true when the layer's ISD was predicted (SRI bypassed).
  bool run_datapath(std::size_t layer_index, std::size_t position,
                    model::NormKind kind, std::span<const float> z,
                    std::span<const float> alpha, std::span<const float> beta,
                    std::span<float> out);

  HaanAccelerator accel_;
  core::HaanConfig algorithm_;
  core::IsdPredictor predictor_;
  HardwareCost cost_;
};

}  // namespace haan::accel
