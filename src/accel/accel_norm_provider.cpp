#include "accel/accel_norm_provider.hpp"

#include "common/assert.hpp"
#include "kernels/kernels.hpp"
#include "numerics/formats.hpp"
#include "obs/trace.hpp"

namespace haan::accel {

AcceleratorNormProvider::AcceleratorNormProvider(AcceleratorConfig arch,
                                                 core::HaanConfig algorithm)
    : accel_(std::move(arch)),
      algorithm_(algorithm),
      predictor_(algorithm.plan, algorithm.predictor_fp16) {}

void AcceleratorNormProvider::begin_sequence() { predictor_.begin_sequence(); }

bool AcceleratorNormProvider::run_datapath(std::size_t layer_index,
                                           std::size_t position,
                                           model::NormKind kind,
                                           std::span<const float> z,
                                           std::span<const float> alpha,
                                           std::span<const float> beta,
                                           std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  const AcceleratorConfig& config = accel_.config();

  // Quantize into the configured I/O format (upstream of the FP2FX units).
  std::vector<float> quantized(z.begin(), z.end());
  if (config.io_format != numerics::NumericFormat::kFP32) {
    const float scale = config.io_format == numerics::NumericFormat::kINT8
                            ? numerics::choose_int8_scale(quantized)
                            : 1.0f;
    kernels::quantize_dequantize_span(quantized, config.io_format, scale);
  }

  const bool skipped = predictor_.should_skip(layer_index);
  numerics::Fixed mean(config.acc_fixed);
  numerics::Fixed isd(config.isd_fixed);
  if (skipped) {
    isd = encode_predicted_isd(predictor_.predict(layer_index, position), config);
    if (kind == model::NormKind::kLayerNorm) {
      mean = input_statistics_calculator(quantized, algorithm_.nsub, kind, config)
                 .mean;
    }
  } else {
    const IscResult stats =
        input_statistics_calculator(quantized, algorithm_.nsub, kind, config);
    mean = stats.mean;
    const SriResult sri = square_root_inverter(stats.variance, config);
    isd = sri.isd;
    if (predictor_.is_anchor(layer_index) && isd.to_double() > 0.0) {
      predictor_.record_anchor(position, isd.to_double());
    }
  }
  normalization_unit(quantized, mean, isd, alpha, beta, kind, config, out);
  return skipped;
}

void AcceleratorNormProvider::normalize(std::size_t layer_index,
                                        std::size_t position, model::NormKind kind,
                                        std::span<const float> z,
                                        std::span<const float> alpha,
                                        std::span<const float> beta,
                                        std::span<float> out) {
  const bool skipped =
      run_datapath(layer_index, position, kind, z, alpha, beta, out);

  // Charge the cycle/energy cost of this vector (fill paid per vector: the
  // per-row entry point models unbatched dispatch, one DMA burst per call).
  NormLayerWork work;
  work.n = z.size();
  work.vectors = 1;
  work.nsub = algorithm_.nsub;
  work.isd_skipped = skipped;
  work.kind = kind;
  const CycleStats cycles = accel_.time_layer(work);
  cost_.cycles += cycles.cycles;
  cost_.energy_uj += accel_.layer_energy_uj(work);
  ++cost_.norm_calls;
  if (skipped) ++cost_.skipped;
}

void AcceleratorNormProvider::normalize_rows(
    std::size_t layer_index, std::size_t start_position, model::NormKind kind,
    std::size_t rows, std::span<const float> x, std::span<const float> alpha,
    std::span<const float> beta, std::span<float> out) {
  const std::size_t d = check_row_block(rows, x.size(), alpha, beta, out.size());
  // Wall-clock of the bit-accurate simulation, NOT the modeled hardware time
  // (that lives in cost_.cycles); nests under the block's norm/accel span.
  HAAN_TRACE_SPAN("datapath", "accel", static_cast<std::uint32_t>(layer_index),
                  static_cast<std::uint32_t>(rows));

  // Skip is resolved per layer, so one batched work item describes every row.
  bool skipped = false;
  for (std::size_t r = 0; r < rows; ++r) {
    skipped = run_datapath(layer_index, start_position + r, kind,
                           x.subspan(r * d, d), alpha, beta,
                           out.subspan(r * d, d));
  }

  // Batched cycle model: the whole block streams through the pipeline as one
  // DMA burst — fill once, then one bottleneck interval per additional row —
  // instead of paying the fill per row as the per-row loop would.
  NormLayerWork work;
  work.n = d;
  work.vectors = rows;
  work.nsub = algorithm_.nsub;
  work.isd_skipped = skipped;
  work.kind = kind;
  cost_.cycles += accel_.time_layer(work).cycles;
  cost_.energy_uj += accel_.layer_energy_uj(work);
  cost_.norm_calls += rows;
  if (skipped) cost_.skipped += rows;
  ++cost_.batched_layers;
  cost_.batched_rows += rows;
}

void AcceleratorNormProvider::residual_add_normalize_rows(
    std::size_t layer_index, std::size_t start_position, model::NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  HAAN_EXPECTS(h.size() == residual.size());
  // The residual add happens host-side (the accelerator sees the summed
  // vector arriving over DMA, exactly like the unfused per-row fallback);
  // the summed block then runs the batched datapath pricing above.
  kernels::residual_add(h, residual);
  normalize_rows(layer_index, start_position, kind, rows, h, alpha, beta, out);
}

}  // namespace haan::accel
