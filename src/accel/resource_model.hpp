// FPGA resource and power model for the HAAN accelerator on a Xilinx Alveo
// U280 at 100 MHz. Linear in the lane counts with per-format unit costs:
//
//   DSP  = 12 + pd*W(fmt) + pn*V(fmt)                       (SRI uses 12)
//   LUT  = base(fmt) + pd*a(fmt) + pn*b(fmt) + (levels-1)*7000
//   FF   = fbase(fmt) + pd*fa(fmt) + pn*fb(fmt) + (levels-1)*2000
//   P    = 1.2 W static + pd*px(fmt) + pn*py(fmt) + (levels-1)*0.25 W
//
// The unit costs are calibrated against the six synthesis anchor points the
// paper publishes in Table III (two (pd, pn) configurations for each of
// FP32/FP16/INT8); the model reproduces those anchors and interpolates the
// rest of the design space. `levels` = NU pipeline levels = clamp(pn/pd, 1, 4).
#pragma once

#include <string>

#include "accel/arch_config.hpp"

namespace haan::accel {

/// Estimated FPGA cost of one configuration.
struct ResourceEstimate {
  double lut = 0.0;
  double ff = 0.0;
  double dsp = 0.0;
  double power_w = 0.0;  ///< nominal (full-activity) power

  /// Fractions of the paper's implied device totals.
  double lut_fraction() const;
  double ff_fraction() const;
  double dsp_fraction() const;

  std::string to_string() const;
};

/// Static resource + nominal power estimate for `config`.
ResourceEstimate estimate_resources(const AcceleratorConfig& config);

/// Activity-scaled power: `isc_utilization` / `nu_utilization` in [0, 1] are
/// the fraction of lane-cycles actually toggling (subsampling and ISD
/// skipping idle the statistics path). Static power and pipeline overhead are
/// unaffected by utilization.
double effective_power_w(const AcceleratorConfig& config, double isc_utilization,
                         double nu_utilization);

}  // namespace haan::accel
