// Top-level HAAN accelerator model: bit-accurate datapath execution fused
// with the cycle/energy model. `run_layer` processes a (vectors x n) tensor
// exactly as the hardware would (quantize -> FP2FX -> ISC -> SRI -> NU) and
// reports both the numerically faithful output and the timing/energy the
// pipeline model charges. `time_layer` is the timing-only fast path used for
// the real (unscaled) model dimensions in the latency benches.
#pragma once

#include <optional>
#include <span>

#include "accel/arch_config.hpp"
#include "accel/datapath.hpp"
#include "accel/pipeline.hpp"
#include "accel/resource_model.hpp"
#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace haan::accel {

/// Result of a functional + timed layer execution.
struct LayerRunResult {
  tensor::Tensor output;   ///< normalized output (bit-accurate datapath)
  CycleStats cycles;       ///< pipeline timing
  ActivityStats activity;  ///< unit activity (drives energy)
  double power_w = 0.0;    ///< activity-scaled power during the run
  double energy_uj = 0.0;  ///< power * latency
};

/// The accelerator.
class HaanAccelerator {
 public:
  explicit HaanAccelerator(AcceleratorConfig config);

  const AcceleratorConfig& config() const { return config_; }

  /// Static resources of this configuration.
  ResourceEstimate resources() const { return estimate_resources(config_); }

  /// Functional + timed execution of one normalization layer over all rows of
  /// `input` (vectors x n). `predicted_isd`, when provided (one value per
  /// vector), engages ISD-skip mode: the SRI is bypassed and the predictor's
  /// value is used (LayerNorm still computes the subsampled mean).
  LayerRunResult run_layer(const tensor::Tensor& input, std::span<const float> alpha,
                           std::span<const float> beta, model::NormKind kind,
                           std::size_t nsub,
                           std::span<const double> predicted_isd = {}) const;

  /// Timing-only execution for arbitrary (possibly huge) dimensions.
  CycleStats time_layer(const NormLayerWork& work) const {
    return simulate_norm_layer(work, config_);
  }

  /// Activity-scaled power for a layer's workload.
  double layer_power_w(const NormLayerWork& work) const;

  /// Energy (uJ) for a layer's workload.
  double layer_energy_uj(const NormLayerWork& work) const;

 private:
  AcceleratorConfig config_;
};

}  // namespace haan::accel
