#include "accel/memory_layout.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace haan::accel {

MemoryImage::MemoryImage(const tensor::Tensor& t, std::size_t bandwidth)
    : bandwidth_(bandwidth) {
  HAAN_EXPECTS(bandwidth >= 1);
  HAAN_EXPECTS(t.shape().rank() == 2);
  vectors_ = t.shape().dim(0);
  vector_len_ = t.shape().dim(1);
  entries_per_vector_ = (vector_len_ + bandwidth_ - 1) / bandwidth_;
  storage_.assign(vectors_ * entries_per_vector_ * bandwidth_, 0.0f);
  for (std::size_t v = 0; v < vectors_; ++v) {
    const auto row = t.row(v);
    std::copy(row.begin(), row.end(),
              storage_.begin() +
                  static_cast<std::ptrdiff_t>(v * entries_per_vector_ * bandwidth_));
  }
  accessed_.assign(vectors_, std::vector<bool>(entries_per_vector_, false));
}

std::span<const float> MemoryImage::read_entry(std::size_t vector, std::size_t entry) {
  HAAN_EXPECTS(vector < vectors_);
  HAAN_EXPECTS(entry < entries_per_vector_);
  accessed_[vector][entry] = true;
  return std::span<const float>(storage_)
      .subspan((vector * entries_per_vector_ + entry) * bandwidth_, bandwidth_);
}

std::size_t MemoryImage::entries_needed(std::size_t nsub) const {
  const std::size_t wanted = (nsub == 0) ? vector_len_ : std::min(nsub, vector_len_);
  return (wanted + bandwidth_ - 1) / bandwidth_;
}

std::size_t MemoryImage::accessed_entries(std::size_t vector) const {
  HAAN_EXPECTS(vector < vectors_);
  std::size_t n = 0;
  for (const bool hit : accessed_[vector]) {
    if (hit) ++n;
  }
  return n;
}

std::vector<float> MemoryImage::stream_prefix(std::size_t vector, std::size_t count) {
  HAAN_EXPECTS(count <= vector_len_);
  std::vector<float> out;
  out.reserve(count);
  const std::size_t entries = (count + bandwidth_ - 1) / bandwidth_;
  for (std::size_t e = 0; e < entries; ++e) {
    const auto chunk = read_entry(vector, e);
    for (std::size_t i = 0; i < bandwidth_ && out.size() < count; ++i) {
      out.push_back(chunk[i]);
    }
  }
  return out;
}

}  // namespace haan::accel
