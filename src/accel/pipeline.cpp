#include "accel/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace haan::accel {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

std::size_t log2_ceil(std::size_t n) {
  std::size_t bits = 0;
  std::size_t value = 1;
  while (value < n) {
    value <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

std::size_t StageCycles::bottleneck() const { return std::max({mem, isc, sri, nu}); }

std::string StageCycles::to_string() const {
  char buffer[112];
  std::snprintf(buffer, sizeof(buffer), "StageCycles{mem=%zu, isc=%zu, sri=%zu, nu=%zu}",
                mem, isc, sri, nu);
  return buffer;
}

StageCycles stage_cycles(const NormLayerWork& work, const AcceleratorConfig& config) {
  HAAN_EXPECTS(work.n > 0 && work.vectors > 0);
  StageCycles cycles;

  // --- Memory stream -------------------------------------------------------
  // One entry per cycle feeds the whole vector to the NU; the statistics path
  // taps the leading entries of the same stream (no duplicate traffic).
  cycles.mem = ceil_div(work.n, config.memory_elems_per_cycle());

  // --- Input statistics calculator ---------------------------------------
  // One memory entry streams pd elements per cycle through FP2FX and the two
  // adder trees; the tree is pipelined so the II is the pass count, while the
  // latency adds the tree depth and 3 cycles for mean-mul / mean-square /
  // subtract.
  const std::size_t stat_elems =
      (work.nsub == 0) ? work.n : std::min(work.nsub, work.n);
  const std::size_t passes = ceil_div(stat_elems, config.pd);
  const std::size_t tree_depth = log2_ceil(config.pd);
  const std::size_t kFp2FxLatency = 1;
  const std::size_t kPostTree = 3;
  if (work.isd_skipped && work.kind == model::NormKind::kRMSNorm) {
    // RMSNorm with predicted ISD needs no statistics at all: ISC bypassed.
    cycles.isc = 0;
    cycles.isc_latency = 0;
  } else if (work.isd_skipped) {
    // LayerNorm with predicted ISD still computes the (subsampled) mean:
    // single adder tree, no square/subtract path.
    cycles.isc = passes;
    cycles.isc_latency = kFp2FxLatency + passes + tree_depth + 1;
  } else {
    cycles.isc = passes;
    cycles.isc_latency = kFp2FxLatency + passes + tree_depth + kPostTree;
  }

  // --- Square root inverter ----------------------------------------------
  // FX2FP (1) + bit-hack guess (2) + Newton iterations (4 cycles each: two
  // muls, subtract, mul) + FP2FX (1). One scalar unit, not internally
  // pipelined: its II equals its latency. Skipped layers use the scalar
  // predictor instead: one FP multiply-add plus an exponential LUT lookup.
  if (work.isd_skipped) {
    cycles.sri = 2;
  } else {
    cycles.sri = 4 + 4 * static_cast<std::size_t>(config.newton_iterations);
  }
  cycles.sri_latency = cycles.sri;

  // --- Normalization unit -------------------------------------------------
  // pn elements per cycle through a (sub, mul-isd, mul-alpha, add-beta,
  // FX2FP) pipeline; extra NU pipeline levels from a reduced pd deepen the
  // pipe (more fill) but do not change steady-state throughput.
  const std::size_t nu_passes = ceil_div(work.n, config.pn);
  const std::size_t kNuDepth = 5;
  cycles.nu = nu_passes;
  cycles.nu_latency = nu_passes + kNuDepth + (config.nu_pipeline_levels() - 1);

  return cycles;
}

CycleStats simulate_norm_layer(const NormLayerWork& work,
                               const AcceleratorConfig& config) {
  HAAN_EXPECTS(config.pipelines >= 1);
  const StageCycles per_vector = stage_cycles(work, config);
  const std::size_t vectors_per_pipeline =
      (work.vectors + config.pipelines - 1) / config.pipelines;

  CycleStats stats;
  stats.per_vector = per_vector;
  // Fill with the first vector, then one bottleneck interval per additional
  // vector (classic linear pipeline timing).
  stats.cycles = per_vector.fill() +
                 (vectors_per_pipeline - 1) * per_vector.bottleneck();
  return stats;
}

ActivityStats layer_activity(const NormLayerWork& work,
                             const AcceleratorConfig& /*config*/) {
  ActivityStats activity;
  const std::size_t stat_elems =
      (work.nsub == 0) ? work.n : std::min(work.nsub, work.n);
  const double v = static_cast<double>(work.vectors);
  const bool rms_skip =
      work.isd_skipped && work.kind == model::NormKind::kRMSNorm;
  activity.isc_lane_cycles = rms_skip ? 0.0 : v * static_cast<double>(stat_elems);
  // LayerNorm-with-skip halves ISC energy: only the mean tree toggles.
  if (work.isd_skipped && !rms_skip) activity.isc_lane_cycles *= 0.5;
  activity.sri_ops = work.isd_skipped ? 0.0 : v;
  activity.nu_lane_cycles = v * static_cast<double>(work.n);
  return activity;
}

}  // namespace haan::accel
