#include "accel/datapath.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "numerics/fast_math.hpp"

namespace haan::accel {

using numerics::Fixed;
using numerics::FixedFormat;

IscResult input_statistics_calculator(std::span<const float> z, std::size_t nsub,
                                      model::NormKind kind,
                                      const AcceleratorConfig& config) {
  HAAN_EXPECTS(!z.empty());
  const std::size_t n = (nsub == 0) ? z.size() : std::min(nsub, z.size());

  // 1/N is precomputed and stored in memory (paper §IV-A); when N is a power
  // of two the hardware shifts instead, which is bit-identical here because
  // the reciprocal is exactly representable.
  const Fixed inv_n = Fixed::from_double(1.0 / static_cast<double>(n),
                                         FixedFormat{32, 30});

  Fixed sum_sq(config.acc_fixed);
  Fixed sum(config.acc_fixed);
  for (std::size_t i = 0; i < n; ++i) {
    // FP2FX conversion of the incoming element.
    const Fixed x = Fixed::from_double(z[i], config.input_fixed);
    // z_i^2 / N enters the first adder tree; z_i the second.
    const Fixed sq = mul(x, x, config.acc_fixed);
    sum_sq = add(sum_sq, mul(sq, inv_n, config.acc_fixed));
    sum = add(sum, x.convert_to(config.acc_fixed));
  }

  IscResult result;
  result.elements_used = n;
  if (kind == model::NormKind::kLayerNorm) {
    result.mean = mul(sum, inv_n, config.acc_fixed);
    const Fixed mean_sq = mul(result.mean, result.mean, config.acc_fixed);
    Fixed variance = sub(sum_sq, mean_sq);
    // The subtractor clamps the (floating-point-cancellation-free, but
    // rounding-induced) negative case to zero.
    if (variance.to_double() < 0.0) variance = Fixed(config.acc_fixed);
    result.variance = variance;
  } else {
    result.mean = Fixed(config.acc_fixed);
    result.variance = sum_sq;  // E[x^2] directly (RMSNorm skips the mean path)
  }
  return result;
}

SriResult square_root_inverter(const numerics::Fixed& variance,
                               const AcceleratorConfig& config) {
  // FX2FP conversion; the epsilon register is added on the FP side.
  const double x = variance.to_double() + config.eps;
  HAAN_EXPECTS(x > 0.0);

  SriResult result;
  result.initial_guess = numerics::inv_sqrt_initial_guess(static_cast<float>(x));

  // Range normalization (the hardware handles the FP exponent separately):
  // x = m * 4^k with m in [0.25, 1), so 1/sqrt(x) = 2^-k / sqrt(m). The
  // Newton datapath then works on y in (1, 2] and m*y^2 ~ 1, which fits a
  // narrow fixed-point format regardless of the input magnitude; the final
  // 2^-k is a free shift.
  int exp2 = 0;
  double m = std::frexp(x, &exp2);  // x = m * 2^exp2, m in [0.5, 1)
  if (exp2 % 2 != 0) {
    m *= 0.5;  // make the exponent even; m now in [0.25, 1)
    ++exp2;
  }
  const int k = exp2 / 2;

  // Newton refinement in fixed point (paper Fig 5: the 1.5 constant is the
  // fixed-point literal 0x00C00000). y <- y * (1.5 - 0.5 * m * y * y).
  const FixedFormat f{26, 22};  // Q3.22: covers y in (1, 2] and m*y^2 <= ~4
  Fixed y = Fixed::from_double(
      numerics::inv_sqrt_initial_guess(static_cast<float>(m)), f);
  const Fixed three_halves = Fixed::from_double(1.5, f);
  const Fixed half_m = Fixed::from_double(0.5 * m, f);
  for (int i = 0; i < config.newton_iterations; ++i) {
    const Fixed y_sq = mul(y, y, f);
    const Fixed prod = mul(half_m, y_sq, f);
    const Fixed correction = sub(three_halves, prod);
    y = mul(y, correction, f);
  }

  // Denormalize into the ISD output register.
  Fixed isd = y.convert_to(config.isd_fixed);
  result.isd = k >= 0 ? isd.shifted_right(k) : isd.shifted_left(-k);
  return result;
}

numerics::Fixed encode_predicted_isd(double isd, const AcceleratorConfig& config) {
  return Fixed::from_double(isd, config.isd_fixed);
}

void normalization_unit(std::span<const float> z, const numerics::Fixed& mean,
                        const numerics::Fixed& isd, std::span<const float> alpha,
                        std::span<const float> beta, model::NormKind kind,
                        const AcceleratorConfig& config, std::span<float> out) {
  HAAN_EXPECTS(out.size() == z.size());
  HAAN_EXPECTS(alpha.empty() || alpha.size() == z.size());
  HAAN_EXPECTS(beta.empty() || beta.size() == z.size());

  const FixedFormat f = config.norm_fixed;
  const Fixed mean_n = mean.convert_to(f);
  const Fixed isd_n = isd.convert_to(f);

  for (std::size_t i = 0; i < z.size(); ++i) {
    Fixed x = Fixed::from_double(z[i], config.input_fixed).convert_to(f);
    if (kind == model::NormKind::kLayerNorm) x = sub(x, mean_n);
    Fixed v = mul(x, isd_n, f);
    if (!alpha.empty()) v = mul(v, Fixed::from_double(alpha[i], f), f);
    if (!beta.empty()) v = add(v, Fixed::from_double(beta[i], f));
    // FX2FP output conversion (skipped when quantized output is requested;
    // to_double models the exact converter).
    out[i] = static_cast<float>(v.to_double());
  }
}

}  // namespace haan::accel
