#include "accel/accelerator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "kernels/kernels.hpp"
#include "numerics/formats.hpp"

namespace haan::accel {

HaanAccelerator::HaanAccelerator(AcceleratorConfig config)
    : config_(std::move(config)) {
  HAAN_EXPECTS(config_.pd >= 1 && config_.pn >= 1);
  HAAN_EXPECTS(config_.input_fixed.valid() && config_.acc_fixed.valid() &&
               config_.isd_fixed.valid() && config_.norm_fixed.valid());
}

double HaanAccelerator::layer_power_w(const NormLayerWork& work) const {
  const CycleStats cycles = simulate_norm_layer(work, config_);
  const ActivityStats activity = layer_activity(work, config_);
  const double lane_cycles =
      static_cast<double>(cycles.cycles) * static_cast<double>(config_.pipelines);
  const double isc_util = std::min(
      1.0, activity.isc_lane_cycles / (lane_cycles * static_cast<double>(config_.pd)));
  const double nu_util = std::min(
      1.0, activity.nu_lane_cycles / (lane_cycles * static_cast<double>(config_.pn)));
  return effective_power_w(config_, isc_util, nu_util);
}

double HaanAccelerator::layer_energy_uj(const NormLayerWork& work) const {
  const CycleStats cycles = simulate_norm_layer(work, config_);
  return layer_power_w(work) * cycles.latency_us(config_);
}

LayerRunResult HaanAccelerator::run_layer(const tensor::Tensor& input,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          model::NormKind kind, std::size_t nsub,
                                          std::span<const double> predicted_isd) const {
  HAAN_EXPECTS(input.shape().rank() == 2);
  const std::size_t vectors = input.shape().dim(0);
  const std::size_t n = input.shape().dim(1);
  const bool skipped = !predicted_isd.empty();
  HAAN_EXPECTS(!skipped || predicted_isd.size() == vectors);

  LayerRunResult result;
  result.output = tensor::Tensor(input.shape());

  std::vector<float> quantized(n);
  for (std::size_t v = 0; v < vectors; ++v) {
    const auto row = input.row(v);
    quantized.assign(row.begin(), row.end());
    if (config_.io_format != numerics::NumericFormat::kFP32) {
      const float scale = config_.io_format == numerics::NumericFormat::kINT8
                              ? numerics::choose_int8_scale(quantized)
                              : 1.0f;
      kernels::quantize_dequantize_span(quantized, config_.io_format, scale);
    }

    numerics::Fixed mean(config_.acc_fixed);
    numerics::Fixed isd(config_.isd_fixed);
    if (skipped) {
      isd = encode_predicted_isd(predicted_isd[v], config_);
      if (kind == model::NormKind::kLayerNorm) {
        mean = input_statistics_calculator(quantized, nsub, kind, config_).mean;
      }
    } else {
      const IscResult stats =
          input_statistics_calculator(quantized, nsub, kind, config_);
      mean = stats.mean;
      isd = square_root_inverter(stats.variance, config_).isd;
    }
    normalization_unit(quantized, mean, isd, alpha, beta, kind, config_,
                       result.output.row(v));
  }

  NormLayerWork work;
  work.n = n;
  work.vectors = vectors;
  work.nsub = nsub;
  work.isd_skipped = skipped;
  work.kind = kind;
  result.cycles = simulate_norm_layer(work, config_);
  result.activity = layer_activity(work, config_);
  result.power_w = layer_power_w(work);
  result.energy_uj = result.power_w * result.cycles.latency_us(config_);
  return result;
}

}  // namespace haan::accel
