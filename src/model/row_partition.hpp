// Worker-local row parallelism for the row-block normalization seam. Once a
// norm layer's per-layer state is hoisted (skip plan, predictor resolution,
// statistics width, kernel backend), the remaining work is embarrassingly
// parallel over rows, so large packed blocks are split into contiguous row
// chunks executed on a small private thread pool. Chunk boundaries depend only
// on (rows, min_rows, threads) and every kernel in the seam is row-wise, so
// results are bit-identical for ANY thread count — including 1, which runs
// everything inline on the calling thread (the HAAN_NORM_THREADS=1 CI mode).
//
// The pool is deliberately worker-local (one per NormProvider, which is one
// per serving worker): chunks never contend with another provider's work, and
// no cross-worker synchronization is introduced on the norm hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace haan::model {

/// Splits contiguous row ranges across a private thread pool. Not reentrant:
/// one for_rows() at a time per pool (providers are single-caller by design).
class RowPartitionPool {
 public:
  /// fn(chunk, row_begin, rows): process rows [row_begin, row_begin + rows).
  /// `chunk` < threads() identifies the executing slot, so callers can hand
  /// each chunk its own scratch workspace.
  using ChunkFn =
      std::function<void(std::size_t chunk, std::size_t row_begin, std::size_t rows)>;

  /// `threads` = 0 picks default_threads(). Threads are started lazily on the
  /// first partitioned call, so serial users never pay for them.
  explicit RowPartitionPool(std::size_t threads = 0);
  ~RowPartitionPool();

  RowPartitionPool(const RowPartitionPool&) = delete;
  RowPartitionPool& operator=(const RowPartitionPool&) = delete;

  /// HAAN_NORM_THREADS from the environment when set to a positive integer
  /// (1 forces fully serial execution); otherwise min(4, hardware threads).
  static std::size_t default_threads();

  /// HAAN_NORM_AFFINITY from the environment: when set to a non-negative
  /// integer, pool WORKER threads are pinned round-robin WITHIN THE NUMA NODE
  /// owning that CPU (worker w -> the node's CPU list at (base_slot + 1 + w)
  /// mod node size; the calling thread — which runs chunk 0 — is never
  /// touched, its placement belongs to the serving runtime). The env var
  /// predates the topology module and used to walk ALL online CPUs linearly,
  /// silently splitting a pool across sockets; it now routes through
  /// mem::topology() and never leaves the base CPU's node. Returns -1 when
  /// unset/invalid or on non-Linux builds, where pinning is a no-op.
  ///
  /// Without the env var, HAAN_NUMA=auto on a multi-node host pins workers
  /// round-robin within the node the pool's OWNER was on when threads
  /// started, keeping every chunk's stats/normalize pass node-local to the
  /// block the caller first touched. Pinning changes scheduling only, never
  /// results.
  static int affinity_base();

  std::size_t threads() const { return threads_; }

  /// Invokes `fn` over a partition of [0, rows) into at most threads()
  /// contiguous chunks of at least `min_rows` rows each (the last chunk may
  /// be larger); blocks until every chunk finished. Runs inline when the
  /// partition degenerates to one chunk. Chunk 0 always executes on the
  /// calling thread.
  void for_rows(std::size_t rows, std::size_t min_rows, const ChunkFn& fn);

  /// As above but with an additional chunk-count cap (clamped to threads()).
  /// Providers pass the autotuner's cross-node partition decision here:
  /// capping to one node's worth of chunks keeps a memory-bound block from
  /// spraying across sockets when measurement says that loses. Chunk bounds
  /// still depend only on (rows, min_rows, effective max chunks) and every
  /// kernel in the seam is row-wise, so results stay bit-identical for any
  /// cap.
  void for_rows(std::size_t rows, std::size_t min_rows, std::size_t max_chunks,
                const ChunkFn& fn);

  /// Process-wide count of rows whose chunk executed on a different NUMA node
  /// than the pool owner's home node (0 on single-node hosts or with
  /// placement off). Observability only — sampled by ServeMetrics.
  static std::uint64_t global_cross_node_rows();

  /// Number of chunks for_rows would use (pure partition arithmetic).
  static std::size_t plan_chunks(std::size_t rows, std::size_t min_rows,
                                 std::size_t max_chunks);

  /// (row_begin, rows) of chunk `c` in an even partition of `rows` rows into
  /// `chunks` chunks (first rows % chunks chunks get one extra row).
  static std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t rows,
                                                          std::size_t chunks,
                                                          std::size_t c);

 private:
  void worker_main(std::size_t worker_index);
  void start_threads();  ///< idempotent, called under no lock on the hot path

  std::size_t threads_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  /// Topology node index of the owning thread when workers started (-1 until
  /// then / when placement accounting is off); workers compare their own node
  /// against it for the cross-node row counter and auto pinning.
  int home_node_ = -1;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new generation
  std::condition_variable done_cv_;  ///< caller waits for pending_ == 0
  std::uint64_t generation_ = 0;
  const ChunkFn* job_ = nullptr;
  std::size_t job_rows_ = 0;
  std::size_t job_chunks_ = 0;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

/// Minimum rows per chunk so a chunk amortizes its dispatch wakeup: at least
/// ~8K elements of work per chunk for width `d`.
inline std::size_t min_partition_rows(std::size_t d) {
  constexpr std::size_t kMinElementsPerChunk = 8192;
  return d == 0 ? 1 : (kMinElementsPerChunk + d - 1) / d;
}

}  // namespace haan::model
