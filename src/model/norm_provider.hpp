// The normalization seam: the transformer calls a NormProvider for every
// normalization layer, identified by its global execution-order index. The
// exact provider lives here; the HAAN provider (skipping + subsampling +
// quantization) lives in `haan::core` and plugs into the same interface.
#pragma once

#include <span>

#include "model/config.hpp"

namespace haan::model {

/// Strategy interface for normalization layers.
///
/// `layer_index` is the global normalization-layer index in execution order:
/// block b contributes indices 2b (attention norm) and 2b+1 (MLP norm); the
/// final norm, when present, is index 2*n_blocks.
class NormProvider {
 public:
  virtual ~NormProvider() = default;

  /// Called once before each independent forward pass (token sequence). Lets
  /// stateful providers (e.g. the ISD predictor, which anchors its
  /// extrapolation on this sequence's early layers) reset per-sequence state.
  virtual void begin_sequence() {}

  /// Normalizes `z` into `out` (same length) with affine parameters
  /// alpha/beta (may be empty for identity). `position` is the token index the
  /// vector belongs to; the HAAN ISD predictor anchors per position.
  virtual void normalize(std::size_t layer_index, std::size_t position, NormKind kind,
                         std::span<const float> z, std::span<const float> alpha,
                         std::span<const float> beta, std::span<float> out) = 0;

  /// Fused residual-add + normalize: updates `h += residual` in place (the
  /// caller keeps `h` as the residual stream) and normalizes the sum into
  /// `out`, saving one full pass over the hidden vector versus add-then-
  /// normalize. The result is bit-identical to calling
  /// kernels::residual_add(h, residual) followed by normalize(h). Providers
  /// override this to fuse the add into their statistics pass.
  virtual void residual_add_normalize(std::size_t layer_index, std::size_t position,
                                      NormKind kind, std::span<float> h,
                                      std::span<const float> residual,
                                      std::span<const float> alpha,
                                      std::span<const float> beta,
                                      std::span<float> out);
};

/// Exact FP32 normalization with double-precision internals (the "Original"
/// rows of the paper's tables).
class ExactNormProvider final : public NormProvider {
 public:
  /// `eps` matches the framework epsilon added to the variance.
  explicit ExactNormProvider(double eps = 1e-5) : eps_(eps) {}

  void normalize(std::size_t layer_index, std::size_t position, NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override;

  /// Single fused kernel call: residual add + statistics share one pass.
  void residual_add_normalize(std::size_t layer_index, std::size_t position,
                              NormKind kind, std::span<float> h,
                              std::span<const float> residual,
                              std::span<const float> alpha,
                              std::span<const float> beta,
                              std::span<float> out) override;

 private:
  double eps_;
};

}  // namespace haan::model
