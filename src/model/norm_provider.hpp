// The normalization seam: the transformer calls a NormProvider for every
// normalization layer, identified by its global execution-order index. The
// exact provider lives here; the HAAN provider (skipping + subsampling +
// quantization) lives in `haan::core` and plugs into the same interface.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "kernels/kernels.hpp"
#include "mem/arena.hpp"
#include "model/config.hpp"
#include "model/row_partition.hpp"

namespace haan::model {

/// Strategy interface for normalization layers.
///
/// `layer_index` is the global normalization-layer index in execution order:
/// block b contributes indices 2b (attention norm) and 2b+1 (MLP norm); the
/// final norm, when present, is index 2*n_blocks.
class NormProvider {
 public:
  virtual ~NormProvider() = default;

  /// Called once before each independent forward pass (token sequence). Lets
  /// stateful providers (e.g. the ISD predictor, which anchors its
  /// extrapolation on this sequence's early layers) reset per-sequence state.
  virtual void begin_sequence() {}

  /// Static-string label used as the span name for this provider's norm
  /// layers in exported traces ("norm/exact", "norm/haan", ...). Must point
  /// at storage that outlives the tracer (a string literal).
  virtual const char* trace_label() const { return "norm"; }

  /// Normalizes `z` into `out` (same length) with affine parameters
  /// alpha/beta (may be empty for identity). `position` is the token index the
  /// vector belongs to; the HAAN ISD predictor anchors per position.
  virtual void normalize(std::size_t layer_index, std::size_t position, NormKind kind,
                         std::span<const float> z, std::span<const float> alpha,
                         std::span<const float> beta, std::span<float> out) = 0;

  /// Fused residual-add + normalize: updates `h += residual` in place (the
  /// caller keeps `h` as the residual stream) and normalizes the sum into
  /// `out`, saving one full pass over the hidden vector versus add-then-
  /// normalize. The result is bit-identical to calling
  /// kernels::residual_add(h, residual) followed by normalize(h). Providers
  /// override this to fuse the add into their statistics pass.
  virtual void residual_add_normalize(std::size_t layer_index, std::size_t position,
                                      NormKind kind, std::span<float> h,
                                      std::span<const float> residual,
                                      std::span<const float> alpha,
                                      std::span<const float> beta,
                                      std::span<float> out);

  // --- Row-block entry points ------------------------------------------
  // One call per norm layer over a contiguous row-major (rows x d) block;
  // row r holds the vector of token position `start_position + r`. The
  // defaults loop the per-row virtuals, so per-row providers (e.g. the
  // accelerator timing model) work unchanged; batching providers override
  // them to hoist per-layer work (skip-plan lookup, predictor state, kernel
  // backend resolution, scratch sizing) out of the row loop. Results must be
  // bit-identical to the per-row loop for the same provider.

  /// Batched normalize: `x` and `out` are (rows x d) blocks, d = size/rows.
  virtual void normalize_rows(std::size_t layer_index, std::size_t start_position,
                              NormKind kind, std::size_t rows,
                              std::span<const float> x,
                              std::span<const float> alpha,
                              std::span<const float> beta, std::span<float> out);

  /// Batched fused residual-add + normalize: updates the whole `h` block in
  /// place (h[r] += residual[r]) and normalizes each summed row into `out`.
  virtual void residual_add_normalize_rows(std::size_t layer_index,
                                           std::size_t start_position,
                                           NormKind kind, std::size_t rows,
                                           std::span<float> h,
                                           std::span<const float> residual,
                                           std::span<const float> alpha,
                                           std::span<const float> beta,
                                           std::span<float> out);

 protected:
  /// Shared shape validation for row-block entry points (every override
  /// should call this): rows divides the block, out matches, alpha/beta are
  /// empty or exactly one row wide. Returns d.
  static std::size_t check_row_block(std::size_t rows, std::size_t numel,
                                     std::span<const float> alpha,
                                     std::span<const float> beta,
                                     std::size_t out_size);
};

/// Exact FP32 normalization with double-precision internals (the "Original"
/// rows of the paper's tables).
class ExactNormProvider final : public NormProvider {
 public:
  /// `eps` matches the framework epsilon added to the variance.
  /// `norm_threads` sizes the worker-local RowPartitionPool that splits large
  /// row blocks across threads (0 = HAAN_NORM_THREADS / hardware default,
  /// 1 = fully serial); results are bit-identical for any value.
  explicit ExactNormProvider(double eps = 1e-5, std::size_t norm_threads = 0);

  const char* trace_label() const override { return "norm/exact"; }

  void normalize(std::size_t layer_index, std::size_t position, NormKind kind,
                 std::span<const float> z, std::span<const float> alpha,
                 std::span<const float> beta, std::span<float> out) override;

  /// Single fused kernel call: residual add + statistics share one pass.
  void residual_add_normalize(std::size_t layer_index, std::size_t position,
                              NormKind kind, std::span<float> h,
                              std::span<const float> residual,
                              std::span<const float> alpha,
                              std::span<const float> beta,
                              std::span<float> out) override;

  /// Row-block overrides: one fused kernel call per layer (per-row stats
  /// resolved inside the backend), bit-identical to the per-row loop.
  void normalize_rows(std::size_t layer_index, std::size_t start_position,
                      NormKind kind, std::size_t rows, std::span<const float> x,
                      std::span<const float> alpha, std::span<const float> beta,
                      std::span<float> out) override;

  void residual_add_normalize_rows(std::size_t layer_index,
                                   std::size_t start_position, NormKind kind,
                                   std::size_t rows, std::span<float> h,
                                   std::span<const float> residual,
                                   std::span<const float> alpha,
                                   std::span<const float> beta,
                                   std::span<float> out) override;

 private:
  /// The autotuned kernel table for width d, memoized per provider so the hot
  /// path pays one pointer compare instead of the tuner's registry lock. ONE
  /// table serves every path (per-row, fused, row-block) — that single
  /// consistent backend is what keeps chunked-vs-one-shot comparisons
  /// bit-identical under autotuning.
  const kernels::KernelTable& tuned(std::size_t d);

  double eps_;
  const kernels::KernelTable* tuned_table_ = nullptr;
  std::size_t tuned_d_ = 0;
  /// Chunk-count cap fed to for_rows: pool_.threads() when the autotuner
  /// allows cross-node partitions, one node's CPU count when it measured them
  /// a loss (memoized alongside tuned_table_). Scheduling only — never values.
  std::size_t chunk_cap_ = 0;
  RowPartitionPool pool_;  ///< worker-local row parallelism (lazy threads)
  /// Backs workspace_ under HAAN_NUMA=auto/interleave. The provider is
  /// worker-local and workspace_ is only resized on the owning thread, so the
  /// arena stays single-owner. Declared before workspace_ so the workspace's
  /// pmr vectors die while their resource is alive. Null with placement off.
  std::unique_ptr<mem::Arena> scratch_arena_;
  kernels::RowNormWorkspace workspace_;  ///< chunk-0 scratch, reused
  /// One workspace per extra pool chunk so concurrent chunks never share
  /// scratch; sized on first partitioned call. Deliberately heap-backed: the
  /// fused kernels resize these INSIDE pool chunks on pool threads, and the
  /// (pinned) pool thread's first touch places them node-local anyway.
  std::vector<kernels::RowNormWorkspace> chunk_workspaces_;
};

}  // namespace haan::model
