// Decoder-only transformer simulator. Owns synthetic weights; normalization is
// delegated to a NormProvider so the same model runs with exact normalization
// (baseline) or the HAAN normalizer, and an observer can record every
// norm-layer input for the ISD study.
#pragma once

#include <span>
#include <vector>

#include "model/batch_layout.hpp"
#include "model/block.hpp"
#include "model/config.hpp"
#include "model/norm_provider.hpp"
#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// The simulator. Construction generates deterministic weights from the
/// config seed; forward passes are pure given (tokens, provider).
class Transformer {
 public:
  explicit Transformer(ModelConfig config);

  const ModelConfig& config() const { return config_; }
  const ModelWeights& weights() const { return weights_; }

  /// Observer for norm-layer inputs; pass nullptr-equivalent {} to clear.
  void set_norm_observer(NormInputObserver observer);

  /// Full forward pass. Returns final hidden states (L x d_model), after the
  /// final norm when the architecture has one. Calls norm.begin_sequence().
  /// Equivalent to forward_hidden_batch over a single-sequence layout.
  tensor::Tensor forward_hidden(std::span<const int> tokens, NormProvider& norm) const;

  /// Packed cross-request forward: runs EVERY sequence of a scheduler batch
  /// as one forward over the concatenated (Σ seq_len × d_model) hidden block
  /// described by `layout` (which must match `sequences`). Attention runs
  /// causally per sequence span; every normalization layer is a single
  /// row-block provider call covering all packed rows, so norm dispatch and
  /// per-layer state resolution amortize across requests. Calls
  /// norm.begin_sequence() once for the whole batch.
  ///
  /// Bit-identity guarantee: row span i of the returned block equals
  /// forward_hidden(sequences[i]) bit for bit, for any provider, packing and
  /// row-partition thread count — providers key their per-position state
  /// (the ISD predictor's anchors) by packed row index, which is unique per
  /// row and carries exactly the per-sequence anchor values.
  ///
  /// `span_pool` (optional, worker-local) runs attention/MLP sub-layers
  /// span-parallel across the packed sequences; see run_block.
  ///
  /// `caches` (optional; empty, or exactly one entry per sequence) switches
  /// the forward into INCREMENTAL mode: sequences[s] holds only the NEW
  /// tokens of a live session, layout.span(s).start_position must equal
  /// caches[s]->position() (the rows already fed), and attention runs over
  /// the cached K/V prefix plus the new rows. All caches are committed by
  /// start_position + rows on return. A null entry runs that span one-shot
  /// (its start_position must be 0). The bit-identity guarantee extends to
  /// incremental execution: feeding a sequence in ANY chunking across any
  /// sequence of (mixed) packs yields, row for row, the same hidden states as
  /// the one-shot forward.
  tensor::Tensor forward_hidden_batch(std::span<const std::span<const int>> sequences,
                                      const BatchLayout& layout,
                                      NormProvider& norm,
                                      RowPartitionPool* span_pool = nullptr,
                                      std::span<KvCache* const> caches = {}) const;

  /// Fresh, correctly-sized KV cache for one sequence of this model.
  KvCache make_kv_cache() const;

  /// Mean-pooled final hidden state (length d_model) — the feature vector the
  /// evaluation harness scores answer choices against.
  std::vector<float> pooled_features(std::span<const int> tokens,
                                     NormProvider& norm) const;

  /// Next-token logits at the last position (length vocab); tied embeddings.
  std::vector<float> last_logits(std::span<const int> tokens, NormProvider& norm) const;

  /// Logits for one final-hidden row (length d_model → vocab); tied
  /// embeddings. `last_logits` == logits_for_hidden_row over the last row of
  /// forward_hidden; incremental decode uses this on the newest row of each
  /// step's output without re-running the forward.
  std::vector<float> logits_for_hidden_row(std::span<const float> row) const;

 private:
  ModelConfig config_;
  ModelWeights weights_;
  NormInputObserver observer_;
};

}  // namespace haan::model
