// Decoder-only transformer simulator. Owns synthetic weights; normalization is
// delegated to a NormProvider so the same model runs with exact normalization
// (baseline) or the HAAN normalizer, and an observer can record every
// norm-layer input for the ISD study.
#pragma once

#include <span>
#include <vector>

#include "model/block.hpp"
#include "model/config.hpp"
#include "model/norm_provider.hpp"
#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// The simulator. Construction generates deterministic weights from the
/// config seed; forward passes are pure given (tokens, provider).
class Transformer {
 public:
  explicit Transformer(ModelConfig config);

  const ModelConfig& config() const { return config_; }
  const ModelWeights& weights() const { return weights_; }

  /// Observer for norm-layer inputs; pass nullptr-equivalent {} to clear.
  void set_norm_observer(NormInputObserver observer);

  /// Full forward pass. Returns final hidden states (L x d_model), after the
  /// final norm when the architecture has one. Calls norm.begin_sequence().
  tensor::Tensor forward_hidden(std::span<const int> tokens, NormProvider& norm) const;

  /// Mean-pooled final hidden state (length d_model) — the feature vector the
  /// evaluation harness scores answer choices against.
  std::vector<float> pooled_features(std::span<const int> tokens,
                                     NormProvider& norm) const;

  /// Next-token logits at the last position (length vocab); tied embeddings.
  std::vector<float> last_logits(std::span<const int> tokens, NormProvider& norm) const;

 private:
  ModelConfig config_;
  ModelWeights weights_;
  NormInputObserver observer_;
};

}  // namespace haan::model
