#include "model/config.hpp"

namespace haan::model {

namespace {

ModelConfig base_surrogate(std::string name, std::size_t blocks, std::size_t width,
                           NormKind kind, bool final_norm, bool gated,
                           std::uint64_t seed) {
  ModelConfig config;
  config.name = std::move(name);
  config.n_blocks = blocks;
  config.d_model = width;
  config.n_heads = width >= 64 ? 4 : 2;
  config.d_ff = gated ? width * 8 / 3 : width * 4;
  config.vocab_size = 512;
  config.max_seq_len = 512;
  config.norm_kind = kind;
  config.placement = NormPlacement::kPreNorm;
  config.final_norm = final_norm;
  config.gated_mlp = gated;
  config.seed = seed;
  return config;
}

}  // namespace

ModelConfig llama7b_surrogate(std::size_t width) {
  // 32 blocks x 2 RMSNorm = 64 profiled norm layers (paper Fig 2).
  auto config = base_surrogate("LLaMA-7B", 32, width, NormKind::kRMSNorm,
                               /*final_norm=*/false, /*gated=*/true, 0x11A11A);
  // Gain tapers over the first 20 blocks: steep curved ISD decay until norm
  // layer ~40, then the log-linear tail the paper's Fig 2 shows at 41-61.
  config.residual_gain = 0.075;
  config.early_gain = 0.5;
  config.early_blocks = 12;
  return config;
}

ModelConfig opt2p7b_surrogate(std::size_t width) {
  // 32 blocks x 2 LayerNorm + final = 65 norm layers ("7 out of 65", §V-B).
  auto config = base_surrogate("OPT-2.7B", 32, width, NormKind::kLayerNorm,
                               /*final_norm=*/true, /*gated=*/false, 0x0B72B7);
  config.residual_gain = 0.09;
  config.early_gain = 0.45;
  config.early_blocks = 12;
  return config;
}

ModelConfig gpt2_1p5b_surrogate(std::size_t width) {
  // 48 blocks x 2 LayerNorm + final = 97 norm layers (skip range (85, 92)).
  auto config = base_surrogate("GPT2-1.5B", 48, width, NormKind::kLayerNorm,
                               /*final_norm=*/true, /*gated=*/false, 0x69F215);
  config.residual_gain = 0.06;
  config.early_gain = 0.4;
  config.early_blocks = 16;
  return config;
}

ModelConfig gpt2_355m_surrogate(std::size_t width) {
  auto config = base_surrogate("GPT2-355M", 24, width, NormKind::kLayerNorm,
                               /*final_norm=*/true, /*gated=*/false, 0x355355);
  config.residual_gain = 0.08;
  return config;
}

ModelConfig gpt2_117m_surrogate(std::size_t width) {
  auto config = base_surrogate("GPT2-117M", 12, width, NormKind::kLayerNorm,
                               /*final_norm=*/true, /*gated=*/false, 0x117117);
  config.residual_gain = 0.1;
  return config;
}

ModelConfig tiny_test_model() {
  auto config = base_surrogate("tiny-test", 4, 32, NormKind::kLayerNorm,
                               /*final_norm=*/true, /*gated=*/false, 0x7E57);
  config.vocab_size = 64;
  config.max_seq_len = 64;
  return config;
}

std::optional<ModelConfig> surrogate_by_name(const std::string& name,
                                             std::size_t width) {
  if (name == "tiny") return tiny_test_model();
  if (name == "llama7b" || name == "llama") {
    return width == 0 ? llama7b_surrogate() : llama7b_surrogate(width);
  }
  if (name == "opt2.7b" || name == "opt") {
    return width == 0 ? opt2p7b_surrogate() : opt2p7b_surrogate(width);
  }
  if (name == "gpt2-1.5b" || name == "gpt2") {
    return width == 0 ? gpt2_1p5b_surrogate() : gpt2_1p5b_surrogate(width);
  }
  if (name == "gpt2-355m") {
    return width == 0 ? gpt2_355m_surrogate() : gpt2_355m_surrogate(width);
  }
  if (name == "gpt2-117m") {
    return width == 0 ? gpt2_117m_surrogate() : gpt2_117m_surrogate(width);
  }
  return std::nullopt;
}

std::string surrogate_names_help() {
  return "tiny | llama7b | opt2.7b | gpt2-1.5b | gpt2-355m | gpt2-117m";
}

RealDims real_dims_llama7b() { return {32, 4096, 32, 11008, 64}; }
RealDims real_dims_opt2p7b() { return {32, 2560, 32, 10240, 65}; }
RealDims real_dims_gpt2_1p5b() { return {48, 1600, 25, 6400, 97}; }
RealDims real_dims_gpt2_355m() { return {24, 1024, 16, 4096, 49}; }
RealDims real_dims_gpt2_117m() { return {12, 768, 12, 3072, 25}; }

}  // namespace haan::model
