// Synthetic weight generation. Weights are Gaussian with per-matrix scales
// chosen so each block's branch output variance is `gain` times its input
// variance; stacking blocks then grows the residual stream geometrically,
// which is exactly the mechanism behind the paper's log-linear ISD trend
// (Fig 2). Norm affine parameters are near-identity with mild jitter, as in
// trained LLMs.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "model/config.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// Per-block parameters.
struct BlockWeights {
  // Attention projections, each (d_model x d_model), stored row-major as
  // (out x in) for tensor::linear.
  tensor::Tensor wq, wk, wv, wo;
  // MLP: w_up (d_ff x d_model), w_gate (d_ff x d_model, gated models only),
  // w_down (d_model x d_ff).
  tensor::Tensor w_up, w_gate, w_down;
  // Normalization affine parameters, one pair per norm layer in the block.
  std::vector<float> norm1_alpha, norm1_beta;
  std::vector<float> norm2_alpha, norm2_beta;
};

/// Whole-model parameters.
struct ModelWeights {
  tensor::Tensor embedding;       ///< (vocab x d_model)
  tensor::Tensor pos_embedding;   ///< (max_seq_len x d_model)
  std::vector<BlockWeights> blocks;
  std::vector<float> final_alpha, final_beta;  ///< final norm (may be empty)
};

/// Deterministically generates weights for `config` (seeded by config.seed).
ModelWeights make_weights(const ModelConfig& config);

}  // namespace haan::model
