// Multi-head causal self-attention forward pass for a single sequence.
#pragma once

#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// Computes causal MHA over `x` (L x d_model) with the block's projections.
/// Returns the attended output after the output projection (L x d_model).
tensor::Tensor multi_head_attention(const tensor::Tensor& x, const BlockWeights& block,
                                    std::size_t n_heads);

}  // namespace haan::model
