// Multi-head causal self-attention forward pass for a single sequence.
#pragma once

#include "model/kv_cache.hpp"
#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// Computes causal MHA over `x` (L x d_model) with the block's projections.
/// Returns the attended output after the output projection (L x d_model).
tensor::Tensor multi_head_attention(const tensor::Tensor& x, const BlockWeights& block,
                                    std::size_t n_heads);

/// Incremental causal MHA: `x_new` holds only the sequence's NEW rows, whose
/// first row sits at absolute token position `start_position`. The K/V
/// projections of the new rows are appended to `cache` (layer `block_index`),
/// and each new row attends over the full cached prefix plus itself.
///
/// Bit-identity contract: for any split of a sequence into steps, the outputs
/// equal the corresponding rows of multi_head_attention() over the whole
/// sequence. Every per-row operation (projection via tensor::linear, score
/// dot products, the stable-softmax reduction order, the ascending-j context
/// accumulation that skips exact zeros) replicates the one-shot path exactly;
/// cached K/V rows are the same float bits the one-shot path recomputes.
///
/// Requires cache.rows(block_index) == start_position (caller feeds steps in
/// order; KvCache::commit() advances the committed position per step).
tensor::Tensor multi_head_attention_cached(const tensor::Tensor& x_new,
                                           const BlockWeights& block,
                                           std::size_t n_heads, KvCache& cache,
                                           std::size_t block_index,
                                           std::size_t start_position);

}  // namespace haan::model
