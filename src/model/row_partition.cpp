#include "model/row_partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace haan::model {

RowPartitionPool::RowPartitionPool(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  HAAN_EXPECTS(threads_ > 0);
}

RowPartitionPool::~RowPartitionPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t RowPartitionPool::default_threads() {
  // Read afresh each call so tests can vary HAAN_NORM_THREADS per provider.
  if (const char* env = std::getenv("HAAN_NORM_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return std::min<std::size_t>(static_cast<std::size_t>(value), 64);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, std::max<std::size_t>(1, hw));
}

std::size_t RowPartitionPool::plan_chunks(std::size_t rows, std::size_t min_rows,
                                          std::size_t max_chunks) {
  if (rows == 0 || max_chunks <= 1) return rows == 0 ? 0 : 1;
  const std::size_t by_size = rows / std::max<std::size_t>(1, min_rows);
  return std::max<std::size_t>(1, std::min(max_chunks, by_size));
}

std::pair<std::size_t, std::size_t> RowPartitionPool::chunk_bounds(
    std::size_t rows, std::size_t chunks, std::size_t c) {
  HAAN_EXPECTS(chunks > 0 && c < chunks);
  const std::size_t base = rows / chunks;
  const std::size_t rem = rows % chunks;
  const std::size_t begin = c * base + std::min(c, rem);
  return {begin, base + (c < rem ? 1 : 0)};
}

void RowPartitionPool::start_threads() {
  if (started_) return;
  started_ = true;
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void RowPartitionPool::for_rows(std::size_t rows, std::size_t min_rows,
                                const ChunkFn& fn) {
  if (rows == 0) return;
  const std::size_t chunks = plan_chunks(rows, min_rows, threads_);
  if (chunks <= 1) {
    fn(0, 0, rows);
    return;
  }
  start_threads();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_rows_ = rows;
    job_chunks_ = chunks;
    pending_ = chunks - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  const auto [begin, count] = chunk_bounds(rows, chunks, 0);
  {
    // Chunk 0 always runs inline on the calling thread; its span nests inside
    // whatever provider span is open there.
    HAAN_TRACE_SPAN("shard", "model", 0u, static_cast<std::uint32_t>(count));
    fn(0, begin, count);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void RowPartitionPool::worker_main(std::size_t worker_index) {
  std::uint64_t seen = 0;
  // Track naming is deferred until tracing is actually on: pool threads start
  // lazily and usually before any tracer session begins.
  bool track_named = false;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::size_t chunk = worker_index + 1;
    // Generations with fewer chunks than threads leave trailing workers idle;
    // pending_ already excludes them.
    if (chunk >= job_chunks_) continue;
    const ChunkFn* fn = job_;
    const auto [begin, count] = chunk_bounds(job_rows_, job_chunks_, chunk);
    lock.unlock();
    if (obs::tracing_enabled() && !track_named) {
      obs::set_thread_name("rowpool-" + std::to_string(worker_index));
      track_named = true;
    }
    {
      HAAN_TRACE_SPAN("shard", "model", static_cast<std::uint32_t>(chunk),
                      static_cast<std::uint32_t>(count));
      (*fn)(chunk, begin, count);
    }
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_one();
  }
}

}  // namespace haan::model
