#include "model/row_partition.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "mem/topology.hpp"
#include "obs/trace.hpp"

namespace haan::model {
namespace {

std::atomic<std::uint64_t> g_cross_node_rows{0};

void pin_to_cpu(std::size_t worker_index, int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    HAAN_LOG_WARN_C("model") << "rowpool: failed to pin worker " << worker_index
                             << " to cpu " << cpu;
  }
#else
  (void)worker_index;
  (void)cpu;
#endif
}

/// Pins the calling pool worker. Explicit HAAN_NORM_AFFINITY wins and walks
/// the base CPU's OWN node round-robin (never crossing a socket — the
/// pre-topology behavior walked all online CPUs linearly and split pools
/// across nodes). Otherwise HAAN_NUMA=auto on a multi-node host pins workers
/// round-robin within the pool owner's home node. Failures are logged and
/// ignored — affinity is a locality hint, not a correctness requirement.
void pin_worker(std::size_t worker_index, int base, int home_node) {
  const mem::Topology& topo = mem::topology();
  if (base >= 0) {
    int node = topo.node_of_cpu(base);
    if (node < 0) node = 0;
    const std::vector<int>& cpus = topo.node(static_cast<std::size_t>(node)).cpus;
    if (cpus.empty()) return;
    const auto it = std::find(cpus.begin(), cpus.end(), base);
    const std::size_t base_slot =
        it == cpus.end() ? 0 : static_cast<std::size_t>(it - cpus.begin());
    pin_to_cpu(worker_index, cpus[(base_slot + 1 + worker_index) % cpus.size()]);
    return;
  }
  if (mem::numa_mode() == mem::NumaMode::kAuto && topo.nodes() > 1 &&
      home_node >= 0) {
    // Slot 0 is morally the caller (which runs chunk 0 and is placed by the
    // serving runtime), so workers start at slot worker_index + 1.
    pin_to_cpu(worker_index,
               topo.cpu_for_slot(static_cast<std::size_t>(home_node),
                                 worker_index + 1));
  }
}

}  // namespace

RowPartitionPool::RowPartitionPool(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  HAAN_EXPECTS(threads_ > 0);
}

RowPartitionPool::~RowPartitionPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t RowPartitionPool::default_threads() {
  // Read afresh each call so tests can vary HAAN_NORM_THREADS per provider.
  if (const char* env = std::getenv("HAAN_NORM_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return std::min<std::size_t>(static_cast<std::size_t>(value), 64);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, std::max<std::size_t>(1, hw));
}

int RowPartitionPool::affinity_base() {
#ifdef __linux__
  const char* env = std::getenv("HAAN_NORM_AFFINITY");
  if (env == nullptr || env[0] == '\0') return -1;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0) return -1;
  return static_cast<int>(value);
#else
  return -1;
#endif
}

std::size_t RowPartitionPool::plan_chunks(std::size_t rows, std::size_t min_rows,
                                          std::size_t max_chunks) {
  if (rows == 0 || max_chunks <= 1) return rows == 0 ? 0 : 1;
  const std::size_t by_size = rows / std::max<std::size_t>(1, min_rows);
  return std::max<std::size_t>(1, std::min(max_chunks, by_size));
}

std::pair<std::size_t, std::size_t> RowPartitionPool::chunk_bounds(
    std::size_t rows, std::size_t chunks, std::size_t c) {
  HAAN_EXPECTS(chunks > 0 && c < chunks);
  const std::size_t base = rows / chunks;
  const std::size_t rem = rows % chunks;
  const std::size_t begin = c * base + std::min(c, rem);
  return {begin, base + (c < rem ? 1 : 0)};
}

std::uint64_t RowPartitionPool::global_cross_node_rows() {
  return g_cross_node_rows.load(std::memory_order_relaxed);
}

void RowPartitionPool::start_threads() {
  if (started_) return;
  started_ = true;
  // The owner's node at thread-start is the pool's home: serve workers pin
  // themselves (or are placed by the OS) before their provider's first
  // partitioned call, so this is the node whose memory the chunks will read.
  if (mem::placement_enabled() && mem::topology().nodes() > 1) {
    home_node_ = mem::current_node();
  }
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void RowPartitionPool::for_rows(std::size_t rows, std::size_t min_rows,
                                const ChunkFn& fn) {
  for_rows(rows, min_rows, threads_, fn);
}

void RowPartitionPool::for_rows(std::size_t rows, std::size_t min_rows,
                                std::size_t max_chunks, const ChunkFn& fn) {
  if (rows == 0) return;
  const std::size_t chunks =
      plan_chunks(rows, min_rows, std::min(threads_, std::max<std::size_t>(1, max_chunks)));
  if (chunks <= 1) {
    fn(0, 0, rows);
    return;
  }
  start_threads();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_rows_ = rows;
    job_chunks_ = chunks;
    pending_ = chunks - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  const auto [begin, count] = chunk_bounds(rows, chunks, 0);
  {
    // Chunk 0 always runs inline on the calling thread; its span nests inside
    // whatever provider span is open there.
    HAAN_TRACE_SPAN("shard", "model", 0u, static_cast<std::uint32_t>(count));
    fn(0, begin, count);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void RowPartitionPool::worker_main(std::size_t worker_index) {
  pin_worker(worker_index, affinity_base(), home_node_);
  // Cross-node accounting is only meaningful (and only worth a sched_getcpu
  // per chunk) when placement is on and the host actually has several nodes.
  const bool track_node =
      home_node_ >= 0 && mem::placement_enabled() && mem::topology().nodes() > 1;
  std::uint64_t seen = 0;
  // Track naming is deferred until tracing is actually on: pool threads start
  // lazily and usually before any tracer session begins.
  bool track_named = false;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::size_t chunk = worker_index + 1;
    // Generations with fewer chunks than threads leave trailing workers idle;
    // pending_ already excludes them.
    if (chunk >= job_chunks_) continue;
    const ChunkFn* fn = job_;
    const auto [begin, count] = chunk_bounds(job_rows_, job_chunks_, chunk);
    lock.unlock();
    if (obs::tracing_enabled() && !track_named) {
      obs::set_thread_name("rowpool-" + std::to_string(worker_index));
      track_named = true;
    }
    {
      HAAN_TRACE_SPAN("shard", "model", static_cast<std::uint32_t>(chunk),
                      static_cast<std::uint32_t>(count));
      (*fn)(chunk, begin, count);
    }
    if (track_node && mem::current_node() != home_node_) {
      g_cross_node_rows.fetch_add(count, std::memory_order_relaxed);
    }
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_one();
  }
}

}  // namespace haan::model
