#include "model/row_partition.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace haan::model {
namespace {

/// Pins the calling worker thread per HAAN_NORM_AFFINITY (see affinity_base()).
/// Failures are logged once per worker and otherwise ignored — affinity is a
/// locality hint, not a correctness requirement.
void pin_worker(std::size_t worker_index, int base) {
#ifdef __linux__
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0) return;
  const std::size_t cpu =
      (static_cast<std::size_t>(base) + 1 + worker_index) %
      static_cast<std::size_t>(online);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    HAAN_LOG_WARN_C("model") << "rowpool: failed to pin worker " << worker_index
                             << " to cpu " << cpu;
  }
#else
  (void)worker_index;
  (void)base;
#endif
}

}  // namespace

RowPartitionPool::RowPartitionPool(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  HAAN_EXPECTS(threads_ > 0);
}

RowPartitionPool::~RowPartitionPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t RowPartitionPool::default_threads() {
  // Read afresh each call so tests can vary HAAN_NORM_THREADS per provider.
  if (const char* env = std::getenv("HAAN_NORM_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return std::min<std::size_t>(static_cast<std::size_t>(value), 64);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, std::max<std::size_t>(1, hw));
}

int RowPartitionPool::affinity_base() {
#ifdef __linux__
  const char* env = std::getenv("HAAN_NORM_AFFINITY");
  if (env == nullptr || env[0] == '\0') return -1;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0) return -1;
  return static_cast<int>(value);
#else
  return -1;
#endif
}

std::size_t RowPartitionPool::plan_chunks(std::size_t rows, std::size_t min_rows,
                                          std::size_t max_chunks) {
  if (rows == 0 || max_chunks <= 1) return rows == 0 ? 0 : 1;
  const std::size_t by_size = rows / std::max<std::size_t>(1, min_rows);
  return std::max<std::size_t>(1, std::min(max_chunks, by_size));
}

std::pair<std::size_t, std::size_t> RowPartitionPool::chunk_bounds(
    std::size_t rows, std::size_t chunks, std::size_t c) {
  HAAN_EXPECTS(chunks > 0 && c < chunks);
  const std::size_t base = rows / chunks;
  const std::size_t rem = rows % chunks;
  const std::size_t begin = c * base + std::min(c, rem);
  return {begin, base + (c < rem ? 1 : 0)};
}

void RowPartitionPool::start_threads() {
  if (started_) return;
  started_ = true;
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void RowPartitionPool::for_rows(std::size_t rows, std::size_t min_rows,
                                const ChunkFn& fn) {
  if (rows == 0) return;
  const std::size_t chunks = plan_chunks(rows, min_rows, threads_);
  if (chunks <= 1) {
    fn(0, 0, rows);
    return;
  }
  start_threads();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_rows_ = rows;
    job_chunks_ = chunks;
    pending_ = chunks - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  const auto [begin, count] = chunk_bounds(rows, chunks, 0);
  {
    // Chunk 0 always runs inline on the calling thread; its span nests inside
    // whatever provider span is open there.
    HAAN_TRACE_SPAN("shard", "model", 0u, static_cast<std::uint32_t>(count));
    fn(0, begin, count);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void RowPartitionPool::worker_main(std::size_t worker_index) {
  if (const int base = affinity_base(); base >= 0) {
    pin_worker(worker_index, base);
  }
  std::uint64_t seen = 0;
  // Track naming is deferred until tracing is actually on: pool threads start
  // lazily and usually before any tracer session begins.
  bool track_named = false;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::size_t chunk = worker_index + 1;
    // Generations with fewer chunks than threads leave trailing workers idle;
    // pending_ already excludes them.
    if (chunk >= job_chunks_) continue;
    const ChunkFn* fn = job_;
    const auto [begin, count] = chunk_bounds(job_rows_, job_chunks_, chunk);
    lock.unlock();
    if (obs::tracing_enabled() && !track_named) {
      obs::set_thread_name("rowpool-" + std::to_string(worker_index));
      track_named = true;
    }
    {
      HAAN_TRACE_SPAN("shard", "model", static_cast<std::uint32_t>(chunk),
                      static_cast<std::uint32_t>(count));
      (*fn)(chunk, begin, count);
    }
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_one();
  }
}

}  // namespace haan::model
