// Cross-request packing layout: a scheduler batch's sequences are concatenated
// into ONE contiguous (Σ seq_len × d) row-major hidden block, so every
// normalization layer of the forward pass is a single row-block provider call
// covering all sequences. The layout records where each sequence's rows live
// inside the packed block; attention (the only sub-layer with cross-row state)
// iterates the spans, everything else — MLP, residual adds, norms — runs over
// the whole packed block at once.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace haan::model {

/// Row span of one sequence inside a packed (Σ seq_len × d) hidden block.
struct SequenceSpan {
  std::size_t row_begin = 0;  ///< first packed row of this sequence
  std::size_t rows = 0;       ///< seq_len (contiguous rows)

  /// Token position of `row_begin` within its own sequence. Always 0 for
  /// full-prompt forwards; kept explicit so chunked-decode packings can reuse
  /// the layout unchanged.
  std::size_t start_position = 0;
};

/// Immutable packing plan for one mega-batch forward.
class BatchLayout {
 public:
  BatchLayout() = default;

  /// Packs sequences of the given lengths back to back (every length > 0),
  /// all starting at position 0 (full-prompt forwards).
  static BatchLayout from_lengths(std::span<const std::size_t> lengths);

  /// Packs partial sequences: span i holds `lengths[i]` new rows whose first
  /// row sits at token position `start_positions[i]` within its own sequence.
  /// This is the chunked-prefill / incremental-decode packing entry point —
  /// a prefill chunk continues at the rows already cached, a decode step is a
  /// single row at the sequence's current length. Sizes must match and every
  /// length must be > 0.
  static BatchLayout from_spans(std::span<const std::size_t> lengths,
                                std::span<const std::size_t> start_positions);

  /// Convenience: layout for the given token sequences, in order.
  static BatchLayout from_sequences(std::span<const std::span<const int>> sequences);

  /// Degenerate single-sequence layout: `rows` new rows starting at token
  /// position `start_position` (0 = the per-request full-forward path).
  static BatchLayout single(std::size_t rows, std::size_t start_position = 0);

  std::size_t sequences() const { return spans_.size(); }
  std::size_t total_rows() const { return total_rows_; }
  const SequenceSpan& span(std::size_t i) const;
  const std::vector<SequenceSpan>& spans() const { return spans_; }

  std::string to_string() const;  ///< "BatchLayout{3 seqs, 24 rows}"

 private:
  std::vector<SequenceSpan> spans_;
  std::size_t total_rows_ = 0;
};

}  // namespace haan::model
