#include "model/attention.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "tensor/ops.hpp"

namespace haan::model {

tensor::Tensor multi_head_attention(const tensor::Tensor& x, const BlockWeights& block,
                                    std::size_t n_heads) {
  HAAN_EXPECTS(x.shape().rank() == 2);
  const std::size_t seq_len = x.shape().dim(0);
  const std::size_t d_model = x.shape().dim(1);
  HAAN_EXPECTS(d_model % n_heads == 0);
  const std::size_t d_head = d_model / n_heads;

  const tensor::Tensor q = tensor::linear(x, block.wq, {});
  const tensor::Tensor k = tensor::linear(x, block.wk, {});
  const tensor::Tensor v = tensor::linear(x, block.wv, {});

  tensor::Tensor context(tensor::Shape{seq_len, d_model});
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));

  for (std::size_t h = 0; h < n_heads; ++h) {
    const std::size_t off = h * d_head;
    // scores = Q_h K_h^T, causal-masked softmax, then scores V_h.
    tensor::Tensor scores(tensor::Shape{seq_len, seq_len});
    for (std::size_t i = 0; i < seq_len; ++i) {
      const auto qi = q.row(i).subspan(off, d_head);
      for (std::size_t j = 0; j <= i; ++j) {
        const auto kj = k.row(j).subspan(off, d_head);
        scores.at(i, j) = scale * static_cast<float>(tensor::dot(qi, kj));
      }
    }
    tensor::causal_softmax(scores);
    for (std::size_t i = 0; i < seq_len; ++i) {
      const auto out_row = context.row(i).subspan(off, d_head);
      for (std::size_t j = 0; j <= i; ++j) {
        const float p = scores.at(i, j);
        if (p == 0.0f) continue;
        const auto vj = v.row(j).subspan(off, d_head);
        for (std::size_t c = 0; c < d_head; ++c) out_row[c] += p * vj[c];
      }
    }
  }
  return tensor::linear(context, block.wo, {});
}

}  // namespace haan::model
