#include "model/attention.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "tensor/ops.hpp"

namespace haan::model {

tensor::Tensor multi_head_attention(const tensor::Tensor& x, const BlockWeights& block,
                                    std::size_t n_heads) {
  HAAN_EXPECTS(x.shape().rank() == 2);
  const std::size_t seq_len = x.shape().dim(0);
  const std::size_t d_model = x.shape().dim(1);
  HAAN_EXPECTS(d_model % n_heads == 0);
  const std::size_t d_head = d_model / n_heads;

  const tensor::Tensor q = tensor::linear(x, block.wq, {});
  const tensor::Tensor k = tensor::linear(x, block.wk, {});
  const tensor::Tensor v = tensor::linear(x, block.wv, {});

  tensor::Tensor context(tensor::Shape{seq_len, d_model});
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));

  for (std::size_t h = 0; h < n_heads; ++h) {
    const std::size_t off = h * d_head;
    // scores = Q_h K_h^T, causal-masked softmax, then scores V_h.
    tensor::Tensor scores(tensor::Shape{seq_len, seq_len});
    for (std::size_t i = 0; i < seq_len; ++i) {
      const auto qi = q.row(i).subspan(off, d_head);
      for (std::size_t j = 0; j <= i; ++j) {
        const auto kj = k.row(j).subspan(off, d_head);
        scores.at(i, j) = scale * static_cast<float>(tensor::dot(qi, kj));
      }
    }
    tensor::causal_softmax(scores);
    for (std::size_t i = 0; i < seq_len; ++i) {
      const auto out_row = context.row(i).subspan(off, d_head);
      for (std::size_t j = 0; j <= i; ++j) {
        const float p = scores.at(i, j);
        if (p == 0.0f) continue;
        const auto vj = v.row(j).subspan(off, d_head);
        for (std::size_t c = 0; c < d_head; ++c) out_row[c] += p * vj[c];
      }
    }
  }
  return tensor::linear(context, block.wo, {});
}

tensor::Tensor multi_head_attention_cached(const tensor::Tensor& x_new,
                                           const BlockWeights& block,
                                           std::size_t n_heads, KvCache& cache,
                                           std::size_t block_index,
                                           std::size_t start_position) {
  HAAN_EXPECTS(x_new.shape().rank() == 2);
  const std::size_t rows = x_new.shape().dim(0);
  const std::size_t d_model = x_new.shape().dim(1);
  HAAN_EXPECTS(d_model % n_heads == 0);
  HAAN_EXPECTS(cache.valid() && cache.d_model() == d_model);
  HAAN_EXPECTS(block_index < cache.blocks());
  HAAN_EXPECTS(cache.rows(block_index) == start_position);
  const std::size_t d_head = d_model / n_heads;

  const tensor::Tensor q = tensor::linear(x_new, block.wq, {});
  {
    const tensor::Tensor k_new = tensor::linear(x_new, block.wk, {});
    const tensor::Tensor v_new = tensor::linear(x_new, block.wv, {});
    cache.append(block_index, k_new.data(), v_new.data());
  }
  const std::span<const float> k_all = cache.k(block_index);
  const std::span<const float> v_all = cache.v(block_index);

  tensor::Tensor context(tensor::Shape{rows, d_model});
  const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
  std::vector<float> scores;

  for (std::size_t h = 0; h < n_heads; ++h) {
    const std::size_t off = h * d_head;
    for (std::size_t i = 0; i < rows; ++i) {
      // New row i is absolute token start_position + i: it attends over the
      // causal prefix [0, ctx) of the cached K/V rows.
      const std::size_t ctx = start_position + i + 1;
      const auto qi = q.row(i).subspan(off, d_head);
      scores.resize(ctx);
      for (std::size_t j = 0; j < ctx; ++j) {
        const auto kj = k_all.subspan(j * d_model + off, d_head);
        scores[j] = scale * static_cast<float>(tensor::dot(qi, kj));
      }
      // Stable softmax over the prefix, in causal_softmax's arithmetic order.
      float max_v = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < ctx; ++j) max_v = std::max(max_v, scores[j]);
      double sum = 0.0;
      for (std::size_t j = 0; j < ctx; ++j) {
        scores[j] = std::exp(scores[j] - max_v);
        sum += scores[j];
      }
      HAAN_ASSERT(sum > 0.0);
      for (std::size_t j = 0; j < ctx; ++j) {
        scores[j] = static_cast<float>(scores[j] / sum);
      }
      const auto out_row = context.row(i).subspan(off, d_head);
      for (std::size_t j = 0; j < ctx; ++j) {
        const float p = scores[j];
        if (p == 0.0f) continue;
        const auto vj = v_all.subspan(j * d_model + off, d_head);
        for (std::size_t c = 0; c < d_head; ++c) out_row[c] += p * vj[c];
      }
    }
  }
  return tensor::linear(context, block.wo, {});
}

}  // namespace haan::model
