// Per-sequence attention K/V cache for chunked prefill and incremental
// decode. One KvCache accompanies one live sequence across forward steps:
// each transformer block appends the K/V projections of the step's new rows
// during attention, and commit() advances the committed position once every
// block has appended. Cached rows are the exact float bits the block computed,
// so a partial forward over new rows attends over precisely the values a
// one-shot forward would have recomputed — the foundation of the runtime's
// bit-identity guarantee for incremental decoding.
//
// Storage is pmr: the serve-side SessionTable hands each session's cache a
// recycled mem::Arena and a row reservation covering the session's whole
// lifetime, so decode-step appends never touch the system allocator and the
// arena's pages stay wherever the first appending (pinned) worker touched
// them. With no resource (HAAN_NUMA=off, tests, the reference oracle) the
// cache allocates from the default heap exactly as before.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <span>
#include <vector>

namespace haan::model {

/// Append-only K/V storage, one (rows x d_model) pair per transformer block.
class KvCache {
 public:
  KvCache() = default;

  /// Sized for `n_blocks` attention layers of width `d_model`. When
  /// `resource` is non-null all K/V storage draws from it; `reserve_rows`
  /// pre-reserves capacity for that many rows per block so appends up to the
  /// reservation never reallocate.
  KvCache(std::size_t n_blocks, std::size_t d_model,
          std::pmr::memory_resource* resource = nullptr,
          std::size_t reserve_rows = 0);

  bool valid() const { return d_model_ > 0; }
  std::size_t blocks() const { return layers_.size(); }
  std::size_t d_model() const { return d_model_; }

  /// Committed sequence length: rows every block holds after the last
  /// commit(). The next step's rows continue at this token position.
  std::size_t position() const { return position_; }

  /// Rows currently stored for `block` (>= position() mid-step, after this
  /// step's append and before commit()).
  std::size_t rows(std::size_t block) const;

  /// All cached K rows of `block` as one contiguous (rows x d_model) span.
  std::span<const float> k(std::size_t block) const;
  std::span<const float> v(std::size_t block) const;

  /// Appends equally-sized row blocks to `block`'s K and V storage.
  void append(std::size_t block, std::span<const float> k_rows,
              std::span<const float> v_rows);

  /// Commits one step of `rows` new rows: every block must have appended
  /// exactly `rows` rows since the previous commit.
  void commit(std::size_t rows);

  /// Bytes RESERVED for K/V storage (vector capacity — with an arena behind
  /// it, the allocation actually held). Reports cache pressure; for
  /// cross-baseline comparisons use logical_bytes().
  std::size_t memory_bytes() const;

  /// Bytes of K/V rows actually stored (size, not capacity) — identical for
  /// arena-backed and heap-backed caches holding the same sequence, so serve
  /// residency metrics stay comparable across HAAN_NUMA modes.
  std::size_t logical_bytes() const;

 private:
  struct LayerKV {
    std::pmr::vector<float> k;
    std::pmr::vector<float> v;
  };
  std::vector<LayerKV> layers_;
  std::size_t d_model_ = 0;
  std::size_t position_ = 0;
};

}  // namespace haan::model
