#include "model/weights.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace haan::model {

namespace {

/// Gaussian matrix with std 1/sqrt(fan_in): variance-preserving projection.
tensor::Tensor projection(std::size_t out, std::size_t in, common::Rng& rng) {
  return tensor::Tensor::randn(tensor::Shape{out, in}, rng, 0.0,
                               1.0 / std::sqrt(static_cast<double>(in)));
}

/// Norm affine gain vector with the requested RMS and ±10% per-channel jitter.
std::vector<float> gain_vector(std::size_t n, double rms, common::Rng& rng) {
  std::vector<float> alpha(n);
  for (auto& a : alpha) {
    a = static_cast<float>(rms * rng.uniform(0.9, 1.1));
  }
  return alpha;
}

std::vector<float> bias_vector(std::size_t n, double std, common::Rng& rng) {
  std::vector<float> beta(n);
  for (auto& b : beta) b = static_cast<float>(rng.gaussian(0.0, std));
  return beta;
}

// Empirical attenuation of a unit-gain branch (weights scaled 1/sqrt(fan_in)):
// how much variance survives attention (softmax averaging shrinks it) and the
// MLP nonlinearities. Checked by tests/model/test_isd_trend; only the
// *rough* magnitude matters — errors show up as noise around the log-linear
// ISD trend, which the paper's own Fig 2 exhibits too.
constexpr double kAttnAttenuation = 0.35;
constexpr double kGeluAttenuation = 0.35;
constexpr double kSiluGateAttenuation = 0.25;

}  // namespace

ModelWeights make_weights(const ModelConfig& config) {
  HAAN_EXPECTS(config.d_model % config.n_heads == 0);
  common::Rng rng(config.seed);

  ModelWeights weights;
  weights.embedding = tensor::Tensor::randn(
      tensor::Shape{config.vocab_size, config.d_model}, rng, 0.0, 1.0);
  // Token embedding norms are heterogeneous in trained LLMs (rare tokens sit
  // far from the origin). This drives the per-token spread — and the
  // token-dependent early-layer ISD slopes — visible in the paper's Fig 2,
  // and is what makes skipping early layers fail so hard in Table II: a
  // global decay coefficient cannot fit token-dependent early dynamics.
  for (std::size_t v = 0; v < config.vocab_size; ++v) {
    const float scale = static_cast<float>(std::exp(rng.gaussian(0.0, 0.4)));
    for (float& value : weights.embedding.row(v)) value *= scale;
  }
  weights.pos_embedding = tensor::Tensor::randn(
      tensor::Shape{config.max_seq_len, config.d_model}, rng, 0.0, 0.1);

  // Expected residual-stream variance schedule. Each branch (attention, MLP)
  // contributes gain/2; the norm gain alpha is sized so the branch's output
  // variance tracks the current stream variance — the mechanism that makes
  // stream growth geometric and hence log-ISD linear in depth (paper §III-A).
  double stream_var = 1.0;
  weights.blocks.reserve(config.n_blocks);
  for (std::size_t b = 0; b < config.n_blocks; ++b) {
    const double branch_gain = config.block_gain(b) / 2.0;

    BlockWeights block;
    block.wq = projection(config.d_model, config.d_model, rng);
    block.wk = projection(config.d_model, config.d_model, rng);
    block.wv = projection(config.d_model, config.d_model, rng);
    block.wo = projection(config.d_model, config.d_model, rng);
    block.w_up = projection(config.d_ff, config.d_model, rng);
    if (config.gated_mlp) {
      block.w_gate = projection(config.d_ff, config.d_model, rng);
    }
    block.w_down = projection(config.d_model, config.d_ff, rng);

    const double attn_alpha_rms =
        std::sqrt(branch_gain * stream_var / kAttnAttenuation);
    block.norm1_alpha = gain_vector(config.d_model, attn_alpha_rms, rng);
    stream_var *= 1.0 + branch_gain;

    const double mlp_attenuation =
        config.gated_mlp ? kSiluGateAttenuation : kGeluAttenuation;
    const double mlp_alpha_rms =
        std::sqrt(branch_gain * stream_var / mlp_attenuation);
    block.norm2_alpha = gain_vector(config.d_model, mlp_alpha_rms, rng);
    stream_var *= 1.0 + branch_gain;

    if (config.norm_kind == NormKind::kLayerNorm) {
      block.norm1_beta = bias_vector(config.d_model, 0.02, rng);
      block.norm2_beta = bias_vector(config.d_model, 0.02, rng);
    }
    weights.blocks.push_back(std::move(block));
  }

  if (config.final_norm) {
    weights.final_alpha = gain_vector(config.d_model, 1.0, rng);
    if (config.norm_kind == NormKind::kLayerNorm) {
      weights.final_beta = bias_vector(config.d_model, 0.02, rng);
    }
  }
  return weights;
}

}  // namespace haan::model
