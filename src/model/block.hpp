// One transformer block: norm -> attention -> residual add, then
// norm -> MLP -> residual add (pre-norm), or the post-norm ordering.
#pragma once

#include <functional>
#include <span>

#include "model/norm_provider.hpp"
#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// Observer invoked with every normalization-layer *input* vector:
/// (global norm-layer index, token position, the vector). Used to collect the
/// ISD traces of §III-A without perturbing execution.
using NormInputObserver =
    std::function<void(std::size_t layer, std::size_t position, std::span<const float> z)>;

/// Applies `norm` over `x` for global norm layer `layer_index` with ONE
/// batched provider call (normalize_rows) covering every token row, after
/// notifying `observer` (if set) with each input row. Row r is token
/// position r.
tensor::Tensor apply_norm_layer(const tensor::Tensor& x, std::size_t layer_index,
                                NormKind kind, std::span<const float> alpha,
                                std::span<const float> beta, NormProvider& norm,
                                const NormInputObserver& observer);

/// Fused residual-add + norm over the whole block: updates `x += residual` in
/// place and normalizes the sums via the provider's batched fused entry point
/// (residual_add_normalize_rows — one call per norm layer, one fewer pass
/// over each hidden vector than add_inplace + apply_norm_layer, with
/// bit-identical results). With an observer the add is materialized once for
/// the whole block and the same batched normalize_rows path runs, so the
/// observer sees each row's norm input bit-identically. An empty `residual`
/// degrades to apply_norm_layer.
tensor::Tensor apply_residual_norm_layer(tensor::Tensor& x,
                                         const tensor::Tensor& residual,
                                         std::size_t layer_index, NormKind kind,
                                         std::span<const float> alpha,
                                         std::span<const float> beta,
                                         NormProvider& norm,
                                         const NormInputObserver& observer);

/// Runs block `block_index` over hidden states `h` (L x d_model) in place.
/// Norm layers get global indices 2*block_index and 2*block_index + 1.
///
/// `pending` threads the deferred residual between norm layers: on entry it
/// holds a sub-layer output not yet added to `h` (empty when none), and the
/// block folds it into its first norm's fused add. On exit it holds this
/// block's trailing MLP output (pre-norm placement) or is empty (post-norm,
/// which normalizes inside the block). The caller must fold a non-empty
/// `pending` into `h` after the last block (the final norm does it fused).
void run_block(tensor::Tensor& h, tensor::Tensor& pending,
               const BlockWeights& block, const ModelConfig& config,
               std::size_t block_index, NormProvider& norm,
               const NormInputObserver& observer);

}  // namespace haan::model
