// One transformer block: norm -> attention -> residual add, then
// norm -> MLP -> residual add (pre-norm), or the post-norm ordering.
#pragma once

#include <functional>
#include <span>

#include "model/norm_provider.hpp"
#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// Observer invoked with every normalization-layer *input* vector:
/// (global norm-layer index, token position, the vector). Used to collect the
/// ISD traces of §III-A without perturbing execution.
using NormInputObserver =
    std::function<void(std::size_t layer, std::size_t position, std::span<const float> z)>;

/// Applies `norm` row-wise over `x` for global norm layer `layer_index`,
/// notifying `observer` (if set) with each input row.
tensor::Tensor apply_norm_layer(const tensor::Tensor& x, std::size_t layer_index,
                                NormKind kind, std::span<const float> alpha,
                                std::span<const float> beta, NormProvider& norm,
                                const NormInputObserver& observer);

/// Runs block `block_index` over hidden states `h` (L x d_model) in place.
/// Norm layers get global indices 2*block_index and 2*block_index + 1.
void run_block(tensor::Tensor& h, const BlockWeights& block,
               const ModelConfig& config, std::size_t block_index,
               NormProvider& norm, const NormInputObserver& observer);

}  // namespace haan::model
