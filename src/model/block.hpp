// One transformer block: norm -> attention -> residual add, then
// norm -> MLP -> residual add (pre-norm), or the post-norm ordering.
//
// Blocks execute over a PACKED hidden block: `h` holds the concatenated rows
// of every sequence in the batch (a BatchLayout describes the spans; the
// per-request path uses a degenerate single-span layout). Attention — the only
// sub-layer with cross-row state — runs per sequence span; the MLP, residual
// adds and normalization layers are row-wise and run over the whole packed
// block, so every norm layer is ONE row-block provider call covering all
// sequences in the batch.
#pragma once

#include <functional>
#include <span>

#include "model/batch_layout.hpp"
#include "model/kv_cache.hpp"
#include "model/norm_provider.hpp"
#include "model/row_partition.hpp"
#include "model/weights.hpp"
#include "tensor/tensor.hpp"

namespace haan::model {

/// Observer invoked with every normalization-layer *input* vector:
/// (global norm-layer index, packed row index, the vector). Used to collect
/// the ISD traces of §III-A without perturbing execution. For single-sequence
/// forwards the packed row index IS the token position; for mega-batch
/// forwards map it back through the BatchLayout's spans.
using NormInputObserver =
    std::function<void(std::size_t layer, std::size_t position, std::span<const float> z)>;

/// Applies `norm` over `x` for global norm layer `layer_index` with ONE
/// batched provider call (normalize_rows) covering every packed row, after
/// notifying `observer` (if set) with each input row. Row r is packed row r
/// (= token position r for a single sequence).
tensor::Tensor apply_norm_layer(const tensor::Tensor& x, std::size_t layer_index,
                                NormKind kind, std::span<const float> alpha,
                                std::span<const float> beta, NormProvider& norm,
                                const NormInputObserver& observer);

/// Fused residual-add + norm over the whole packed block: updates
/// `x += residual` in place and normalizes the sums via the provider's batched
/// fused entry point (residual_add_normalize_rows — one call per norm layer,
/// one fewer pass over each hidden vector than add_inplace + apply_norm_layer,
/// with bit-identical results). With an observer the add is materialized once
/// for the whole block and the same batched normalize_rows path runs, so the
/// observer sees each row's norm input bit-identically. An empty `residual`
/// degrades to apply_norm_layer.
tensor::Tensor apply_residual_norm_layer(tensor::Tensor& x,
                                         const tensor::Tensor& residual,
                                         std::size_t layer_index, NormKind kind,
                                         std::span<const float> alpha,
                                         std::span<const float> beta,
                                         NormProvider& norm,
                                         const NormInputObserver& observer);

/// Runs block `block_index` over the packed hidden states `h`
/// (layout.total_rows() x d_model) in place. Norm layers get global indices
/// 2*block_index and 2*block_index + 1 and execute as one row-block call over
/// the whole packed block; attention runs causally per sequence span.
///
/// `span_pool` (optional) executes the attention and MLP sub-layers of a
/// multi-sequence packing span-parallel on the worker-local pool — sequences
/// are independent given the normed input, so results are bit-identical to
/// the serial span loop for any thread count. Cross-request packing is what
/// makes this profitable: a single request rarely carries enough rows to
/// amortize intra-forward threading, a packed scheduler batch does.
///
/// `pending` threads the deferred residual between norm layers: on entry it
/// holds a sub-layer output not yet added to `h` (empty when none), and the
/// block folds it into its first norm's fused add. On exit it holds this
/// block's trailing MLP output (pre-norm placement) or is empty (post-norm,
/// which normalizes inside the block). The caller must fold a non-empty
/// `pending` into `h` after the last block (the final norm does it fused).
///
/// `caches` (optional; empty, or one entry per span) switches attention to the
/// incremental path: span s's rows are NEW rows continuing at
/// span.start_position, attending over caches[s]'s prefix. A null entry keeps
/// the plain one-shot attention for that span (its start_position must be 0).
///
/// Norm providers still see start_position = 0, i.e. HAAN predictor positions
/// are PACKED ROW indices, exactly as in one-shot packed forwards. This is
/// deliberate: anchors live and die within a single forward call (the
/// predictor resets per forward), so any unique per-row numbering preserves
/// bit-identity — whereas absolute token positions would collide between
/// different sessions decoding at the same depth in one mixed pack,
/// overwriting each other's anchors and breaking the guarantee.
void run_block(tensor::Tensor& h, tensor::Tensor& pending,
               const BatchLayout& layout, const BlockWeights& block,
               const ModelConfig& config, std::size_t block_index,
               NormProvider& norm, const NormInputObserver& observer,
               RowPartitionPool* span_pool = nullptr,
               std::span<KvCache* const> caches = {});

}  // namespace haan::model
