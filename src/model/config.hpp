// Transformer model configurations. The experiment models are *width-scaled
// surrogates* of the paper's LLMs: depth, normalization kind/placement and
// residual topology match the original (these determine everything the HAAN
// algorithm sees), while d_model/vocab are scaled down so a pure-C++ forward
// pass is tractable. See DESIGN.md "Reproduction constraints".
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace haan::model {

/// Which normalization operation the model uses (paper §II-A).
enum class NormKind { kLayerNorm, kRMSNorm };

/// Where normalization sits relative to the residual branch.
enum class NormPlacement { kPreNorm, kPostNorm };

/// Full architecture description.
struct ModelConfig {
  std::string name;
  std::size_t n_blocks = 12;
  std::size_t d_model = 128;
  std::size_t n_heads = 4;
  std::size_t d_ff = 512;
  std::size_t vocab_size = 512;
  std::size_t max_seq_len = 256;
  NormKind norm_kind = NormKind::kLayerNorm;
  NormPlacement placement = NormPlacement::kPreNorm;
  bool final_norm = true;   ///< trailing norm after the last block
  bool gated_mlp = false;   ///< LLaMA-style SiLU-gated MLP (vs GELU 2-layer)
  /// Target per-block relative residual growth: Var(block out) ≈ gain * Var(in).
  /// Drives the emergent exponential residual-stream growth => log-linear ISD.
  double residual_gain = 0.08;
  /// Gain at block 0; the per-block gain tapers linearly from `early_gain`
  /// down to `residual_gain` over the first `early_blocks` blocks. This
  /// reproduces the paper's Fig 2 shape: steep curved ISD decay through the
  /// early/middle network, then a log-linear tail (the skippable window).
  double early_gain = 0.9;
  std::size_t early_blocks = 4;

  /// Per-block gain under the taper schedule.
  double block_gain(std::size_t block) const {
    if (block >= early_blocks || early_blocks == 0) return residual_gain;
    const double t = static_cast<double>(block) / static_cast<double>(early_blocks);
    return early_gain + (residual_gain - early_gain) * t;
  }
  std::uint64_t seed = 1;

  /// Number of normalization layers in execution order:
  /// 2 per block (+1 if final_norm).
  std::size_t norm_layer_count() const {
    return 2 * n_blocks + (final_norm ? 1 : 0);
  }

  /// Head dimension; d_model must divide evenly.
  std::size_t d_head() const { return d_model / n_heads; }
};

/// Paper-model surrogates. `width` scales d_model (vocab and d_ff follow);
/// depth and normalization structure always match the real architecture:
///   LLaMA-7B   : 32 blocks, RMSNorm, pre-norm, no profiled final norm => 64
///   OPT-2.7B   : 32 blocks, LayerNorm, pre-norm, final norm           => 65
///   GPT2-1.5B  : 48 blocks, LayerNorm, pre-norm, final norm           => 97
///   GPT2-355M  : 24 blocks, LayerNorm, pre-norm, final norm           => 49
///   GPT2-117M  : 12 blocks, LayerNorm, pre-norm, final norm           => 25
ModelConfig llama7b_surrogate(std::size_t width = 128);
ModelConfig opt2p7b_surrogate(std::size_t width = 128);
ModelConfig gpt2_1p5b_surrogate(std::size_t width = 96);
ModelConfig gpt2_355m_surrogate(std::size_t width = 128);
ModelConfig gpt2_117m_surrogate(std::size_t width = 128);

/// Tiny config for unit tests (fast to run, still 2 norms/block).
ModelConfig tiny_test_model();

/// Surrogate lookup by CLI name, shared by every --model flag so the
/// binaries agree on one vocabulary. Accepts the canonical names ("tiny",
/// "llama7b", "opt2.7b", "gpt2-1.5b", "gpt2-355m", "gpt2-117m") and short
/// aliases ("llama", "opt", "gpt2"). `width` 0 = the surrogate's default;
/// ignored by "tiny". Returns nullopt for unknown names.
std::optional<ModelConfig> surrogate_by_name(const std::string& name,
                                             std::size_t width = 0);

/// The names surrogate_by_name accepts, for --help strings.
std::string surrogate_names_help();

/// Real (unscaled) dimensions of the paper's models, used by the latency and
/// hardware models where the true embedding width matters.
struct RealDims {
  std::size_t n_blocks;
  std::size_t d_model;
  std::size_t n_heads;
  std::size_t d_ff;
  std::size_t norm_layers;
};

/// True dimensions for latency/hardware modelling (not the surrogate widths).
RealDims real_dims_llama7b();
RealDims real_dims_opt2p7b();
RealDims real_dims_gpt2_1p5b();
RealDims real_dims_gpt2_355m();
RealDims real_dims_gpt2_117m();

}  // namespace haan::model
