#include "model/transformer.hpp"

#include "common/assert.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace haan::model {

Transformer::Transformer(ModelConfig config)
    : config_(std::move(config)), weights_(make_weights(config_)) {}

void Transformer::set_norm_observer(NormInputObserver observer) {
  observer_ = std::move(observer);
}

tensor::Tensor Transformer::forward_hidden(std::span<const int> tokens,
                                           NormProvider& norm) const {
  const BatchLayout layout = BatchLayout::single(tokens.size());
  const std::span<const int> sequences[] = {tokens};
  return forward_hidden_batch(sequences, layout, norm);
}

tensor::Tensor Transformer::forward_hidden_batch(
    std::span<const std::span<const int>> sequences, const BatchLayout& layout,
    NormProvider& norm, RowPartitionPool* span_pool,
    std::span<KvCache* const> caches) const {
  HAAN_EXPECTS(!sequences.empty());
  HAAN_EXPECTS(layout.sequences() == sequences.size());
  const std::size_t d = config_.d_model;

  if (caches.empty()) {
    // One-shot forwards must start every sequence at position 0 — a nonzero
    // start without a cache would silently attend only within the chunk.
    for (std::size_t s = 0; s < layout.sequences(); ++s) {
      HAAN_EXPECTS(layout.span(s).start_position == 0);
    }
  } else {
    HAAN_EXPECTS(caches.size() == sequences.size());
    for (std::size_t s = 0; s < layout.sequences(); ++s) {
      if (caches[s] == nullptr) {
        HAAN_EXPECTS(layout.span(s).start_position == 0);
        continue;
      }
      HAAN_EXPECTS(caches[s]->valid() && caches[s]->d_model() == d);
      HAAN_EXPECTS(caches[s]->blocks() == config_.n_blocks);
      HAAN_EXPECTS(caches[s]->position() == layout.span(s).start_position);
    }
  }

  norm.begin_sequence();

  // Embedding fill: each sequence's rows land in its span of the packed
  // block; positions restart at the span's start_position per sequence.
  tensor::Tensor h(tensor::Shape{layout.total_rows(), d});
  {
    HAAN_TRACE_SPAN("embed", "model",
                    static_cast<std::uint32_t>(layout.total_rows()),
                    static_cast<std::uint32_t>(layout.sequences()));
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      const std::span<const int> tokens = sequences[s];
      const SequenceSpan& span = layout.span(s);
      HAAN_EXPECTS(!tokens.empty());
      HAAN_EXPECTS(tokens.size() == span.rows);
      HAAN_EXPECTS(span.start_position + tokens.size() <= config_.max_seq_len);
      for (std::size_t t = 0; t < tokens.size(); ++t) {
        const int token = tokens[t];
        HAAN_EXPECTS(token >= 0 &&
                     static_cast<std::size_t>(token) < config_.vocab_size);
        const auto emb = weights_.embedding.row(static_cast<std::size_t>(token));
        const auto pos = weights_.pos_embedding.row(span.start_position + t);
        const auto row = h.row(span.row_begin + t);
        for (std::size_t c = 0; c < d; ++c) row[c] = emb[c] + pos[c];
      }
    }
  }

  // `pending` carries each sub-layer output to the next norm layer, where the
  // residual add fuses with the statistics pass (one fewer pass over the
  // hidden vector per norm layer; bit-identical to add-then-normalize). Every
  // norm layer is executed as ONE batched row-block provider call over the
  // whole packed block — all sequences at once, never a per-token or
  // per-sequence loop (see apply_residual_norm_layer).
  tensor::Tensor pending;
  for (std::size_t b = 0; b < config_.n_blocks; ++b) {
    run_block(h, pending, layout, weights_.blocks[b], config_, b, norm,
              observer_, span_pool, caches);
  }

  if (config_.final_norm) {
    h = apply_residual_norm_layer(h, pending, 2 * config_.n_blocks,
                                  config_.norm_kind, weights_.final_alpha,
                                  weights_.final_beta, norm, observer_);
  } else if (pending.numel() != 0) {
    tensor::add_inplace(h, pending);
  }

  // Commit this step: every block appended exactly span.rows K/V rows.
  for (std::size_t s = 0; s < caches.size(); ++s) {
    if (caches[s] != nullptr) caches[s]->commit(layout.span(s).rows);
  }
  return h;
}

KvCache Transformer::make_kv_cache() const {
  return KvCache(config_.n_blocks, config_.d_model);
}

std::vector<float> Transformer::pooled_features(std::span<const int> tokens,
                                                NormProvider& norm) const {
  const tensor::Tensor h = forward_hidden(tokens, norm);
  return tensor::mean_rows(h);
}

std::vector<float> Transformer::last_logits(std::span<const int> tokens,
                                            NormProvider& norm) const {
  const tensor::Tensor h = forward_hidden(tokens, norm);
  return logits_for_hidden_row(h.row(h.shape().dim(0) - 1));
}

std::vector<float> Transformer::logits_for_hidden_row(
    std::span<const float> row) const {
  HAAN_EXPECTS(row.size() == config_.d_model);
  std::vector<float> logits(config_.vocab_size);
  for (std::size_t v = 0; v < config_.vocab_size; ++v) {
    logits[v] = static_cast<float>(tensor::dot(row, weights_.embedding.row(v)));
  }
  return logits;
}

}  // namespace haan::model
