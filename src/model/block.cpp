#include "model/block.hpp"

#include "common/assert.hpp"
#include "model/attention.hpp"
#include "tensor/ops.hpp"

namespace haan::model {

tensor::Tensor apply_norm_layer(const tensor::Tensor& x, std::size_t layer_index,
                                NormKind kind, std::span<const float> alpha,
                                std::span<const float> beta, NormProvider& norm,
                                const NormInputObserver& observer) {
  HAAN_EXPECTS(x.shape().rank() == 2);
  tensor::Tensor out(x.shape());
  const std::size_t rows = x.shape().dim(0);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto z = x.row(r);
    if (observer) observer(layer_index, r, z);
    norm.normalize(layer_index, r, kind, z, alpha, beta, out.row(r));
  }
  return out;
}

namespace {

tensor::Tensor run_mlp(const tensor::Tensor& x, const BlockWeights& block,
                       const ModelConfig& config) {
  tensor::Tensor up = tensor::linear(x, block.w_up, {});
  if (config.gated_mlp) {
    tensor::Tensor gate = tensor::linear(x, block.w_gate, {});
    tensor::silu_inplace(gate);
    up = tensor::hadamard(up, gate);
  } else {
    tensor::gelu_inplace(up);
  }
  return tensor::linear(up, block.w_down, {});
}

}  // namespace

void run_block(tensor::Tensor& h, const BlockWeights& block,
               const ModelConfig& config, std::size_t block_index,
               NormProvider& norm, const NormInputObserver& observer) {
  const std::size_t norm1 = 2 * block_index;
  const std::size_t norm2 = 2 * block_index + 1;

  if (config.placement == NormPlacement::kPreNorm) {
    tensor::Tensor normed = apply_norm_layer(h, norm1, config.norm_kind,
                                             block.norm1_alpha, block.norm1_beta,
                                             norm, observer);
    tensor::Tensor attn = multi_head_attention(normed, block, config.n_heads);
    tensor::add_inplace(h, attn);

    normed = apply_norm_layer(h, norm2, config.norm_kind, block.norm2_alpha,
                              block.norm2_beta, norm, observer);
    tensor::Tensor mlp = run_mlp(normed, block, config);
    tensor::add_inplace(h, mlp);
  } else {
    // Post-norm: residual add first, then normalize the sum.
    tensor::Tensor attn = multi_head_attention(h, block, config.n_heads);
    tensor::add_inplace(attn, h);
    h = apply_norm_layer(attn, norm1, config.norm_kind, block.norm1_alpha,
                         block.norm1_beta, norm, observer);

    tensor::Tensor mlp = run_mlp(h, block, config);
    tensor::add_inplace(mlp, h);
    h = apply_norm_layer(mlp, norm2, config.norm_kind, block.norm2_alpha,
                         block.norm2_beta, norm, observer);
  }
}

}  // namespace haan::model
