#include "model/block.hpp"

#include "common/assert.hpp"
#include "kernels/kernels.hpp"
#include "model/attention.hpp"
#include "tensor/ops.hpp"

namespace haan::model {

tensor::Tensor apply_norm_layer(const tensor::Tensor& x, std::size_t layer_index,
                                NormKind kind, std::span<const float> alpha,
                                std::span<const float> beta, NormProvider& norm,
                                const NormInputObserver& observer) {
  HAAN_EXPECTS(x.shape().rank() == 2);
  tensor::Tensor out(x.shape());
  const std::size_t rows = x.shape().dim(0);
  if (observer) {
    // The observer sees each row's norm input (x itself, unmodified) before
    // the single batched provider call.
    for (std::size_t r = 0; r < rows; ++r) observer(layer_index, r, x.row(r));
  }
  norm.normalize_rows(layer_index, /*start_position=*/0, kind, rows, x.data(),
                      alpha, beta, out.data());
  return out;
}

tensor::Tensor apply_residual_norm_layer(tensor::Tensor& x,
                                         const tensor::Tensor& residual,
                                         std::size_t layer_index, NormKind kind,
                                         std::span<const float> alpha,
                                         std::span<const float> beta,
                                         NormProvider& norm,
                                         const NormInputObserver& observer) {
  if (residual.numel() == 0) {
    return apply_norm_layer(x, layer_index, kind, alpha, beta, norm, observer);
  }
  HAAN_EXPECTS(x.shape().rank() == 2);
  HAAN_EXPECTS(residual.shape() == x.shape());
  if (observer) {
    // The observer must see the norm *input* (the sum), so materialize the
    // whole block's add once and route through the same batched normalize
    // call as the observer-free path; values are bit-identical to the fused
    // path (the float adds are elementwise either way).
    kernels::residual_add(x.data(), residual.data());
    return apply_norm_layer(x, layer_index, kind, alpha, beta, norm, observer);
  }
  tensor::Tensor out(x.shape());
  const std::size_t rows = x.shape().dim(0);
  norm.residual_add_normalize_rows(layer_index, /*start_position=*/0, kind,
                                   rows, x.data(), residual.data(), alpha, beta,
                                   out.data());
  return out;
}

namespace {

tensor::Tensor run_mlp(const tensor::Tensor& x, const BlockWeights& block,
                       const ModelConfig& config) {
  tensor::Tensor up = tensor::linear(x, block.w_up, {});
  if (config.gated_mlp) {
    tensor::Tensor gate = tensor::linear(x, block.w_gate, {});
    tensor::silu_inplace(gate);
    up = tensor::hadamard(up, gate);
  } else {
    tensor::gelu_inplace(up);
  }
  return tensor::linear(up, block.w_down, {});
}

}  // namespace

void run_block(tensor::Tensor& h, tensor::Tensor& pending,
               const BlockWeights& block, const ModelConfig& config,
               std::size_t block_index, NormProvider& norm,
               const NormInputObserver& observer) {
  const std::size_t norm1 = 2 * block_index;
  const std::size_t norm2 = 2 * block_index + 1;

  if (config.placement == NormPlacement::kPreNorm) {
    // The previous sub-layer's output (attention/MLP of the block before, or
    // nothing for block 0) folds into this norm's fused residual add.
    tensor::Tensor normed =
        apply_residual_norm_layer(h, pending, norm1, config.norm_kind,
                                  block.norm1_alpha, block.norm1_beta, norm,
                                  observer);
    tensor::Tensor attn = multi_head_attention(normed, block, config.n_heads);

    normed = apply_residual_norm_layer(h, attn, norm2, config.norm_kind,
                                       block.norm2_alpha, block.norm2_beta,
                                       norm, observer);
    // Defer the MLP residual add to the next norm layer (or the caller).
    pending = run_mlp(normed, block, config);
  } else {
    // Post-norm: residual add first, then normalize the sum. Post-norm blocks
    // never leave a deferred residual, but fold one in if present.
    if (pending.numel() != 0) {
      tensor::add_inplace(h, pending);
      pending = tensor::Tensor();
    }
    tensor::Tensor attn = multi_head_attention(h, block, config.n_heads);
    h = apply_residual_norm_layer(attn, h, norm1, config.norm_kind,
                                  block.norm1_alpha, block.norm1_beta, norm,
                                  observer);

    tensor::Tensor mlp = run_mlp(h, block, config);
    h = apply_residual_norm_layer(mlp, h, norm2, config.norm_kind,
                                  block.norm2_alpha, block.norm2_beta, norm,
                                  observer);
  }
}

}  // namespace haan::model
