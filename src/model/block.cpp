#include "model/block.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "kernels/kernels.hpp"
#include "model/attention.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace haan::model {

tensor::Tensor apply_norm_layer(const tensor::Tensor& x, std::size_t layer_index,
                                NormKind kind, std::span<const float> alpha,
                                std::span<const float> beta, NormProvider& norm,
                                const NormInputObserver& observer) {
  HAAN_EXPECTS(x.shape().rank() == 2);
  tensor::Tensor out(x.shape());
  const std::size_t rows = x.shape().dim(0);
  if (observer) {
    // The observer sees each row's norm input (x itself, unmodified) before
    // the single batched provider call.
    for (std::size_t r = 0; r < rows; ++r) observer(layer_index, r, x.row(r));
  }
  // Span name is the provider's label ("norm/exact", "norm/haan", ...), so a
  // trace shows which normalization path served each layer.
  HAAN_TRACE_SPAN(norm.trace_label(), "model",
                  static_cast<std::uint32_t>(layer_index),
                  static_cast<std::uint32_t>(rows));
  norm.normalize_rows(layer_index, /*start_position=*/0, kind, rows, x.data(),
                      alpha, beta, out.data());
  return out;
}

tensor::Tensor apply_residual_norm_layer(tensor::Tensor& x,
                                         const tensor::Tensor& residual,
                                         std::size_t layer_index, NormKind kind,
                                         std::span<const float> alpha,
                                         std::span<const float> beta,
                                         NormProvider& norm,
                                         const NormInputObserver& observer) {
  if (residual.numel() == 0) {
    return apply_norm_layer(x, layer_index, kind, alpha, beta, norm, observer);
  }
  HAAN_EXPECTS(x.shape().rank() == 2);
  HAAN_EXPECTS(residual.shape() == x.shape());
  if (observer) {
    // The observer must see the norm *input* (the sum), so materialize the
    // whole block's add once and route through the same batched normalize
    // call as the observer-free path; values are bit-identical to the fused
    // path (the float adds are elementwise either way).
    kernels::residual_add(x.data(), residual.data());
    return apply_norm_layer(x, layer_index, kind, alpha, beta, norm, observer);
  }
  tensor::Tensor out(x.shape());
  const std::size_t rows = x.shape().dim(0);
  HAAN_TRACE_SPAN(norm.trace_label(), "model",
                  static_cast<std::uint32_t>(layer_index),
                  static_cast<std::uint32_t>(rows));
  norm.residual_add_normalize_rows(layer_index, /*start_position=*/0, kind,
                                   rows, x.data(), residual.data(), alpha, beta,
                                   out.data());
  return out;
}

namespace {

tensor::Tensor run_mlp(const tensor::Tensor& x, const BlockWeights& block,
                       const ModelConfig& config) {
  tensor::Tensor up = tensor::linear(x, block.w_up, {});
  if (config.gated_mlp) {
    tensor::Tensor gate = tensor::linear(x, block.w_gate, {});
    tensor::silu_inplace(gate);
    up = tensor::hadamard(up, gate);
  } else {
    tensor::gelu_inplace(up);
  }
  return tensor::linear(up, block.w_down, {});
}

/// Copies span rows out of the packed block, applies `fn` (sub-block + span
/// index in, same shape out), and writes the result back into the span's rows
/// of `out`.
template <typename Fn>
void apply_to_span(const tensor::Tensor& x, const BatchLayout& layout,
                   std::size_t s, std::size_t d, tensor::Tensor& out,
                   const Fn& fn) {
  const SequenceSpan& span = layout.span(s);
  tensor::Tensor sub(tensor::Shape{span.rows, d});
  std::copy_n(x.data().data() + span.row_begin * d, span.rows * d,
              sub.data().data());
  const tensor::Tensor result = fn(sub, s);
  std::copy_n(result.data().data(), span.rows * d,
              out.data().data() + span.row_begin * d);
}

/// Runs `fn` over every span of the layout, span-parallel when a pool with
/// more than one thread is available. Spans write disjoint row ranges of
/// `out`, so concurrent execution is bit-identical to the serial loop.
template <typename Fn>
tensor::Tensor map_spans(const tensor::Tensor& x, const BatchLayout& layout,
                         RowPartitionPool* pool, const Fn& fn) {
  HAAN_EXPECTS(x.shape().dim(0) == layout.total_rows());
  const std::size_t d = x.shape().dim(1);
  tensor::Tensor out(x.shape());
  if (pool != nullptr && pool->threads() > 1 && layout.sequences() > 1) {
    pool->for_rows(layout.sequences(), /*min_rows=*/1,
                   [&](std::size_t, std::size_t s0, std::size_t ns) {
      for (std::size_t s = s0; s < s0 + ns; ++s) {
        apply_to_span(x, layout, s, d, out, fn);
      }
    });
  } else {
    for (std::size_t s = 0; s < layout.sequences(); ++s) {
      apply_to_span(x, layout, s, d, out, fn);
    }
  }
  return out;
}

/// Causal attention over a packed block: each sequence span attends only
/// within itself (the causal mask never crosses sequences). The single-span
/// case passes the block straight through; multi-span packings materialize
/// each span once for the attention call — attention itself is a pure per-
/// sequence function, so the packed result is bit-identical to running every
/// sequence through multi_head_attention on its own.
///
/// With `caches`, span s runs the incremental path: its rows continue at
/// span(s).start_position and attend over caches[s]'s prefix plus themselves
/// (appending this block's K/V rows as a side effect). Spans run serially in
/// that case even with a pool — concurrent cached attention would be safe
/// (each span owns its cache) but the serial loop keeps the append order per
/// cache trivially deterministic; decode packs are single-row spans where
/// span-parallel attention buys nothing.
tensor::Tensor run_attention(const tensor::Tensor& x, const BatchLayout& layout,
                             const BlockWeights& block, const ModelConfig& config,
                             std::size_t block_index,
                             std::span<KvCache* const> caches,
                             RowPartitionPool* span_pool) {
  HAAN_TRACE_SPAN("attn", "model", static_cast<std::uint32_t>(x.shape().dim(0)),
                  static_cast<std::uint32_t>(layout.sequences()));
  if (!caches.empty()) {
    HAAN_EXPECTS(caches.size() == layout.sequences());
    return map_spans(x, layout, /*pool=*/nullptr,
                     [&](const tensor::Tensor& sub, std::size_t s) {
      if (caches[s] == nullptr) {
        HAAN_EXPECTS(layout.span(s).start_position == 0);
        return multi_head_attention(sub, block, config.n_heads);
      }
      return multi_head_attention_cached(sub, block, config.n_heads, *caches[s],
                                         block_index,
                                         layout.span(s).start_position);
    });
  }
  if (layout.sequences() == 1) {
    return multi_head_attention(x, block, config.n_heads);
  }
  return map_spans(x, layout, span_pool,
                   [&](const tensor::Tensor& sub, std::size_t) {
    return multi_head_attention(sub, block, config.n_heads);
  });
}

/// MLP over a packed block. The MLP is row-wise (linear + activation), so the
/// whole packed block runs in one call; with a span pool, spans run
/// concurrently instead — bit-identical either way because every op touches
/// one row at a time.
tensor::Tensor run_mlp_packed(const tensor::Tensor& x, const BatchLayout& layout,
                              const BlockWeights& block, const ModelConfig& config,
                              RowPartitionPool* span_pool) {
  HAAN_TRACE_SPAN("mlp", "model", static_cast<std::uint32_t>(x.shape().dim(0)),
                  static_cast<std::uint32_t>(layout.sequences()));
  if (span_pool == nullptr || span_pool->threads() <= 1 ||
      layout.sequences() == 1) {
    return run_mlp(x, block, config);
  }
  return map_spans(x, layout, span_pool,
                   [&](const tensor::Tensor& sub, std::size_t) {
    return run_mlp(sub, block, config);
  });
}

}  // namespace

void run_block(tensor::Tensor& h, tensor::Tensor& pending,
               const BatchLayout& layout, const BlockWeights& block,
               const ModelConfig& config, std::size_t block_index,
               NormProvider& norm, const NormInputObserver& observer,
               RowPartitionPool* span_pool, std::span<KvCache* const> caches) {
  const std::size_t norm1 = 2 * block_index;
  const std::size_t norm2 = 2 * block_index + 1;

  if (config.placement == NormPlacement::kPreNorm) {
    // The previous sub-layer's output (attention/MLP of the block before, or
    // nothing for block 0) folds into this norm's fused residual add.
    tensor::Tensor normed =
        apply_residual_norm_layer(h, pending, norm1, config.norm_kind,
                                  block.norm1_alpha, block.norm1_beta, norm,
                                  observer);
    tensor::Tensor attn = run_attention(normed, layout, block, config,
                                        block_index, caches, span_pool);

    normed = apply_residual_norm_layer(h, attn, norm2, config.norm_kind,
                                       block.norm2_alpha, block.norm2_beta,
                                       norm, observer);
    // Defer the MLP residual add to the next norm layer (or the caller).
    pending = run_mlp_packed(normed, layout, block, config, span_pool);
  } else {
    // Post-norm: residual add first, then normalize the sum. Post-norm blocks
    // never leave a deferred residual, but fold one in if present.
    if (pending.numel() != 0) {
      tensor::add_inplace(h, pending);
      pending = tensor::Tensor();
    }
    tensor::Tensor attn =
        run_attention(h, layout, block, config, block_index, caches, span_pool);
    h = apply_residual_norm_layer(attn, h, norm1, config.norm_kind,
                                  block.norm1_alpha, block.norm1_beta, norm,
                                  observer);

    tensor::Tensor mlp = run_mlp_packed(h, layout, block, config, span_pool);
    h = apply_residual_norm_layer(mlp, h, norm2, config.norm_kind,
                                  block.norm2_alpha, block.norm2_beta, norm,
                                  observer);
  }
}

}  // namespace haan::model
