#include "model/norm_provider.hpp"

#include "tensor/norm_ref.hpp"

namespace haan::model {

void ExactNormProvider::normalize(std::size_t /*layer_index*/, std::size_t /*position*/,
                                  NormKind kind, std::span<const float> z,
                                  std::span<const float> alpha,
                                  std::span<const float> beta, std::span<float> out) {
  if (kind == NormKind::kLayerNorm) {
    tensor::layernorm(z, alpha, beta, out, eps_);
  } else {
    tensor::rmsnorm(z, alpha, beta, out, eps_);
  }
}

}  // namespace haan::model
