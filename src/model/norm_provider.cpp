#include "model/norm_provider.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "kernels/autotune.hpp"
#include "kernels/kernels.hpp"
#include "mem/topology.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::model {

namespace {

using kernels::data_or_null;

}  // namespace

std::size_t NormProvider::check_row_block(std::size_t rows, std::size_t numel,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::size_t out_size) {
  HAAN_EXPECTS(rows > 0);
  HAAN_EXPECTS(numel > 0 && numel % rows == 0);
  const std::size_t d = numel / rows;
  HAAN_EXPECTS(out_size == numel);
  HAAN_EXPECTS(alpha.empty() || alpha.size() == d);
  HAAN_EXPECTS(beta.empty() || beta.size() == d);
  return d;
}

void NormProvider::residual_add_normalize(std::size_t layer_index,
                                          std::size_t position, NormKind kind,
                                          std::span<float> h,
                                          std::span<const float> residual,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::span<float> out) {
  // Unfused fallback for providers without a fused statistics pass.
  kernels::residual_add(h, residual);
  normalize(layer_index, position, kind, h, alpha, beta, out);
}

void NormProvider::normalize_rows(std::size_t layer_index,
                                  std::size_t start_position, NormKind kind,
                                  std::size_t rows, std::span<const float> x,
                                  std::span<const float> alpha,
                                  std::span<const float> beta,
                                  std::span<float> out) {
  // Per-row fallback for providers without a batched path.
  const std::size_t d = check_row_block(rows, x.size(), alpha, beta, out.size());
  for (std::size_t r = 0; r < rows; ++r) {
    normalize(layer_index, start_position + r, kind, x.subspan(r * d, d), alpha,
              beta, out.subspan(r * d, d));
  }
}

void NormProvider::residual_add_normalize_rows(
    std::size_t layer_index, std::size_t start_position, NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  const std::size_t d = check_row_block(rows, h.size(), alpha, beta, out.size());
  HAAN_EXPECTS(residual.size() == h.size());
  for (std::size_t r = 0; r < rows; ++r) {
    residual_add_normalize(layer_index, start_position + r, kind,
                           h.subspan(r * d, d), residual.subspan(r * d, d),
                           alpha, beta, out.subspan(r * d, d));
  }
}

ExactNormProvider::ExactNormProvider(double eps, std::size_t norm_threads)
    : eps_(eps),
      pool_(norm_threads),
      scratch_arena_(mem::placement_enabled()
                         ? std::make_unique<mem::Arena>(mem::ArenaOptions{
                               /*initial_bytes=*/std::size_t{1} << 16})
                         : nullptr),
      workspace_(scratch_arena_ ? scratch_arena_.get()
                                : std::pmr::get_default_resource()) {}

const kernels::KernelTable& ExactNormProvider::tuned(std::size_t d) {
  if (tuned_table_ == nullptr || tuned_d_ != d) {
    const kernels::AutotuneChoice& choice = kernels::tuned_for(d);
    tuned_table_ = choice.table;
    tuned_d_ = d;
    chunk_cap_ = choice.cross_node_partition
                     ? pool_.threads()
                     : std::max<std::size_t>(
                           1, std::min(pool_.threads(),
                                       mem::topology().max_node_cpus()));
  }
  return *tuned_table_;
}

void ExactNormProvider::normalize(std::size_t /*layer_index*/, std::size_t /*position*/,
                                  NormKind kind, std::span<const float> z,
                                  std::span<const float> alpha,
                                  std::span<const float> beta, std::span<float> out) {
  const kernels::KernelTable& k = tuned(z.size());
  if (kind == NormKind::kLayerNorm) {
    tensor::layernorm(k, z, alpha, beta, out, eps_);
  } else {
    tensor::rmsnorm(k, z, alpha, beta, out, eps_);
  }
}

void ExactNormProvider::residual_add_normalize(
    std::size_t /*layer_index*/, std::size_t /*position*/, NormKind kind,
    std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  const kernels::KernelTable& k = tuned(h.size());
  if (kind == NormKind::kLayerNorm) {
    kernels::residual_add_layernorm(k, h, residual, alpha, beta, out, eps_);
  } else {
    kernels::residual_add_rmsnorm(k, h, residual, alpha, beta, out, eps_);
  }
}

void ExactNormProvider::normalize_rows(std::size_t /*layer_index*/,
                                       std::size_t /*start_position*/,
                                       NormKind kind, std::size_t rows,
                                       std::span<const float> x,
                                       std::span<const float> alpha,
                                       std::span<const float> beta,
                                       std::span<float> out) {
  const std::size_t d = check_row_block(rows, x.size(), alpha, beta, out.size());
  const kernels::KernelTable& k = tuned(d);
  const double n = static_cast<double>(d);
  workspace_.stats.resize(rows);
  workspace_.mean.resize(rows);
  workspace_.isd.resize(rows);
  // Rows are independent once eps/backend are resolved: each chunk runs the
  // full stats -> variance -> normalize pipeline over its own contiguous row
  // range, writing disjoint workspace and output slices — bit-identical for
  // any chunk count (every kernel is row-wise).
  pool_.for_rows(rows, min_partition_rows(d), chunk_cap_,
                 [&](std::size_t /*chunk*/, std::size_t r0, std::size_t nr) {
    const float* xr = x.data() + r0 * d;
    kernels::SumStats* stats = workspace_.stats.data() + r0;
    double* mean = workspace_.mean.data() + r0;
    double* isd = workspace_.isd.data() + r0;
    k.stats_rows(xr, nr, d, d, stats);
    if (kind == NormKind::kLayerNorm) {
      for (std::size_t r = 0; r < nr; ++r) mean[r] = stats[r].sum / n;
      // Two-pass per-row variance, same rounding as tensor::exact_stats.
      k.centered_sum_sq_rows(xr, nr, d, d, mean, isd);
      for (std::size_t r = 0; r < nr; ++r) {
        isd[r] = 1.0 / std::sqrt(isd[r] / n + eps_);
      }
    } else {
      for (std::size_t r = 0; r < nr; ++r) {
        // rms is materialized before being squared again, like tensor::rmsnorm.
        const double rms = std::sqrt(stats[r].sum_sq / n);
        mean[r] = 0.0;
        isd[r] = 1.0 / std::sqrt(rms * rms + eps_);
      }
    }
    k.normalize_affine_rows(xr, nr, d, mean, isd, data_or_null(alpha),
                            data_or_null(beta), out.data() + r0 * d,
                            /*saturate=*/false);
  });
}

void ExactNormProvider::residual_add_normalize_rows(
    std::size_t /*layer_index*/, std::size_t /*start_position*/, NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  const std::size_t d = check_row_block(rows, h.size(), alpha, beta, out.size());
  HAAN_EXPECTS(residual.size() == h.size());
  const kernels::KernelTable& k = tuned(d);
  if (chunk_workspaces_.size() + 1 < pool_.threads()) {
    chunk_workspaces_.resize(pool_.threads() - 1);
  }
  // The fused helpers are row-wise; chunks get disjoint row subspans and
  // private workspaces (chunk 0 reuses the member scratch).
  pool_.for_rows(rows, min_partition_rows(d), chunk_cap_,
                 [&](std::size_t chunk, std::size_t r0, std::size_t nr) {
    kernels::RowNormWorkspace& ws =
        chunk == 0 ? workspace_ : chunk_workspaces_[chunk - 1];
    const std::span<float> hs = h.subspan(r0 * d, nr * d);
    const std::span<const float> rs = residual.subspan(r0 * d, nr * d);
    const std::span<float> os = out.subspan(r0 * d, nr * d);
    if (kind == NormKind::kLayerNorm) {
      kernels::residual_add_layernorm_rows(k, nr, hs, rs, alpha, beta, os,
                                           eps_, ws);
    } else {
      kernels::residual_add_rmsnorm_rows(k, nr, hs, rs, alpha, beta, os, eps_,
                                         ws);
    }
  });
}

}  // namespace haan::model
