#include "model/norm_provider.hpp"

#include "kernels/kernels.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::model {

void NormProvider::residual_add_normalize(std::size_t layer_index,
                                          std::size_t position, NormKind kind,
                                          std::span<float> h,
                                          std::span<const float> residual,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::span<float> out) {
  // Unfused fallback for providers without a fused statistics pass.
  kernels::residual_add(h, residual);
  normalize(layer_index, position, kind, h, alpha, beta, out);
}

void ExactNormProvider::normalize(std::size_t /*layer_index*/, std::size_t /*position*/,
                                  NormKind kind, std::span<const float> z,
                                  std::span<const float> alpha,
                                  std::span<const float> beta, std::span<float> out) {
  if (kind == NormKind::kLayerNorm) {
    tensor::layernorm(z, alpha, beta, out, eps_);
  } else {
    tensor::rmsnorm(z, alpha, beta, out, eps_);
  }
}

void ExactNormProvider::residual_add_normalize(
    std::size_t /*layer_index*/, std::size_t /*position*/, NormKind kind,
    std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  if (kind == NormKind::kLayerNorm) {
    kernels::residual_add_layernorm(h, residual, alpha, beta, out, eps_);
  } else {
    kernels::residual_add_rmsnorm(h, residual, alpha, beta, out, eps_);
  }
}

}  // namespace haan::model
