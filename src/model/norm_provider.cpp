#include "model/norm_provider.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "kernels/kernels.hpp"
#include "tensor/norm_ref.hpp"

namespace haan::model {

namespace {

using kernels::data_or_null;

/// Shared shape validation for the row-block entry points; returns d.
std::size_t check_rows(std::size_t rows, std::size_t numel,
                       std::span<const float> alpha, std::span<const float> beta,
                       std::size_t out_size) {
  HAAN_EXPECTS(rows > 0);
  HAAN_EXPECTS(numel > 0 && numel % rows == 0);
  const std::size_t d = numel / rows;
  HAAN_EXPECTS(out_size == numel);
  HAAN_EXPECTS(alpha.empty() || alpha.size() == d);
  HAAN_EXPECTS(beta.empty() || beta.size() == d);
  return d;
}

}  // namespace

void NormProvider::residual_add_normalize(std::size_t layer_index,
                                          std::size_t position, NormKind kind,
                                          std::span<float> h,
                                          std::span<const float> residual,
                                          std::span<const float> alpha,
                                          std::span<const float> beta,
                                          std::span<float> out) {
  // Unfused fallback for providers without a fused statistics pass.
  kernels::residual_add(h, residual);
  normalize(layer_index, position, kind, h, alpha, beta, out);
}

void NormProvider::normalize_rows(std::size_t layer_index,
                                  std::size_t start_position, NormKind kind,
                                  std::size_t rows, std::span<const float> x,
                                  std::span<const float> alpha,
                                  std::span<const float> beta,
                                  std::span<float> out) {
  // Per-row fallback for providers without a batched path.
  const std::size_t d = check_rows(rows, x.size(), alpha, beta, out.size());
  for (std::size_t r = 0; r < rows; ++r) {
    normalize(layer_index, start_position + r, kind, x.subspan(r * d, d), alpha,
              beta, out.subspan(r * d, d));
  }
}

void NormProvider::residual_add_normalize_rows(
    std::size_t layer_index, std::size_t start_position, NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  const std::size_t d = check_rows(rows, h.size(), alpha, beta, out.size());
  HAAN_EXPECTS(residual.size() == h.size());
  for (std::size_t r = 0; r < rows; ++r) {
    residual_add_normalize(layer_index, start_position + r, kind,
                           h.subspan(r * d, d), residual.subspan(r * d, d),
                           alpha, beta, out.subspan(r * d, d));
  }
}

void ExactNormProvider::normalize(std::size_t /*layer_index*/, std::size_t /*position*/,
                                  NormKind kind, std::span<const float> z,
                                  std::span<const float> alpha,
                                  std::span<const float> beta, std::span<float> out) {
  if (kind == NormKind::kLayerNorm) {
    tensor::layernorm(z, alpha, beta, out, eps_);
  } else {
    tensor::rmsnorm(z, alpha, beta, out, eps_);
  }
}

void ExactNormProvider::residual_add_normalize(
    std::size_t /*layer_index*/, std::size_t /*position*/, NormKind kind,
    std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  if (kind == NormKind::kLayerNorm) {
    kernels::residual_add_layernorm(h, residual, alpha, beta, out, eps_);
  } else {
    kernels::residual_add_rmsnorm(h, residual, alpha, beta, out, eps_);
  }
}

void ExactNormProvider::normalize_rows(std::size_t /*layer_index*/,
                                       std::size_t /*start_position*/,
                                       NormKind kind, std::size_t rows,
                                       std::span<const float> x,
                                       std::span<const float> alpha,
                                       std::span<const float> beta,
                                       std::span<float> out) {
  const std::size_t d = check_rows(rows, x.size(), alpha, beta, out.size());
  const kernels::KernelTable& k = kernels::active();
  const double n = static_cast<double>(d);
  workspace_.stats.resize(rows);
  workspace_.mean.resize(rows);
  workspace_.isd.resize(rows);
  k.stats_rows(x.data(), rows, d, d, workspace_.stats.data());
  if (kind == NormKind::kLayerNorm) {
    for (std::size_t r = 0; r < rows; ++r) {
      workspace_.mean[r] = workspace_.stats[r].sum / n;
    }
    // Two-pass per-row variance, same rounding as tensor::exact_stats.
    k.centered_sum_sq_rows(x.data(), rows, d, d, workspace_.mean.data(),
                           workspace_.isd.data());
    for (std::size_t r = 0; r < rows; ++r) {
      workspace_.isd[r] = 1.0 / std::sqrt(workspace_.isd[r] / n + eps_);
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      // rms is materialized before being squared again, like tensor::rmsnorm.
      const double rms = std::sqrt(workspace_.stats[r].sum_sq / n);
      workspace_.mean[r] = 0.0;
      workspace_.isd[r] = 1.0 / std::sqrt(rms * rms + eps_);
    }
  }
  k.normalize_affine_rows(x.data(), rows, d, workspace_.mean.data(),
                          workspace_.isd.data(), data_or_null(alpha),
                          data_or_null(beta), out.data(), /*saturate=*/false);
}

void ExactNormProvider::residual_add_normalize_rows(
    std::size_t /*layer_index*/, std::size_t /*start_position*/, NormKind kind,
    std::size_t rows, std::span<float> h, std::span<const float> residual,
    std::span<const float> alpha, std::span<const float> beta,
    std::span<float> out) {
  if (kind == NormKind::kLayerNorm) {
    kernels::residual_add_layernorm_rows(rows, h, residual, alpha, beta, out,
                                         eps_, workspace_);
  } else {
    kernels::residual_add_rmsnorm_rows(rows, h, residual, alpha, beta, out,
                                       eps_, workspace_);
  }
}

}  // namespace haan::model
