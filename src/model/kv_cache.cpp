#include "model/kv_cache.hpp"

#include "common/assert.hpp"

namespace haan::model {

KvCache::KvCache(std::size_t n_blocks, std::size_t d_model,
                 std::pmr::memory_resource* resource, std::size_t reserve_rows)
    : d_model_(d_model) {
  HAAN_EXPECTS(d_model > 0);
  std::pmr::memory_resource* mr =
      resource != nullptr ? resource : std::pmr::get_default_resource();
  layers_.reserve(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    LayerKV& layer = layers_.emplace_back(
        LayerKV{std::pmr::vector<float>(mr), std::pmr::vector<float>(mr)});
    if (reserve_rows > 0) {
      layer.k.reserve(reserve_rows * d_model_);
      layer.v.reserve(reserve_rows * d_model_);
    }
  }
}

std::size_t KvCache::rows(std::size_t block) const {
  HAAN_EXPECTS(block < layers_.size());
  return layers_[block].k.size() / d_model_;
}

std::span<const float> KvCache::k(std::size_t block) const {
  HAAN_EXPECTS(block < layers_.size());
  return layers_[block].k;
}

std::span<const float> KvCache::v(std::size_t block) const {
  HAAN_EXPECTS(block < layers_.size());
  return layers_[block].v;
}

void KvCache::append(std::size_t block, std::span<const float> k_rows,
                     std::span<const float> v_rows) {
  HAAN_EXPECTS(block < layers_.size());
  HAAN_EXPECTS(k_rows.size() == v_rows.size());
  HAAN_EXPECTS(k_rows.size() % d_model_ == 0);
  LayerKV& layer = layers_[block];
  layer.k.insert(layer.k.end(), k_rows.begin(), k_rows.end());
  layer.v.insert(layer.v.end(), v_rows.begin(), v_rows.end());
}

void KvCache::commit(std::size_t rows) {
  const std::size_t expected = position_ + rows;
  for (std::size_t b = 0; b < layers_.size(); ++b) {
    HAAN_EXPECTS(this->rows(b) == expected);
  }
  position_ = expected;
}

std::size_t KvCache::memory_bytes() const {
  std::size_t bytes = 0;
  for (const LayerKV& layer : layers_) {
    bytes += (layer.k.capacity() + layer.v.capacity()) * sizeof(float);
  }
  return bytes;
}

std::size_t KvCache::logical_bytes() const {
  std::size_t bytes = 0;
  for (const LayerKV& layer : layers_) {
    bytes += (layer.k.size() + layer.v.size()) * sizeof(float);
  }
  return bytes;
}

}  // namespace haan::model
