#include "model/batch_layout.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace haan::model {

BatchLayout BatchLayout::from_lengths(std::span<const std::size_t> lengths) {
  HAAN_EXPECTS(!lengths.empty());
  BatchLayout layout;
  layout.spans_.reserve(lengths.size());
  std::size_t row = 0;
  for (const std::size_t len : lengths) {
    HAAN_EXPECTS(len > 0);
    layout.spans_.push_back({row, len, /*start_position=*/0});
    row += len;
  }
  layout.total_rows_ = row;
  return layout;
}

BatchLayout BatchLayout::from_spans(std::span<const std::size_t> lengths,
                                    std::span<const std::size_t> start_positions) {
  HAAN_EXPECTS(!lengths.empty());
  HAAN_EXPECTS(lengths.size() == start_positions.size());
  BatchLayout layout;
  layout.spans_.reserve(lengths.size());
  std::size_t row = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    HAAN_EXPECTS(lengths[i] > 0);
    layout.spans_.push_back({row, lengths[i], start_positions[i]});
    row += lengths[i];
  }
  layout.total_rows_ = row;
  return layout;
}

BatchLayout BatchLayout::from_sequences(
    std::span<const std::span<const int>> sequences) {
  HAAN_EXPECTS(!sequences.empty());
  std::vector<std::size_t> lengths;
  lengths.reserve(sequences.size());
  for (const auto& tokens : sequences) lengths.push_back(tokens.size());
  return from_lengths(lengths);
}

BatchLayout BatchLayout::single(std::size_t rows, std::size_t start_position) {
  const std::size_t lengths[] = {rows};
  const std::size_t starts[] = {start_position};
  return from_spans(lengths, starts);
}

const SequenceSpan& BatchLayout::span(std::size_t i) const {
  HAAN_EXPECTS(i < spans_.size());
  return spans_[i];
}

std::string BatchLayout::to_string() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "BatchLayout{%zu seqs, %zu rows}",
                spans_.size(), total_rows_);
  return buffer;
}

}  // namespace haan::model
