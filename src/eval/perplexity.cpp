#include "eval/perplexity.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace haan::eval {

namespace {

/// Standardizes logits to zero mean / unit variance before softmax. Synthetic
/// (untrained) readouts produce logits with arbitrary scale; a trained LM head
/// is temperature-calibrated, so KL must be measured at a comparable
/// temperature or it degenerates into a norm comparison.
std::vector<double> standardized_softmax(std::span<const float> logits) {
  HAAN_EXPECTS(!logits.empty());
  double mean = 0.0;
  for (const float v : logits) mean += v;
  mean /= static_cast<double>(logits.size());
  double var = 0.0;
  for (const float v : logits) var += (v - mean) * (v - mean);
  var /= static_cast<double>(logits.size());
  const double inv_std = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;

  double max_z = -1e300;
  std::vector<double> z(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    z[i] = (logits[i] - mean) * inv_std;
    max_z = std::max(max_z, z[i]);
  }
  std::vector<double> probs(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(z[i] - max_z);
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

}  // namespace

double softmax_kl(std::span<const float> teacher_logits,
                  std::span<const float> variant_logits) {
  HAAN_EXPECTS(teacher_logits.size() == variant_logits.size());
  const std::vector<double> p = standardized_softmax(teacher_logits);
  const std::vector<double> q = standardized_softmax(variant_logits);
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], 1e-300));
  }
  return std::max(kl, 0.0);
}

double pseudo_ppl_ratio(model::Transformer& model, model::NormProvider& variant,
                        std::span<const std::vector<int>> corpus) {
  HAAN_EXPECTS(!corpus.empty());
  model::ExactNormProvider exact;
  double kl_sum = 0.0;
  for (const auto& tokens : corpus) {
    const std::vector<float> teacher = model.last_logits(tokens, exact);
    const std::vector<float> approx = model.last_logits(tokens, variant);
    kl_sum += softmax_kl(teacher, approx);
  }
  return std::exp(kl_sum / static_cast<double>(corpus.size()));
}

}  // namespace haan::eval
