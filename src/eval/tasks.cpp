#include "eval/tasks.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace haan::eval {

namespace {

TaskSpec make_spec(const char* name, const char* short_name, std::size_t choices,
                   double target, std::uint64_t seed) {
  TaskSpec spec;
  spec.name = name;
  spec.short_name = short_name;
  spec.n_choices = choices;
  spec.target_accuracy = target;
  spec.seed = seed;
  return spec;
}

}  // namespace

std::vector<TaskSpec> task_suite_for(const std::string& model_name) {
  // Paper Table I, "Original" rows.
  if (model_name == "OPT-2.7B") {
    return {make_spec("WinoGrande", "WG", 2, 0.6093, 0xA1),
            make_spec("PIQA", "PQ", 2, 0.7367, 0xA2),
            make_spec("HellaSwag", "HS", 4, 0.4581, 0xA3),
            make_spec("Arc-Easy", "A-e", 4, 0.6073, 0xA4),
            make_spec("Arc-Challenge", "A-c", 4, 0.2696, 0xA5)};
  }
  if (model_name == "GPT2-1.5B") {
    return {make_spec("WinoGrande", "WG", 2, 0.5833, 0xB1),
            make_spec("PIQA", "PQ", 2, 0.7084, 0xB2),
            make_spec("HellaSwag", "HS", 4, 0.4004, 0xB3),
            make_spec("Arc-Easy", "A-e", 4, 0.5829, 0xB4),
            make_spec("Arc-Challenge", "A-c", 4, 0.2500, 0xB5)};
  }
  // LLaMA-7B (default).
  return {make_spec("WinoGrande", "WG", 2, 0.7017, 0xC1),
          make_spec("PIQA", "PQ", 2, 0.7867, 0xC2),
          make_spec("HellaSwag", "HS", 4, 0.5694, 0xC3),
          make_spec("Arc-Easy", "A-e", 4, 0.7517, 0xC4),
          make_spec("Arc-Challenge", "A-c", 4, 0.4198, 0xC5)};
}

namespace {

/// Unit Gaussian direction orthogonal to `unit` (projection removed).
std::vector<float> orthogonal_noise(std::span<const float> unit, common::Rng& rng) {
  std::vector<float> noise(unit.size());
  rng.fill_gaussian(noise, 0.0, 1.0);
  const double along = tensor::dot(noise, unit);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise[i] -= static_cast<float>(along * unit[i]);
  }
  tensor::l2_normalize(noise);
  return noise;
}

/// Builds a unit choice embedding a * u_hat + n_hat, normalized.
std::vector<float> choice_embedding(std::span<const float> unit_feature,
                                    double alignment, common::Rng& rng) {
  std::vector<float> emb = orthogonal_noise(unit_feature, rng);
  for (std::size_t i = 0; i < emb.size(); ++i) {
    emb[i] += static_cast<float>(alignment * unit_feature[i]);
  }
  tensor::l2_normalize(emb);
  return emb;
}

}  // namespace

TaskDataset TaskDataset::generate(const model::Transformer& generator,
                                  const TaskSpec& spec, std::size_t n_examples,
                                  std::size_t n_threads) {
  HAAN_EXPECTS(n_examples > 0);
  HAAN_EXPECTS(spec.n_choices >= 2);
  TaskDataset dataset;
  dataset.spec_ = spec;

  // Per-example deterministic RNG stream: results are independent of thread
  // scheduling and of n_examples ordering.
  const std::uint64_t base_seed = spec.seed ^ generator.config().seed;
  const auto example_rng = [&](std::size_t e, std::uint64_t salt) {
    return common::Rng(base_seed ^ (0x9E3779B97F4A7C15ULL * (e + 1)) ^ salt);
  };

  // 1) Draw alignment z-scores for every (example, choice) up front so the
  //    difficulty calibration and the final embeddings share the same draws.
  struct Draws {
    double gold_z;
    std::vector<double> distractor_z;
  };
  std::vector<Draws> draws(n_examples);
  for (std::size_t e = 0; e < n_examples; ++e) {
    auto rng = example_rng(e, 0xD1);
    auto& d = draws[e];
    d.gold_z = rng.gaussian();
    d.distractor_z.resize(spec.n_choices - 1);
    for (auto& z : d.distractor_z) z = rng.gaussian();
  }

  // 2) Calibrate the distractor alignment mean by bisection: the exact model
  //    picks gold iff a_g > max a_i; both sides share the spread s, so wins
  //    are a monotone function of the distractor mean m.
  const double s = spec.alignment_spread;
  const auto accuracy_at = [&](double m) {
    std::size_t wins = 0;
    for (const auto& d : draws) {
      const double gold = 1.0 + s * d.gold_z;
      double best = -1e30;
      for (const double z : d.distractor_z) best = std::max(best, m + s * z);
      if (gold > best) ++wins;
    }
    return static_cast<double>(wins) / static_cast<double>(n_examples);
  };
  // accuracy_at is decreasing in m; the bracket must reach negative
  // alignments so high-accuracy 4-choice targets are attainable.
  double lo = -4.0, hi = 3.0;
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (accuracy_at(mid) > spec.target_accuracy) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  dataset.difficulty_ = 0.5 * (lo + hi);

  // 3) Generate contexts serially (cheap, RNG-driven), compute generator
  //    features in parallel (expensive forwards), build embeddings serially.
  dataset.examples_.resize(n_examples);
  dataset.features_.resize(n_examples);
  for (std::size_t e = 0; e < n_examples; ++e) {
    auto rng = example_rng(e, 0xD2);
    auto& example = dataset.examples_[e];
    example.tokens.resize(spec.context_len);
    for (auto& token : example.tokens) {
      // Task text is Zipf-skewed, unlike the uniform calibration corpus
      // (the paper calibrates on Wikitext and evaluates on lm-eval tasks).
      // The distribution shift is what makes early-layer ISD fits transfer
      // poorly to downstream tasks (paper Table II's early skip ranges)
      // while deep-layer fits remain valid.
      const double u = rng.uniform();
      token = static_cast<int>(
          static_cast<double>(generator.config().vocab_size) * u * u);
    }
    example.gold = static_cast<std::size_t>(rng.uniform_index(spec.n_choices));
  }

  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  n_threads = std::min(n_threads, n_examples);
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    model::ExactNormProvider exact;
    while (true) {
      const std::size_t e = next.fetch_add(1);
      if (e >= n_examples) break;
      std::vector<float> feature =
          generator.pooled_features(dataset.examples_[e].tokens, exact);
      tensor::l2_normalize(feature);
      dataset.features_[e] = std::move(feature);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();

  for (std::size_t e = 0; e < n_examples; ++e) {
    auto rng = example_rng(e, 0xD3);
    auto& example = dataset.examples_[e];
    const auto& d = draws[e];
    std::size_t distractor = 0;
    for (std::size_t c = 0; c < spec.n_choices; ++c) {
      const double alignment =
          (c == example.gold)
              ? 1.0 + s * d.gold_z
              : dataset.difficulty_ + s * d.distractor_z[distractor++];
      example.choice_embeddings.push_back(
          choice_embedding(dataset.features_[e], alignment, rng));
    }
  }
  return dataset;
}

std::size_t score_example(const Example& example, std::span<const float> unit_feature) {
  HAAN_EXPECTS(!example.choice_embeddings.empty());
  std::size_t best = 0;
  double best_score = -1e30;
  for (std::size_t c = 0; c < example.choice_embeddings.size(); ++c) {
    const double score = tensor::dot(example.choice_embeddings[c], unit_feature);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

double TaskDataset::baseline_accuracy() const {
  std::size_t correct = 0;
  for (std::size_t e = 0; e < examples_.size(); ++e) {
    if (score_example(examples_[e], features_[e]) == examples_[e].gold) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples_.size());
}

}  // namespace haan::eval
