#include "eval/evaluator.hpp"

#include <atomic>
#include <thread>

#include "common/assert.hpp"
#include "tensor/ops.hpp"

namespace haan::eval {

AccuracyResult evaluate_accuracy(model::Transformer& model,
                                 model::NormProvider& norm,
                                 const TaskDataset& dataset) {
  AccuracyResult result;
  result.n_examples = dataset.examples().size();
  HAAN_EXPECTS(result.n_examples > 0);

  for (std::size_t e = 0; e < result.n_examples; ++e) {
    const Example& example = dataset.examples()[e];
    std::vector<float> feature = model.pooled_features(example.tokens, norm);
    tensor::l2_normalize(feature);
    const std::size_t pick = score_example(example, feature);
    if (pick == example.gold) ++result.correct;
    const std::size_t baseline_pick =
        score_example(example, dataset.generator_features()[e]);
    if (pick != baseline_pick) ++result.flips_vs_baseline;
  }
  result.accuracy =
      static_cast<double>(result.correct) / static_cast<double>(result.n_examples);
  return result;
}

AccuracyResult evaluate_accuracy_parallel(const model::Transformer& model,
                                          const NormProviderFactory& factory,
                                          const TaskDataset& dataset,
                                          std::size_t n_threads) {
  const std::size_t n = dataset.examples().size();
  HAAN_EXPECTS(n > 0);
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  n_threads = std::min(n_threads, n);

  std::atomic<std::size_t> correct{0};
  std::atomic<std::size_t> flips{0};
  std::atomic<std::size_t> next{0};

  const auto worker = [&]() {
    const std::unique_ptr<model::NormProvider> provider = factory();
    while (true) {
      const std::size_t e = next.fetch_add(1);
      if (e >= n) break;
      const Example& example = dataset.examples()[e];
      std::vector<float> feature = model.pooled_features(example.tokens, *provider);
      tensor::l2_normalize(feature);
      const std::size_t pick = score_example(example, feature);
      if (pick == example.gold) correct.fetch_add(1);
      if (pick != score_example(example, dataset.generator_features()[e])) {
        flips.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();

  AccuracyResult result;
  result.n_examples = n;
  result.correct = correct.load();
  result.flips_vs_baseline = flips.load();
  result.accuracy = static_cast<double>(result.correct) / static_cast<double>(n);
  return result;
}

AccuracyResult evaluate_baseline(const TaskDataset& dataset) {
  AccuracyResult result;
  result.n_examples = dataset.examples().size();
  HAAN_EXPECTS(result.n_examples > 0);
  for (std::size_t e = 0; e < result.n_examples; ++e) {
    const Example& example = dataset.examples()[e];
    if (score_example(example, dataset.generator_features()[e]) == example.gold) {
      ++result.correct;
    }
  }
  result.accuracy =
      static_cast<double>(result.correct) / static_cast<double>(result.n_examples);
  return result;
}

}  // namespace haan::eval
