// Synthetic multiple-choice evaluation suites standing in for the paper's
// lm-eval-harness tasks (PIQA, WinoGrande, HellaSwag, ARC-Easy/Challenge).
//
// Mechanics (see DESIGN.md "substitutions"): every example plants a gold
// signal in embedding space. The generator (the surrogate model with *exact*
// normalization) maps the example's context tokens to a pooled feature u;
// each answer choice is an embedding a_c * u_hat + n_c with unit noise n_c
// orthogonal to u_hat. The gold choice draws its alignment a_g around 1.0,
// distractors around a calibrated difficulty mean — chosen by bisection so
// the exact model's accuracy matches the paper's baseline for that
// (model, task) cell. Scoring a choice is cosine similarity between the
// *evaluated* model's pooled feature and the choice embedding, so every
// normalization approximation flows through the full transformer into the
// score: small perturbations flip only near-boundary examples (paper
// Table I, <1% deltas); mis-scaled early layers decorrelate the feature and
// collapse accuracy to the 1/n_choices chance floor (paper Table II).
#pragma once

#include <string>
#include <vector>

#include "model/norm_provider.hpp"
#include "model/transformer.hpp"

namespace haan::eval {

/// A task's generation parameters.
struct TaskSpec {
  std::string name;             ///< "WinoGrande"
  std::string short_name;       ///< "WG"
  std::size_t n_choices = 2;    ///< 2 (WG, PQ) or 4 (HS, A-e, A-c)
  double target_accuracy = 0.7; ///< paper's FP32 baseline for this cell
  std::size_t context_len = 12; ///< tokens per example context
  /// s: stddev of choice alignments. Sets the decision-margin scale relative
  /// to the feature-perturbation noise; 1.0 reproduces trained-LLM robustness
  /// (sub-percent accuracy deltas under the paper's good configurations).
  double alignment_spread = 1.0;
  std::uint64_t seed = 1;
};

/// The five-task suite with the paper's Table I "Original" accuracies for a
/// given model ("LLaMA-7B", "OPT-2.7B", "GPT2-1.5B"; anything else gets the
/// LLaMA targets).
std::vector<TaskSpec> task_suite_for(const std::string& model_name);

/// One generated example.
struct Example {
  std::vector<int> tokens;                           ///< context
  std::vector<std::vector<float>> choice_embeddings; ///< unit vectors
  std::size_t gold = 0;                              ///< index of the answer
};

/// A calibrated, generated dataset for one (model, task) pair.
class TaskDataset {
 public:
  /// Generates `n_examples` examples using `generator` (run with exact
  /// normalization) and calibrates distractor difficulty to the spec's
  /// target accuracy. Forward passes run on `n_threads` workers (0 = all
  /// cores); results are deterministic regardless of thread count.
  static TaskDataset generate(const model::Transformer& generator,
                              const TaskSpec& spec, std::size_t n_examples,
                              std::size_t n_threads = 0);

  const TaskSpec& spec() const { return spec_; }
  const std::vector<Example>& examples() const { return examples_; }

  /// The generator's pooled features (unit norm), one per example. Scoring
  /// against these reproduces the exact-normalization ("Original") accuracy
  /// without re-running the generator.
  const std::vector<std::vector<float>>& generator_features() const {
    return features_;
  }

  /// Accuracy when scoring with the stored generator features.
  double baseline_accuracy() const;

  /// The difficulty mean the calibration selected (test/diagnostic hook).
  double calibrated_difficulty() const { return difficulty_; }

 private:
  TaskSpec spec_;
  std::vector<Example> examples_;
  std::vector<std::vector<float>> features_;
  double difficulty_ = 0.0;
};

/// Scores one example against a (unit-normalized) feature vector: returns the
/// argmax choice index.
std::size_t score_example(const Example& example, std::span<const float> unit_feature);

}  // namespace haan::eval
