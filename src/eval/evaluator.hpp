// Accuracy evaluation of a (model, normalization-provider) pair on a
// calibrated task dataset: the Table I / Table II measurement loop.
#pragma once

#include <functional>
#include <memory>

#include "eval/tasks.hpp"
#include "model/norm_provider.hpp"
#include "model/transformer.hpp"

namespace haan::eval {

/// Result of one evaluation run.
struct AccuracyResult {
  double accuracy = 0.0;
  std::size_t n_examples = 0;
  std::size_t correct = 0;
  /// Examples whose prediction differs from the stored generator (exact)
  /// prediction — measures decision churn caused by approximate
  /// normalization, independent of whether the flip helped or hurt.
  std::size_t flips_vs_baseline = 0;
};

/// Factory producing a fresh NormProvider per worker thread (providers are
/// stateful: the ISD predictor tracks per-sequence anchors).
using NormProviderFactory = std::function<std::unique_ptr<model::NormProvider>()>;

/// Runs `model` with `norm` over every example of `dataset` and scores
/// choices by cosine similarity. Single-threaded.
AccuracyResult evaluate_accuracy(model::Transformer& model,
                                 model::NormProvider& norm,
                                 const TaskDataset& dataset);

/// Parallel evaluation: examples are sharded over `n_threads` workers, each
/// with its own provider from `factory`. Results are identical to the serial
/// path (forward passes are pure given tokens + provider). n_threads = 0
/// uses the hardware concurrency.
AccuracyResult evaluate_accuracy_parallel(const model::Transformer& model,
                                          const NormProviderFactory& factory,
                                          const TaskDataset& dataset,
                                          std::size_t n_threads = 0);

/// The "Original" row: scores with the stored exact-model features (no
/// forward passes).
AccuracyResult evaluate_baseline(const TaskDataset& dataset);

}  // namespace haan::eval
