// Pseudo-perplexity: the paper selects Nsub so the perplexity impact is
// negligible (§III-C). Without trained weights absolute perplexity is
// meaningless, so we measure the *ratio* of the variant's perplexity to the
// exact model's on the same sequences: exp(mean KL(teacher || variant)) over
// last-position next-token distributions. 1.0 = no degradation.
#pragma once

#include <span>
#include <vector>

#include "model/norm_provider.hpp"
#include "model/transformer.hpp"

namespace haan::eval {

/// KL(p || q) over softmax distributions of two logit vectors (natural log).
double softmax_kl(std::span<const float> teacher_logits,
                  std::span<const float> variant_logits);

/// exp(mean KL(exact || variant)) over the corpus — the factor by which the
/// variant's perplexity exceeds the exact model's.
double pseudo_ppl_ratio(model::Transformer& model, model::NormProvider& variant,
                        std::span<const std::vector<int>> corpus);

}  // namespace haan::eval
