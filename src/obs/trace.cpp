#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/json_lite.hpp"

namespace haan::obs {

namespace {

/// Minimal JSON string escaping (names are static identifiers, but thread
/// names are caller-provided).
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_ts_us(std::string& out, std::uint64_t ts_ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", common::ns_to_us(ts_ns));
  out += buf;
}

void append_event_prefix(std::string& out, const char* phase, std::size_t tid,
                         std::uint64_t ts_ns) {
  out += "{\"ph\":\"";
  out += phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_ts_us(out, ts_ns);
}

void append_name_cat(std::string& out, const TraceEvent& event) {
  out += ",\"name\":\"";
  append_escaped(out, event.name != nullptr ? event.name : "?");
  out += "\",\"cat\":\"";
  append_escaped(out, event.category != nullptr ? event.category : "haan");
  out += "\"";
}

void append_args(std::string& out, const TraceEvent& event) {
  const bool has_counts = event.arg_a != 0 || event.arg_b != 0;
  if (!has_counts && event.phase == nullptr) return;
  out += ",\"args\":{";
  if (event.phase != nullptr) {
    out += "\"phase\":\"";
    append_escaped(out, event.phase);
    out += "\"";
    if (has_counts) out += ",";
  }
  if (has_counts) {
    out += "\"a\":";
    out += std::to_string(event.arg_a);
    out += ",\"b\":";
    out += std::to_string(event.arg_b);
  }
  out += "}";
}

}  // namespace

ThreadLog::ThreadLog(std::size_t capacity, std::size_t tid) : tid_(tid) {
  ring_.resize(std::max<std::size_t>(capacity, 2));
}

void ThreadLog::push(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[pushed_ % ring_.size()] = event;
  ++pushed_;
}

std::vector<TraceEvent> ThreadLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t capacity = ring_.size();
  const std::size_t held = static_cast<std::size_t>(
      std::min<std::uint64_t>(pushed_, capacity));
  std::vector<TraceEvent> out;
  out.reserve(held);
  const std::uint64_t first = pushed_ - held;
  for (std::uint64_t i = first; i < pushed_; ++i) {
    out.push_back(ring_[i % capacity]);
  }
  return out;
}

std::uint64_t ThreadLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_ > ring_.size() ? pushed_ - ring_.size() : 0;
}

std::uint64_t ThreadLog::pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

void ThreadLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pushed_ = 0;
}

void ThreadLog::set_name(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  name_ = std::move(name);
}

std::string ThreadLog::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return name_;
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(capacity, 2);
}

std::size_t Tracer::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::shared_ptr<ThreadLog> Tracer::register_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto log = std::make_shared<ThreadLog>(capacity_, next_tid_++);
  logs_.push_back(log);
  return log;
}

ThreadLog& Tracer::thread_log() {
  // One ring per thread for the life of the thread; the registry holds a
  // second reference so events outlive the thread (worker churn).
  thread_local std::shared_ptr<ThreadLog> tls_log = register_thread();
  return *tls_log;
}

void Tracer::set_thread_name(std::string name) {
  // Deliberately gated: naming registers the thread (allocating its ring),
  // which disabled runs must not pay for.
  if (!enabled()) return;
  thread_log().set_name(std::move(name));
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop rings whose owning thread has exited (registry holds the only
  // reference); clear the rest in place so live threads keep recording.
  logs_.erase(std::remove_if(logs_.begin(), logs_.end(),
                             [](const std::shared_ptr<ThreadLog>& log) {
                               return log.use_count() == 1;
                             }),
              logs_.end());
  for (const auto& log : logs_) log->clear();
}

Tracer::Stats Tracer::stats() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    logs = logs_;
  }
  Stats stats;
  stats.threads = logs.size();
  for (const auto& log : logs) {
    const std::uint64_t pushed = log->pushed();
    const std::uint64_t dropped = log->dropped();
    stats.events += pushed - dropped;
    stats.dropped += dropped;
  }
  return stats;
}

std::string Tracer::export_chrome_json() const {
  std::vector<std::shared_ptr<ThreadLog>> logs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    logs = logs_;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first_event) out += ",";
    first_event = false;
    out += "\n";
    out += event_json;
  };

  for (const auto& log : logs) {
    const std::string name = log->name();
    if (!name.empty()) {
      std::string meta =
          "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(log->tid()) +
          ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_escaped(meta, name);
      meta += "\"}}";
      emit(meta);
    }

    const std::vector<TraceEvent> events = log->snapshot();
    // Balance begin/end within the thread: ends whose begin was overwritten
    // by ring wrap-around are dropped, and spans still open at export are
    // closed at the thread's last timestamp so every "B" has an "E".
    std::vector<const TraceEvent*> open;
    const std::uint64_t last_ts = events.empty() ? 0 : events.back().ts_ns;
    for (const TraceEvent& event : events) {
      std::string line;
      switch (event.type) {
        case EventType::kBegin:
          open.push_back(&event);
          append_event_prefix(line, "B", log->tid(), event.ts_ns);
          append_name_cat(line, event);
          append_args(line, event);
          break;
        case EventType::kEnd:
          if (open.empty()) continue;  // begin lost to wrap-around
          open.pop_back();
          append_event_prefix(line, "E", log->tid(), event.ts_ns);
          break;
        case EventType::kInstant:
          append_event_prefix(line, "i", log->tid(), event.ts_ns);
          append_name_cat(line, event);
          line += ",\"s\":\"t\"";  // thread-scoped instant
          append_args(line, event);
          break;
        case EventType::kFlowBegin:
          append_event_prefix(line, "s", log->tid(), event.ts_ns);
          append_name_cat(line, event);
          line += ",\"id\":" + std::to_string(event.flow_id);
          break;
        case EventType::kFlowEnd:
          append_event_prefix(line, "f", log->tid(), event.ts_ns);
          append_name_cat(line, event);
          // Bind to the enclosing slice rather than the next one.
          line += ",\"bp\":\"e\",\"id\":" + std::to_string(event.flow_id);
          break;
      }
      line += "}";
      emit(line);
    }
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      std::string line;
      append_event_prefix(line, "E", log->tid(), last_ts);
      line += "}";
      emit(line);
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  return common::write_file(path, export_chrome_json());
}

void instant(const char* name, const char* category, std::uint32_t arg_a,
             std::uint32_t arg_b) {
  if (!tracing_enabled()) return;
  tracer().thread_log().push({common::monotonic_ns(), name, category, 0, arg_a,
                              arg_b, EventType::kInstant});
}

void flow_begin(const char* name, const char* category, std::uint64_t id) {
  if (!tracing_enabled()) return;
  tracer().thread_log().push({common::monotonic_ns(), name, category, id, 0, 0,
                              EventType::kFlowBegin});
}

void flow_end(const char* name, const char* category, std::uint64_t id) {
  if (!tracing_enabled()) return;
  tracer().thread_log().push({common::monotonic_ns(), name, category, id, 0, 0,
                              EventType::kFlowEnd});
}

void set_thread_name(std::string name) {
  tracer().set_thread_name(std::move(name));
}

}  // namespace haan::obs
