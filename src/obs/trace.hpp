// Low-overhead span tracer for the serving stack. Threads record begin/end
// span events (nanosecond monotonic timestamps, static-string names) into
// per-thread ring buffers registered with a process-wide Tracer; a request's
// journey across threads is stitched with flow events keyed by request id.
// The tracer is compiled in unconditionally but runtime-gated: when disabled
// (the default) every instrumentation site reduces to one relaxed atomic load
// and a branch, so production paths pay nothing measurable. Recorded traces
// export as Chrome Trace Event JSON — loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing — with one track per thread.
//
// Ring semantics: each thread's buffer keeps the most recent `capacity`
// events; older events are overwritten and counted as dropped. Buffers are
// owned by shared_ptr so a thread's events survive its exit (worker churn)
// until the next reset(). Export is safe at any time (each buffer is mutex
// guarded); for a loss-free nested trace export after the traced threads
// have quiesced.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace haan::obs {

/// Event kinds recorded in thread rings (mapped to Chrome trace phases).
enum class EventType : std::uint8_t {
  kBegin,      ///< span open ("B")
  kEnd,        ///< span close ("E")
  kInstant,    ///< point event ("i")
  kFlowBegin,  ///< flow start ("s") — binds to the enclosing span
  kFlowEnd,    ///< flow finish ("f") — binds to the enclosing span
};

/// One recorded event. `name`/`category` must be static strings (string
/// literals or other pointers that outlive the tracer) — events store the
/// pointer, never a copy, to keep recording allocation-free.
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t flow_id = 0;  ///< flow events: the request id
  std::uint32_t arg_a = 0;    ///< small payload (layer index, rows, ...)
  std::uint32_t arg_b = 0;
  EventType type = EventType::kInstant;

  /// Optional execution-phase tag ("prefill"/"decode"/"mixed") exported as an
  /// args entry. Static string like name/category; nullptr = untagged.
  const char* phase = nullptr;
};

/// Per-thread event ring. Written only by the owning thread; the mutex exists
/// so export/reset from other threads is race-free (uncontended in steady
/// state, so a push is a lock, two stores and an unlock).
class ThreadLog {
 public:
  ThreadLog(std::size_t capacity, std::size_t tid);

  void push(const TraceEvent& event);

  /// Copies the surviving window in record order (oldest first).
  std::vector<TraceEvent> snapshot() const;

  /// Events overwritten by ring wrap-around since the last clear.
  std::uint64_t dropped() const;

  /// Total events ever pushed since the last clear.
  std::uint64_t pushed() const;

  void clear();

  std::size_t tid() const { return tid_; }
  void set_name(std::string name);
  std::string name() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t pushed_ = 0;  ///< ring_[pushed_ % capacity] is the next slot
  std::size_t tid_;
  std::string name_;
};

/// Process-wide trace registry. All instrumentation goes through the
/// singleton (tracer()); tests reset() between cases.
class Tracer {
 public:
  /// Recording gate. Reads are relaxed atomic loads — the entire cost of a
  /// disabled instrumentation site.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Ring capacity (events per thread) for buffers created AFTER this call.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const;

  /// This thread's ring, registering it on first use.
  ThreadLog& thread_log();

  /// Names this thread's track in exported traces ("feeder", "worker-0", ...).
  void set_thread_name(std::string name);

  /// Clears every registered ring and forgets rings whose threads have
  /// exited. Does not change the enabled gate.
  void reset();

  struct Stats {
    std::size_t threads = 0;
    std::uint64_t events = 0;   ///< events currently held across all rings
    std::uint64_t dropped = 0;  ///< events lost to ring wrap-around
  };
  Stats stats() const;

  /// Serializes all recorded events as Chrome Trace Event JSON (an object
  /// with a "traceEvents" array, one pid, one tid per registered thread).
  /// Balanced within each thread: end events whose begin was lost to ring
  /// wrap-around are dropped, and spans still open at export are closed at
  /// the thread's last timestamp.
  std::string export_chrome_json() const;

  /// export_chrome_json() to a file; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  std::shared_ptr<ThreadLog> register_thread();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  std::size_t next_tid_ = 0;
  std::size_t capacity_ = 1 << 16;
  std::atomic<bool> enabled_{false};
};

/// The process-wide tracer.
Tracer& tracer();

/// Convenience gate used by every instrumentation macro/site.
inline bool tracing_enabled() { return tracer().enabled(); }

/// RAII span: records kBegin at construction and kEnd at destruction on the
/// calling thread's ring. When tracing is disabled construction is a single
/// branch. `name` and `category` must be static strings.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category, std::uint32_t arg_a = 0,
             std::uint32_t arg_b = 0) {
    if (!tracing_enabled()) return;
    log_ = &tracer().thread_log();
    name_ = name;
    category_ = category;
    log_->push({common::monotonic_ns(), name, category, 0, arg_a, arg_b,
                EventType::kBegin});
  }

  /// Phase-tagged span: `phase` ("prefill"/"decode"/"mixed", static string)
  /// is exported as an args entry so Perfetto can filter serving spans by
  /// execution phase.
  ScopedSpan(const char* name, const char* category, const char* phase,
             std::uint32_t arg_a = 0, std::uint32_t arg_b = 0) {
    if (!tracing_enabled()) return;
    log_ = &tracer().thread_log();
    name_ = name;
    category_ = category;
    TraceEvent event{common::monotonic_ns(), name, category, 0, arg_a, arg_b,
                     EventType::kBegin};
    event.phase = phase;
    log_->push(event);
  }
  ~ScopedSpan() {
    if (log_ == nullptr) return;
    log_->push({common::monotonic_ns(), name_, category_, 0, 0, 0,
                EventType::kEnd});
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ThreadLog* log_ = nullptr;  ///< nullptr = tracing was off at construction
  const char* name_ = nullptr;
  const char* category_ = nullptr;
};

/// Point event on this thread's track.
void instant(const char* name, const char* category, std::uint32_t arg_a = 0,
             std::uint32_t arg_b = 0);

/// Flow events stitch one logical operation (a request) across threads: emit
/// flow_begin(name, id) inside a span on the producing thread and
/// flow_end(name, id) inside a span on the consuming thread; Perfetto draws
/// the arrow. `id` must match and be unique per live flow (the request id).
void flow_begin(const char* name, const char* category, std::uint64_t id);
void flow_end(const char* name, const char* category, std::uint64_t id);

/// Names this thread's track in exported traces.
void set_thread_name(std::string name);

}  // namespace haan::obs

// Block-scoped span: HAAN_TRACE_SPAN("forward", "serve", rows, seqs);
#define HAAN_OBS_CONCAT2(a, b) a##b
#define HAAN_OBS_CONCAT(a, b) HAAN_OBS_CONCAT2(a, b)
#define HAAN_TRACE_SPAN(...) \
  ::haan::obs::ScopedSpan HAAN_OBS_CONCAT(haan_trace_span_, __LINE__)(__VA_ARGS__)
