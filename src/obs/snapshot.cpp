#include "obs/snapshot.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace haan::obs {

SnapshotEmitter::SnapshotEmitter(Sampler sampler, Options options)
    : sampler_(std::move(sampler)), options_(std::move(options)) {
  HAAN_EXPECTS(static_cast<bool>(sampler_));
  HAAN_EXPECTS(options_.interval.count() > 0);
  if (!options_.json_path.empty()) {
    json_out_.open(options_.json_path, std::ios::out | std::ios::app);
    if (!json_out_) {
      HAAN_LOG_WARN_C("stats") << "cannot open snapshot sink "
                               << options_.json_path;
    }
  }
}

SnapshotEmitter::~SnapshotEmitter() { stop(); }

void SnapshotEmitter::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void SnapshotEmitter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // Final snapshot so a run shorter than one interval still reports.
  emit_once();
}

std::size_t SnapshotEmitter::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

void SnapshotEmitter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, options_.interval,
                     [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    emit_once();
    lock.lock();
  }
}

void SnapshotEmitter::emit_once() {
  const Snapshot snapshot = sampler_();
  if (options_.log_human && !snapshot.human.empty()) {
    common::log(common::LogLevel::kInfo, "stats", snapshot.human);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (json_out_.is_open() && !snapshot.json.is_null()) {
    json_out_ << snapshot.json.dump() << "\n";
    json_out_.flush();
  }
  ++emitted_;
}

}  // namespace haan::obs
