// Periodic live-metrics snapshot emitter: a small timer thread that invokes a
// caller-supplied sampler on a fixed interval and publishes the result as a
// human-readable log line (component "stats") and/or an appended JSON line.
// The serving runtime wires this to MetricsCollector so long runs report
// throughput, queue depth, pack occupancy and latency percentiles while still
// in flight instead of only at the end.
#pragma once

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/json_lite.hpp"

namespace haan::obs {

/// One emitted snapshot: `human` goes to the log, `json` to the JSON-lines
/// file (when configured). Either may be empty to skip that sink.
struct Snapshot {
  std::string human;
  common::Json json;
};

/// Timer thread invoking a sampler every interval. start()/stop() bracket the
/// emitting window; stop() (or destruction) joins the thread and emits one
/// final snapshot so short runs always produce at least one line.
class SnapshotEmitter {
 public:
  using Sampler = std::function<Snapshot()>;

  struct Options {
    std::chrono::milliseconds interval{1000};
    /// Append one JSON object per snapshot to this file (empty = no file).
    std::string json_path;
    /// Emit the human line through common::log (component "stats").
    bool log_human = true;
  };

  SnapshotEmitter(Sampler sampler, Options options);
  ~SnapshotEmitter();

  SnapshotEmitter(const SnapshotEmitter&) = delete;
  SnapshotEmitter& operator=(const SnapshotEmitter&) = delete;

  /// Launches the timer thread (idempotent).
  void start();

  /// Stops the timer, emits a final snapshot, joins. Idempotent.
  void stop();

  /// Snapshots emitted so far (including the final one).
  std::size_t emitted() const;

 private:
  void run();
  void emit_once();

  Sampler sampler_;
  Options options_;
  std::ofstream json_out_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::size_t emitted_ = 0;
  std::thread thread_;
};

}  // namespace haan::obs
