// Randomized invariants of the cycle-level pipeline model across the whole
// configuration space the accelerator supports.
#include <gtest/gtest.h>

#include "accel/pipeline.hpp"
#include "common/rng.hpp"

namespace haan::accel {
namespace {

class PipelinePropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  AcceleratorConfig random_config(common::Rng& rng) const {
    AcceleratorConfig config;
    const std::size_t pd_options[] = {16, 32, 64, 80, 128, 256};
    const std::size_t pn_options[] = {32, 64, 128, 160, 256, 512};
    config.pd = pd_options[rng.uniform_index(6)];
    config.pn = pn_options[rng.uniform_index(6)];
    const numerics::NumericFormat formats[] = {
        numerics::NumericFormat::kFP32, numerics::NumericFormat::kFP16,
        numerics::NumericFormat::kINT8};
    config.io_format = formats[rng.uniform_index(3)];
    config.newton_iterations = static_cast<int>(rng.uniform_index(3));
    return config;
  }

  NormLayerWork random_work(common::Rng& rng) const {
    NormLayerWork work;
    work.n = 64 + rng.uniform_index(8192);
    work.vectors = 1 + rng.uniform_index(512);
    work.nsub = rng.uniform_index(2) ? 0 : 1 + rng.uniform_index(work.n);
    work.isd_skipped = rng.uniform_index(4) == 0;
    work.kind = rng.uniform_index(2) ? model::NormKind::kLayerNorm
                                     : model::NormKind::kRMSNorm;
    return work;
  }
};

TEST_P(PipelinePropertySweep, BottleneckNeverBelowAnyStage) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    const auto config = random_config(rng);
    const auto work = random_work(rng);
    const StageCycles cycles = stage_cycles(work, config);
    EXPECT_GE(cycles.bottleneck(), cycles.mem);
    EXPECT_GE(cycles.bottleneck(), cycles.isc);
    EXPECT_GE(cycles.bottleneck(), cycles.sri);
    EXPECT_GE(cycles.bottleneck(), cycles.nu);
  }
}

TEST_P(PipelinePropertySweep, TotalCyclesIsFillPlusSteadyState) {
  common::Rng rng(GetParam() + 1);
  for (int i = 0; i < 400; ++i) {
    const auto config = random_config(rng);
    const auto work = random_work(rng);
    const StageCycles per_vector = stage_cycles(work, config);
    const CycleStats stats = simulate_norm_layer(work, config);
    const std::size_t per_pipeline =
        (work.vectors + config.pipelines - 1) / config.pipelines;
    EXPECT_EQ(stats.cycles,
              per_vector.fill() + (per_pipeline - 1) * per_vector.bottleneck());
  }
}

TEST_P(PipelinePropertySweep, SkippingNeverSlower) {
  common::Rng rng(GetParam() + 2);
  for (int i = 0; i < 400; ++i) {
    const auto config = random_config(rng);
    auto work = random_work(rng);
    work.isd_skipped = false;
    const std::size_t computed = simulate_norm_layer(work, config).cycles;
    work.isd_skipped = true;
    const std::size_t skipped = simulate_norm_layer(work, config).cycles;
    EXPECT_LE(skipped, computed);
  }
}

TEST_P(PipelinePropertySweep, SubsamplingNeverSlower) {
  common::Rng rng(GetParam() + 3);
  for (int i = 0; i < 400; ++i) {
    const auto config = random_config(rng);
    auto work = random_work(rng);
    work.nsub = 0;
    const std::size_t full = simulate_norm_layer(work, config).cycles;
    work.nsub = work.n / 2;
    const std::size_t sub = simulate_norm_layer(work, config).cycles;
    EXPECT_LE(sub, full);
  }
}

TEST_P(PipelinePropertySweep, ActivityBoundedByWorkload) {
  common::Rng rng(GetParam() + 4);
  for (int i = 0; i < 400; ++i) {
    const auto config = random_config(rng);
    const auto work = random_work(rng);
    const ActivityStats activity = layer_activity(work, config);
    const double elements =
        static_cast<double>(work.vectors) * static_cast<double>(work.n);
    EXPECT_LE(activity.isc_lane_cycles, elements + 1e-9);
    EXPECT_LE(activity.nu_lane_cycles, elements + 1e-9);
    EXPECT_LE(activity.sri_ops, static_cast<double>(work.vectors) + 1e-9);
    EXPECT_GE(activity.nu_lane_cycles, 0.0);
  }
}

TEST_P(PipelinePropertySweep, LatencyMonotoneInWork) {
  common::Rng rng(GetParam() + 5);
  for (int i = 0; i < 200; ++i) {
    const auto config = random_config(rng);
    auto work = random_work(rng);
    work.nsub = 0;
    const std::size_t base = simulate_norm_layer(work, config).cycles;
    auto more_vectors = work;
    more_vectors.vectors += 16;
    EXPECT_GE(simulate_norm_layer(more_vectors, config).cycles, base);
    auto longer = work;
    longer.n += 512;
    EXPECT_GE(simulate_norm_layer(longer, config).cycles, base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertySweep,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace haan::accel
