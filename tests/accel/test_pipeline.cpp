#include "accel/pipeline.hpp"

#include <gtest/gtest.h>

namespace haan::accel {
namespace {

NormLayerWork work_of(std::size_t n, std::size_t vectors, std::size_t nsub = 0,
                      bool skipped = false,
                      model::NormKind kind = model::NormKind::kLayerNorm) {
  NormLayerWork work;
  work.n = n;
  work.vectors = vectors;
  work.nsub = nsub;
  work.isd_skipped = skipped;
  work.kind = kind;
  return work;
}

TEST(StageCycles, MemoryStreamMatchesPortWidth) {
  const AcceleratorConfig config = haan_v1();  // FP16: 128 elems/cycle
  EXPECT_EQ(config.memory_elems_per_cycle(), 128u);
  const StageCycles cycles = stage_cycles(work_of(1600, 1), config);
  EXPECT_EQ(cycles.mem, 13u);  // ceil(1600/128)
}

TEST(StageCycles, FormatChangesMemoryRate) {
  AcceleratorConfig config = haan_v1();
  config.io_format = numerics::NumericFormat::kFP32;
  EXPECT_EQ(config.memory_elems_per_cycle(), 64u);
  config.io_format = numerics::NumericFormat::kINT8;
  EXPECT_EQ(config.memory_elems_per_cycle(), 256u);
}

TEST(StageCycles, SubsamplingShortensIsc) {
  const AcceleratorConfig config = haan_v1();
  const StageCycles full = stage_cycles(work_of(1600, 1), config);
  const StageCycles half = stage_cycles(work_of(1600, 1, 800), config);
  EXPECT_LT(half.isc, full.isc);
  EXPECT_EQ(half.nu, full.nu);  // NU still writes the whole vector
}

TEST(StageCycles, SkippedLayerNormBypassesVariancePath) {
  const AcceleratorConfig config = haan_v1();
  const StageCycles computed = stage_cycles(work_of(1600, 1, 800), config);
  const StageCycles skipped = stage_cycles(work_of(1600, 1, 800, true), config);
  EXPECT_LT(skipped.sri, computed.sri);
  EXPECT_LE(skipped.isc, computed.isc);
}

TEST(StageCycles, SkippedRmsNormNeedsNoStatsAtAll) {
  const AcceleratorConfig config = haan_v1();
  const StageCycles skipped =
      stage_cycles(work_of(2048, 1, 0, true, model::NormKind::kRMSNorm), config);
  EXPECT_EQ(skipped.isc, 0u);
  EXPECT_EQ(skipped.sri, 2u);  // predictor only
}

TEST(StageCycles, NewtonIterationsLengthenSri) {
  AcceleratorConfig config = haan_v1();
  config.newton_iterations = 1;
  const std::size_t sri1 = stage_cycles(work_of(256, 1), config).sri;
  config.newton_iterations = 3;
  const std::size_t sri3 = stage_cycles(work_of(256, 1), config).sri;
  EXPECT_EQ(sri3, sri1 + 8u);  // 4 cycles per extra iteration
}

TEST(Pipeline, SteadyStateThroughputIsBottleneck) {
  const AcceleratorConfig config = haan_v1();
  const NormLayerWork work = work_of(1600, 128, 800);
  const StageCycles per_vector = stage_cycles(work, config);
  const CycleStats stats = simulate_norm_layer(work, config);
  EXPECT_EQ(stats.cycles,
            per_vector.fill() + 127 * per_vector.bottleneck());
}

TEST(Pipeline, SingleVectorIsJustFill) {
  const AcceleratorConfig config = haan_v1();
  const NormLayerWork work = work_of(512, 1);
  const CycleStats stats = simulate_norm_layer(work, config);
  EXPECT_EQ(stats.cycles, stats.per_vector.fill());
}

TEST(Pipeline, LatencyMonotonicInVectors) {
  const AcceleratorConfig config = haan_v1();
  std::size_t prev = 0;
  for (const std::size_t vectors : {1u, 2u, 16u, 128u, 1024u}) {
    const CycleStats stats = simulate_norm_layer(work_of(1024, vectors), config);
    EXPECT_GT(stats.cycles, prev);
    prev = stats.cycles;
  }
}

TEST(Pipeline, LatencyMonotonicInVectorLength) {
  const AcceleratorConfig config = haan_v1();
  std::size_t prev = 0;
  for (const std::size_t n : {128u, 512u, 1024u, 4096u}) {
    const CycleStats stats = simulate_norm_layer(work_of(n, 64), config);
    EXPECT_GT(stats.cycles, prev);
    prev = stats.cycles;
  }
}

TEST(Pipeline, MultiplePipelinesDivideWork) {
  AcceleratorConfig config = haan_v1();
  const NormLayerWork work = work_of(1024, 256);
  const std::size_t single = simulate_norm_layer(work, config).cycles;
  config.pipelines = 2;
  const std::size_t dual = simulate_norm_layer(work, config).cycles;
  EXPECT_LT(dual, single);
  EXPECT_GT(2 * dual, single);  // fill overhead keeps it under perfect 2x
}

TEST(Pipeline, PaperConfigurationRelativeTiming) {
  // GPT2-1.5B workload, nsub = N/2 (paper §V-B): HAAN-v2 within a few
  // percent of HAAN-v1 (both memory-bound at the same port width).
  const NormLayerWork work = work_of(1600, 128, 800);
  const double v1 = static_cast<double>(simulate_norm_layer(work, haan_v1()).cycles);
  const double v2 = static_cast<double>(simulate_norm_layer(work, haan_v2()).cycles);
  EXPECT_NEAR(v2 / v1, 1.0, 0.1);
  // OPT-2.7B workload: HAAN-v3 ~= HAAN-v1 (paper Fig 8b).
  const NormLayerWork opt = work_of(2560, 128, 1280);
  const double v1_opt =
      static_cast<double>(simulate_norm_layer(opt, haan_v1()).cycles);
  const double v3_opt =
      static_cast<double>(simulate_norm_layer(opt, haan_v3()).cycles);
  EXPECT_NEAR(v3_opt / v1_opt, 1.0, 0.1);
}

TEST(Activity, SubsamplingAndSkippingReduceIscActivity) {
  const AcceleratorConfig config = haan_v1();
  const ActivityStats full = layer_activity(work_of(1600, 64), config);
  const ActivityStats sub = layer_activity(work_of(1600, 64, 800), config);
  const ActivityStats skip = layer_activity(work_of(1600, 64, 800, true), config);
  EXPECT_LT(sub.isc_lane_cycles, full.isc_lane_cycles);
  EXPECT_LT(skip.isc_lane_cycles, sub.isc_lane_cycles);
  EXPECT_EQ(full.nu_lane_cycles, sub.nu_lane_cycles);
  EXPECT_EQ(skip.sri_ops, 0.0);
  EXPECT_GT(full.sri_ops, 0.0);
}

TEST(Activity, RmsSkipZeroesIsc) {
  const AcceleratorConfig config = haan_v1();
  const ActivityStats activity =
      layer_activity(work_of(2048, 32, 0, true, model::NormKind::kRMSNorm), config);
  EXPECT_EQ(activity.isc_lane_cycles, 0.0);
}

TEST(CycleStats, LatencyUsUsesClock) {
  AcceleratorConfig config = haan_v1();  // 100 MHz -> 0.01 us per cycle
  CycleStats stats;
  stats.cycles = 1000;
  EXPECT_DOUBLE_EQ(stats.latency_us(config), 10.0);
  config.clock_mhz = 200.0;
  EXPECT_DOUBLE_EQ(stats.latency_us(config), 5.0);
}

class PipelineConfigSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineConfigSweep, WiderNuNeverSlower) {
  // Growing pn (with everything else fixed) must never increase latency.
  AcceleratorConfig config = haan_v1();
  config.pn = GetParam();
  const std::size_t cycles = simulate_norm_layer(work_of(4096, 64), config).cycles;
  AcceleratorConfig wider = config;
  wider.pn = GetParam() * 2;
  const std::size_t cycles_wider =
      simulate_norm_layer(work_of(4096, 64), wider).cycles;
  EXPECT_LE(cycles_wider, cycles);
}

INSTANTIATE_TEST_SUITE_P(NuWidths, PipelineConfigSweep,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u));

}  // namespace
}  // namespace haan::accel
