#include "accel/accelerator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/haan_norm.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

namespace haan::accel {
namespace {

tensor::Tensor random_batch(std::size_t vectors, std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  return tensor::Tensor::randn(tensor::Shape{vectors, n}, rng, 0.2, 1.5);
}

TEST(Accelerator, RunLayerMatchesReference) {
  const HaanAccelerator accel(haan_v1());
  const tensor::Tensor input = random_batch(8, 256, 1);
  const LayerRunResult result =
      accel.run_layer(input, {}, {}, model::NormKind::kLayerNorm, 0);
  for (std::size_t v = 0; v < 8; ++v) {
    std::vector<float> ref(256);
    tensor::layernorm(input.row(v), {}, {}, ref, accel.config().eps);
    EXPECT_LT(tensor::rms_error(result.output.row(v), ref), 0.02) << "v=" << v;
  }
  EXPECT_GT(result.cycles.cycles, 0u);
  EXPECT_GT(result.energy_uj, 0.0);
}

TEST(Accelerator, AgreesWithHaanNormProviderSoftwareTwin) {
  // The accelerator datapath and the algorithm-level HaanNormProvider are two
  // implementations of the same computation; outputs must agree within the
  // fixed-point resolution of the datapath.
  const HaanAccelerator accel(haan_v1());
  core::HaanConfig sw_config;
  sw_config.format = numerics::NumericFormat::kFP16;
  sw_config.nsub = 128;
  core::HaanNormProvider provider(sw_config);

  const tensor::Tensor input = random_batch(4, 256, 2);
  const LayerRunResult hw =
      accel.run_layer(input, {}, {}, model::NormKind::kRMSNorm, 128);
  provider.begin_sequence();
  for (std::size_t v = 0; v < 4; ++v) {
    std::vector<float> sw(256);
    provider.normalize(0, v, model::NormKind::kRMSNorm, input.row(v), {}, {}, sw);
    EXPECT_LT(tensor::rms_error(hw.output.row(v), sw), 0.02) << "v=" << v;
  }
}

TEST(Accelerator, SkipModeUsesPredictedIsd) {
  const HaanAccelerator accel(haan_v1());
  const tensor::Tensor input = random_batch(3, 128, 3);
  std::vector<double> predicted{0.5, 0.6, 0.7};
  const LayerRunResult result = accel.run_layer(
      input, {}, {}, model::NormKind::kRMSNorm, 0, predicted);
  for (std::size_t v = 0; v < 3; ++v) {
    std::vector<float> ref(128);
    tensor::rmsnorm_with_isd(input.row(v), predicted[v], {}, {}, ref);
    EXPECT_LT(tensor::rms_error(result.output.row(v), ref), 0.02);
  }
  // Skip mode must be faster and lower-energy than compute mode.
  const LayerRunResult computed =
      accel.run_layer(input, {}, {}, model::NormKind::kRMSNorm, 0);
  EXPECT_LE(result.cycles.cycles, computed.cycles.cycles);
  EXPECT_LT(result.energy_uj, computed.energy_uj);
}

TEST(Accelerator, SubsamplingReducesEnergyNotOutputLength) {
  const HaanAccelerator accel(haan_v1());
  const tensor::Tensor input = random_batch(16, 1024, 4);
  const LayerRunResult full =
      accel.run_layer(input, {}, {}, model::NormKind::kLayerNorm, 0);
  const LayerRunResult sub =
      accel.run_layer(input, {}, {}, model::NormKind::kLayerNorm, 256);
  EXPECT_EQ(sub.output.shape(), full.output.shape());
  EXPECT_LT(sub.energy_uj, full.energy_uj);
  EXPECT_LE(sub.cycles.cycles, full.cycles.cycles);
}

TEST(Accelerator, AffineParametersFlowThrough) {
  const HaanAccelerator accel(haan_v1());
  const tensor::Tensor input = random_batch(2, 64, 5);
  std::vector<float> alpha(64, 1.5f), beta(64, 0.25f);
  const LayerRunResult result =
      accel.run_layer(input, alpha, beta, model::NormKind::kLayerNorm, 0);
  std::vector<float> ref(64);
  tensor::layernorm(input.row(0), alpha, beta, ref, accel.config().eps);
  EXPECT_LT(tensor::rms_error(result.output.row(0), ref), 0.02);
}

TEST(Accelerator, PowerWithinDeviceEnvelope) {
  const HaanAccelerator accel(haan_v1());
  NormLayerWork work;
  work.n = 1600;
  work.vectors = 128;
  work.nsub = 800;
  const double power = accel.layer_power_w(work);
  EXPECT_GT(power, 1.0);   // above static floor
  EXPECT_LT(power, 10.0);  // sane for the U280 envelope
  // Nominal (full-activity) power bounds the activity-scaled estimate.
  EXPECT_LE(power, accel.resources().power_w + 1e-9);
}

TEST(Accelerator, Int8ConfigQuantizesInput) {
  const HaanAccelerator accel(haan_int8_256());
  const tensor::Tensor input = random_batch(2, 256, 6);
  const LayerRunResult result =
      accel.run_layer(input, {}, {}, model::NormKind::kLayerNorm, 0);
  std::vector<float> ref(256);
  tensor::layernorm(input.row(0), {}, {}, ref, accel.config().eps);
  // INT8 coarser than FP16 but still close after normalization.
  EXPECT_LT(tensor::rms_error(result.output.row(0), ref), 0.05);
}

TEST(Accelerator, InvalidConfigRejected) {
  AcceleratorConfig config = haan_v1();
  config.isd_fixed = numerics::FixedFormat{64, 70};  // invalid
  EXPECT_DEATH(HaanAccelerator{config}, "precondition");
}

}  // namespace
}  // namespace haan::accel
