#include "accel/memory_layout.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace haan::accel {
namespace {

tensor::Tensor sample_tensor(std::size_t rows, std::size_t cols) {
  common::Rng rng(7);
  return tensor::Tensor::randn(tensor::Shape{rows, cols}, rng);
}

TEST(MemoryImage, PaperFigure7Example) {
  // The paper's example: a 2x4 tensor with bandwidth 2 -> 4 entries total,
  // entries 0x10..0x13 holding {1.5 2.3}{5.8 9.3}{3.5 5.2}{1.2 0.0}.
  tensor::Tensor t(tensor::Shape{2, 4},
                   {1.5f, 2.3f, 5.8f, 9.3f, 3.5f, 5.2f, 1.2f, 0.0f});
  MemoryImage image(t, 2);
  EXPECT_EQ(image.entries_per_vector(), 2u);
  EXPECT_EQ(image.total_entries(), 4u);
  const auto e0 = image.read_entry(0, 0);
  EXPECT_FLOAT_EQ(e0[0], 1.5f);
  EXPECT_FLOAT_EQ(e0[1], 2.3f);
  const auto e3 = image.read_entry(1, 1);
  EXPECT_FLOAT_EQ(e3[0], 1.2f);
  EXPECT_FLOAT_EQ(e3[1], 0.0f);
}

TEST(MemoryImage, PadsPartialLastEntry) {
  tensor::Tensor t(tensor::Shape{1, 5}, {1, 2, 3, 4, 5});
  MemoryImage image(t, 4);
  EXPECT_EQ(image.entries_per_vector(), 2u);
  const auto last = image.read_entry(0, 1);
  EXPECT_FLOAT_EQ(last[0], 5.0f);
  EXPECT_FLOAT_EQ(last[1], 0.0f);  // zero padded
}

TEST(MemoryImage, EntriesNeededForSubsample) {
  const auto t = sample_tensor(2, 128);
  MemoryImage image(t, 16);
  EXPECT_EQ(image.entries_needed(0), 8u);    // full vector
  EXPECT_EQ(image.entries_needed(64), 4u);
  EXPECT_EQ(image.entries_needed(65), 5u);   // rounds up
  EXPECT_EQ(image.entries_needed(1), 1u);
  EXPECT_EQ(image.entries_needed(10000), 8u);  // clamped to vector length
}

TEST(MemoryImage, SubsampledStreamTouchesOnlyPrefixEntries) {
  // The paper's subsampling claim at the memory level: computing statistics
  // from the first Nsub elements reads only the leading entries.
  const auto t = sample_tensor(3, 128);
  MemoryImage image(t, 16);
  const auto prefix = image.stream_prefix(1, 64);
  EXPECT_EQ(prefix.size(), 64u);
  EXPECT_EQ(image.accessed_entries(1), 4u);   // 64 / 16
  EXPECT_EQ(image.accessed_entries(0), 0u);   // other vectors untouched
  EXPECT_EQ(image.accessed_entries(2), 0u);
}

TEST(MemoryImage, StreamedPrefixMatchesSource) {
  const auto t = sample_tensor(2, 64);
  MemoryImage image(t, 8);
  const auto prefix = image.stream_prefix(0, 30);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_FLOAT_EQ(prefix[i], t.at(0, i));
  }
}

TEST(MemoryImage, FullStreamMatchesSource) {
  const auto t = sample_tensor(1, 37);  // deliberately not entry-aligned
  MemoryImage image(t, 8);
  const auto all = image.stream_prefix(0, 37);
  for (std::size_t i = 0; i < 37; ++i) EXPECT_FLOAT_EQ(all[i], t.at(0, i));
  EXPECT_EQ(image.accessed_entries(0), 5u);  // ceil(37/8)
}

TEST(MemoryImage, BandwidthOneDegenerateCase) {
  const auto t = sample_tensor(1, 4);
  MemoryImage image(t, 1);
  EXPECT_EQ(image.entries_per_vector(), 4u);
  EXPECT_EQ(image.read_entry(0, 2)[0], t.at(0, 2));
}

class MemoryBandwidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MemoryBandwidthSweep, PrefixReconstructionInvariantToBandwidth) {
  const auto t = sample_tensor(2, 100);
  MemoryImage image(t, GetParam());
  const auto prefix = image.stream_prefix(1, 50);
  ASSERT_EQ(prefix.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_FLOAT_EQ(prefix[i], t.at(1, i));
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, MemoryBandwidthSweep,
                         ::testing::Values(1u, 2u, 7u, 16u, 64u, 128u));

}  // namespace
}  // namespace haan::accel
