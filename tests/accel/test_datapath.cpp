#include "accel/datapath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "numerics/fast_math.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

namespace haan::accel {
namespace {

std::vector<float> random_vector(std::size_t n, std::uint64_t seed,
                                 double stddev = 1.0) {
  common::Rng rng(seed);
  std::vector<float> z(n);
  rng.fill_gaussian(z, 0.0, stddev);
  return z;
}

TEST(Isc, MatchesExactStatsWithinFixedPointResolution) {
  const AcceleratorConfig config = haan_v1();
  const auto z = random_vector(256, 1);
  const IscResult result =
      input_statistics_calculator(z, 0, model::NormKind::kLayerNorm, config);
  const tensor::VectorStats exact = tensor::exact_stats(z);
  EXPECT_NEAR(result.mean.to_double(), exact.mean, 1e-3);
  EXPECT_NEAR(result.variance.to_double(), exact.variance, 2e-3);
  EXPECT_EQ(result.elements_used, 256u);
}

TEST(Isc, RmsNormSkipsMeanPath) {
  const AcceleratorConfig config = haan_v1();
  const auto z = random_vector(128, 2);
  const IscResult result =
      input_statistics_calculator(z, 0, model::NormKind::kRMSNorm, config);
  EXPECT_DOUBLE_EQ(result.mean.to_double(), 0.0);
  const tensor::VectorStats exact = tensor::exact_stats(z);
  EXPECT_NEAR(result.variance.to_double(), exact.rms * exact.rms, 2e-3);
}

TEST(Isc, SubsamplingUsesPrefixOnly) {
  const AcceleratorConfig config = haan_v1();
  auto z = random_vector(128, 3);
  const IscResult a =
      input_statistics_calculator(z, 32, model::NormKind::kLayerNorm, config);
  for (std::size_t i = 32; i < z.size(); ++i) z[i] = 100.0f;
  const IscResult b =
      input_statistics_calculator(z, 32, model::NormKind::kLayerNorm, config);
  EXPECT_EQ(a.variance.raw(), b.variance.raw());
  EXPECT_EQ(a.elements_used, 32u);
}

TEST(Isc, VarianceNeverNegative) {
  // Constant input: E[x^2] - E[x]^2 cancels; the subtractor clamps at zero.
  const AcceleratorConfig config = haan_v1();
  const std::vector<float> z(64, 3.0f);
  const IscResult result =
      input_statistics_calculator(z, 0, model::NormKind::kLayerNorm, config);
  EXPECT_GE(result.variance.to_double(), 0.0);
  EXPECT_LT(result.variance.to_double(), 0.01);
}

TEST(Sri, MatchesExactInvSqrtWithinQuarterPercent) {
  const AcceleratorConfig config = haan_v1();
  for (const double variance : {0.01, 0.5, 1.0, 7.3, 120.0, 900.0}) {
    const auto v = numerics::Fixed::from_double(variance, config.acc_fixed);
    const SriResult result = square_root_inverter(v, config);
    const double exact = 1.0 / std::sqrt(variance + config.eps);
    EXPECT_NEAR(result.isd.to_double() / exact, 1.0, 0.004) << "var=" << variance;
  }
}

TEST(Sri, InitialGuessIsTheBitHack) {
  const AcceleratorConfig config = haan_v1();
  const auto v = numerics::Fixed::from_double(4.0, config.acc_fixed);
  const SriResult result = square_root_inverter(v, config);
  const float expected =
      numerics::inv_sqrt_initial_guess(static_cast<float>(4.0 + config.eps));
  EXPECT_FLOAT_EQ(result.initial_guess, expected);
}

TEST(Sri, MoreNewtonIterationsImprove) {
  AcceleratorConfig config = haan_v1();
  const auto v = numerics::Fixed::from_double(3.7, config.acc_fixed);
  const double exact = 1.0 / std::sqrt(3.7 + config.eps);
  config.newton_iterations = 0;
  const double e0 =
      std::abs(square_root_inverter(v, config).isd.to_double() - exact) / exact;
  config.newton_iterations = 1;
  const double e1 =
      std::abs(square_root_inverter(v, config).isd.to_double() - exact) / exact;
  EXPECT_LT(e1, e0);
}

TEST(Nu, MatchesReferenceNormalization) {
  const AcceleratorConfig config = haan_v1();
  const auto z = random_vector(128, 4, 2.0);
  const IscResult stats =
      input_statistics_calculator(z, 0, model::NormKind::kLayerNorm, config);
  const SriResult sri = square_root_inverter(stats.variance, config);
  std::vector<float> out(z.size()), ref(z.size());
  normalization_unit(z, stats.mean, sri.isd, {}, {}, model::NormKind::kLayerNorm,
                     config, out);
  tensor::layernorm(z, {}, {}, ref, config.eps);
  EXPECT_LT(tensor::rms_error(out, ref), 0.01);
}

TEST(Nu, AffineApplied) {
  const AcceleratorConfig config = haan_v1();
  const auto z = random_vector(64, 5);
  std::vector<float> alpha(64, 3.0f), beta(64, -1.0f);
  const IscResult stats =
      input_statistics_calculator(z, 0, model::NormKind::kRMSNorm, config);
  const SriResult sri = square_root_inverter(stats.variance, config);
  std::vector<float> out(64), ref(64);
  normalization_unit(z, stats.mean, sri.isd, alpha, beta, model::NormKind::kRMSNorm,
                     config, out);
  tensor::rmsnorm(z, alpha, beta, ref, config.eps);
  EXPECT_LT(tensor::rms_error(out, ref), 0.03);
}

TEST(Nu, PredictedIsdPathBypassesSri) {
  const AcceleratorConfig config = haan_v1();
  const auto z = random_vector(64, 6);
  const double predicted = 0.43;
  const numerics::Fixed isd = encode_predicted_isd(predicted, config);
  EXPECT_NEAR(isd.to_double(), predicted, config.isd_fixed.resolution());
  std::vector<float> out(64), ref(64);
  normalization_unit(z, numerics::Fixed(config.acc_fixed), isd, {}, {},
                     model::NormKind::kRMSNorm, config, out);
  tensor::rmsnorm_with_isd(z, predicted, {}, {}, ref);
  EXPECT_LT(tensor::rms_error(out, ref), 0.01);
}

class DatapathPipelineEquivalence
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DatapathPipelineEquivalence, EndToEndErrorBounded) {
  // Full ISC -> SRI -> NU chain vs double-precision LayerNorm across scales
  // and Newton iteration counts: relative output error stays within the
  // fixed-point + fast-invsqrt budget.
  const auto [iters, scale] = GetParam();
  AcceleratorConfig config = haan_v1();
  config.newton_iterations = iters;
  const auto z = random_vector(512, 7, scale);
  const IscResult stats =
      input_statistics_calculator(z, 0, model::NormKind::kLayerNorm, config);
  const SriResult sri = square_root_inverter(stats.variance, config);
  std::vector<float> out(z.size()), ref(z.size());
  normalization_unit(z, stats.mean, sri.isd, {}, {}, model::NormKind::kLayerNorm,
                     config, out);
  tensor::layernorm(z, {}, {}, ref, config.eps);
  const double budget = iters >= 1 ? 0.02 : 0.08;
  EXPECT_LT(tensor::rms_error(out, ref), budget);
}

INSTANTIATE_TEST_SUITE_P(
    ItersAndScales, DatapathPipelineEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.1, 1.0, 3.0)));

}  // namespace
}  // namespace haan::accel
