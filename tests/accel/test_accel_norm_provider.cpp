#include "accel/accel_norm_provider.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/haan_norm.hpp"
#include "model/transformer.hpp"
#include "tensor/ops.hpp"

namespace haan::accel {
namespace {

TEST(AcceleratorNormProvider, MatchesSoftwareTwinOnSingleLayer) {
  core::HaanConfig algorithm;
  algorithm.nsub = 64;
  algorithm.format = numerics::NumericFormat::kFP16;
  AcceleratorNormProvider hw(haan_v1(), algorithm);
  core::HaanNormProvider sw(algorithm);

  common::Rng rng(5);
  std::vector<float> z(128);
  rng.fill_gaussian(z, 0.3, 1.4);
  std::vector<float> out_hw(z.size()), out_sw(z.size());
  hw.begin_sequence();
  sw.begin_sequence();
  hw.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out_hw);
  sw.normalize(0, 0, model::NormKind::kLayerNorm, z, {}, {}, out_sw);
  EXPECT_LT(tensor::rms_error(out_hw, out_sw), 0.02);
}

TEST(AcceleratorNormProvider, WholeModelForwardOnHardwareNumerics) {
  model::Transformer model(model::tiny_test_model());
  core::HaanConfig algorithm;
  AcceleratorNormProvider hw(haan_v1(), algorithm);
  model::ExactNormProvider exact;

  const auto corpus =
      core::random_token_corpus(model.config().vocab_size, 1, 6, 9);
  const auto f_exact = model.pooled_features(corpus[0], exact);
  const auto f_hw = model.pooled_features(corpus[0], hw);
  for (const float v : f_hw) ASSERT_TRUE(std::isfinite(v));
  const double cosine = tensor::dot(f_exact, f_hw) /
                        (tensor::l2_norm(f_exact) * tensor::l2_norm(f_hw));
  EXPECT_GT(cosine, 0.99);  // fixed-point datapath barely perturbs the model
}

TEST(AcceleratorNormProvider, AccumulatesHardwareCost) {
  model::Transformer model(model::tiny_test_model());
  core::HaanConfig algorithm;
  AcceleratorNormProvider hw(haan_v1(), algorithm);
  const auto corpus =
      core::random_token_corpus(model.config().vocab_size, 1, 4, 10);
  model.forward_hidden(corpus[0], hw);
  const auto& cost = hw.cost();
  EXPECT_EQ(cost.norm_calls, model.config().norm_layer_count() * 4);
  EXPECT_GT(cost.cycles, 0u);
  EXPECT_GT(cost.energy_uj, 0.0);
  EXPECT_EQ(cost.skipped, 0u);

  hw.reset_cost();
  EXPECT_EQ(hw.cost().norm_calls, 0u);
}

TEST(AcceleratorNormProvider, SkipPlanReducesEnergyPerCall) {
  core::SkipPlan plan;
  plan.start = 0;
  plan.end = 2;
  plan.decay = -0.05;
  plan.enabled = true;
  core::HaanConfig with_plan;
  with_plan.plan = plan;
  AcceleratorNormProvider hw(haan_v1(), with_plan);

  common::Rng rng(6);
  std::vector<float> z(256);
  rng.fill_gaussian(z, 0.0, 1.0);
  std::vector<float> out(z.size());
  hw.begin_sequence();
  hw.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out);  // anchor
  const double anchor_energy = hw.cost().energy_uj;
  hw.normalize(1, 0, model::NormKind::kRMSNorm, z, {}, {}, out);  // skipped
  const double skipped_energy = hw.cost().energy_uj - anchor_energy;
  EXPECT_LT(skipped_energy, anchor_energy);
  EXPECT_EQ(hw.cost().skipped, 1u);
}

TEST(AcceleratorNormProvider, BatchedRowBlockBitIdenticalAndCheaper) {
  core::HaanConfig algorithm;
  algorithm.nsub = 64;
  common::Rng rng(9);
  const std::size_t rows = 13, d = 128;  // prime row count
  std::vector<float> x(rows * d);
  rng.fill_gaussian(x, 0.1, 1.2);

  // Per-row reference: the default NormProvider loop over normalize().
  AcceleratorNormProvider per_row(haan_v1(), algorithm);
  std::vector<float> out_ref(x.size());
  per_row.begin_sequence();
  for (std::size_t r = 0; r < rows; ++r) {
    per_row.normalize(0, r, model::NormKind::kLayerNorm,
                      std::span<const float>(x).subspan(r * d, d), {}, {},
                      std::span<float>(out_ref).subspan(r * d, d));
  }

  // Batched: one row-block call, one burst-amortized cost charge.
  AcceleratorNormProvider batched(haan_v1(), algorithm);
  std::vector<float> out_batched(x.size());
  batched.begin_sequence();
  batched.normalize_rows(0, 0, model::NormKind::kLayerNorm, rows, x, {}, {},
                         out_batched);

  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(out_batched[i], out_ref[i]) << "element " << i;
  }
  EXPECT_EQ(batched.cost().norm_calls, per_row.cost().norm_calls);
  EXPECT_EQ(batched.cost().batched_layers, 1u);
  EXPECT_EQ(batched.cost().batched_rows, rows);
  EXPECT_EQ(per_row.cost().batched_layers, 0u);
  // Pipeline fill + DMA burst amortize across the packed rows: strictly
  // cheaper than rows independent per-vector charges, but still at least the
  // steady-state streaming cost of all rows.
  EXPECT_LT(batched.cost().cycles, per_row.cost().cycles);
  EXPECT_GE(batched.cost().cycles,
            (rows - 1) * batched.accelerator()
                             .time_layer({d, 1, algorithm.nsub, false,
                                          model::NormKind::kLayerNorm})
                             .per_vector.bottleneck());
}

TEST(AcceleratorNormProvider, BatchedResidualPathMatchesUnfusedFallback) {
  core::HaanConfig algorithm;
  common::Rng rng(11);
  const std::size_t rows = 5, d = 96;
  std::vector<float> h(rows * d), residual(rows * d);
  rng.fill_gaussian(h, 0.0, 1.0);
  rng.fill_gaussian(residual, 0.0, 0.5);

  // Reference: the base-class default (per-row residual_add + normalize).
  AcceleratorNormProvider ref(haan_v1(), algorithm);
  std::vector<float> h_ref = h, out_ref(h.size());
  ref.begin_sequence();
  ref.model::NormProvider::residual_add_normalize_rows(
      0, 0, model::NormKind::kRMSNorm, rows, h_ref, residual, {}, {}, out_ref);

  AcceleratorNormProvider batched(haan_v1(), algorithm);
  std::vector<float> h_batched = h, out_batched(h.size());
  batched.begin_sequence();
  batched.residual_add_normalize_rows(0, 0, model::NormKind::kRMSNorm, rows,
                                      h_batched, residual, {}, {}, out_batched);

  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(out_batched[i], out_ref[i]) << "element " << i;
    ASSERT_EQ(h_batched[i], h_ref[i]) << "residual stream element " << i;
  }
  EXPECT_EQ(batched.cost().batched_layers, 1u);
}

TEST(AcceleratorNormProvider, SkippedIsdFollowsPredictor) {
  core::SkipPlan plan;
  plan.start = 0;
  plan.end = 1;
  plan.decay = -0.5;
  plan.enabled = true;
  core::HaanConfig config;
  config.plan = plan;
  AcceleratorNormProvider hw(haan_v1(), config);

  common::Rng rng(7);
  std::vector<float> z(128);
  rng.fill_gaussian(z, 0.0, 2.0);
  std::vector<float> out0(z.size()), out1(z.size());
  hw.begin_sequence();
  hw.normalize(0, 0, model::NormKind::kRMSNorm, z, {}, {}, out0);
  hw.normalize(1, 0, model::NormKind::kRMSNorm, z, {}, {}, out1);
  // Same input, ISD scaled by exp(-0.5): outputs scale accordingly.
  const double ratio = tensor::l2_norm(out1) / tensor::l2_norm(out0);
  EXPECT_NEAR(ratio, std::exp(-0.5), 0.02);
}

}  // namespace
}  // namespace haan::accel
