// Randomized end-to-end properties of the bit-accurate datapath against the
// double-precision reference across formats, scales and subsample lengths.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "common/rng.hpp"
#include "tensor/norm_ref.hpp"
#include "tensor/ops.hpp"

namespace haan::accel {
namespace {

class DatapathPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatapathPropertySweep, IscVarianceMatchesTwoPassReference) {
  common::Rng rng(GetParam());
  const AcceleratorConfig config = haan_v1();
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = 16 + rng.uniform_index(1024);
    std::vector<float> z(n);
    rng.fill_gaussian(z, rng.uniform(-2.0, 2.0), rng.uniform(0.1, 3.0));
    const IscResult result =
        input_statistics_calculator(z, 0, model::NormKind::kLayerNorm, config);
    const tensor::VectorStats reference = tensor::exact_stats(z);
    // One-pass E[x^2]-E[x]^2 in fixed point vs two-pass double: the error
    // budget is the accumulator resolution times the dynamic range.
    EXPECT_NEAR(result.variance.to_double(), reference.variance,
                5e-3 * (1.0 + reference.variance));
    EXPECT_NEAR(result.mean.to_double(), reference.mean, 5e-3);
  }
}

TEST_P(DatapathPropertySweep, SriRelativeErrorBoundedAcrossMagnitudes) {
  common::Rng rng(GetParam() + 1);
  const AcceleratorConfig config = haan_v1();
  for (int i = 0; i < 400; ++i) {
    const double variance = std::exp(rng.uniform(std::log(0.02), std::log(2000.0)));
    const auto fx = numerics::Fixed::from_double(variance, config.acc_fixed);
    const SriResult result = square_root_inverter(fx, config);
    const double exact = 1.0 / std::sqrt(fx.to_double() + config.eps);
    EXPECT_NEAR(result.isd.to_double() / exact, 1.0, 0.005) << "var=" << variance;
  }
}

TEST_P(DatapathPropertySweep, FullChainCosineNearOne) {
  common::Rng rng(GetParam() + 2);
  for (const auto format :
       {numerics::NumericFormat::kFP16, numerics::NumericFormat::kINT8}) {
    AcceleratorConfig config = haan_v1();
    config.io_format = format;
    const HaanAccelerator accelerator(config);
    for (int i = 0; i < 20; ++i) {
      const std::size_t n = 128 + rng.uniform_index(512);
      const std::size_t vectors = 1 + rng.uniform_index(8);
      common::Rng data_rng(rng.next_u64());
      const tensor::Tensor input = tensor::Tensor::randn(
          tensor::Shape{vectors, n}, data_rng, 0.1, rng.uniform(0.3, 2.0));
      const auto run =
          accelerator.run_layer(input, {}, {}, model::NormKind::kLayerNorm, 0);
      for (std::size_t v = 0; v < vectors; ++v) {
        std::vector<float> ref(n);
        tensor::layernorm(input.row(v), {}, {}, ref, config.eps);
        const double cosine =
            tensor::dot(run.output.row(v), ref) /
            (tensor::l2_norm(run.output.row(v)) * tensor::l2_norm(ref) + 1e-30);
        EXPECT_GT(cosine, 0.998) << numerics::to_string(format);
      }
    }
  }
}

TEST_P(DatapathPropertySweep, SubsampledStatsIgnoreSuffixBitExactly) {
  common::Rng rng(GetParam() + 3);
  const AcceleratorConfig config = haan_v1();
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = 64 + rng.uniform_index(512);
    const std::size_t nsub = 1 + rng.uniform_index(n);
    std::vector<float> z(n);
    rng.fill_gaussian(z, 0.0, 1.0);
    const IscResult before =
        input_statistics_calculator(z, nsub, model::NormKind::kRMSNorm, config);
    for (std::size_t k = nsub; k < n; ++k) z[k] = 1e9f;
    const IscResult after =
        input_statistics_calculator(z, nsub, model::NormKind::kRMSNorm, config);
    EXPECT_EQ(before.variance.raw(), after.variance.raw());
  }
}

TEST_P(DatapathPropertySweep, EnergyMonotoneInWorkload) {
  common::Rng rng(GetParam() + 4);
  const HaanAccelerator accelerator(haan_v1());
  for (int i = 0; i < 200; ++i) {
    NormLayerWork work;
    work.n = 128 + rng.uniform_index(4096);
    work.vectors = 1 + rng.uniform_index(256);
    const double base = accelerator.layer_energy_uj(work);
    auto bigger = work;
    bigger.vectors *= 2;
    EXPECT_GT(accelerator.layer_energy_uj(bigger), base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatapathPropertySweep,
                         ::testing::Values(31u, 42u, 53u));

}  // namespace
}  // namespace haan::accel
