#include "accel/resource_model.hpp"

#include <gtest/gtest.h>

namespace haan::accel {
namespace {

AcceleratorConfig config_of(std::size_t pd, std::size_t pn,
                            numerics::NumericFormat format) {
  AcceleratorConfig config;
  config.pd = pd;
  config.pn = pn;
  config.io_format = format;
  return config;
}

// The six anchor points of the paper's Table III. The model was calibrated
// against them; these tests pin the calibration so refactors cannot silently
// drift.
struct Anchor {
  std::size_t pd, pn;
  numerics::NumericFormat format;
  double lut, ff, dsp, power;
};

const Anchor kAnchors[] = {
    {128, 128, numerics::NumericFormat::kFP32, 84000, 17000, 1536, 6.362},
    {32, 128, numerics::NumericFormat::kFP32, 99000, 21000, 1036, 6.136},
    {128, 128, numerics::NumericFormat::kFP16, 55000, 11000, 1536, 4.868},
    {32, 128, numerics::NumericFormat::kFP16, 76000, 15000, 1036, 4.790},
    {256, 256, numerics::NumericFormat::kINT8, 58000, 21000, 1536, 3.458},
    {32, 512, numerics::NumericFormat::kINT8, 86000, 25000, 1025, 6.382},
};

class TableIIIAnchors : public ::testing::TestWithParam<Anchor> {};

TEST_P(TableIIIAnchors, ModelReproducesPaperNumbers) {
  const Anchor& anchor = GetParam();
  const ResourceEstimate estimate =
      estimate_resources(config_of(anchor.pd, anchor.pn, anchor.format));
  EXPECT_NEAR(estimate.lut / anchor.lut, 1.0, 0.05);
  EXPECT_NEAR(estimate.ff / anchor.ff, 1.0, 0.10);
  EXPECT_NEAR(estimate.dsp / anchor.dsp, 1.0, 0.02);
  EXPECT_NEAR(estimate.power_w / anchor.power, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Anchors, TableIIIAnchors, ::testing::ValuesIn(kAnchors));

TEST(ResourceModel, Fp32CostsMoreThanFp16) {
  const auto fp32 =
      estimate_resources(config_of(128, 128, numerics::NumericFormat::kFP32));
  const auto fp16 =
      estimate_resources(config_of(128, 128, numerics::NumericFormat::kFP16));
  EXPECT_GT(fp32.power_w, fp16.power_w);
  EXPECT_GT(fp32.lut, fp16.lut);
  // Paper: FP32 draws ~1.29x the power of FP16 on average.
  EXPECT_NEAR(fp32.power_w / fp16.power_w, 1.29, 0.08);
}

TEST(ResourceModel, Int8CheapestAtMatchedThroughput) {
  // INT8 at double lanes (matched bytes/cycle) still uses less power.
  const auto int8 =
      estimate_resources(config_of(256, 256, numerics::NumericFormat::kINT8));
  const auto fp16 =
      estimate_resources(config_of(128, 128, numerics::NumericFormat::kFP16));
  EXPECT_LT(int8.power_w, fp16.power_w);
}

TEST(ResourceModel, ShrinkingPdRaisesLutViaPipelineLevels) {
  // Paper Table III: (32, 128) has more LUTs/FFs than (128, 128) because the
  // freed DSP budget becomes extra NU pipeline levels.
  const auto wide =
      estimate_resources(config_of(128, 128, numerics::NumericFormat::kFP32));
  const auto narrow =
      estimate_resources(config_of(32, 128, numerics::NumericFormat::kFP32));
  EXPECT_GT(narrow.lut, wide.lut);
  EXPECT_GT(narrow.ff, wide.ff);
  EXPECT_LT(narrow.dsp, wide.dsp);
}

TEST(ResourceModel, FractionsUsePaperDeviceTotals) {
  const auto estimate =
      estimate_resources(config_of(128, 128, numerics::NumericFormat::kFP32));
  EXPECT_NEAR(estimate.lut_fraction(), 0.049, 0.004);
  EXPECT_NEAR(estimate.dsp_fraction(), 0.125, 0.005);
  EXPECT_NEAR(estimate.ff_fraction(), 0.005, 0.001);
}

TEST(ResourceModel, EffectivePowerScalesWithUtilization) {
  const auto config = config_of(128, 128, numerics::NumericFormat::kFP16);
  const double idle = effective_power_w(config, 0.0, 0.0);
  const double half = effective_power_w(config, 0.5, 0.5);
  const double full = effective_power_w(config, 1.0, 1.0);
  EXPECT_LT(idle, half);
  EXPECT_LT(half, full);
  EXPECT_GT(idle, 1.0);  // static floor remains
  // Linear in utilization: half sits midway.
  EXPECT_NEAR(half, (idle + full) / 2.0, 1e-9);
}

TEST(ResourceModel, PipelinesMultiplyResources) {
  auto config = config_of(64, 64, numerics::NumericFormat::kFP16);
  const auto one = estimate_resources(config);
  config.pipelines = 2;
  const auto two = estimate_resources(config);
  EXPECT_NEAR(two.dsp, 2.0 * one.dsp, 1e-9);
  EXPECT_GT(two.lut, 1.9 * one.lut);
}

TEST(ResourceModel, MonotonicInLanes) {
  double prev_dsp = 0.0;
  for (const std::size_t lanes : {16u, 32u, 64u, 128u, 256u}) {
    const auto estimate =
        estimate_resources(config_of(lanes, lanes, numerics::NumericFormat::kFP16));
    EXPECT_GT(estimate.dsp, prev_dsp);
    prev_dsp = estimate.dsp;
  }
}

}  // namespace
}  // namespace haan::accel
